#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation.
# Usage: scripts/run_all_experiments.sh [--smoke]
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
  export KCORE_SMOKE=1
  echo "== smoke mode: miniature dataset subset =="
fi

mkdir -p results
export KCORE_RESULTS_DIR="$PWD/results"

# Dataset cache: every table binary needs the same stand-in graphs; with the
# cache enabled the first binary generates them and the rest load binary
# CSRs (bit-identical — see DESIGN.md "Ingestion pipeline & dataset cache").
export KCORE_CACHE_DIR="${KCORE_CACHE_DIR:-$PWD/.kcore-cache}"

cargo build --release -p kcore-bench

for t in table1 table2 table3 table4 table5 table_dynamic fig10_case_study; do
  echo "== $t =="
  ./target/release/$t | tee "results/$t.txt"
done

# Sharded scaling curve (1/2/4/8 workers x both partitioners on the @2x
# stand-ins) + the uk-2005 full-scale fit forecast.
echo "== table_scale =="
./target/release/table_scale | tee "results/table_scale.txt"

# Fleet observability report (exchange ledger, per-shard rollups, per-round
# critical path across the sharded runs). Writes results/table_fleet.{json,txt}.
echo "== fleetreport =="
./target/release/fleetreport > /dev/null   # writes results/table_fleet.{json,txt} itself

# Full-scale P100 capacity report (memstats extrapolation; predicted-OOM
# cells must line up with the N/A cells of tables 3 and 5).
echo "== memreport =="
./target/release/memreport | tee "results/table_mem.txt"

# Host-side wall-clock attribution of the ablation sweep (informational:
# values are machine-dependent, unlike every simulated table above).
echo "== hostprof =="
./target/release/hostprof    # writes results/table_host.{json,txt} itself

echo "== criterion micro-benchmarks =="
cargo bench -p kcore-bench

echo "== bench snapshot (BENCH_<n>.json) =="
./target/release/record_bench || echo "record_bench flagged regressions (see above)"

echo "done — see results/ and EXPERIMENTS.md"
