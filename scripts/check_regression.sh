#!/usr/bin/env bash
# Bench-regression gate: measures the smoke datasets and diffs simulated
# times against the latest recorded BENCH_<n>.json snapshot. Fails when any
# implementation regressed by more than 5% (see crates/bench/src/regress.rs).
#
# Snapshots also carry host wall-clock fields (host_ms/host_attributed_ms);
# the differ prints their deltas as "[host ... informational]" lines but
# NEVER gates on them — wall time is machine-dependent, simulated time is
# not. Snapshots recorded before these fields existed diff cleanly.
#
# Skips cleanly when no snapshot has been recorded yet — record a baseline
# first with:
#
#   KCORE_SMOKE=1 scripts/check_regression.sh --record
#
# Baselines: BENCH_0 (pre-fast-path), BENCH_1 (warp-vectorized two-launch
# fast path), BENCH_2 (fused single-entry round engine, ExecPath::Fused
# default — identical simulated cells to BENCH_1, lower host_ms). The
# differ always diffs against the highest-numbered snapshot.
#
# Usage: scripts/check_regression.sh [--record]
set -euo pipefail
cd "$(dirname "$0")/.."

RESULTS_DIR="${KCORE_RESULTS_DIR:-$PWD/results}"
export KCORE_RESULTS_DIR="$RESULTS_DIR"
# gate on the fast smoke registry unless the caller selected datasets
export KCORE_SMOKE="${KCORE_SMOKE:-1}"

if [[ "${1:-}" == "--record" ]]; then
  exec cargo run --release -q -p kcore-bench --bin record_bench
fi

if ! compgen -G "$RESULTS_DIR/BENCH_*.json" > /dev/null; then
  echo "== check_regression: no BENCH_*.json under $RESULTS_DIR — skipping (record a baseline with: scripts/check_regression.sh --record) =="
  exit 0
fi

echo "== check_regression: diffing against latest snapshot in $RESULTS_DIR =="
cargo run --release -q -p kcore-bench --bin record_bench -- --check
