#!/usr/bin/env bash
# Tier-1 CI gate (see ROADMAP.md): formatting, lints, full test suite.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "== simulator wall-clock smoke budget =="
# The simulator suite re-runs (already compiled) under a wall-clock ceiling:
# a blow-up here means a host-side perf regression (e.g. the fused engine or
# fast path silently falling back to per-lane charging) that the
# simulated-time regression gate below cannot see. The suite takes ~15 s on
# the reference machine; 120 s absorbs slow-VM phases while still catching
# any order-of-magnitude host regression.
SMOKE_BUDGET_S="${KCORE_SMOKE_BUDGET_S:-120}"
smoke_start=$(date +%s)
cargo test -q -p kcore-gpusim
smoke_elapsed=$(( $(date +%s) - smoke_start ))
echo "kcore-gpusim tests took ${smoke_elapsed}s (budget ${SMOKE_BUDGET_S}s)"
if (( smoke_elapsed > SMOKE_BUDGET_S )); then
  echo "ERROR: kcore-gpusim test suite exceeded the ${SMOKE_BUDGET_S}s wall-clock budget" >&2
  exit 1
fi

echo "== bench regression gate =="
KCORE_SMOKE=1 KCORE_DATASETS=amazon0601,wiki-Talk scripts/check_regression.sh

echo "== dataset cache smoke (KCORE_CACHE_DIR) =="
# Cold run populates the cache; warm run must serve from it without
# rewriting any entry (byte-identical output is pinned by the test suite;
# here we pin the hit/miss mechanics end to end through a table binary).
cargo build --release -q -p kcore-bench
cache_dir="$(mktemp -d)"
trap 'rm -rf "$cache_dir"' EXIT
KCORE_SMOKE=1 KCORE_DATASETS=amazon0601 KCORE_CACHE_DIR="$cache_dir" \
  ./target/release/table1 > /dev/null
entries=$(find "$cache_dir" -name '*.kcsr' | wc -l)
if (( entries != 1 )); then
  echo "ERROR: cold run should write exactly 1 cache entry, found $entries" >&2
  exit 1
fi
stamp_before=$(find "$cache_dir" -name '*.kcsr' -exec stat -c '%y %n' {} \; | sort)
KCORE_SMOKE=1 KCORE_DATASETS=amazon0601 KCORE_CACHE_DIR="$cache_dir" \
  ./target/release/table1 > /dev/null
stamp_after=$(find "$cache_dir" -name '*.kcsr' -exec stat -c '%y %n' {} \; | sort)
if [[ "$stamp_before" != "$stamp_after" ]]; then
  echo "ERROR: warm run rewrote cache entries (expected pure hits)" >&2
  exit 1
fi
if git check-ignore -q .kcore-cache/probe; then
  echo "cache smoke OK ($entries entry, warm hit, .kcore-cache gitignored)"
else
  echo "ERROR: .kcore-cache/ is not gitignored" >&2
  exit 1
fi

echo "== memreport smoke (capacity forecasts + schema-v3 round-trip) =="
# --check asserts that the paper's peeling kernel is predicted to fit in
# 16 GB on every smoke dataset, and that a schema-v3 trace survives
# to_json -> regress::parse_json with its memstats block intact.
mem_results="$(mktemp -d)"
KCORE_SMOKE=1 KCORE_DATASETS=amazon0601,wiki-Talk KCORE_CACHE_DIR="$cache_dir" \
  KCORE_RESULTS_DIR="$mem_results" ./target/release/memreport --check > /dev/null
if [[ ! -s "$mem_results/table_mem.json" ]]; then
  echo "ERROR: memreport did not write table_mem.json" >&2
  exit 1
fi
rm -rf "$mem_results"
echo "memreport smoke OK"

echo "== sharded scaling smoke (partition contract + fit forecast) =="
# --check sweeps 1/2/4/8 workers x both partitioners over the smoke
# datasets, asserting sharded cores equal BZ, one device exchanges zero
# bytes, max per-device peak shrinks as the pool grows, worker ledgers are
# shard-local, and the uk-2005 @1x forecast fits on <= 8 x 16 GB devices.
scale_results="$(mktemp -d)"
KCORE_SMOKE=1 KCORE_CACHE_DIR="$cache_dir" \
  KCORE_RESULTS_DIR="$scale_results" ./target/release/table_scale --check > /dev/null
if [[ ! -s "$scale_results/table_scale.json" ]]; then
  echo "ERROR: table_scale did not write table_scale.json" >&2
  exit 1
fi
rm -rf "$scale_results"
echo "table_scale smoke OK"

echo "== dynamic maintenance smoke (batched engine vs oracle) =="
# --check replays the CI-sized churn stream through the batched GPU
# maintenance engine, verifies every run's final cores against a
# from-scratch BZ peel, and drives one pure-insert batch plus one
# pure-delete batch oracle-checked after each. Results go to a throwaway
# dir so the full-scale results/table_dynamic.json is never overwritten.
dyn_results="$(mktemp -d)"
KCORE_SMOKE=1 KCORE_RESULTS_DIR="$dyn_results" \
  ./target/release/table_dynamic --check > /dev/null
if [[ ! -s "$dyn_results/table_dynamic.json" ]]; then
  echo "ERROR: table_dynamic did not write table_dynamic.json" >&2
  exit 1
fi
rm -rf "$dyn_results"
echo "dynamic smoke OK"

echo "== fleet observability smoke (exchange ledger + merged export) =="
# --check runs the sharded decomposition at p=2/4 with the fleet ledger
# armed and asserts the ledger replays the charged time bit-exactly, every
# exchange flow references a real pack/apply launch record, per-round
# critical-path shares sum to 1.0, and the trace survives a round trip
# through regress::parse_json. Observability only: the measured runs are
# bit-identical to decompose_multi.
fleet_results="$(mktemp -d)"
KCORE_SMOKE=1 KCORE_DATASETS=amazon0601,wiki-Talk KCORE_CACHE_DIR="$cache_dir" \
  KCORE_RESULTS_DIR="$fleet_results" ./target/release/fleetreport --check > /dev/null
if [[ ! -s "$fleet_results/table_fleet.json" ]]; then
  echo "ERROR: fleetreport did not write table_fleet.json" >&2
  exit 1
fi
if [[ ! -s "$fleet_results/table_fleet.txt" ]]; then
  echo "ERROR: fleetreport did not write table_fleet.txt" >&2
  exit 1
fi
rm -rf "$fleet_results"
echo "fleetreport smoke OK"

echo "== hostprof smoke (wall-clock attribution coverage) =="
# --check sweeps the ablation variants with a wall-clock profiler per run
# and asserts every profile parses under the current hostprof schema, that
# bucket time never exceeds its containing run span, and that the named
# buckets attribute >= 95% of each run's wall time — below that the
# engine's host instrumentation is considered broken. Informational only
# for perf (wall time is machine-dependent); structural checks are hard.
host_results="$(mktemp -d)"
KCORE_SMOKE=1 KCORE_DATASETS=amazon0601 KCORE_CACHE_DIR="$cache_dir" \
  KCORE_RESULTS_DIR="$host_results" ./target/release/hostprof --check > /dev/null
if [[ ! -s "$host_results/table_host.json" ]]; then
  echo "ERROR: hostprof did not write table_host.json" >&2
  exit 1
fi
rm -rf "$host_results"
echo "hostprof smoke OK"

echo "== ci.sh: all green =="
