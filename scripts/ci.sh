#!/usr/bin/env bash
# Tier-1 CI gate (see ROADMAP.md): formatting, lints, full test suite.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "== bench regression gate =="
KCORE_SMOKE=1 KCORE_DATASETS=amazon0601,wiki-Talk scripts/check_regression.sh

echo "== ci.sh: all green =="
