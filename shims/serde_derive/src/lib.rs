//! Offline shim for `serde_derive`: a dependency-free `#[derive(Serialize)]`
//! built directly on `proc_macro` (no syn/quote). See `shims/README.md`.
//!
//! Supports non-generic `struct`s (named, tuple, unit) and `enum`s with
//! unit / newtype / tuple / struct variants, emitting the externally-tagged
//! representation real serde uses. Generic items and `#[serde(..)]`
//! attributes are rejected with a compile error naming this file.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(s) => s.parse().expect("serde_derive shim generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i)?;

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => {
            return Err(format!(
                "serde_derive shim: expected struct/enum, got {other:?}"
            ))
        }
    };
    i += 1;

    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde_derive shim: expected type name, got {other:?}"
            ))
        }
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive shim: generic type `{name}` is not supported (see shims/serde_derive)"
            ));
        }
    }

    let body = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g.stream())?;
                struct_named_body(&fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                struct_tuple_body(n)
            }
            // `struct S;`
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => struct_named_body(&[]),
            other => {
                return Err(format!(
                    "serde_derive shim: unsupported struct body {other:?}"
                ))
            }
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                enum_body(&name, g.stream())?
            }
            other => {
                return Err(format!(
                    "serde_derive shim: unsupported enum body {other:?}"
                ))
            }
        }
    };

    Ok(format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    ))
}

/// Advances past leading `#[..]` attributes and a `pub` / `pub(..)`
/// visibility, rejecting `#[serde(..)]` which this shim cannot honor.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    let inner = g.stream().to_string();
                    if inner.starts_with("serde") {
                        return Err(format!(
                            "serde_derive shim: #[{inner}] attributes are not supported"
                        ));
                    }
                }
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return Ok(()),
        }
    }
}

/// Splits a token stream on commas at angle-bracket depth 0. Groups
/// (parens/brackets/braces) are atomic tokens, so only `<`/`>` need depth
/// tracking; `->` never appears at field-split depth in this workspace.
fn split_top_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extracts field names from a named-field list (`a: T, pub b: U, ..`).
fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for piece in split_top_commas(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&piece, &mut i)?;
        match piece.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => {
                return Err(format!(
                    "serde_derive shim: expected field name, got {other:?}"
                ))
            }
        }
        // The `: Type` tail is irrelevant: serialization is structural.
        match piece.get(i + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' && p.spacing() == Spacing::Alone => {}
            other => {
                return Err(format!(
                    "serde_derive shim: expected `:` after field, got {other:?}"
                ))
            }
        }
    }
    Ok(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_commas(stream).len()
}

fn obj_entry(key: &str, value_expr: &str) -> String {
    format!("(::std::string::String::from({key:?}), {value_expr})")
}

fn struct_named_body(fields: &[String]) -> String {
    if fields.is_empty() {
        return "::serde::Value::Object(::std::vec::Vec::new())".to_string();
    }
    let entries: Vec<String> = fields
        .iter()
        .map(|f| obj_entry(f, &format!("::serde::Serialize::to_value(&self.{f})")))
        .collect();
    format!(
        "::serde::Value::Object(::std::vec::Vec::from([{}]))",
        entries.join(", ")
    )
}

fn struct_tuple_body(n: usize) -> String {
    if n == 1 {
        // Newtype structs serialize transparently, as in real serde.
        return "::serde::Serialize::to_value(&self.0)".to_string();
    }
    let items: Vec<String> = (0..n)
        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
        .collect();
    format!(
        "::serde::Value::Array(::std::vec::Vec::from([{}]))",
        items.join(", ")
    )
}

fn enum_body(name: &str, stream: TokenStream) -> Result<String, String> {
    let mut arms = Vec::new();
    for piece in split_top_commas(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&piece, &mut i)?;
        let vname = match piece.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive shim: expected variant, got {other:?}"
                ))
            }
        };
        i += 1;
        let arm = match piece.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g.stream())?;
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| obj_entry(f, &format!("::serde::Serialize::to_value({f})")))
                    .collect();
                let inner = format!(
                    "::serde::Value::Object(::std::vec::Vec::from([{}]))",
                    entries.join(", ")
                );
                format!(
                    "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec::Vec::from([{}])),",
                    fields.join(", "),
                    obj_entry(&vname, &inner)
                )
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                let binds: Vec<String> = (0..n).map(|k| format!("__f{k}")).collect();
                let inner = if n == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!(
                        "::serde::Value::Array(::std::vec::Vec::from([{}]))",
                        items.join(", ")
                    )
                };
                format!(
                    "{name}::{vname}({}) => ::serde::Value::Object(::std::vec::Vec::from([{}])),",
                    binds.join(", "),
                    obj_entry(&vname, &inner)
                )
            }
            // Unit variant (possibly with an explicit `= discr`, which the
            // split kept inside this piece — the tag is the name either way).
            _ => format!(
                "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),"
            ),
        };
        arms.push(arm);
    }
    Ok(format!("match self {{ {} }}", arms.join("\n")))
}
