//! Offline shim for `crossbeam`: scoped threads over `std::thread::scope`.
//! See `shims/README.md`.
//!
//! Only the `crossbeam::scope(|s| { s.spawn(move |_| ..); .. }).unwrap()`
//! pattern is supported — spawned closures receive a `&Scope` argument they
//! may use for nested spawns, and `scope` returns `Err` with the panic
//! payload of the first panicking child (matching crossbeam's contract
//! closely enough for callers that `unwrap()`).

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Re-exported namespace matching `crossbeam::thread`.
pub mod thread {
    pub use crate::{scope, Scope};
}

/// Handle passed to `scope`'s closure and to each spawned child.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a `&Scope` for nested
    /// spawns (crossbeam's signature); most callers ignore it (`move |_|`).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || {
            let s = Scope { inner };
            f(&s)
        })
    }
}

/// Creates a scope for spawning borrowing threads; joins them all before
/// returning. Returns `Err(payload)` if any child panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        })
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawns_and_joins() {
        let n = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                let n = &n;
                s.spawn(move |_| {
                    n.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn propagates_panic_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
