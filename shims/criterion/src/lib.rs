//! Offline shim for `criterion`: runs each benchmark in a fixed
//! warm-up + timed loop and prints the mean wall time. No statistics,
//! baselines, or HTML reports. See `shims/README.md`.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working (std's is canonical).
pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(100);
const MEASURE: Duration = Duration::from_millis(300);

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    /// (total elapsed, iterations) of the measurement phase.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run until the budget elapses (at least once).
        let start = Instant::now();
        loop {
            black_box(f());
            if start.elapsed() >= WARMUP {
                break;
            }
        }
        // Measure.
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= MEASURE {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { result: None };
    f(&mut b);
    match b.result {
        Some((total, iters)) => {
            let mean = total.as_secs_f64() / iters as f64;
            println!("{label:<40} {:>12.3} µs/iter ({iters} iters)", mean * 1e6);
        }
        None => println!("{label:<40} (no b.iter call)"),
    }
}

/// Identifier for parameterized benchmarks.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    pub fn new<S: Into<String>, P: std::fmt::Display>(name: S, p: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), p),
        }
    }
}

/// Things accepted as a benchmark name: `&str`, `String`, [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// A named group of benchmarks (a prefix on every label).
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; this shim's loop is time-bounded, so
    /// the sample count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<I: IntoBenchmarkId, F: FnOnce(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into_id()), f);
        self
    }

    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnOnce(&mut Bencher, &T),
    {
        run_one(&format!("{}/{}", self.name, id.into_id()), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Top-level harness.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
