//! Offline shim for `rand` 0.8: `SmallRng` + the `Rng`/`SeedableRng` traits.
//! See `shims/README.md`.
//!
//! `SmallRng` is a SplitMix64 stream — different sequences than upstream's
//! xoshiro but the same contract the workspace relies on: deterministic per
//! seed, uniform enough for synthetic graph generation. Range sampling uses
//! rejection-free multiply-shift (Lemire-style high-bits), which is unbiased
//! to well below anything these generators can observe.

use std::ops::{Range, RangeInclusive};

/// Seedable RNG constructors, mirroring `rand::SeedableRng`'s subset we use.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

/// Raw 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Range arguments accepted by [`Rng::gen_range`] (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift: map a uniform u64 into [0, span).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: the raw draw is already uniform.
                    return lo + rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`'s subset we use.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0,1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast RNG: a SplitMix64 stream (see crate docs).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }
}
