//! Offline shim for `rayon`: order-preserving chunked data parallelism over
//! scoped `std::thread`s. See `shims/README.md`.
//!
//! Supported surface (exactly what this workspace uses):
//! * `(range).into_par_iter().map(f).collect::<Vec<_>>()` — **order
//!   preserving**: element `i` of the output is `f` of element `i` of the
//!   input regardless of thread count, which is what makes the golden-trace
//!   determinism tests meaningful.
//! * `slice.par_iter_mut().enumerate().map(f).reduce(identity, op)` — the
//!   per-chunk partials are folded **in chunk order**, so `op` need only be
//!   associative (all uses here are commutative monoids anyway).
//! * `ThreadPoolBuilder::new().num_threads(n).build()?.install(f)` — scopes
//!   the fan-out width for everything called from `f` on this thread.

use std::cell::Cell;
use std::ops::Range;
use std::panic::resume_unwind;
use std::sync::OnceLock;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

thread_local! {
    /// 0 = "no pool installed": fall back to the machine's parallelism.
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Machine parallelism, resolved once per process. On Linux,
/// `available_parallelism` re-reads the cgroup CPU quota files on every
/// call (open/read/statx per query); uncached it showed up as ~25% of a
/// simulator run's wall clock, since every kernel launch consults the
/// fan-out width.
fn machine_parallelism() -> usize {
    static MACHINE: OnceLock<usize> = OnceLock::new();
    *MACHINE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    })
}

fn pool_threads() -> usize {
    let n = POOL_THREADS.with(Cell::get);
    if n != 0 {
        n
    } else {
        machine_parallelism()
    }
}

/// Number of threads parallel operations on this thread will fan out to.
pub fn current_num_threads() -> usize {
    pool_threads()
}

/// Error type for [`ThreadPoolBuilder::build`] (this shim never fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// 0 means "use the default" (machine parallelism), as in rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A "pool" is just a configured fan-out width; threads are spawned per
/// operation.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

struct PoolGuard {
    prev: usize,
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        POOL_THREADS.with(|c| c.set(self.prev));
    }
}

impl ThreadPool {
    /// Runs `f` with this pool's width installed for the current thread
    /// (restored on exit, including on panic).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = PoolGuard {
            prev: POOL_THREADS.with(|c| c.replace(self.num_threads)),
        };
        f()
    }

    pub fn current_num_threads(&self) -> usize {
        if self.num_threads != 0 {
            self.num_threads
        } else {
            machine_parallelism()
        }
    }
}

/// Order-preserving parallel map: contiguous chunks, one scoped thread per
/// chunk, outputs concatenated in chunk order.
fn pmap<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = pool_threads();
    let len = items.len();
    if threads <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let outs: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| resume_unwind(e)))
            .collect()
    });
    let mut out = Vec::with_capacity(len);
    for mut o in outs {
        out.append(&mut o);
    }
    out
}

// ---------------------------------------------------------------------------
// into_par_iter
// ---------------------------------------------------------------------------

pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

macro_rules! impl_range_into_par {
    ($($t:ty),*) => {
        $(impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        })*
    };
}

impl_range_into_par!(u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Owned parallel iterator (items are materialized up front).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        pmap(self.items, &|t| f(t));
    }
}

pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        pmap(self.items, &self.f).into_iter().collect()
    }

    pub fn reduce<R, ID, OP>(self, identity: ID, op: OP) -> R
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        pmap(self.items, &self.f).into_iter().fold(identity(), op)
    }
}

// ---------------------------------------------------------------------------
// par_iter (shared references)
// ---------------------------------------------------------------------------

pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// par_iter_mut
// ---------------------------------------------------------------------------

pub trait IntoParallelRefMutIterator<'a> {
    type Elem: Send + 'a;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Elem>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Elem = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut {
            slice: self.as_mut_slice(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Elem = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    pub fn enumerate(self) -> EnumerateMut<'a, T> {
        EnumerateMut { slice: self.slice }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        EnumerateMut { slice: self.slice }
            .map(|(_, t)| f(t))
            .reduce(|| (), |(), ()| ());
    }
}

pub struct EnumerateMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> EnumerateMut<'a, T> {
    pub fn map<R, F>(self, f: F) -> MapEnumerateMut<'a, T, F>
    where
        R: Send,
        F: Fn((usize, &mut T)) -> R + Sync,
    {
        MapEnumerateMut {
            slice: self.slice,
            f,
        }
    }
}

pub struct MapEnumerateMut<'a, T, F> {
    slice: &'a mut [T],
    f: F,
}

impl<'a, T: Send, F> MapEnumerateMut<'a, T, F> {
    pub fn reduce<R, ID, OP>(self, identity: ID, op: OP) -> R
    where
        R: Send,
        F: Fn((usize, &mut T)) -> R + Sync,
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let threads = pool_threads();
        let len = self.slice.len();
        let f = &self.f;
        if threads <= 1 || len <= 1 {
            let mut acc = identity();
            for (i, item) in self.slice.iter_mut().enumerate() {
                acc = op(acc, f((i, item)));
            }
            return acc;
        }
        let chunk = len.div_ceil(threads);
        let id_ref = &identity;
        let op_ref = &op;
        let partials: Vec<R> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .slice
                .chunks_mut(chunk)
                .enumerate()
                .map(|(ci, ch)| {
                    s.spawn(move || {
                        let mut acc = id_ref();
                        for (j, item) in ch.iter_mut().enumerate() {
                            acc = op_ref(acc, f((ci * chunk + j, item)));
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| resume_unwind(e)))
                .collect()
        });
        partials.into_iter().fold(identity(), op)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u32> = (0u32..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 1000);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u32 * 2);
        }
    }

    #[test]
    fn order_stable_across_pool_sizes() {
        let base: Vec<u32> = (0u32..513)
            .into_par_iter()
            .map(|x| x.wrapping_mul(2654435761))
            .collect();
        for n in [1usize, 2, 3, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
            let v: Vec<u32> = pool.install(|| {
                (0u32..513)
                    .into_par_iter()
                    .map(|x| x.wrapping_mul(2654435761))
                    .collect()
            });
            assert_eq!(v, base, "pool size {n} changed map order");
        }
    }

    #[test]
    fn par_iter_mut_enumerate_reduce() {
        let mut v = vec![1u32; 100];
        let changed = v
            .par_iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                *slot = i as u32;
                i % 2 == 0
            })
            .reduce(|| false, |a, b| a | b);
        assert!(changed);
        assert_eq!(v[99], 99);
    }

    #[test]
    fn install_restores_width() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 2);
        assert_ne!(POOL_THREADS.with(Cell::get), 2);
    }
}
