//! Offline shim for `proptest`: deterministic random-input testing without
//! shrinking. See `shims/README.md`.
//!
//! A [`Strategy`](strategy::Strategy) draws values from a per-test
//! SplitMix64 stream seeded by the test's name, so every run explores the
//! same inputs — a failure reproduces immediately, which substitutes for
//! upstream's shrinking + failure persistence. `prop_assert*!` macros panic
//! directly (the `#[test]` harness reports them like any assert).

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub mod test_runner {
    /// Per-`proptest!` configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        // 64 (upstream defaults to 256): keeps the offline CI gate fast
        // while still exercising a meaningful input spread per property.
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 stream seeded from the test's name: deterministic across
    /// runs, processes, and thread counts.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64; // FNV-1a over the name
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, span)` via multiply-shift.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                f,
                whence,
            }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter {:?} rejected 1000 consecutive draws",
                self.whence
            );
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = ((hi - lo) as u64).wrapping_add(1);
                    if span == 0 {
                        return lo + rng.next_u64() as $t;
                    }
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_sint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )*};
    }

    impl_sint_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($t,)+) = self;
                    ($($t.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    /// `any::<T>()` support.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy that always yields clones of one value (`Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub use strategy::Just;

/// Uniform draw of any `Arbitrary` type (only the types the workspace uses).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted size arguments for [`vec`]: `a..b`, `a..=b`, or an exact
    /// `usize`.
    pub trait IntoSizeRange {
        /// (min, max) with max inclusive.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// Vec of `elem` draws with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64 + 1;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset this workspace uses):
/// ```ignore
/// proptest! {
///     #![proptest_config(expr)]          // optional
///     /// docs / #[attrs]
///     #[test]
///     fn name(pat in strategy, ...) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Panicking stand-in for proptest's failing-case propagation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0usize..=4, f in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.5..2.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn vec_and_tuples(v in crate::collection::vec((0u32..5, any::<bool>()), 0..7)) {
            prop_assert!(v.len() < 7);
            for (x, _flag) in v {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn flat_map_composes(v in (1u32..8).prop_flat_map(|n| crate::collection::vec(0..n, 1..4))) {
            let n_max = v.iter().copied().max().unwrap();
            prop_assert!(n_max < 8);
        }
    }
}
