//! Offline shim for `serde_json`: prints the `serde` shim's [`Value`] tree
//! as JSON. See `shims/README.md`.

use serde::{Serialize, Value};
use std::fmt::Write as _;

/// Serialization error. The only failure real serde_json has on this data
/// model is a non-finite float; we keep that contract.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Pretty JSON, 2-space indent (matching real serde_json's pretty writer).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Lowers any `Serialize` to the `Value` tree (handy in tests).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("non-finite float {f} is not valid JSON")));
            }
            if *f == f.trunc() && f.abs() < 1e15 {
                // Integral floats print with a trailing `.0`, like serde_json.
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (k, (key, item)) in entries.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Float(1.5)),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null],"c":1.5}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1,"));
    }

    #[test]
    fn integral_floats_keep_point() {
        assert_eq!(to_string(&Value::Float(3.0)).unwrap(), "3.0");
    }

    #[test]
    fn escapes() {
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
    }

    #[test]
    fn non_finite_errors() {
        assert!(to_string(&f64::NAN).is_err());
    }
}
