//! Offline shim for `serde`: a tree-model serialization trait.
//! See `shims/README.md`.
//!
//! Instead of upstream's visitor-based `Serializer`, this shim lowers every
//! serializable value to a [`Value`] tree which `serde_json` then prints.
//! That is a strictly smaller contract, but it is exactly what this
//! workspace needs (JSON dumps of results and traces), and the data model
//! matches serde's: structs → objects, `Option` → null/value, enums
//! externally tagged.

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// Serialization tree: the subset of the serde data model we use.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (serde_json with `preserve_order` semantics).
    Object(Vec<(String, Value)>),
}

/// A type that can lower itself to a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(5u32.to_value(), Value::UInt(5));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Some(1u32).to_value(), Value::UInt(1));
        assert_eq!(
            vec![("a".to_string(), 1u32)].to_value(),
            Value::Array(vec![Value::Array(vec![
                Value::Str("a".into()),
                Value::UInt(1)
            ])])
        );
    }
}
