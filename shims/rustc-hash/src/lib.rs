//! Offline shim for `rustc-hash`: the Fx multiply-rotate hasher plus the
//! `FxHashMap`/`FxHashSet` aliases. See `shims/README.md`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0xf1357aea2e62a9c5;
const ROTATE: u32 = 26;

/// Multiply-rotate hasher (same scheme as upstream rustc-hash 2.x).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.wrapping_add(word))
            .wrapping_mul(SEED)
            .rotate_left(ROTATE);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        self.add_to_hash(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&617), Some(&1234));
        let s: FxHashSet<u32> = (0..100).collect();
        assert!(s.contains(&99) && !s.contains(&100));
    }
}
