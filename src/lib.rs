//! `kcore` — umbrella crate for the *Accelerating k-Core Decomposition by a
//! GPU* (ICDE 2023) reproduction suite.
//!
//! Re-exports the workspace crates under one roof so the examples and
//! integration tests at the repository root exercise the whole public API:
//!
//! * [`graph`] — CSR substrate, generators, Table I dataset registry;
//! * [`gpusim`] — the SIMT GPU simulator and cost model;
//! * [`gpu`] — the paper's contribution: the optimized GPU peeling
//!   algorithm and its Table II ablation variants;
//! * [`cpu`] — CPU baselines (BZ, ParK, PKC, PKC-o, MPM, NetworkX-profile);
//! * [`systems`] — GPU baselines (Medusa, Gunrock, GSWITCH, VETGA).
//!
//! # Quickstart
//!
//! ```
//! use kcore::cpu::CoreAlgorithm;
//!
//! // Generate a graph, decompose it on the simulated GPU, cross-check on CPU.
//! let g = kcore::graph::gen::rmat(10, 4_000, kcore::graph::gen::RmatParams::graph500(), 7);
//! let gpu = kcore::gpu::decompose(&g, &kcore::gpu::PeelConfig::ours(),
//!                                 &kcore::gpu::SimOptions::default()).unwrap();
//! let cpu = kcore::cpu::bz::Bz.run(&g);
//! assert_eq!(gpu.core, cpu);
//! ```

pub use kcore_cpu as cpu;
pub use kcore_gpu as gpu;
pub use kcore_gpusim as gpusim;
pub use kcore_graph as graph;
pub use kcore_systems as systems;
