//! Kernel execution: grids, blocks, shared memory, and charging.
//!
//! [`GpuContext::launch`] runs a kernel closure once per thread block, with
//! blocks genuinely executing in parallel on host threads (blocks are
//! independent on hardware too — §III: "different thread blocks are
//! independent in their execution"). Cross-block communication goes through
//! device buffers with real atomics, so any interleaving the simulator
//! produces is an interleaving the hardware could produce.
//!
//! The kernel closure receives a [`BlockCtx`] carrying the block's identity,
//! its private shared memory, and the cost-model charging interface. Kernels
//! *charge* the events they perform (`charge_instr`, `charge_tx`, atomics,
//! barriers); memory itself is accessed directly through the device's atomic
//! slices. The per-access helpers ([`BlockCtx::gread`], [`BlockCtx::atomic_add`],
//! …) bundle the access with its charge for the common cases.

use crate::cost::{
    CostParams, CounterSample, Counters, LaunchRecord, SimReport, TransferDir, TransferRecord,
};
use crate::device::{BufferId, Device, OomError, SizeClass};
use crate::hostprof::{self, HostBucket, HostProfile, HostProfiler, Lap};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// Simulation environment for a run: device cost constants, memory capacity,
/// and an optional simulated-time budget.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Device cost constants.
    pub cost: CostParams,
    /// Device global-memory capacity in bytes (the paper's P100 has 16 GB).
    pub device_capacity_bytes: u64,
    /// Optional simulated-time budget in ms; exceeded → [`SimError::TimeLimit`]
    /// (the bench harness prints these as the paper's "> 1hr" cells).
    pub time_limit_ms: Option<f64>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            cost: CostParams::p100(),
            device_capacity_bytes: 16 * (1 << 30),
            time_limit_ms: None,
        }
    }
}

impl SimOptions {
    /// Builds a fresh [`GpuContext`] configured per these options.
    pub fn context(&self) -> GpuContext {
        let mut ctx = GpuContext::new(self.cost, self.device_capacity_bytes);
        if let Some(ms) = self.time_limit_ms {
            ctx.set_time_limit_ms(ms);
        }
        ctx
    }
}

/// Grid geometry of a kernel launch (`<<<BLK_NUM, BLK_DIM>>>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks (`BLK_NUM`).
    pub blocks: u32,
    /// Threads per block (`BLK_DIM`), a multiple of 32.
    pub threads_per_block: u32,
}

impl LaunchConfig {
    /// The paper's configuration: 108 blocks of 1024 threads (§VI).
    pub fn paper() -> Self {
        LaunchConfig {
            blocks: 108,
            threads_per_block: 1024,
        }
    }

    /// Warps per block (`BLK_DIM >> 5`).
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block / 32
    }

    /// Total thread count (`NUM_THREADS`).
    pub fn num_threads(&self) -> u32 {
        self.blocks * self.threads_per_block
    }
}

/// In-kernel failure.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// A `shared_alloc` exceeded the block's shared-memory capacity.
    SharedMemExceeded {
        /// Bytes requested beyond what remained.
        requested_bytes: u64,
        /// Per-block capacity.
        capacity_bytes: u64,
    },
    /// A device buffer used as a work queue overflowed — the paper's
    /// "block overflow ... the graph is too large to be processed given the
    /// space limit" assertion.
    BufferOverflow {
        /// Which buffer overflowed.
        what: String,
    },
    /// Any other kernel-reported failure.
    Other(String),
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::SharedMemExceeded { requested_bytes, capacity_bytes } => write!(
                f,
                "shared memory exceeded: requested {requested_bytes} B beyond capacity {capacity_bytes} B"
            ),
            KernelError::BufferOverflow { what } => write!(f, "device buffer overflow: {what}"),
            KernelError::Other(msg) => write!(f, "kernel error: {msg}"),
        }
    }
}

impl std::error::Error for KernelError {}

/// Simulation-level failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Device allocation failed.
    Oom(OomError),
    /// A kernel reported an error.
    Kernel(KernelError),
    /// The configured simulated-time budget was exhausted (the harness
    /// reports these as the paper's "> 1hr" entries).
    TimeLimit {
        /// The configured limit, ms.
        limit_ms: f64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Oom(e) => write!(f, "{e}"),
            SimError::Kernel(e) => write!(f, "{e}"),
            SimError::TimeLimit { limit_ms } => {
                write!(f, "simulated time limit of {limit_ms} ms exceeded")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<OomError> for SimError {
    fn from(e: OomError) -> Self {
        SimError::Oom(e)
    }
}

impl From<KernelError> for SimError {
    fn from(e: KernelError) -> Self {
        SimError::Kernel(e)
    }
}

/// Handle to a block-shared-memory array (per block, like `__shared__`).
#[derive(Debug, Clone, Copy)]
pub struct SharedArray {
    start: usize,
    len: usize,
}

impl SharedArray {
    /// Number of 32-bit words.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// How a warp's 32 lane addresses map onto global-memory traffic — the
/// charging policy of the warp-granularity [`BlockCtx::gather`] /
/// [`BlockCtx::scatter`] helpers.
///
/// The **invariant** (DESIGN.md "Fast-path cost accounting") is that at any
/// call site converted from per-lane charging, the bulk charge must equal
/// the per-lane sum exactly — the fast path changes how counters are
/// *computed*, never what they *sum to*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coalescing {
    /// Random-access model: every lane pays its own 32-byte sector
    /// (`global_sectors += lanes`). Bit-identical to a loop of
    /// [`BlockCtx::gread`] / [`BlockCtx::gwrite`] — the drop-in policy for
    /// converted per-lane call sites.
    Scattered,
    /// Classify the warp's addresses into distinct 32-byte sectors in one
    /// pass and charge only the distinct count (`global_sectors +=
    /// distinct`). The hardware-faithful policy for *new* call sites; it
    /// may charge less than `Scattered`, so converting an existing call
    /// site to it would change golden traces.
    Classified,
    /// The warp touches a contiguous run: charge 128-byte transactions
    /// (`global_tx += coalesced_tx(lanes)`), like the hand-written
    /// `charge_tx(coalesced_tx(..))` sites.
    Contiguous,
}

/// Per-block execution context handed to kernel closures.
pub struct BlockCtx<'a> {
    /// The device, for buffer access.
    pub device: &'a Device,
    /// This block's index (`blockIdx.x`).
    pub block_idx: u32,
    /// Grid geometry.
    pub cfg: LaunchConfig,
    /// Event counters for this block.
    pub counters: Counters,
    shared: Vec<u32>,
    shared_capacity_bytes: u64,
    /// True when the engine guarantees no other block is executing
    /// concurrently on this device (serial launch path, stepped waves, the
    /// commit phase of a phased launch). Lets the global-atomic helpers use
    /// plain load/store instead of lock-prefixed RMWs — same values, same
    /// charges, less host time.
    exclusive: bool,
}

impl<'a> BlockCtx<'a> {
    /// Builds a context, reusing a recycled shared-memory backing vector
    /// when the arena has one (the capacity survives across launches).
    fn with_shared(
        device: &'a Device,
        block_idx: u32,
        cfg: LaunchConfig,
        shared_capacity_bytes: u64,
        mut shared: Vec<u32>,
    ) -> Self {
        shared.clear();
        BlockCtx {
            device,
            block_idx,
            cfg,
            counters: Counters::default(),
            shared,
            shared_capacity_bytes,
            exclusive: false,
        }
    }

    /// Warps in this block.
    pub fn num_warps(&self) -> u32 {
        self.cfg.warps_per_block()
    }

    // ---- shared memory -------------------------------------------------

    /// Allocates `len` words of block shared memory (zeroed).
    pub fn shared_alloc(&mut self, len: usize) -> Result<SharedArray, KernelError> {
        let new_bytes = (self.shared.len() + len) as u64 * 4;
        if new_bytes > self.shared_capacity_bytes {
            return Err(KernelError::SharedMemExceeded {
                requested_bytes: new_bytes - self.shared_capacity_bytes,
                capacity_bytes: self.shared_capacity_bytes,
            });
        }
        let start = self.shared.len();
        self.shared.resize(start + len, 0);
        Ok(SharedArray { start, len })
    }

    /// Reads a shared-memory word (charged).
    #[inline]
    pub fn sh_read(&mut self, arr: SharedArray, idx: usize) -> u32 {
        debug_assert!(idx < arr.len);
        self.counters.shared_accesses += 1;
        self.shared[arr.start + idx]
    }

    /// Writes a shared-memory word (charged).
    #[inline]
    pub fn sh_write(&mut self, arr: SharedArray, idx: usize, value: u32) {
        debug_assert!(idx < arr.len);
        self.counters.shared_accesses += 1;
        self.shared[arr.start + idx] = value;
    }

    /// Shared-memory atomic add; returns the old value. Within the simulated
    /// block this is sequentialized, but it is charged at shared-atomic cost
    /// (the paper's `atomicAdd(e, 1)` in Algorithm 2).
    #[inline]
    pub fn sh_atomic_add(&mut self, arr: SharedArray, idx: usize, delta: u32) -> u32 {
        debug_assert!(idx < arr.len);
        self.counters.shared_atomics += 1;
        let slot = &mut self.shared[arr.start + idx];
        let old = *slot;
        *slot = old.wrapping_add(delta);
        old
    }

    // ---- global memory -------------------------------------------------

    /// Scalar (uncoalesced) global read: one 32-byte sector access.
    #[inline]
    pub fn gread(&mut self, cell: &AtomicU32) -> u32 {
        self.counters.global_sectors += 1;
        cell.load(Ordering::Relaxed)
    }

    /// Scalar (uncoalesced) global write: one 32-byte sector access.
    #[inline]
    pub fn gwrite(&mut self, cell: &AtomicU32, value: u32) {
        self.counters.global_sectors += 1;
        cell.store(value, Ordering::Relaxed);
    }

    /// A *serialized dependent* global read on the warp's critical path
    /// (pointer chase) — charged with exposed latency on top of the sector
    /// access. This is the cost the VP optimization prefetches away.
    #[inline]
    pub fn gread_dependent(&mut self, cell: &AtomicU32) -> u32 {
        self.counters.global_sectors += 1;
        self.counters.dependent_reads += 1;
        cell.load(Ordering::Relaxed)
    }

    /// Global `atomicAdd`; returns the old value.
    #[inline]
    pub fn atomic_add(&mut self, cell: &AtomicU32, delta: u32) -> u32 {
        self.counters.global_atomics += 1;
        self.raw_atomic_add(cell, delta)
    }

    /// Global `atomicSub`; returns the old value.
    #[inline]
    pub fn atomic_sub(&mut self, cell: &AtomicU32, delta: u32) -> u32 {
        self.counters.global_atomics += 1;
        self.raw_atomic_sub(cell, delta)
    }

    /// *Uncharged* global `atomicAdd` for bulk-charged fast paths: the
    /// caller must add the matching `global_atomics` count itself (one `+=`
    /// per warp/chunk instead of per lane). Exclusive-execution aware.
    #[inline]
    pub fn raw_atomic_add(&self, cell: &AtomicU32, delta: u32) -> u32 {
        if self.exclusive {
            let old = cell.load(Ordering::Relaxed);
            cell.store(old.wrapping_add(delta), Ordering::Relaxed);
            old
        } else {
            cell.fetch_add(delta, Ordering::AcqRel)
        }
    }

    /// *Uncharged* global `atomicSub`; see [`BlockCtx::raw_atomic_add`].
    #[inline]
    pub fn raw_atomic_sub(&self, cell: &AtomicU32, delta: u32) -> u32 {
        if self.exclusive {
            let old = cell.load(Ordering::Relaxed);
            cell.store(old.wrapping_sub(delta), Ordering::Relaxed);
            old
        } else {
            cell.fetch_sub(delta, Ordering::AcqRel)
        }
    }

    /// *Uncharged* shared-memory read for bulk-charged fast paths (caller
    /// accounts `shared_accesses` / `shared_atomics` in bulk).
    #[inline]
    pub fn sh_peek(&self, arr: SharedArray, idx: usize) -> u32 {
        debug_assert!(idx < arr.len);
        self.shared[arr.start + idx]
    }

    /// *Uncharged* shared-memory write; see [`BlockCtx::sh_peek`].
    #[inline]
    pub fn sh_poke(&mut self, arr: SharedArray, idx: usize, value: u32) {
        debug_assert!(idx < arr.len);
        self.shared[arr.start + idx] = value;
    }

    // ---- charging ------------------------------------------------------

    /// Charges `n` warp instructions.
    #[inline]
    pub fn charge_instr(&mut self, n: u64) {
        self.counters.warp_instrs += n;
    }

    /// Charges `n` 128-byte global transactions (use with direct slice
    /// access when a warp touches a contiguous run — see
    /// [`BlockCtx::coalesced_tx`]).
    #[inline]
    pub fn charge_tx(&mut self, n: u64) {
        self.counters.global_tx += n;
    }

    /// Charges `n` random 32-byte sector accesses (use with direct slice
    /// access for scattered per-lane reads/writes).
    #[inline]
    pub fn charge_sector(&mut self, n: u64) {
        self.counters.global_sectors += n;
    }

    /// Transactions needed for a coalesced warp access of `words` 32-bit
    /// words: `ceil(4·words / 128)`.
    #[inline]
    pub fn coalesced_tx(words: u64) -> u64 {
        (words * 4).div_ceil(128)
    }

    /// `__syncthreads()` — block barrier (charged).
    #[inline]
    pub fn sync_threads(&mut self) {
        self.counters.barriers += 1;
    }

    /// `__syncwarp()` — warp barrier (charged as one instruction).
    #[inline]
    pub fn sync_warp(&mut self) {
        self.counters.warp_instrs += 1;
    }

    // ---- warp-granularity memory ops (fast path) -----------------------

    /// Classifies up to one warp's worth of word addresses into distinct
    /// 32-byte sectors (8 words each) in a single pass, returning the
    /// sector count a coalescer would issue. Insertion-dedups into a stack
    /// array — no allocation, O(lanes·distinct) with distinct ≤ 32.
    pub fn warp_sector_count(addrs: &[usize]) -> u64 {
        debug_assert!(addrs.len() <= 32);
        let mut sectors = [0usize; 32];
        let mut n = 0usize;
        'outer: for &a in addrs {
            let s = a >> 3; // 8 × 4-byte words per 32-byte sector
            for &seen in &sectors[..n] {
                if seen == s {
                    continue 'outer;
                }
            }
            sectors[n] = s;
            n += 1;
        }
        n as u64
    }

    /// Charges one warp memory access over `lanes` addresses under the
    /// given [`Coalescing`] policy. `addrs` is only inspected for
    /// [`Coalescing::Classified`]; the other policies need just the count.
    #[inline]
    fn charge_warp_access(&mut self, mode: Coalescing, lanes: usize, addrs: &[usize]) {
        match mode {
            Coalescing::Scattered => self.counters.global_sectors += lanes as u64,
            Coalescing::Classified => {
                self.counters.global_sectors += Self::warp_sector_count(addrs)
            }
            Coalescing::Contiguous => self.counters.global_tx += Self::coalesced_tx(lanes as u64),
        }
    }

    /// Warp-granularity gather: loads `buf[idxs[i]]` into `out[i]` for every
    /// lane, classifying the coalescing **once per warp** and charging the
    /// counters in one bulk update instead of per lane. With
    /// [`Coalescing::Scattered`] this is bit-identical in cost to a loop of
    /// [`BlockCtx::gread`].
    #[inline]
    pub fn gather(&mut self, buf: &[AtomicU32], idxs: &[usize], out: &mut [u32], mode: Coalescing) {
        debug_assert!(idxs.len() <= 32 && out.len() >= idxs.len());
        self.charge_warp_access(mode, idxs.len(), idxs);
        for (o, &i) in out.iter_mut().zip(idxs) {
            *o = buf[i].load(Ordering::Relaxed);
        }
    }

    /// Warp-granularity scatter: stores `vals[i]` to `buf[idxs[i]]`,
    /// classified and charged once per warp (see [`BlockCtx::gather`]).
    #[inline]
    pub fn scatter(&mut self, buf: &[AtomicU32], idxs: &[usize], vals: &[u32], mode: Coalescing) {
        debug_assert!(idxs.len() <= 32 && vals.len() >= idxs.len());
        self.charge_warp_access(mode, idxs.len(), idxs);
        for (&v, &i) in vals.iter().zip(idxs) {
            buf[i].store(v, Ordering::Relaxed);
        }
    }

    /// Warp-granularity `atomicAdd`: one RMW per lane on `buf[idxs[i]]`,
    /// charged as `idxs.len()` global atomics in a single bulk update —
    /// identical totals to a per-lane [`BlockCtx::atomic_add`] loop.
    #[inline]
    pub fn atomic_add_lanes(&mut self, buf: &[AtomicU32], idxs: &[usize], delta: u32) {
        debug_assert!(idxs.len() <= 32);
        self.counters.global_atomics += idxs.len() as u64;
        for &i in idxs {
            self.raw_atomic_add(&buf[i], delta);
        }
    }
}

/// Scratch buffers reused across stepped and fused launches — the wave
/// order, per-block liveness, retired-counter slots, and carried
/// shared-memory backings — so steady-state peel rounds allocate nothing
/// per dispatch (the hostprof `arena`/`dispatch` buckets' remaining
/// per-launch allocations).
#[derive(Default)]
struct StepScratch {
    order: Vec<usize>,
    alive: Vec<bool>,
    done: Vec<Option<Counters>>,
    /// Per-block shared-memory backings carried across the fused launch's
    /// step boundary (scan → loop) and across rounds, indexed by block.
    carry: Vec<Vec<u32>>,
}

impl StepScratch {
    /// Resets the wave-scheduling vectors for a `blocks`-block launch.
    fn reset(&mut self, blocks: usize) {
        self.order.clear();
        self.order.extend(0..blocks);
        self.alive.clear();
        self.alive.resize(blocks, true);
        self.done.clear();
        self.done.resize(blocks, None);
    }
}

/// The simulated GPU program context: device + cost model + simulated clock.
pub struct GpuContext {
    /// Device memory.
    pub device: Device,
    /// Cost constants.
    pub cost: CostParams,
    shared_capacity_bytes: u64,
    time_s: f64,
    limit_s: Option<f64>,
    launches: Vec<LaunchRecord>,
    transfers: Vec<TransferRecord>,
    counter_samples: Vec<CounterSample>,
    h2d_bytes: u64,
    d2h_bytes: u64,
    schedule_seed: u64,
    phase: &'static str,
    profile_blocks: bool,
    /// Workload dimensions (|V|, arc count) declared by the algorithm via
    /// [`GpuContext::set_workload_dims`]; zero until declared. Pure
    /// observability — feeds [`MemStats`](crate::MemStats) extrapolation.
    pub(crate) workload_vertices: u64,
    pub(crate) workload_arcs: u64,
    /// Arena of recycled shared-memory backing vectors: a retiring block's
    /// `Vec<u32>` goes back here and the next launch's blocks pop it, so
    /// steady-state launches allocate nothing for shared memory.
    shared_pool: Mutex<Vec<Vec<u32>>>,
    /// Recycled per-launch `Vec<Counters>` scratch (reused whenever
    /// per-block profiling is off and the vector isn't retained).
    counters_scratch: Vec<Counters>,
    /// Recycled stepped/fused launch scratch (wave order, liveness,
    /// retired counters, carried shared backings).
    step_scratch: StepScratch,
    /// Optional host-side wall-clock profiler ([`crate::hostprof`]).
    /// Observes only: attaching one changes no simulated quantity.
    hostprof: Option<HostProfiler>,
    /// Host allocator call count at the last phase transition, for
    /// per-phase allocation attribution.
    host_alloc_mark: u64,
}

impl GpuContext {
    /// A context with the given cost model and device capacity in bytes.
    /// Shared memory defaults to the P100's 64 KiB per block.
    pub fn new(cost: CostParams, device_capacity_bytes: u64) -> Self {
        GpuContext {
            device: Device::new(device_capacity_bytes),
            cost,
            shared_capacity_bytes: 64 * 1024,
            time_s: 0.0,
            limit_s: None,
            launches: Vec::new(),
            transfers: Vec::new(),
            counter_samples: Vec::new(),
            h2d_bytes: 0,
            d2h_bytes: 0,
            schedule_seed: 0,
            phase: "main",
            profile_blocks: false,
            workload_vertices: 0,
            workload_arcs: 0,
            shared_pool: Mutex::new(Vec::new()),
            counters_scratch: Vec::new(),
            step_scratch: StepScratch::default(),
            hostprof: hostprof::from_env(),
            host_alloc_mark: hostprof::host_alloc_counts().0,
        }
    }

    /// Attaches (or detaches) a host-side wall-clock profiler. Profiling
    /// observes, never charges: no counter, simulated timestamp, or golden
    /// byte depends on whether one is attached. Contexts built while
    /// `KCORE_HOSTPROF=1` is set come with a wall-clock profiler already
    /// attached.
    pub fn set_host_profiler(&mut self, p: Option<HostProfiler>) {
        self.hostprof = p;
        self.host_alloc_mark = hostprof::host_alloc_counts().0;
    }

    /// The attached host profiler, if any.
    pub fn host_profiler(&self) -> Option<&HostProfiler> {
        self.hostprof.as_ref()
    }

    /// Captures the attached profiler's merged [`HostProfile`] (flushing
    /// the current phase's allocation delta first). `None` when host
    /// profiling is off.
    pub fn host_profile(&mut self, label: &str) -> Option<HostProfile> {
        let p = self.hostprof.as_ref()?;
        let (allocs, _) = hostprof::host_alloc_counts();
        p.note_allocs(self.phase, allocs.saturating_sub(self.host_alloc_mark));
        self.host_alloc_mark = allocs;
        Some(p.profile(label))
    }

    /// Pops a recycled shared-memory backing vector (or a fresh one).
    fn pooled_shared(&self) -> Vec<u32> {
        self.shared_pool
            .lock()
            .map(|mut p| p.pop().unwrap_or_default())
            .unwrap_or_default()
    }

    /// Returns a block's shared-memory backing to the arena.
    fn recycle_shared(&self, mut v: Vec<u32>) {
        v.clear();
        if let Ok(mut p) = self.shared_pool.lock() {
            if p.len() < 256 {
                p.push(v);
            }
        }
    }

    /// Sets the algorithm phase stamped onto subsequent launch and transfer
    /// records (e.g. `"Scan"`, `"Loop"`); returns the previous phase so
    /// callers can restore it. Phases group launches in profiling traces
    /// ([`crate::trace::Trace`]).
    pub fn set_phase(&mut self, phase: &'static str) -> &'static str {
        if let Some(p) = &self.hostprof {
            let (allocs, _) = hostprof::host_alloc_counts();
            p.note_allocs(self.phase, allocs.saturating_sub(self.host_alloc_mark));
            self.host_alloc_mark = allocs;
        }
        self.device.note_phase(phase);
        std::mem::replace(&mut self.phase, phase)
    }

    /// The currently active phase.
    pub fn phase(&self) -> &'static str {
        self.phase
    }

    /// Enables/disables per-block counter recording: when on, each
    /// [`LaunchRecord`] keeps every block's counter delta (`block_counters`)
    /// instead of only their sum. Off by default — per-block vectors cost
    /// memory proportional to `blocks × launches`.
    pub fn set_block_profiling(&mut self, on: bool) {
        self.profile_blocks = on;
    }

    /// Overrides per-block shared memory capacity.
    pub fn set_shared_capacity(&mut self, bytes: u64) {
        self.shared_capacity_bytes = bytes;
    }

    /// Sets a simulated-time budget; once exceeded, further launches and
    /// transfers fail with [`SimError::TimeLimit`].
    pub fn set_time_limit_ms(&mut self, ms: f64) {
        self.limit_s = Some(ms / 1e3);
    }

    fn check_limit(&self) -> Result<(), SimError> {
        if let Some(limit) = self.limit_s {
            if self.time_s > limit {
                return Err(SimError::TimeLimit {
                    limit_ms: limit * 1e3,
                });
            }
        }
        Ok(())
    }

    /// Allocates a device buffer without a host transfer.
    pub fn alloc(&mut self, name: &str, len: usize) -> Result<BufferId, SimError> {
        let mut lap = Lap::start(self.hostprof.clone(), self.phase);
        let id = self.device.alloc(name, len)?;
        lap.lap(HostBucket::ArenaAlloc);
        Ok(id)
    }

    /// [`GpuContext::alloc`] with an explicit [`SizeClass`] tag, so the
    /// allocation extrapolates correctly in
    /// [`MemStats::extrapolate`](crate::MemStats::extrapolate). Identical
    /// cost and accounting to `alloc` — the tag is pure observability.
    pub fn alloc_tagged(
        &mut self,
        name: &str,
        len: usize,
        class: SizeClass,
    ) -> Result<BufferId, SimError> {
        let mut lap = Lap::start(self.hostprof.clone(), self.phase);
        let id = self.device.alloc_with(name, len, 4, class)?;
        lap.lap(HostBucket::ArenaAlloc);
        Ok(id)
    }

    /// Declares the workload dimensions (vertex count, arc count) this
    /// context is processing, for capacity extrapolation. Observability
    /// only: charges nothing, perturbs nothing.
    pub fn set_workload_dims(&mut self, vertices: u64, arcs: u64) {
        self.workload_vertices = vertices;
        self.workload_arcs = arcs;
    }

    /// Keeps the device ledger's stamp (logical launch/transfer sequence
    /// number + sim-clock ms) current; called after every event that
    /// advances either.
    fn sync_device_stamp(&mut self) {
        let seq = (self.launches.len() + self.transfers.len()) as u64;
        self.device.set_stamp(seq, self.time_s * 1e3);
    }

    /// Records one host↔device copy: advances the clock and appends a
    /// [`TransferRecord`] stamped with the active phase.
    fn record_transfer(&mut self, dir: TransferDir, bytes: u64) {
        let time_s = self.cost.pcie_latency_s + bytes as f64 / self.cost.pcie_bandwidth;
        match dir {
            TransferDir::HostToDevice => self.h2d_bytes += bytes,
            TransferDir::DeviceToHost => self.d2h_bytes += bytes,
        }
        let start_s = self.time_s;
        self.time_s += time_s;
        self.transfers.push(TransferRecord {
            phase: self.phase,
            start_s,
            dir,
            bytes,
            time_s,
        });
        self.sync_device_stamp();
    }

    /// Samples a named observability counter track at the current sim-clock
    /// timestamp (e.g. the per-round frontier size Algorithm 1 reads back).
    /// Sampling charges nothing — it does not advance the clock or touch any
    /// kernel counter, so enabling it cannot perturb a golden trace's
    /// fingerprint. Samples surface as Perfetto counter tracks
    /// ([`crate::perfetto`]).
    pub fn sample_counter(&mut self, track: &'static str, value: f64) {
        self.counter_samples.push(CounterSample {
            track,
            phase: self.phase,
            time_s: self.time_s,
            value,
        });
    }

    /// Counter-track samples recorded so far, in sampling order.
    pub fn counter_samples(&self) -> &[CounterSample] {
        &self.counter_samples
    }

    /// `cudaMalloc` + `cudaMemcpy` host→device, charged at PCIe bandwidth.
    pub fn htod(&mut self, name: &str, data: &[u32]) -> Result<BufferId, SimError> {
        self.htod_tagged(name, data, SizeClass::Fixed)
    }

    /// [`GpuContext::htod`] with an explicit [`SizeClass`] tag (see
    /// [`GpuContext::alloc_tagged`]). Identical cost and accounting.
    pub fn htod_tagged(
        &mut self,
        name: &str,
        data: &[u32],
        class: SizeClass,
    ) -> Result<BufferId, SimError> {
        self.check_limit()?;
        let mut lap = Lap::start(self.hostprof.clone(), self.phase);
        let id = self.device.alloc_with(name, data.len(), 4, class)?;
        self.device.write_slice(id, data);
        self.record_transfer(TransferDir::HostToDevice, data.len() as u64 * 4);
        lap.lap(HostBucket::Transfer);
        Ok(id)
    }

    /// `cudaMemcpy` host→device into an **existing** allocation starting at
    /// element `offset` — the staging pattern of the dynamic maintenance
    /// engine, which reuses one persistent batch buffer across batches
    /// instead of allocating per batch. Charged exactly like
    /// [`GpuContext::htod`]; panics (host-program bug, like any
    /// out-of-bounds `cudaMemcpy`) if the copy overruns the buffer.
    pub fn htod_into(&mut self, id: BufferId, offset: usize, data: &[u32]) -> Result<(), SimError> {
        self.check_limit()?;
        let mut lap = Lap::start(self.hostprof.clone(), self.phase);
        let buf = self.device.buffer(id);
        assert!(
            offset + data.len() <= buf.len(),
            "htod_into overruns buffer {} ({} + {} > {})",
            self.device.buffer_name(id),
            offset,
            data.len(),
            buf.len()
        );
        // See `Device::write_slice`: quiescent during transfers, so a bulk
        // copy is equivalent to the per-word relaxed stores.
        unsafe {
            std::ptr::copy_nonoverlapping(
                data.as_ptr(),
                buf.as_ptr().add(offset) as *mut u32,
                data.len(),
            );
        }
        self.record_transfer(TransferDir::HostToDevice, data.len() as u64 * 4);
        lap.lap(HostBucket::Transfer);
        Ok(())
    }

    /// `cudaMemcpy` device→host of elements `lo..hi` only, charged for the
    /// bytes actually moved — the partial readback the dynamic engine uses
    /// to fetch just a candidate list's prefix.
    pub fn dtoh_range(&mut self, id: BufferId, lo: usize, hi: usize) -> Vec<u32> {
        let mut lap = Lap::start(self.hostprof.clone(), self.phase);
        let buf = self.device.buffer(id);
        assert!(
            lo <= hi && hi <= buf.len(),
            "dtoh_range {lo}..{hi} out of bounds for buffer {} (len {})",
            self.device.buffer_name(id),
            buf.len()
        );
        // See `Device::write_slice`: quiescent during transfers, so a bulk
        // read is equivalent to the per-word relaxed loads.
        let out: Vec<u32> =
            unsafe { std::slice::from_raw_parts(buf.as_ptr().add(lo) as *const u32, hi - lo) }
                .to_vec();
        self.record_transfer(TransferDir::DeviceToHost, (hi - lo) as u64 * 4);
        lap.lap(HostBucket::Transfer);
        out
    }

    /// `cudaMemcpy` device→host, charged at PCIe latency + bandwidth (a
    /// synchronizing copy — Algorithm 1 pays this every round for
    /// `gpu_count`).
    pub fn dtoh(&mut self, id: BufferId) -> Vec<u32> {
        let mut lap = Lap::start(self.hostprof.clone(), self.phase);
        let out = self.device.read_vec(id);
        self.record_transfer(TransferDir::DeviceToHost, out.len() as u64 * 4);
        lap.lap(HostBucket::Transfer);
        out
    }

    /// Reads a single device word back to the host (the `gpu_count`
    /// pattern), charged as one synchronizing D2H copy.
    pub fn dtoh_word(&mut self, id: BufferId, idx: usize) -> u32 {
        let mut lap = Lap::start(self.hostprof.clone(), self.phase);
        let v = self.device.buffer(id)[idx].load(Ordering::Relaxed);
        self.record_transfer(TransferDir::DeviceToHost, 4);
        lap.lap(HostBucket::Transfer);
        v
    }

    /// Launches a kernel: runs `kernel` once per block (in parallel),
    /// aggregates the counters, and advances the simulated clock.
    ///
    /// When the effective rayon fan-out is one thread (or the grid has one
    /// block) the blocks run inline on this thread with recycled scratch —
    /// no per-launch allocation, no parallel-map machinery, and
    /// exclusive-execution atomics. The order-preserving parallel path and
    /// the serial path produce bit-identical counters for any kernel that
    /// is deterministic under block concurrency (the golden pool-size tests
    /// pin this).
    pub fn launch<F>(
        &mut self,
        name: &'static str,
        cfg: LaunchConfig,
        kernel: F,
    ) -> Result<(), SimError>
    where
        F: Fn(&mut BlockCtx<'_>) -> Result<(), KernelError> + Sync,
    {
        self.check_limit()?;
        assert!(
            cfg.threads_per_block.is_multiple_of(32),
            "BLK_DIM must be a multiple of 32"
        );
        let mut lap = Lap::start(self.hostprof.clone(), self.phase);
        let device = &self.device;
        let shared_cap = self.shared_capacity_bytes;
        let mut per_block = std::mem::take(&mut self.counters_scratch);
        per_block.clear();
        lap.lap(HostBucket::ArenaAlloc);
        if rayon::current_num_threads() <= 1 || cfg.blocks == 1 {
            for b in 0..cfg.blocks {
                let mut blk =
                    BlockCtx::with_shared(device, b, cfg, shared_cap, self.pooled_shared());
                blk.exclusive = true;
                let r = kernel(&mut blk);
                self.recycle_shared(std::mem::take(&mut blk.shared));
                per_block.push(blk.counters);
                if let Err(e) = r {
                    self.counters_scratch = per_block;
                    self.counters_scratch.clear();
                    return Err(SimError::Kernel(e));
                }
            }
        } else {
            if let Some(p) = lap.profiler() {
                let pool = rayon::current_num_threads() as u32;
                p.sample_util(self.phase, cfg.blocks.min(pool), pool);
            }
            let pool = &self.shared_pool;
            let results: Vec<Result<Counters, KernelError>> = (0..cfg.blocks)
                .into_par_iter()
                .map(|b| {
                    let shared = pool
                        .lock()
                        .map(|mut p| p.pop().unwrap_or_default())
                        .unwrap_or_default();
                    let mut blk = BlockCtx::with_shared(device, b, cfg, shared_cap, shared);
                    let r = kernel(&mut blk);
                    let mut v = std::mem::take(&mut blk.shared);
                    v.clear();
                    if let Ok(mut p) = pool.lock() {
                        if p.len() < 256 {
                            p.push(v);
                        }
                    }
                    r.map(|()| blk.counters)
                })
                .collect();
            for r in results {
                match r {
                    Ok(c) => per_block.push(c),
                    Err(e) => {
                        self.counters_scratch = per_block;
                        self.counters_scratch.clear();
                        return Err(SimError::Kernel(e));
                    }
                }
            }
        }
        lap.lap(HostBucket::Dispatch);
        self.finish_launch(name, cfg, per_block)
    }

    /// Shared launch epilogue: prices the per-block counters with the
    /// roofline model, advances the clock, and appends a [`LaunchRecord`]
    /// stamped with the active phase.
    fn finish_launch(
        &mut self,
        name: &'static str,
        cfg: LaunchConfig,
        mut per_block: Vec<Counters>,
    ) -> Result<(), SimError> {
        let mut lap = Lap::start(self.hostprof.clone(), self.phase);
        let block_cycles: Vec<f64> = per_block
            .iter()
            .map(|c| self.cost.block_cycles(c))
            .collect();
        // flat-combining SIMD reduction — bit-identical to a serial merge
        let total = Counters::flat_sum(&per_block);
        let traffic = self.cost.traffic_bytes(&total);
        let roofline = self.cost.roofline(&block_cycles, traffic);
        let t = roofline.total_s();
        let start_s = self.time_s;
        self.time_s += t;
        let max_block_cycles = block_cycles.iter().copied().fold(0.0, f64::max);
        let sum_block_cycles = block_cycles.iter().sum();
        let block_counters = if self.profile_blocks {
            Some(per_block)
        } else {
            // arena: hand the per-launch counters vector back for reuse
            per_block.clear();
            self.counters_scratch = per_block;
            None
        };
        self.launches.push(LaunchRecord {
            name,
            phase: self.phase,
            config: cfg,
            start_s,
            time_s: t,
            counters: total,
            roofline,
            max_block_cycles,
            sum_block_cycles,
            block_cycles,
            block_counters,
        });
        lap.lap(HostBucket::Dispatch);
        if let Some(p) = lap.profiler() {
            p.note_launch(self.phase);
        }
        self.sync_device_stamp();
        self.check_limit()
    }

    /// Launches a kernel whose blocks interact through global memory *while
    /// running* (e.g. work-stealing-style frontier dynamics): blocks advance
    /// in global lockstep **waves**, one `step` per wave, so cross-block
    /// interleaving matches concurrent hardware execution instead of
    /// depending on host scheduling. (A plain [`GpuContext::launch`] runs
    /// each block to completion, which would let early blocks consume work
    /// that concurrent hardware blocks would have shared.)
    ///
    /// `init` builds each block's persistent state; `step` performs one
    /// barrier-delimited super-step and returns `false` when the block
    /// retires. Within a wave, blocks step in a deterministic shuffled order
    /// derived from [`GpuContext::set_schedule_seed`] — re-running with a
    /// different seed models hardware scheduling nondeterminism (the
    /// paper's observed up-to-30% run-to-run variance).
    pub fn launch_stepped<S, FI, FS>(
        &mut self,
        name: &'static str,
        cfg: LaunchConfig,
        init: FI,
        step: FS,
    ) -> Result<(), SimError>
    where
        FI: Fn(&mut BlockCtx<'_>) -> Result<S, KernelError>,
        FS: Fn(&mut BlockCtx<'_>, &mut S) -> Result<bool, KernelError>,
    {
        self.check_limit()?;
        assert!(
            cfg.threads_per_block.is_multiple_of(32),
            "BLK_DIM must be a multiple of 32"
        );
        let mut lap = Lap::start(self.hostprof.clone(), self.phase);
        let device = &self.device;
        let shared_cap = self.shared_capacity_bytes;

        let mut blocks: Vec<(BlockCtx<'_>, S, bool)> = Vec::with_capacity(cfg.blocks as usize);
        for b in 0..cfg.blocks {
            let mut blk = BlockCtx::with_shared(device, b, cfg, shared_cap, self.pooled_shared());
            // the wave loop below runs on one host thread: no block ever
            // executes concurrently with another, so atomics can be cheap
            blk.exclusive = true;
            let state = init(&mut blk).map_err(SimError::Kernel)?;
            blocks.push((blk, state, true));
        }
        lap.lap(HostBucket::Dispatch);
        // xorshift-based deterministic wave shuffle
        let mut rng = self.schedule_seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut order: Vec<usize> = (0..blocks.len()).collect();
        let mut live = blocks.len();
        while live > 0 {
            // Fisher–Yates with the xorshift stream
            for i in (1..order.len()).rev() {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let j = (rng % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            for &i in &order {
                let (blk, state, alive) = &mut blocks[i];
                if !*alive {
                    continue;
                }
                match step(blk, state) {
                    Ok(true) => {}
                    Ok(false) => {
                        *alive = false;
                        live -= 1;
                    }
                    Err(e) => return Err(SimError::Kernel(e)),
                }
            }
        }
        // the reference engine's wave loop is one serial lane end to end
        lap.lap(HostBucket::CommitSerial);

        let mut per_block = Vec::with_capacity(blocks.len());
        for (blk, _, _) in &mut blocks {
            per_block.push(blk.counters);
            self.recycle_shared(std::mem::take(&mut blk.shared));
        }
        drop(blocks); // release the device borrow before the &mut epilogue
        lap.lap(HostBucket::ArenaAlloc);
        self.finish_launch(name, cfg, per_block)
    }

    /// Two-phase variant of [`GpuContext::launch_stepped`] that can run each
    /// wave's live blocks on the rayon pool **without changing a single
    /// observable bit** relative to the serial wave loop.
    ///
    /// Each wave is split into:
    ///
    /// * **plan** — runs once per live block, *in parallel* when the rayon
    ///   fan-out allows. The determinism contract (DESIGN.md "Fast-path
    ///   cost accounting"): a plan may read device buffers that are
    ///   immutable for the whole launch, read/write its own block's shared
    ///   memory and state, and charge counters — it must **not** read or
    ///   write any device memory that any block mutates during the launch.
    /// * **commit** — runs serially in the exact xorshift wave order,
    ///   performing every mutable-device-memory access (with
    ///   exclusive-execution atomics, since the commit lane is serial).
    ///
    /// Because every access to mutable device state happens in commit, in
    /// wave order, the interleaving — and therefore every counter, golden
    /// fingerprint, and result — is identical to running
    /// `launch_stepped(init, |blk, st| { let p = plan(blk, st)?;
    /// commit(blk, st, p) })`. With a fan-out of one the phases are fused
    /// exactly like that, with zero scheduling overhead.
    pub fn launch_stepped_phased<S, P, FI, FP, FC>(
        &mut self,
        name: &'static str,
        cfg: LaunchConfig,
        init: FI,
        plan: FP,
        commit: FC,
    ) -> Result<(), SimError>
    where
        S: Send,
        P: Send,
        FI: Fn(&mut BlockCtx<'_>) -> Result<S, KernelError>,
        FP: Fn(&mut BlockCtx<'_>, &mut S) -> Result<P, KernelError> + Sync,
        FC: Fn(&mut BlockCtx<'_>, &mut S, P) -> Result<bool, KernelError>,
    {
        self.check_limit()?;
        assert!(
            cfg.threads_per_block.is_multiple_of(32),
            "BLK_DIM must be a multiple of 32"
        );
        let mut lap = Lap::start(self.hostprof.clone(), self.phase);
        let mut scratch = std::mem::take(&mut self.step_scratch);
        scratch.reset(cfg.blocks as usize);
        let StepScratch {
            ref mut order,
            ref mut alive,
            ref mut done,
            ..
        } = scratch;
        let device = &self.device;
        let shared_cap = self.shared_capacity_bytes;
        let parallel = rayon::current_num_threads() > 1;

        let mut slots: Vec<Option<(BlockCtx<'_>, S)>> = Vec::with_capacity(cfg.blocks as usize);
        for b in 0..cfg.blocks {
            let mut blk = BlockCtx::with_shared(device, b, cfg, shared_cap, self.pooled_shared());
            blk.exclusive = true;
            let state = init(&mut blk).map_err(SimError::Kernel)?;
            slots.push(Some((blk, state)));
        }
        lap.lap(HostBucket::Dispatch);
        // identical xorshift wave shuffle to `launch_stepped`
        let mut rng = self.schedule_seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut live = slots.len();
        while live > 0 {
            for i in (1..order.len()).rev() {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let j = (rng % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            if parallel && live > 1 {
                // Phase 1: pull the wave's live blocks out in wave order and
                // plan them on the pool (order-preserving map).
                let wave: Vec<(usize, BlockCtx<'_>, S)> = order
                    .iter()
                    .filter(|&&i| alive[i])
                    .map(|&i| {
                        let (blk, st) = slots[i].take().expect("live block present");
                        (i, blk, st)
                    })
                    .collect();
                // shuffle + wave extraction is scheduler orchestration
                lap.lap(HostBucket::SchedulerWait);
                if let Some(p) = lap.profiler() {
                    let pool = rayon::current_num_threads() as u32;
                    p.sample_util(self.phase, (live as u32).min(pool), pool);
                }
                let planned: Vec<(usize, BlockCtx<'_>, S, Result<P, KernelError>)> = wave
                    .into_par_iter()
                    .map(|(i, mut blk, mut st)| {
                        blk.exclusive = false; // plans genuinely run concurrently
                        let p = plan(&mut blk, &mut st);
                        (i, blk, st, p)
                    })
                    .collect();
                lap.lap(HostBucket::PlanParallel);
                // Phase 2: commit serially in the same wave order.
                for (i, mut blk, mut st, p) in planned {
                    blk.exclusive = true;
                    match p.and_then(|p| commit(&mut blk, &mut st, p)) {
                        Ok(true) => {
                            slots[i] = Some((blk, st));
                        }
                        Ok(false) => {
                            alive[i] = false;
                            live -= 1;
                            done[i] = Some(blk.counters);
                            self.recycle_shared(std::mem::take(&mut blk.shared));
                        }
                        Err(e) => return Err(SimError::Kernel(e)),
                    }
                }
                lap.lap(HostBucket::CommitSerial);
            } else {
                // Serial specialization: fuse plan+commit per block, exactly
                // the `launch_stepped` wave loop.
                for &i in order.iter() {
                    if !alive[i] {
                        continue;
                    }
                    let (blk, st) = slots[i].as_mut().expect("live block present");
                    match plan(blk, st).and_then(|p| commit(blk, st, p)) {
                        Ok(true) => {}
                        Ok(false) => {
                            alive[i] = false;
                            live -= 1;
                            let (mut blk, _) = slots[i].take().expect("live block present");
                            done[i] = Some(blk.counters);
                            self.recycle_shared(std::mem::take(&mut blk.shared));
                        }
                        Err(e) => return Err(SimError::Kernel(e)),
                    }
                }
                // the fused wave (shuffle + plan + commit) is one serial lane
                lap.lap(HostBucket::CommitSerial);
            }
        }
        drop(slots); // release the device borrow before the &mut epilogue
        let mut per_block = std::mem::take(&mut self.counters_scratch);
        per_block.clear();
        per_block.extend(done.drain(..).map(|c| c.expect("all blocks retired")));
        self.step_scratch = scratch;
        lap.lap(HostBucket::ArenaAlloc);
        self.finish_launch(name, cfg, per_block)
    }

    /// Fused persistent-style round launch: runs a one-shot `scan` kernel
    /// and a stepped `loop` (init/plan/commit, as in
    /// [`GpuContext::launch_stepped_phased`]) as the two steps of a single
    /// engine entry, so per-round dispatch, arena acquisition, and
    /// scheduler setup are paid once and block scratch (shared-memory
    /// backings, wave vectors) is carried across the step boundary instead
    /// of round-tripping through the shared-pool mutex.
    ///
    /// **Observability contract** (DESIGN.md "Fused execution & the
    /// single-plan contract"): the fused launch emits exactly what the
    /// two-launch sequence
    ///
    /// ```text
    /// set_phase(scan_phase); launch(scan_name, ..);
    /// set_phase(loop_phase); launch_stepped_phased(loop_name, ..);
    /// ```
    ///
    /// would — two [`LaunchRecord`]s with the same names, phases, counters,
    /// timestamps, and roofline splits, the same device phase notes and
    /// ledger stamps, and the same error values — at any rayon pool size.
    /// The caller sets the scan phase before calling; the engine replays
    /// the loop-phase transition internally between the steps. Host-profile
    /// time the two-launch path booked as the loop launch's `dispatch`
    /// (slot setup + init) is booked under [`HostBucket::FusedStep`], the
    /// carried-state handoff.
    #[allow(clippy::too_many_arguments)]
    pub fn launch_fused<S, P, FK, FI, FP, FC>(
        &mut self,
        scan_name: &'static str,
        cfg: LaunchConfig,
        scan_kernel: FK,
        loop_phase: &'static str,
        loop_name: &'static str,
        init: FI,
        plan: FP,
        commit: FC,
    ) -> Result<(), SimError>
    where
        S: Send,
        P: Send,
        FK: Fn(&mut BlockCtx<'_>) -> Result<(), KernelError> + Sync,
        FI: Fn(&mut BlockCtx<'_>) -> Result<S, KernelError>,
        FP: Fn(&mut BlockCtx<'_>, &mut S) -> Result<P, KernelError> + Sync,
        FC: Fn(&mut BlockCtx<'_>, &mut S, P) -> Result<bool, KernelError>,
    {
        self.check_limit()?;
        assert!(
            cfg.threads_per_block.is_multiple_of(32),
            "BLK_DIM must be a multiple of 32"
        );
        let n = cfg.blocks as usize;

        // ---- step 1: scan (the block schedule of `launch`) --------------
        let mut lap = Lap::start(self.hostprof.clone(), self.phase);
        // while the launch is in flight, ledger entries label with the
        // active step's phase, not the sticky context label
        self.device.set_launch_phase(Some(self.phase));
        let mut scratch = std::mem::take(&mut self.step_scratch);
        scratch.reset(n);
        // top up the carried backings to one per block (first round only —
        // afterwards the loop step leaves exactly one behind per block)
        while scratch.carry.len() < n {
            scratch.carry.push(self.pooled_shared());
        }
        scratch.carry.truncate(n);
        let mut per_block = std::mem::take(&mut self.counters_scratch);
        per_block.clear();
        lap.lap(HostBucket::ArenaAlloc);
        let scan_err: Option<KernelError> = {
            let device = &self.device;
            let shared_cap = self.shared_capacity_bytes;
            let mut err = None;
            if rayon::current_num_threads() <= 1 || cfg.blocks == 1 {
                for b in 0..cfg.blocks {
                    let shared = std::mem::take(&mut scratch.carry[b as usize]);
                    let mut blk = BlockCtx::with_shared(device, b, cfg, shared_cap, shared);
                    blk.exclusive = true;
                    let r = scan_kernel(&mut blk);
                    scratch.carry[b as usize] = std::mem::take(&mut blk.shared);
                    per_block.push(blk.counters);
                    if let Err(e) = r {
                        err = Some(e);
                        break;
                    }
                }
            } else {
                if let Some(p) = lap.profiler() {
                    let pool = rayon::current_num_threads() as u32;
                    p.sample_util(self.phase, cfg.blocks.min(pool), pool);
                }
                let inputs: Vec<(u32, Vec<u32>)> =
                    (0..cfg.blocks).zip(scratch.carry.drain(..)).collect();
                let results: Vec<(Result<(), KernelError>, Counters, Vec<u32>)> = inputs
                    .into_par_iter()
                    .map(|(b, shared)| {
                        let mut blk = BlockCtx::with_shared(device, b, cfg, shared_cap, shared);
                        let r = scan_kernel(&mut blk);
                        (r, blk.counters, std::mem::take(&mut blk.shared))
                    })
                    .collect();
                for (r, c, shared) in results {
                    scratch.carry.push(shared);
                    per_block.push(c);
                    if let (Err(e), None) = (r, &err) {
                        err = Some(e);
                    }
                }
            }
            err
        };
        lap.lap(HostBucket::Dispatch);
        self.device.set_launch_phase(None);
        self.step_scratch = scratch;
        if let Some(e) = scan_err {
            self.counters_scratch = per_block;
            self.counters_scratch.clear();
            return Err(SimError::Kernel(e));
        }
        self.finish_launch(scan_name, cfg, per_block)?;

        // ---- handoff: replay the loop-phase transition ------------------
        self.set_phase(loop_phase);
        self.device.set_launch_phase(Some(loop_phase));
        // (the two-launch path re-checks the time limit when entering the
        // loop launch; time_s is unchanged since finish_launch's trailing
        // check just passed, so the predicate is identical — skip it)

        // ---- step 2: loop (the wave schedule of `launch_stepped_phased`)
        let mut lap = Lap::start(self.hostprof.clone(), self.phase);
        let mut scratch = std::mem::take(&mut self.step_scratch);
        let StepScratch {
            ref mut order,
            ref mut alive,
            ref mut done,
            ref mut carry,
        } = scratch;
        let device = &self.device;
        let shared_cap = self.shared_capacity_bytes;
        let parallel = rayon::current_num_threads() > 1;

        let mut slots: Vec<Option<(BlockCtx<'_>, S)>> = Vec::with_capacity(n);
        for b in 0..cfg.blocks {
            let shared = std::mem::take(&mut carry[b as usize]);
            let mut blk = BlockCtx::with_shared(device, b, cfg, shared_cap, shared);
            blk.exclusive = true;
            let state = init(&mut blk).map_err(SimError::Kernel)?;
            slots.push(Some((blk, state)));
        }
        lap.lap(HostBucket::FusedStep);
        // identical xorshift wave shuffle to `launch_stepped`
        let mut rng = self.schedule_seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut live = slots.len();
        while live > 0 {
            for i in (1..order.len()).rev() {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let j = (rng % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            if parallel && live > 1 {
                let wave: Vec<(usize, BlockCtx<'_>, S)> = order
                    .iter()
                    .filter(|&&i| alive[i])
                    .map(|&i| {
                        let (blk, st) = slots[i].take().expect("live block present");
                        (i, blk, st)
                    })
                    .collect();
                lap.lap(HostBucket::SchedulerWait);
                if let Some(p) = lap.profiler() {
                    let pool = rayon::current_num_threads() as u32;
                    p.sample_util(self.phase, (live as u32).min(pool), pool);
                }
                let planned: Vec<(usize, BlockCtx<'_>, S, Result<P, KernelError>)> = wave
                    .into_par_iter()
                    .map(|(i, mut blk, mut st)| {
                        blk.exclusive = false; // plans genuinely run concurrently
                        let p = plan(&mut blk, &mut st);
                        (i, blk, st, p)
                    })
                    .collect();
                lap.lap(HostBucket::PlanParallel);
                for (i, mut blk, mut st, p) in planned {
                    blk.exclusive = true;
                    match p.and_then(|p| commit(&mut blk, &mut st, p)) {
                        Ok(true) => {
                            slots[i] = Some((blk, st));
                        }
                        Ok(false) => {
                            alive[i] = false;
                            live -= 1;
                            done[i] = Some(blk.counters);
                            carry[i] = std::mem::take(&mut blk.shared);
                        }
                        Err(e) => return Err(SimError::Kernel(e)),
                    }
                }
                lap.lap(HostBucket::CommitSerial);
            } else {
                for &i in order.iter() {
                    if !alive[i] {
                        continue;
                    }
                    let (blk, st) = slots[i].as_mut().expect("live block present");
                    match plan(blk, st).and_then(|p| commit(blk, st, p)) {
                        Ok(true) => {}
                        Ok(false) => {
                            alive[i] = false;
                            live -= 1;
                            let (mut blk, _) = slots[i].take().expect("live block present");
                            done[i] = Some(blk.counters);
                            carry[i] = std::mem::take(&mut blk.shared);
                        }
                        Err(e) => return Err(SimError::Kernel(e)),
                    }
                }
                lap.lap(HostBucket::CommitSerial);
            }
        }
        drop(slots); // release the device borrow before the &mut epilogue
        self.device.set_launch_phase(None);
        let mut per_block = std::mem::take(&mut self.counters_scratch);
        per_block.clear();
        per_block.extend(done.drain(..).map(|c| c.expect("all blocks retired")));
        self.step_scratch = scratch;
        lap.lap(HostBucket::ArenaAlloc);
        self.finish_launch(loop_name, cfg, per_block)
    }

    /// Sets the wave-scheduling seed used by [`GpuContext::launch_stepped`].
    pub fn set_schedule_seed(&mut self, seed: u64) {
        self.schedule_seed = seed;
    }

    /// Adds raw simulated time (framework overheads charged by the
    /// graph-system layers, e.g. host-device synchronization or autotuner
    /// decisions that are not per-block events).
    pub fn add_overhead_s(&mut self, seconds: f64) -> Result<(), SimError> {
        self.time_s += seconds;
        self.sync_device_stamp();
        self.check_limit()
    }

    /// Total simulated time so far, milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.time_s * 1e3
    }

    /// Launch records, in order.
    pub fn launches(&self) -> &[LaunchRecord] {
        &self.launches
    }

    /// Host↔device transfer records, in order.
    pub fn transfers(&self) -> &[TransferRecord] {
        &self.transfers
    }

    /// Rollup of the whole run.
    pub fn report(&self) -> SimReport {
        let counters = Counters::flat_sum_iter(self.launches.iter().map(|l| &l.counters));
        SimReport {
            total_ms: self.elapsed_ms(),
            launches: self.launches.len() as u64,
            h2d_bytes: self.h2d_bytes,
            d2h_bytes: self.d2h_bytes,
            peak_mem_bytes: self.device.peak_bytes(),
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> GpuContext {
        GpuContext::new(CostParams::p100(), 1 << 20)
    }

    #[test]
    fn grid_stride_kernel_touches_everything() {
        let mut c = ctx();
        let n = 1000usize;
        let buf = c.htod("x", &vec![1u32; n]).unwrap();
        let cfg = LaunchConfig {
            blocks: 8,
            threads_per_block: 64,
        };
        c.launch("incr", cfg, |blk| {
            let data = blk.device.buffer(buf);
            let mut i = blk.block_idx as usize;
            while i < n {
                let v = blk.gread(&data[i]);
                blk.gwrite(&data[i], v + 1);
                i += cfg.blocks as usize;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(c.dtoh(buf), vec![2u32; n]);
        assert_eq!(c.launches().len(), 1);
        assert_eq!(c.launches()[0].counters.global_sectors, 2 * n as u64);
    }

    #[test]
    fn atomics_are_cross_block_safe() {
        let mut c = ctx();
        let counter = c.alloc("counter", 1).unwrap();
        let cfg = LaunchConfig {
            blocks: 64,
            threads_per_block: 32,
        };
        c.launch("count", cfg, |blk| {
            let cell = &blk.device.buffer(counter)[0];
            for _ in 0..100 {
                blk.atomic_add(cell, 1);
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(c.dtoh(counter)[0], 6400);
    }

    #[test]
    fn shared_memory_is_per_block_and_limited() {
        let mut c = ctx();
        c.set_shared_capacity(1024); // 256 words
        let out = c.alloc("out", 4).unwrap();
        let cfg = LaunchConfig {
            blocks: 4,
            threads_per_block: 32,
        };
        c.launch("sh", cfg, |blk| {
            let arr = blk.shared_alloc(10)?;
            blk.sh_write(arr, 0, blk.block_idx);
            let v = blk.sh_read(arr, 0);
            blk.gwrite(&blk.device.buffer(out)[blk.block_idx as usize], v);
            Ok(())
        })
        .unwrap();
        assert_eq!(c.dtoh(out), vec![0, 1, 2, 3]);

        // over-allocate fails
        let err = c
            .launch("too_big", cfg, |blk| {
                let _ = blk.shared_alloc(1000)?;
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::Kernel(KernelError::SharedMemExceeded { .. })
        ));
    }

    #[test]
    fn shared_atomic_returns_old_value() {
        let mut c = ctx();
        let out = c.alloc("out", 3).unwrap();
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 32,
        };
        c.launch("sa", cfg, |blk| {
            let e = blk.shared_alloc(1)?;
            let o1 = blk.sh_atomic_add(e, 0, 5);
            let o2 = blk.sh_atomic_add(e, 0, 2);
            let cur = blk.sh_read(e, 0);
            let out_buf = blk.device.buffer(out);
            blk.gwrite(&out_buf[0], o1);
            blk.gwrite(&out_buf[1], o2);
            blk.gwrite(&out_buf[2], cur);
            Ok(())
        })
        .unwrap();
        assert_eq!(c.dtoh(out), vec![0, 5, 7]);
    }

    #[test]
    fn time_advances_and_limit_trips() {
        let mut c = ctx();
        let buf = c.htod("x", &[0u32; 256]).unwrap();
        assert!(c.elapsed_ms() > 0.0);
        c.set_time_limit_ms(c.elapsed_ms() + 1e-6);
        // one launch is fine (limit checked after)...
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 32,
        };
        let r1 = c.launch("k", cfg, |blk| {
            blk.charge_instr(1_000_000); // push past the limit
            let _ = buf;
            Ok(())
        });
        assert!(matches!(r1, Err(SimError::TimeLimit { .. })));
        // ...and the next one fails fast
        let r2 = c.launch("k2", cfg, |_| Ok(()));
        assert!(matches!(r2, Err(SimError::TimeLimit { .. })));
    }

    #[test]
    fn oom_propagates() {
        let mut c = GpuContext::new(CostParams::p100(), 64);
        assert!(c.htod("small", &[1, 2, 3]).is_ok()); // 12 B
        let err = c.htod("big", &[0u32; 100]).unwrap_err();
        assert!(matches!(err, SimError::Oom(_)));
    }

    #[test]
    fn kernel_error_propagates() {
        let mut c = ctx();
        let cfg = LaunchConfig {
            blocks: 4,
            threads_per_block: 32,
        };
        let err = c
            .launch("boom", cfg, |blk| {
                if blk.block_idx == 2 {
                    Err(KernelError::BufferOverflow {
                        what: "buf[2]".into(),
                    })
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::Kernel(KernelError::BufferOverflow { .. })
        ));
    }

    #[test]
    fn stepped_launch_interleaves_blocks_fairly() {
        // Four blocks consume from a shared atomic pool, one item per wave.
        // Lockstep waves give each block ~a quarter of the pool — a
        // run-to-completion schedule would let the first block drain it.
        let mut c = ctx();
        let pool = c.alloc("pool", 1).unwrap();
        c.device.write_slice(pool, &[100]);
        let taken = c.alloc("taken", 4).unwrap();
        let cfg = LaunchConfig {
            blocks: 4,
            threads_per_block: 32,
        };
        c.launch_stepped(
            "drain",
            cfg,
            |_| Ok(()),
            |blk, _| {
                let p = &blk.device.buffer(pool)[0];
                if p.load(Ordering::Relaxed) == 0 {
                    return Ok(false);
                }
                blk.atomic_sub(p, 1);
                let t = &blk.device.buffer(taken)[blk.block_idx as usize];
                t.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            },
        )
        .unwrap();
        let shares = c.dtoh(taken);
        assert_eq!(shares.iter().sum::<u32>(), 100);
        for (b, &s) in shares.iter().enumerate() {
            assert!(
                (20..=30).contains(&s),
                "block {b} took {s} of 100 — not fair"
            );
        }
    }

    #[test]
    fn stepped_launch_records_and_charges() {
        let mut c = ctx();
        let cfg = LaunchConfig {
            blocks: 3,
            threads_per_block: 32,
        };
        c.launch_stepped(
            "steps",
            cfg,
            |blk| Ok(blk.block_idx + 2), // block b steps b+2 times
            |blk, remaining| {
                blk.charge_instr(10);
                *remaining -= 1;
                Ok(*remaining > 0)
            },
        )
        .unwrap();
        let rec = &c.launches()[0];
        assert_eq!(rec.name, "steps");
        // total steps = 2 + 3 + 4 = 9 → 90 instructions
        assert_eq!(rec.counters.warp_instrs, 90);
        assert_eq!(rec.max_block_cycles, 40.0);
        assert_eq!(rec.sum_block_cycles, 90.0);
    }

    #[test]
    fn stepped_launch_propagates_kernel_errors() {
        let mut c = ctx();
        let cfg = LaunchConfig {
            blocks: 2,
            threads_per_block: 32,
        };
        let err = c
            .launch_stepped(
                "boom",
                cfg,
                |_| Ok(0u32),
                |blk, n| {
                    *n += 1;
                    if blk.block_idx == 1 && *n == 3 {
                        return Err(KernelError::Other("step failure".into()));
                    }
                    Ok(*n < 10)
                },
            )
            .unwrap_err();
        assert!(matches!(err, SimError::Kernel(KernelError::Other(_))));
    }

    #[test]
    fn coalesced_tx_math() {
        assert_eq!(BlockCtx::coalesced_tx(0), 0);
        assert_eq!(BlockCtx::coalesced_tx(1), 1);
        assert_eq!(BlockCtx::coalesced_tx(32), 1); // 128 B exactly
        assert_eq!(BlockCtx::coalesced_tx(33), 2);
        assert_eq!(BlockCtx::coalesced_tx(64), 2);
    }

    #[test]
    fn records_carry_start_timestamps_and_block_cycles() {
        let mut c = ctx();
        let buf = c.htod("x", &[0u32; 64]).unwrap();
        let cfg = LaunchConfig {
            blocks: 3,
            threads_per_block: 32,
        };
        c.launch("k", cfg, |blk| {
            blk.charge_instr(10 * (blk.block_idx as u64 + 1));
            let _ = buf;
            Ok(())
        })
        .unwrap();
        let t0 = &c.transfers()[0];
        assert_eq!(t0.start_s, 0.0);
        let l = &c.launches()[0];
        // the launch started when the htod finished
        assert!((l.start_s - t0.time_s).abs() < 1e-15);
        assert_eq!(l.block_cycles, vec![10.0, 20.0, 30.0]);
        assert!((c.elapsed_ms() / 1e3 - (l.start_s + l.time_s)).abs() < 1e-15);
    }

    #[test]
    fn htod_into_and_dtoh_range_are_charged_partial_copies() {
        let mut c = ctx();
        let buf = c.htod("stage", &[0u32; 16]).unwrap();
        let (h2d0, d2h0) = (c.report().h2d_bytes, c.report().d2h_bytes);
        let transfers0 = c.transfers().len();
        c.htod_into(buf, 4, &[7, 8, 9]).unwrap();
        assert_eq!(c.report().h2d_bytes - h2d0, 12);
        let got = c.dtoh_range(buf, 3, 8);
        assert_eq!(got, vec![0, 7, 8, 9, 0]);
        assert_eq!(c.report().d2h_bytes - d2h0, 20);
        // both copies are recorded (phase-stamped) transfer events
        assert_eq!(c.transfers().len() - transfers0, 2);
        // full readback still sees the in-place write, and no reallocation
        // happened: the ledger holds exactly one entry for the buffer
        assert_eq!(c.dtoh(buf)[4..7], [7, 8, 9]);
        let ms = c.memstats();
        assert_eq!(
            ms.allocations.iter().filter(|a| a.name == "stage").count(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "htod_into overruns")]
    fn htod_into_overrun_panics() {
        let mut c = ctx();
        let buf = c.htod("small", &[0u32; 4]).unwrap();
        let _ = c.htod_into(buf, 2, &[1, 2, 3]);
    }

    #[test]
    fn counter_samples_record_clock_and_phase_without_cost() {
        let mut c = ctx();
        let before = c.elapsed_ms();
        c.set_phase("Sync");
        c.sample_counter("frontier", 42.0);
        assert_eq!(c.elapsed_ms(), before); // sampling is free
        let s = &c.counter_samples()[0];
        assert_eq!((s.track, s.phase, s.value), ("frontier", "Sync", 42.0));
        assert_eq!(s.time_s, 0.0);
    }

    #[test]
    fn report_aggregates() {
        let mut c = ctx();
        let buf = c.htod("x", &[0u32; 64]).unwrap();
        let cfg = LaunchConfig {
            blocks: 2,
            threads_per_block: 32,
        };
        for _ in 0..3 {
            c.launch("k", cfg, |blk| {
                blk.charge_instr(10);
                let _ = buf;
                Ok(())
            })
            .unwrap();
        }
        let rep = c.report();
        assert_eq!(rep.launches, 3);
        assert_eq!(rep.counters.warp_instrs, 60);
        assert_eq!(rep.h2d_bytes, 256);
        assert!(rep.total_ms > 0.0);
        assert_eq!(rep.peak_mem_bytes, 256);
    }

    #[test]
    fn fused_launch_matches_two_launch_sequence() {
        // The fused engine entry must emit exactly what the two-launch
        // sequence (launch + set_phase + launch_stepped_phased) emits: two
        // records with the same names, phases, counters, timestamps, and
        // per-block cycles, plus the same device results.
        let cfg = LaunchConfig {
            blocks: 4,
            threads_per_block: 32,
        };
        let run = |fused: bool| {
            let mut c = ctx();
            let pool = c.alloc("pool", 1).unwrap();
            c.device.write_slice(pool, &[60]);
            let taken = c.alloc("taken", 4).unwrap();
            let scan = move |blk: &mut BlockCtx<'_>| {
                blk.charge_instr(5);
                blk.gwrite(&blk.device.buffer(taken)[blk.block_idx as usize], 1);
                Ok(())
            };
            let init = move |_blk: &mut BlockCtx<'_>| Ok(0u32);
            let plan = move |blk: &mut BlockCtx<'_>, _st: &mut u32| {
                blk.charge_instr(1);
                Ok(())
            };
            let commit = move |blk: &mut BlockCtx<'_>, st: &mut u32, _p: ()| {
                let p = &blk.device.buffer(pool)[0];
                if p.load(Ordering::Relaxed) == 0 {
                    return Ok(false);
                }
                blk.atomic_sub(p, 1);
                *st += 1;
                blk.atomic_add(&blk.device.buffer(taken)[blk.block_idx as usize], 1);
                Ok(true)
            };
            c.set_phase("Scan");
            if fused {
                c.launch_fused("scan", cfg, scan, "Loop", "loop", init, plan, commit)
                    .unwrap();
            } else {
                c.launch("scan", cfg, scan).unwrap();
                c.set_phase("Loop");
                c.launch_stepped_phased("loop", cfg, init, plan, commit)
                    .unwrap();
            }
            let out = c.dtoh(taken);
            (c, out)
        };
        let (cf, out_fused) = run(true);
        let (cs, out_split) = run(false);
        assert_eq!(out_fused, out_split);
        assert_eq!(out_fused.iter().sum::<u32>(), 60 + 4);
        assert_eq!(cf.launches().len(), 2);
        assert_eq!(cs.launches().len(), 2);
        for (a, b) in cf.launches().iter().zip(cs.launches()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.phase, b.phase);
            assert_eq!(a.counters, b.counters);
            assert_eq!(a.start_s, b.start_s);
            assert_eq!(a.time_s, b.time_s);
            assert_eq!(a.block_cycles, b.block_cycles);
        }
        assert_eq!(cf.launches()[0].name, "scan");
        assert_eq!(cf.launches()[0].phase, "Scan");
        assert_eq!(cf.launches()[1].name, "loop");
        assert_eq!(cf.launches()[1].phase, "Loop");
    }

    #[test]
    fn fused_launch_propagates_errors_from_both_steps() {
        let cfg = LaunchConfig {
            blocks: 2,
            threads_per_block: 32,
        };
        // scan-step error
        let mut c = ctx();
        let err = c
            .launch_fused(
                "scan",
                cfg,
                |_: &mut BlockCtx<'_>| Err(KernelError::Other("scan boom".into())),
                "Loop",
                "loop",
                |_: &mut BlockCtx<'_>| Ok(0u32),
                |_: &mut BlockCtx<'_>, _: &mut u32| Ok(()),
                |_: &mut BlockCtx<'_>, _: &mut u32, _: ()| Ok(false),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::Kernel(KernelError::Other(_))));
        // commit-step error mid-wave
        let mut c = ctx();
        let err = c
            .launch_fused(
                "scan",
                cfg,
                |_: &mut BlockCtx<'_>| Ok(()),
                "Loop",
                "loop",
                |_: &mut BlockCtx<'_>| Ok(0u32),
                |_: &mut BlockCtx<'_>, _: &mut u32| Ok(()),
                |blk: &mut BlockCtx<'_>, st: &mut u32, _: ()| {
                    *st += 1;
                    if blk.block_idx == 1 && *st == 3 {
                        return Err(KernelError::Other("commit boom".into()));
                    }
                    Ok(*st < 5)
                },
            )
            .unwrap_err();
        assert!(matches!(err, SimError::Kernel(KernelError::Other(_))));
    }
}
