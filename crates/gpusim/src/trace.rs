//! Structured profiling traces for simulated runs.
//!
//! A [`Trace`] is a serializable snapshot of everything a [`GpuContext`]
//! recorded: every kernel launch with its grid geometry, summed (and
//! optionally per-block) [`Counters`], and [`Roofline`] decomposition; every
//! host↔device transfer; and per-phase rollups driven by the
//! [`GpuContext::set_phase`] annotations the algorithms thread through
//! their rounds (`"Scan"`, `"Loop"`, …).
//!
//! Traces serve two purposes:
//!
//! 1. **Inspection** — the bench binaries dump them as JSON under
//!    `results/traces/` so a run can be profiled offline (which kernel
//!    dominates, whether it is compute- or bandwidth-bound, how imbalanced
//!    its blocks are). DESIGN.md documents the schema.
//! 2. **Regression** — everything in a trace is *simulated* (counters and
//!    simulated seconds, never wall time), so a trace is bit-for-bit
//!    deterministic and the golden-trace tests can assert exact equality
//!    across runs and host thread counts.

use crate::cost::{Counters, Roofline, TransferDir, TransferRecord};
use crate::exec::GpuContext;
use crate::memstats::MemStats;
use crate::timeline::Hotspot;
use serde::Serialize;

/// Version of the trace/timeline serialization schema. Bumped whenever the
/// shape of [`Trace`] (or the golden projection derived from it) changes, so
/// dumps from different builds can't be compared as if they were alike:
/// golden tests refuse mismatched versions instead of diffing garbage, and
/// `results/traces/` dumps carry the version they were written with.
///
/// History: 1 = PR 1 launch/transfer/phase rollups; 2 = adds
/// `schema_version`, per-kernel hotspot attribution, and event start
/// timestamps (timeline support); 3 = adds `memstats` (allocation ledger,
/// per-phase memory watermarks, capacity extrapolation inputs).
pub const TRACE_SCHEMA_VERSION: u32 = 3;

/// Worst blocks kept per kernel in a trace's hotspot records.
pub const HOTSPOT_TOP_K: usize = 5;

/// A serializable profiling snapshot of one simulated run.
#[derive(Debug, Clone, Serialize)]
pub struct Trace {
    /// Serialization schema version ([`TRACE_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Caller-chosen run label (dataset, variant, …).
    pub label: String,
    /// Device constants and memory high-water mark.
    pub device: DeviceInfo,
    /// Whole-run rollup.
    pub totals: Totals,
    /// Per-phase rollups, in first-activation order.
    pub phases: Vec<PhaseSummary>,
    /// Per-kernel cost attribution ([`crate::timeline::hotspots`]), in
    /// first-launch order.
    pub hotspots: Vec<Hotspot>,
    /// Device-memory snapshot: allocation ledger, per-phase watermarks,
    /// transfer rollup, peak live set (schema v3).
    pub memstats: MemStats,
    /// One event per kernel launch, in launch order.
    pub launches: Vec<LaunchEvent>,
    /// One event per host↔device copy, in issue order.
    pub transfers: Vec<TransferEvent>,
}

/// The simulated device a trace was captured on.
#[derive(Debug, Clone, Serialize)]
pub struct DeviceInfo {
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// Core clock, Hz.
    pub clock_hz: f64,
    /// Global-memory bandwidth, bytes/s.
    pub mem_bandwidth: f64,
    /// Global-memory capacity, bytes.
    pub capacity_bytes: u64,
    /// Peak device memory used by the run, bytes.
    pub peak_mem_bytes: u64,
}

/// Whole-run totals.
#[derive(Debug, Clone, Serialize)]
pub struct Totals {
    /// Total simulated time (kernels + transfers + overheads), ms.
    pub time_ms: f64,
    /// Kernel launches.
    pub launches: u64,
    /// Host↔device copies.
    pub transfers: u64,
    /// Host→device bytes.
    pub h2d_bytes: u64,
    /// Device→host bytes.
    pub d2h_bytes: u64,
    /// Grand-total counters over all launches.
    pub counters: Counters,
}

/// Rollup of one algorithm phase (consecutive or not).
#[derive(Debug, Clone, Serialize)]
pub struct PhaseSummary {
    /// Phase name as passed to [`GpuContext::set_phase`].
    pub phase: &'static str,
    /// Kernel launches stamped with this phase.
    pub launches: u64,
    /// Summed kernel time, ms.
    pub kernel_ms: f64,
    /// Summed launch-overhead roofline term, ms.
    pub launch_overhead_ms: f64,
    /// Summed compute roofline term, ms.
    pub compute_ms: f64,
    /// Summed bandwidth roofline term, ms.
    pub mem_ms: f64,
    /// Summed transfer time in this phase, ms.
    pub transfer_ms: f64,
    /// Host→device bytes moved in this phase.
    pub h2d_bytes: u64,
    /// Device→host bytes moved in this phase.
    pub d2h_bytes: u64,
    /// Summed counters over this phase's launches.
    pub counters: Counters,
}

/// One kernel launch, flattened for serialization.
#[derive(Debug, Clone, Serialize)]
pub struct LaunchEvent {
    /// Launch ordinal within the run (0-based).
    pub seq: usize,
    /// Phase active at launch time.
    pub phase: &'static str,
    /// Kernel name.
    pub kernel: &'static str,
    /// Grid blocks.
    pub blocks: u32,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Sim-clock issue timestamp, ms.
    pub start_ms: f64,
    /// Simulated duration, ms.
    pub time_ms: f64,
    /// Binding roofline term: `"launch"`, `"compute"`, or `"memory"`.
    pub bound: &'static str,
    /// Roofline decomposition of the duration (seconds, as modelled).
    pub roofline: Roofline,
    /// Largest single-block cycle count (load-imbalance diagnostics).
    pub max_block_cycles: f64,
    /// Total cycle count across blocks.
    pub sum_block_cycles: f64,
    /// Summed counters over all blocks.
    pub counters: Counters,
    /// Per-block counter deltas, when block profiling was enabled.
    pub block_counters: Option<Vec<Counters>>,
}

/// One host↔device copy, flattened for serialization.
#[derive(Debug, Clone, Serialize)]
pub struct TransferEvent {
    /// Transfer ordinal within the run (0-based).
    pub seq: usize,
    /// Phase active at transfer time.
    pub phase: &'static str,
    /// `"h2d"` or `"d2h"`.
    pub dir: &'static str,
    /// Payload bytes.
    pub bytes: u64,
    /// Sim-clock issue timestamp, ms.
    pub start_ms: f64,
    /// Simulated duration, ms.
    pub time_ms: f64,
}

impl Trace {
    /// Serializes the trace as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serializes")
    }

    /// An order-sensitive FNV-1a digest over every launch's identity and
    /// counters. Two runs that executed the same kernels in the same phases
    /// with identical per-event counters share a fingerprint; timing fields
    /// are excluded, so the digest is stable under cost-constant changes.
    pub fn counters_fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for l in &self.launches {
            for b in l.phase.bytes().chain(l.kernel.bytes()) {
                h = fnv1a(h, b as u64);
            }
            h = fnv1a(h, l.blocks as u64);
            h = fnv1a(h, l.threads_per_block as u64);
            for w in counter_words(&l.counters) {
                h = fnv1a(h, w);
            }
        }
        for t in &self.transfers {
            h = fnv1a(h, t.bytes);
        }
        h
    }
}

fn fnv1a(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(0x0000_0100_0000_01b3)
}

fn counter_words(c: &Counters) -> [u64; 8] {
    [
        c.global_tx,
        c.global_sectors,
        c.dependent_reads,
        c.global_atomics,
        c.shared_atomics,
        c.shared_accesses,
        c.warp_instrs,
        c.barriers,
    ]
}

impl GpuContext {
    /// Captures a [`Trace`] of everything recorded so far.
    ///
    /// The snapshot is cheap relative to a run (it clones records), can be
    /// taken mid-run, and contains only simulated quantities — capturing it
    /// twice from the same context yields identical traces.
    ///
    /// Taking a snapshot **resets the active phase to `"main"`**: a trace
    /// marks the end of a measured episode, so whatever label the episode
    /// left active must not silently stick to the next episode's records
    /// (back-to-back traces used to inherit stale phase labels).
    pub fn trace(&mut self, label: impl Into<String>) -> Trace {
        let report = self.report();
        // snapshot memory before the phase reset below, so the memstats
        // embedded here match a standalone `memstats()` call exactly
        let memstats = self.memstats();
        let launches: Vec<LaunchEvent> = self
            .launches()
            .iter()
            .enumerate()
            .map(|(seq, l)| LaunchEvent {
                seq,
                phase: l.phase,
                kernel: l.name,
                blocks: l.config.blocks,
                threads_per_block: l.config.threads_per_block,
                start_ms: l.start_s * 1e3,
                time_ms: l.time_s * 1e3,
                bound: l.roofline.bound(),
                roofline: l.roofline,
                max_block_cycles: l.max_block_cycles,
                sum_block_cycles: l.sum_block_cycles,
                counters: l.counters,
                block_counters: l.block_counters.clone(),
            })
            .collect();
        let transfers: Vec<TransferEvent> = self
            .transfers()
            .iter()
            .enumerate()
            .map(|(seq, t)| TransferEvent {
                seq,
                phase: t.phase,
                dir: match t.dir {
                    TransferDir::HostToDevice => "h2d",
                    TransferDir::DeviceToHost => "d2h",
                },
                bytes: t.bytes,
                start_ms: t.start_s * 1e3,
                time_ms: t.time_s * 1e3,
            })
            .collect();
        self.set_phase("main");
        Trace {
            schema_version: TRACE_SCHEMA_VERSION,
            label: label.into(),
            device: DeviceInfo {
                sm_count: self.cost.sm_count,
                clock_hz: self.cost.clock_hz,
                mem_bandwidth: self.cost.mem_bandwidth,
                capacity_bytes: self.device.capacity_bytes(),
                peak_mem_bytes: report.peak_mem_bytes,
            },
            totals: Totals {
                time_ms: report.total_ms,
                launches: report.launches,
                transfers: self.transfers().len() as u64,
                h2d_bytes: report.h2d_bytes,
                d2h_bytes: report.d2h_bytes,
                counters: report.counters,
            },
            phases: summarize_phases(self.launches(), self.transfers()),
            hotspots: crate::timeline::hotspots(self.launches(), &self.cost, HOTSPOT_TOP_K),
            memstats,
            launches,
            transfers,
        }
    }
}

/// Groups launches and transfers into per-phase rollups. Phases appear in
/// the order they first launched a kernel; phases that only performed
/// transfers follow, in first-transfer order.
fn summarize_phases(
    launches: &[crate::cost::LaunchRecord],
    transfers: &[TransferRecord],
) -> Vec<PhaseSummary> {
    let mut phases: Vec<PhaseSummary> = Vec::new();
    let find = |phases: &mut Vec<PhaseSummary>, name: &'static str| -> usize {
        if let Some(i) = phases.iter().position(|p| p.phase == name) {
            i
        } else {
            phases.push(PhaseSummary {
                phase: name,
                launches: 0,
                kernel_ms: 0.0,
                launch_overhead_ms: 0.0,
                compute_ms: 0.0,
                mem_ms: 0.0,
                transfer_ms: 0.0,
                h2d_bytes: 0,
                d2h_bytes: 0,
                counters: Counters::default(),
            });
            phases.len() - 1
        }
    };
    for l in launches {
        let i = find(&mut phases, l.phase);
        let p = &mut phases[i];
        p.launches += 1;
        p.kernel_ms += l.time_s * 1e3;
        p.launch_overhead_ms += l.roofline.launch_overhead_s * 1e3;
        p.compute_ms += l.roofline.compute_s * 1e3;
        p.mem_ms += l.roofline.mem_s * 1e3;
    }
    // Counters are u64 sums, so unlike the f64 columns above they can be
    // flat-combined per phase in one vectorized pass each.
    for p in &mut phases {
        p.counters = Counters::flat_sum_iter(
            launches
                .iter()
                .filter(|l| l.phase == p.phase)
                .map(|l| &l.counters),
        );
    }
    for t in transfers {
        let i = find(&mut phases, t.phase);
        let p = &mut phases[i];
        p.transfer_ms += t.time_s * 1e3;
        match t.dir {
            TransferDir::HostToDevice => p.h2d_bytes += t.bytes,
            TransferDir::DeviceToHost => p.d2h_bytes += t.bytes,
        }
    }
    phases
}

#[cfg(test)]
mod tests {
    use crate::exec::{GpuContext, LaunchConfig};
    use crate::CostParams;

    fn traced_ctx() -> GpuContext {
        let mut c = GpuContext::new(CostParams::p100(), 1 << 20);
        c.set_block_profiling(true);
        let buf = c.htod("x", &[0u32; 64]).unwrap();
        let cfg = LaunchConfig {
            blocks: 4,
            threads_per_block: 32,
        };
        c.set_phase("Scan");
        c.launch("scan", cfg, |blk| {
            blk.charge_tx(8);
            Ok(())
        })
        .unwrap();
        c.set_phase("Loop");
        for _ in 0..2 {
            c.launch("loop", cfg, |blk| {
                blk.charge_instr(100 * (blk.block_idx as u64 + 1));
                Ok(())
            })
            .unwrap();
            c.dtoh_word(buf, 0);
        }
        c
    }

    #[test]
    fn trace_groups_phases_in_first_seen_order() {
        let mut c = traced_ctx();
        let t = c.trace("unit");
        // the htod happened under the default "main" phase, which never
        // launches a kernel — transfer-only phases sort after launch phases
        let names: Vec<&str> = t.phases.iter().map(|p| p.phase).collect();
        assert_eq!(names, ["Scan", "Loop", "main"]);
        let scan = &t.phases[0];
        assert_eq!(scan.launches, 1);
        assert_eq!(scan.counters.global_tx, 4 * 8);
        let lp = &t.phases[1];
        assert_eq!(lp.launches, 2);
        assert_eq!(lp.d2h_bytes, 8);
        assert!(lp.transfer_ms > 0.0);
    }

    #[test]
    fn trace_events_carry_roofline_and_blocks() {
        let mut c = traced_ctx();
        let t = c.trace("unit");
        assert_eq!(t.schema_version, super::TRACE_SCHEMA_VERSION);
        assert_eq!(t.launches.len(), 3);
        assert_eq!(t.transfers.len(), 3); // 1 htod + 2 dtoh_word
        let ev = &t.launches[0];
        assert_eq!((ev.seq, ev.kernel, ev.phase), (0, "scan", "Scan"));
        assert_eq!(ev.blocks, 4);
        let rl = &ev.roofline;
        assert!(
            (rl.launch_overhead_s + rl.compute_s.max(rl.mem_s) - ev.time_ms / 1e3).abs() < 1e-15
        );
        // per-block profiling was on: 4 blocks, deltas sum to the total
        let per = ev.block_counters.as_ref().unwrap();
        assert_eq!(per.len(), 4);
        assert_eq!(
            per.iter().map(|c| c.global_tx).sum::<u64>(),
            ev.counters.global_tx
        );
        // loop kernel skews instructions by block index
        let lp = &t.launches[1];
        let per = lp.block_counters.as_ref().unwrap();
        assert_eq!(per[3].warp_instrs, 400);
        // totals roll everything up
        assert_eq!(t.totals.launches, 3);
        assert_eq!(t.totals.counters.warp_instrs, 2 * (100 + 200 + 300 + 400));
        assert_eq!(t.device.sm_count, 56);
    }

    #[test]
    fn empty_launch_is_launch_bound() {
        let mut c = GpuContext::new(CostParams::p100(), 1 << 20);
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 32,
        };
        c.launch("nop", cfg, |_| Ok(())).unwrap();
        let t = c.trace("unit");
        assert_eq!(t.launches[0].bound, "launch");
    }

    #[test]
    fn fingerprint_ignores_label_but_not_counters() {
        let a = traced_ctx().trace("a");
        let b = traced_ctx().trace("b");
        assert_eq!(a.counters_fingerprint(), b.counters_fingerprint());

        let mut c = GpuContext::new(CostParams::p100(), 1 << 20);
        c.set_phase("Scan");
        let cfg = LaunchConfig {
            blocks: 4,
            threads_per_block: 32,
        };
        c.launch("scan", cfg, |blk| {
            blk.charge_tx(9); // one extra transaction
            Ok(())
        })
        .unwrap();
        assert_ne!(
            a.counters_fingerprint(),
            c.trace("a").counters_fingerprint()
        );
    }

    #[test]
    fn trace_serializes_to_json() {
        let mut c = traced_ctx();
        let json = c.trace("unit").to_json();
        assert!(json.contains("\"schema_version\": 3"));
        assert!(json.contains("\"label\": \"unit\""));
        assert!(json.contains("\"phase\": \"Scan\""));
        assert!(json.contains("\"bound\""));
        assert!(json.contains("\"block_counters\""));
        assert!(json.contains("\"hotspots\""));
        assert!(json.contains("\"memstats\""));
        assert!(json.contains("\"peak_live_set\""));
        // capturing twice yields byte-identical JSON (simulated time only)
        assert_eq!(json, c.trace("unit").to_json());
    }

    #[test]
    fn trace_carries_launch_and_transfer_start_timestamps() {
        let mut c = traced_ctx();
        let t = c.trace("unit");
        // events are recorded in clock order: starts never decrease and each
        // launch begins exactly where the preceding activity left off
        assert_eq!(t.transfers[0].start_ms, 0.0);
        assert!((t.launches[0].start_ms - t.transfers[0].time_ms).abs() < 1e-12);
        for w in t.launches.windows(2) {
            assert!(w[1].start_ms >= w[0].start_ms + w[0].time_ms - 1e-12);
        }
    }

    #[test]
    fn trace_summarizes_hotspots_per_kernel() {
        let mut c = traced_ctx();
        let t = c.trace("unit");
        let names: Vec<&str> = t.hotspots.iter().map(|h| h.kernel).collect();
        assert_eq!(names, ["scan", "loop"]);
        assert_eq!(t.hotspots[1].launches, 2);
        // attribution tiles each kernel's total time
        for h in &t.hotspots {
            let sum = h.launch_overhead_ms
                + h.divergence_ms
                + h.mem_stall_ms
                + h.atomics_ms
                + h.uncoalesced_ms
                + h.coalesced_ms
                + h.shared_ms
                + h.instr_ms
                + h.barrier_ms;
            assert!((sum - h.total_ms).abs() < 1e-9 * h.total_ms.max(1.0));
        }
    }

    #[test]
    fn snapshot_resets_sticky_phase_label() {
        let mut c = traced_ctx();
        assert_eq!(c.phase(), "Loop"); // left sticky by the last episode
        let _ = c.trace("episode 1");
        assert_eq!(c.phase(), "main");
        // records from the next episode don't inherit the stale label
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 32,
        };
        c.launch("next", cfg, |_| Ok(())).unwrap();
        let t = c.trace("episode 2");
        assert_eq!(t.launches.last().unwrap().phase, "main");
    }
}
