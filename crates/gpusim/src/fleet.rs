//! Fleet observability: the schema-versioned ledger of a sharded
//! multi-device run.
//!
//! The single-device observability stack ([`crate::trace`],
//! [`crate::timeline`], [`crate::perfetto`]) answers *what one device did*.
//! This module answers what the **fleet** did: a [`FleetTrace`] captures,
//! per device and per peel round, the per-device [`Trace`]s plus an
//! **exchange ledger** — per shard-pair packet counts, bytes, the
//! latency-vs-bandwidth split of each link hop, and the border-cascade
//! sub-round slices — a per-round **critical-path analysis** naming the
//! device or link hop that bounds `total_ms`, and per-device
//! hotspot/roofline rollups ([`DeviceRollup`]).
//!
//! **Observes, never charges.** Every number here is recorded alongside the
//! engine's existing accounting: `total_ms`, `exchanged_bytes`, worker
//! traces, and fingerprints are bit-identical with or without fleet capture,
//! and the whole ledger is derived deterministically, so fleet artifacts are
//! bit-identical across rayon pool sizes like every prior layer.
//!
//! **Two clocks.** Each device context runs its own simulated clock, so
//! per-device numbers (sub-round slice starts, launch references) are
//! device-local. The engine's `total_ms`, however, is accumulated under the
//! PR 9 convention: each barrier sub-round charges the *max cumulative
//! device clock* returned by the workers (a conservative re-synchronize
//! model), and each exchange charges its pack + link + apply delta. The
//! ledger records both views: `charged_ms` fields are the **exact f64
//! addends** the engine folded into `total_ms` (replaying them in order
//! reproduces `total_ms` to the bit — [`FleetTrace::check_well_formed`]
//! asserts it), while `device_ms` fields are honest per-device sub-round
//! deltas. The critical-path shares are computed over the delta-based
//! resource components, which is what makes the soc-LiveJournal1 p=2
//! cascade-serialization dip attributable: the charged convention bills a
//! cascade sub-round at fleet scope even when only one shard is active, so
//! a graph whose shells bounce across one border serializes.
//!
//! [`FleetTrace::merged_chrome_json`] renders the whole fleet as one
//! Perfetto document: one process triple (GPU / PCIe / memory) per device on
//! its local clock, a link process on the charged fleet clock carrying
//! `worker → master` / `master → owner` hop slices, flow events tying each
//! shard-pair's pack launch to its apply launch, and border-cascade slices
//! on each owner device's tracks.

use crate::perfetto::{counter_event, meta_event, obj};
use crate::timeline::Timeline;
use crate::trace::{Trace, TRACE_SCHEMA_VERSION};
use serde::{Serialize, Value};

/// Version of the fleet-trace serialization schema. Bumped on any shape
/// change so golden fleet artifacts refuse to diff across schemas.
pub const FLEET_SCHEMA_VERSION: u32 = 1;

/// Serializable ledger of one sharded multi-device run.
#[derive(Debug, Clone, Serialize)]
pub struct FleetTrace {
    /// Fleet serialization schema ([`FLEET_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Trace-subsystem schema of the embedded per-device [`Trace`]s.
    pub trace_schema_version: u32,
    /// Caller-chosen run label (dataset, shard count, …).
    pub label: String,
    /// Worker devices in the fleet (shard order).
    pub num_devices: usize,
    /// The engine's simulated wall time, ms — bit-identical to
    /// `MultiGpuRun::total_ms`.
    pub total_ms: f64,
    /// Charged shard-load phase (partition + device loads), ms.
    pub setup_ms: f64,
    /// Charged result-gather phase, ms.
    pub result_ms: f64,
    /// Bytes shipped over the links, both hops — bit-identical to
    /// `MultiGpuRun::exchanged_bytes`.
    pub exchanged_bytes: u64,
    /// Exchanges that actually carried packets (informational; the engine
    /// also runs one empty closing exchange per peel round).
    pub exchange_rounds: u64,
    /// Total worker→master packets over the run.
    pub border_packets: u64,
    /// Per-peel-round ledger, in round (ascending `k`) order.
    pub rounds: Vec<RoundTrace>,
    /// Per-round critical-path attribution, same order as `rounds`.
    pub critical_path: Vec<RoundCritical>,
    /// Per-device hotspot/roofline rollups, shard order.
    pub device_rollups: Vec<DeviceRollup>,
    /// The full per-device traces, shard order — every launch the flow
    /// edges reference lives here.
    pub devices: Vec<Trace>,
}

/// Ledger of one peel round (one `k`).
#[derive(Debug, Clone, Serialize)]
pub struct RoundTrace {
    /// The `k` this round peeled.
    pub k: u32,
    /// Barrier sub-rounds in this round (1 scan + cascades).
    pub sub_rounds: u32,
    /// One slice per barrier sub-round: index 0 is the scan+drain, the rest
    /// are border cascades.
    pub slices: Vec<SubRoundSlice>,
    /// One entry per exchange; `exchanges[i]` follows `slices[i]`, and the
    /// final exchange of a round is the empty one that ended it.
    pub exchanges: Vec<ExchangeTrace>,
}

/// One barrier sub-round across the fleet.
#[derive(Debug, Clone, Serialize)]
pub struct SubRoundSlice {
    /// 0 for the scan+drain sub-round, 1.. for border cascades.
    pub sub_round: u32,
    /// Exact f64 addend the engine folded into `total_ms` for this
    /// sub-round (the max-cumulative-clock convention — see module docs).
    pub charged_ms: f64,
    /// Each device's local clock when the sub-round began, ms.
    pub device_start_ms: Vec<f64>,
    /// Each device's simulated-time delta over the sub-round, ms (0.0 for
    /// devices idle in a cascade sub-round).
    pub device_ms: Vec<f64>,
    /// Device whose return bounded the charge (first argmax).
    pub bounding_device: usize,
}

/// One border exchange: ghost drain → pack kernels → two link hops →
/// owner-side apply kernels → seeding.
#[derive(Debug, Clone, Serialize)]
pub struct ExchangeTrace {
    /// Sub-round index the exchange followed (0 = after the scan).
    pub after_sub_round: u32,
    /// Exact f64 addend the engine folded into `total_ms`.
    pub charged_ms: f64,
    /// Max-over-workers pack-kernel delta, ms.
    pub pack_ms: f64,
    /// Worker→master hop: per-exchange latency + `packets_out` packets over
    /// the link bandwidth, ms.
    pub hop1_ms: f64,
    /// Master→owner hop: latency + aggregated packets, ms.
    pub hop2_ms: f64,
    /// Max-over-owners apply-kernel delta, ms.
    pub apply_ms: f64,
    /// Worker with the largest pack delta (0 when nothing was packed).
    pub pack_bounding_device: usize,
    /// Owner with the largest apply delta (0 when nothing applied).
    pub apply_bounding_device: usize,
    /// Raw worker→master packets.
    pub packets_out: u64,
    /// Deduplicated master→owner packets.
    pub packets_aggregated: u64,
    /// Link bytes both hops (8 bytes per packet).
    pub bytes: u64,
    /// Border vertices that crossed into the k-shell and were seeded.
    pub seeds: u64,
    /// Seeds landing on each owner device, shard order.
    pub seeds_per_device: Vec<u64>,
    /// Per shard-pair packet flows, ascending (from, to) order.
    pub flows: Vec<FlowEdge>,
}

/// Packets one worker shipped to one owner in a single exchange.
#[derive(Debug, Clone, Serialize)]
pub struct FlowEdge {
    /// Shipping worker (shard index).
    pub from_device: usize,
    /// Owning worker (shard index).
    pub to_device: usize,
    /// Packets on this pair.
    pub packets: u64,
    /// Bytes on this pair (8 per packet).
    pub bytes: u64,
    /// Index into `devices[from_device].launches` of the `mgpu_pack`
    /// launch that staged the packets.
    pub pack_launch_seq: usize,
    /// Index into `devices[to_device].launches` of the (final) `mgpu_apply`
    /// launch that applied this exchange's packets on the owner.
    pub apply_launch_seq: usize,
}

/// The resource bounding one peel round, with the delta-based component
/// decomposition its shares are computed over.
#[derive(Debug, Clone, Serialize)]
pub struct RoundCritical {
    /// The `k` this round peeled.
    pub k: u32,
    /// Barrier sub-rounds in the round.
    pub sub_rounds: u32,
    /// Exact charged total for the round (Σ of slice + exchange addends).
    pub charged_ms: f64,
    /// Max-over-devices scan+drain delta, ms.
    pub compute_ms: f64,
    /// Σ over cascade sub-rounds of the max-over-devices delta, ms.
    pub cascade_ms: f64,
    /// Σ pack + apply kernel deltas, ms.
    pub exchange_kernel_ms: f64,
    /// Σ link hop costs (latency + bandwidth terms), ms.
    pub link_ms: f64,
    /// `compute_ms` over the component sum.
    pub compute_share: f64,
    /// `cascade_ms` over the component sum.
    pub cascade_share: f64,
    /// `exchange_kernel_ms` over the component sum.
    pub exchange_share: f64,
    /// `link_ms` over the component sum.
    pub link_share: f64,
    /// Largest component: `"compute"`, `"cascade"`, `"exchange"`, `"link"`,
    /// or `"idle"` for an all-zero round.
    pub bound: &'static str,
    /// The concrete bounding resource: `"device<n>"` for kernel-side
    /// components, `"link"` for the hop costs, `"none"` when idle.
    pub bounding_resource: String,
}

/// Per-device rollup of the hotspot attribution and data movement — the
/// roofline view of one shard's whole run.
#[derive(Debug, Clone, Serialize)]
pub struct DeviceRollup {
    /// Shard / device index.
    pub device: usize,
    /// The device's local simulated clock at capture, ms.
    pub total_ms: f64,
    /// Σ kernel durations (what the bucket columns tile), ms.
    pub kernel_ms: f64,
    /// Kernel launches on the device.
    pub launches: u64,
    /// Host→device bytes.
    pub h2d_bytes: u64,
    /// Device→host bytes.
    pub d2h_bytes: u64,
    /// Fixed launch overheads, ms.
    pub launch_overhead_ms: f64,
    /// Divergence / load-imbalance exposure, ms.
    pub divergence_ms: f64,
    /// Bandwidth stall, ms.
    pub mem_stall_ms: f64,
    /// Atomic contention share, ms.
    pub atomics_ms: f64,
    /// Uncoalesced-traffic share, ms.
    pub uncoalesced_ms: f64,
    /// Coalesced-transaction share, ms.
    pub coalesced_ms: f64,
    /// Shared-memory share, ms.
    pub shared_ms: f64,
    /// Plain-instruction share, ms.
    pub instr_ms: f64,
    /// Barrier share, ms.
    pub barrier_ms: f64,
    /// Largest bucket name.
    pub dominant_bucket: &'static str,
    /// That bucket's share, ms.
    pub dominant_ms: f64,
}

impl DeviceRollup {
    /// Sums a device [`Trace`]'s per-kernel hotspot buckets into one
    /// roofline rollup.
    pub fn from_trace(device: usize, t: &Trace) -> DeviceRollup {
        let mut r = DeviceRollup {
            device,
            total_ms: t.totals.time_ms,
            kernel_ms: 0.0,
            launches: t.totals.launches,
            h2d_bytes: t.totals.h2d_bytes,
            d2h_bytes: t.totals.d2h_bytes,
            launch_overhead_ms: 0.0,
            divergence_ms: 0.0,
            mem_stall_ms: 0.0,
            atomics_ms: 0.0,
            uncoalesced_ms: 0.0,
            coalesced_ms: 0.0,
            shared_ms: 0.0,
            instr_ms: 0.0,
            barrier_ms: 0.0,
            dominant_bucket: "idle",
            dominant_ms: 0.0,
        };
        for h in &t.hotspots {
            r.kernel_ms += h.total_ms;
            r.launch_overhead_ms += h.launch_overhead_ms;
            r.divergence_ms += h.divergence_ms;
            r.mem_stall_ms += h.mem_stall_ms;
            r.atomics_ms += h.atomics_ms;
            r.uncoalesced_ms += h.uncoalesced_ms;
            r.coalesced_ms += h.coalesced_ms;
            r.shared_ms += h.shared_ms;
            r.instr_ms += h.instr_ms;
            r.barrier_ms += h.barrier_ms;
        }
        let (name, ms) = r.dominant();
        r.dominant_bucket = name;
        r.dominant_ms = ms;
        r
    }

    /// The nine attribution buckets, in the canonical order.
    pub fn buckets(&self) -> [(&'static str, f64); 9] {
        [
            ("launch_overhead", self.launch_overhead_ms),
            ("divergence", self.divergence_ms),
            ("mem_stall", self.mem_stall_ms),
            ("atomics", self.atomics_ms),
            ("uncoalesced", self.uncoalesced_ms),
            ("coalesced", self.coalesced_ms),
            ("shared", self.shared_ms),
            ("instr", self.instr_ms),
            ("barriers", self.barrier_ms),
        ]
    }

    pub fn dominant(&self) -> (&'static str, f64) {
        self.buckets()
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(a.0)))
            .unwrap()
    }
}

impl FleetTrace {
    /// Assembles a fleet trace from the engine's recorded rounds and the
    /// captured per-device traces, deriving the critical path and the
    /// device rollups.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        label: impl Into<String>,
        setup_ms: f64,
        result_ms: f64,
        total_ms: f64,
        exchanged_bytes: u64,
        rounds: Vec<RoundTrace>,
        devices: Vec<Trace>,
    ) -> FleetTrace {
        let critical_path = rounds.iter().map(round_critical).collect();
        let device_rollups = devices
            .iter()
            .enumerate()
            .map(|(d, t)| DeviceRollup::from_trace(d, t))
            .collect();
        let exchange_rounds = rounds
            .iter()
            .flat_map(|r| &r.exchanges)
            .filter(|e| e.packets_out > 0)
            .count() as u64;
        let border_packets = rounds
            .iter()
            .flat_map(|r| &r.exchanges)
            .map(|e| e.packets_out)
            .sum();
        FleetTrace {
            schema_version: FLEET_SCHEMA_VERSION,
            trace_schema_version: TRACE_SCHEMA_VERSION,
            label: label.into(),
            num_devices: devices.len(),
            total_ms,
            setup_ms,
            result_ms,
            exchanged_bytes,
            exchange_rounds,
            border_packets,
            rounds,
            critical_path,
            device_rollups,
            devices,
        }
    }

    /// Serializes the fleet trace as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet trace serializes")
    }

    /// Structural validation of the ledger against its own embedded device
    /// traces — the `fleetreport --check` contract:
    ///
    /// * replaying the charged addends in recorded order reproduces
    ///   `total_ms` **to the bit**;
    /// * every round's critical-path shares sum to 1 (±1e-9) and name a
    ///   real device;
    /// * every flow edge references a real `mgpu_pack` / `mgpu_apply`
    ///   launch record in the per-device traces, and per-pair packets sum
    ///   to the exchange's `packets_out`;
    /// * rollup buckets tile each device's summed kernel time.
    pub fn check_well_formed(&self) -> Result<(), String> {
        if self.schema_version != FLEET_SCHEMA_VERSION {
            return Err(format!(
                "fleet schema {} != current {FLEET_SCHEMA_VERSION}",
                self.schema_version
            ));
        }
        if self.devices.len() != self.num_devices {
            return Err(format!(
                "{} embedded device traces, num_devices says {}",
                self.devices.len(),
                self.num_devices
            ));
        }
        if self.critical_path.len() != self.rounds.len() {
            return Err("critical_path / rounds length mismatch".into());
        }
        let mut replay = self.setup_ms;
        for (ri, r) in self.rounds.iter().enumerate() {
            if r.slices.is_empty() || r.slices.len() != r.exchanges.len() {
                return Err(format!(
                    "round {ri} (k={}): {} slices vs {} exchanges",
                    r.k,
                    r.slices.len(),
                    r.exchanges.len()
                ));
            }
            for (s, e) in r.slices.iter().zip(&r.exchanges) {
                if s.device_ms.len() != self.num_devices
                    || s.device_start_ms.len() != self.num_devices
                    || s.bounding_device >= self.num_devices
                {
                    return Err(format!(
                        "round {ri} slice {}: bad device vectors",
                        s.sub_round
                    ));
                }
                replay += s.charged_ms;
                replay += e.charged_ms;
                if e.bytes != (e.packets_out + e.packets_aggregated) * 8 {
                    return Err(format!(
                        "round {ri}: exchange bytes {} != 8·({} + {})",
                        e.bytes, e.packets_out, e.packets_aggregated
                    ));
                }
                let flow_packets: u64 = e.flows.iter().map(|f| f.packets).sum();
                if flow_packets != e.packets_out {
                    return Err(format!(
                        "round {ri}: flow packets {flow_packets} != packets_out {}",
                        e.packets_out
                    ));
                }
                if e.seeds_per_device.len() != self.num_devices
                    || e.seeds_per_device.iter().sum::<u64>() != e.seeds
                {
                    return Err(format!("round {ri}: seeds_per_device inconsistent"));
                }
                for f in &e.flows {
                    if f.from_device >= self.num_devices || f.to_device >= self.num_devices {
                        return Err(format!("round {ri}: flow names a non-existent device"));
                    }
                    let pack = self.devices[f.from_device]
                        .launches
                        .get(f.pack_launch_seq)
                        .ok_or_else(|| format!("round {ri}: dangling pack launch seq"))?;
                    if pack.kernel != "mgpu_pack" {
                        return Err(format!(
                            "round {ri}: flow pack seq {} is a {:?} launch",
                            f.pack_launch_seq, pack.kernel
                        ));
                    }
                    let apply = self.devices[f.to_device]
                        .launches
                        .get(f.apply_launch_seq)
                        .ok_or_else(|| format!("round {ri}: dangling apply launch seq"))?;
                    if apply.kernel != "mgpu_apply" {
                        return Err(format!(
                            "round {ri}: flow apply seq {} is a {:?} launch",
                            f.apply_launch_seq, apply.kernel
                        ));
                    }
                }
            }
            let c = &self.critical_path[ri];
            if c.k != r.k {
                return Err(format!("critical_path[{ri}] k mismatch"));
            }
            let share_sum = c.compute_share + c.cascade_share + c.exchange_share + c.link_share;
            let component_sum = c.compute_ms + c.cascade_ms + c.exchange_kernel_ms + c.link_ms;
            if component_sum > 0.0 && (share_sum - 1.0).abs() > 1e-9 {
                return Err(format!(
                    "round {ri} (k={}): critical-path shares sum to {share_sum}",
                    r.k
                ));
            }
            if c.bound != "idle" && c.bound != "link" && !c.bounding_resource.starts_with("device")
            {
                return Err(format!(
                    "round {ri}: bound {} with resource {}",
                    c.bound, c.bounding_resource
                ));
            }
        }
        replay += self.result_ms;
        if replay.to_bits() != self.total_ms.to_bits() {
            return Err(format!(
                "charged replay {replay} does not reproduce total_ms {} bit-for-bit",
                self.total_ms
            ));
        }
        let packets: u64 = self
            .rounds
            .iter()
            .flat_map(|r| &r.exchanges)
            .map(|e| e.packets_out)
            .sum();
        if packets != self.border_packets {
            return Err("border_packets does not match the per-exchange sum".into());
        }
        for r in &self.device_rollups {
            let bucket_sum: f64 = r.buckets().iter().map(|b| b.1).sum();
            if (bucket_sum - r.kernel_ms).abs() > 1e-9 * r.kernel_ms.max(1.0) {
                return Err(format!(
                    "device {} rollup buckets {bucket_sum} don't tile kernel_ms {}",
                    r.device, r.kernel_ms
                ));
            }
        }
        Ok(())
    }

    /// Renders the fleet as one merged Chrome trace-event document:
    ///
    /// * per device `d`: the full single-device track set (GPU SM tracks,
    ///   PCIe, memory) under pids `1+3d..3+3d` with a `D<d> · ` name
    ///   prefix, on the device's **local** clock, plus a `border cascades`
    ///   track carrying that device's sub-round slices;
    /// * pid 0: the link process on the **charged fleet** clock, with
    ///   `worker → master` / `master → owner` hop slices per exchange;
    /// * flow events (`s`/`t`/`f`) tying each shard-pair's `mgpu_pack`
    ///   launch through the two hops to its owner's `mgpu_apply` launch.
    ///
    /// `timelines` must be the per-device timelines captured from the same
    /// run, shard order. Deterministic: same run ⇒ byte-identical JSON.
    pub fn merged_chrome_json(&self, timelines: &[Timeline]) -> String {
        assert_eq!(timelines.len(), self.num_devices, "one timeline per device");
        /// tid of the per-device cascade track: above any `sm * 64 + slot`
        /// the SM layout can produce.
        const CASCADE_TID: u64 = 4000;
        const LINK_PID: u64 = 0;
        let gpu_pid = |d: usize| 1 + 3 * d as u64;
        let mut events: Vec<Value> = Vec::new();

        // ---- link process (charged fleet clock) ----------------------
        events.push(meta_event(
            "process_name",
            LINK_PID,
            None,
            format!(
                "Fleet links · {} devices · {}",
                self.num_devices, self.label
            ),
        ));
        events.push(meta_event(
            "thread_name",
            LINK_PID,
            Some(0),
            "worker → master".into(),
        ));
        events.push(meta_event(
            "thread_name",
            LINK_PID,
            Some(1),
            "master → owner".into(),
        ));

        // ---- per-device track sets (local clocks) --------------------
        for (d, tl) in timelines.iter().enumerate() {
            tl.push_chrome_events(
                &mut events,
                gpu_pid(d),
                gpu_pid(d) + 1,
                gpu_pid(d) + 2,
                &format!("D{d} · "),
            );
            events.push(meta_event(
                "thread_name",
                gpu_pid(d),
                Some(CASCADE_TID),
                "border cascades".into(),
            ));
        }

        // ---- sub-round + exchange slices, flows ----------------------
        let mut fleet_now = self.setup_ms;
        let mut flow_id = 0u64;
        for r in &self.rounds {
            for (s, e) in r.slices.iter().zip(&r.exchanges) {
                // cascade slices land on each active device's own track, at
                // that device's local clock — they tile against its SM rows.
                if s.sub_round > 0 {
                    for d in 0..self.num_devices {
                        if s.device_ms[d] > 0.0 {
                            events.push(obj(vec![
                                (
                                    "name",
                                    Value::Str(format!("cascade k={} #{}", r.k, s.sub_round)),
                                ),
                                ("cat", Value::Str("BorderCascade".into())),
                                ("ph", Value::Str("X".into())),
                                ("ts", Value::Float(s.device_start_ms[d] * 1e3)),
                                ("dur", Value::Float(s.device_ms[d] * 1e3)),
                                ("pid", Value::UInt(gpu_pid(d))),
                                ("tid", Value::UInt(CASCADE_TID)),
                                (
                                    "args",
                                    obj(vec![
                                        ("k", Value::UInt(r.k as u64)),
                                        ("sub_round", Value::UInt(s.sub_round as u64)),
                                        ("charged_ms", Value::Float(s.charged_ms)),
                                    ]),
                                ),
                            ]));
                        }
                    }
                }
                fleet_now += s.charged_ms;
                let hop1_ts = (fleet_now + e.pack_ms) * 1e3;
                let hop2_ts = hop1_ts + e.hop1_ms * 1e3;
                if e.packets_out > 0 {
                    for (tid, name, ts, dur, packets) in [
                        (0u64, "worker → master", hop1_ts, e.hop1_ms, e.packets_out),
                        (
                            1,
                            "master → owner",
                            hop2_ts,
                            e.hop2_ms,
                            e.packets_aggregated,
                        ),
                    ] {
                        events.push(obj(vec![
                            ("name", Value::Str(format!("{name} k={}", r.k))),
                            ("cat", Value::Str("Exchange".into())),
                            ("ph", Value::Str("X".into())),
                            ("ts", Value::Float(ts)),
                            ("dur", Value::Float(dur * 1e3)),
                            ("pid", Value::UInt(LINK_PID)),
                            ("tid", Value::UInt(tid)),
                            (
                                "args",
                                obj(vec![
                                    ("packets", Value::UInt(packets)),
                                    ("bytes", Value::UInt(e.bytes)),
                                    ("seeds", Value::UInt(e.seeds)),
                                ]),
                            ),
                        ]));
                    }
                    for f in &e.flows {
                        let pack = &self.devices[f.from_device].launches[f.pack_launch_seq];
                        let apply = &self.devices[f.to_device].launches[f.apply_launch_seq];
                        let hops = [
                            (
                                "s",
                                gpu_pid(f.from_device),
                                CASCADE_TID,
                                (pack.start_ms + pack.time_ms) * 1e3,
                            ),
                            ("t", LINK_PID, 0, hop1_ts),
                            ("t", LINK_PID, 1, hop2_ts),
                            ("f", gpu_pid(f.to_device), CASCADE_TID, apply.start_ms * 1e3),
                        ];
                        for (ph, pid, tid, ts) in hops {
                            let mut fields = vec![
                                ("name", Value::Str("border packets".into())),
                                ("cat", Value::Str("Exchange".into())),
                                ("ph", Value::Str(ph.into())),
                                ("id", Value::UInt(flow_id)),
                                ("ts", Value::Float(ts)),
                                ("pid", Value::UInt(pid)),
                                ("tid", Value::UInt(tid)),
                            ];
                            if ph == "f" {
                                fields.push(("bp", Value::Str("e".into())));
                            }
                            fields.push((
                                "args",
                                obj(vec![
                                    ("from_device", Value::UInt(f.from_device as u64)),
                                    ("to_device", Value::UInt(f.to_device as u64)),
                                    ("packets", Value::UInt(f.packets)),
                                    ("bytes", Value::UInt(f.bytes)),
                                    ("pack_launch", Value::UInt(f.pack_launch_seq as u64)),
                                    ("apply_launch", Value::UInt(f.apply_launch_seq as u64)),
                                ]),
                            ));
                            events.push(obj(fields));
                        }
                        flow_id += 1;
                    }
                }
                fleet_now += e.charged_ms;
            }
            // fleet-clock counter: seeds produced per round
            let seeds: u64 = r.exchanges.iter().map(|e| e.seeds).sum();
            events.push(counter_event(
                LINK_PID,
                "border_seeds",
                fleet_now,
                seeds as f64,
            ));
        }

        let doc = obj(vec![
            ("traceEvents", Value::Array(events)),
            ("displayTimeUnit", Value::Str("ms".into())),
            (
                "otherData",
                obj(vec![
                    (
                        "fleet_schema_version",
                        Value::UInt(self.schema_version as u64),
                    ),
                    (
                        "trace_schema_version",
                        Value::UInt(self.trace_schema_version as u64),
                    ),
                    ("label", Value::Str(self.label.clone())),
                    ("num_devices", Value::UInt(self.num_devices as u64)),
                    (
                        "clock_note",
                        Value::Str(
                            "device processes replay each device's local simulated clock; \
                             the link process replays the engine's charged fleet clock"
                                .into(),
                        ),
                    ),
                ]),
            ),
        ]);
        serde_json::to_string(&doc).expect("fleet timeline serializes")
    }
}

/// Derives one round's critical-path attribution from its ledger.
fn round_critical(r: &RoundTrace) -> RoundCritical {
    let max_d = |v: &[f64]| v.iter().copied().fold(0.0f64, f64::max);
    let argmax_d = |v: &[f64]| {
        let m = max_d(v);
        v.iter().position(|&x| x == m).unwrap_or(0)
    };
    let compute_ms = r.slices.first().map(|s| max_d(&s.device_ms)).unwrap_or(0.0);
    // `+ 0.0` normalizes the -0.0 an empty f64 sum produces.
    let cascade_ms: f64 = r.slices[1..]
        .iter()
        .map(|s| max_d(&s.device_ms))
        .sum::<f64>()
        + 0.0;
    let exchange_kernel_ms: f64 = r
        .exchanges
        .iter()
        .map(|e| e.pack_ms + e.apply_ms)
        .sum::<f64>()
        + 0.0;
    let link_ms: f64 = r
        .exchanges
        .iter()
        .map(|e| e.hop1_ms + e.hop2_ms)
        .sum::<f64>()
        + 0.0;
    let charged_ms = r
        .slices
        .iter()
        .map(|s| s.charged_ms)
        .chain(r.exchanges.iter().map(|e| e.charged_ms))
        .sum();
    let sum = compute_ms + cascade_ms + exchange_kernel_ms + link_ms;
    let share = |x: f64| if sum > 0.0 { x / sum } else { 0.0 };
    let components = [
        ("compute", compute_ms),
        ("cascade", cascade_ms),
        ("exchange", exchange_kernel_ms),
        ("link", link_ms),
    ];
    let (bound, _) = components
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    let bounding_resource = if sum == 0.0 {
        "none".to_string()
    } else {
        match bound {
            "compute" => format!(
                "device{}",
                r.slices.first().map(|s| s.bounding_device).unwrap_or(0)
            ),
            "cascade" => {
                // the cascade sub-round with the largest fleet-wide delta,
                // then its bounding device
                let worst = r.slices[1..]
                    .iter()
                    .max_by(|a, b| {
                        max_d(&a.device_ms)
                            .partial_cmp(&max_d(&b.device_ms))
                            .unwrap()
                    })
                    .map(|s| argmax_d(&s.device_ms))
                    .unwrap_or(0);
                format!("device{worst}")
            }
            "exchange" => {
                let worst = r
                    .exchanges
                    .iter()
                    .max_by(|a, b| {
                        (a.pack_ms + a.apply_ms)
                            .partial_cmp(&(b.pack_ms + b.apply_ms))
                            .unwrap()
                    })
                    .map(|e| {
                        if e.apply_ms >= e.pack_ms {
                            e.apply_bounding_device
                        } else {
                            e.pack_bounding_device
                        }
                    })
                    .unwrap_or(0);
                format!("device{worst}")
            }
            _ => "link".to_string(),
        }
    };
    let bound = if sum == 0.0 { "idle" } else { bound };
    RoundCritical {
        k: r.k,
        sub_rounds: r.slices.len() as u32,
        charged_ms,
        compute_ms,
        cascade_ms,
        exchange_kernel_ms,
        link_ms,
        compute_share: share(compute_ms),
        cascade_share: share(cascade_ms),
        exchange_share: share(exchange_kernel_ms),
        link_share: share(link_ms),
        bound,
        bounding_resource,
    }
}

/// Order-sensitive FNV-1a digest of a byte string — the fingerprint the
/// golden fleet tests pin merged-Perfetto exports with.
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice(sub: u32, charged: f64, per: Vec<f64>) -> SubRoundSlice {
        let bounding = per
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        SubRoundSlice {
            sub_round: sub,
            charged_ms: charged,
            device_start_ms: vec![0.0; per.len()],
            device_ms: per,
            bounding_device: bounding,
        }
    }

    fn empty_exchange(after: u32, n: usize) -> ExchangeTrace {
        ExchangeTrace {
            after_sub_round: after,
            charged_ms: 0.0,
            pack_ms: 0.0,
            hop1_ms: 0.0,
            hop2_ms: 0.0,
            apply_ms: 0.0,
            pack_bounding_device: 0,
            apply_bounding_device: 0,
            packets_out: 0,
            packets_aggregated: 0,
            bytes: 0,
            seeds: 0,
            seeds_per_device: vec![0; n],
            flows: Vec::new(),
        }
    }

    fn dummy_devices() -> Vec<Trace> {
        use crate::{CostParams, GpuContext, LaunchConfig};
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 32,
        };
        ["mgpu_pack", "mgpu_apply"]
            .iter()
            .enumerate()
            .map(|(d, kernel)| {
                let mut ctx = GpuContext::new(CostParams::p100(), 1 << 16);
                ctx.launch(kernel, cfg, |_| Ok(())).unwrap();
                ctx.trace(format!("d{d}"))
            })
            .collect()
    }

    fn synthetic() -> FleetTrace {
        let rounds = vec![
            RoundTrace {
                k: 0,
                sub_rounds: 1,
                slices: vec![slice(0, 3.0, vec![1.0, 2.0])],
                exchanges: vec![empty_exchange(0, 2)],
            },
            RoundTrace {
                k: 1,
                sub_rounds: 2,
                slices: vec![slice(0, 4.0, vec![2.0, 1.0]), slice(1, 5.0, vec![0.0, 0.5])],
                exchanges: vec![
                    ExchangeTrace {
                        after_sub_round: 0,
                        charged_ms: 0.75,
                        pack_ms: 0.25,
                        hop1_ms: 0.2,
                        hop2_ms: 0.15,
                        apply_ms: 0.1,
                        pack_bounding_device: 0,
                        apply_bounding_device: 1,
                        packets_out: 3,
                        packets_aggregated: 2,
                        bytes: 40,
                        seeds: 1,
                        seeds_per_device: vec![0, 1],
                        flows: vec![FlowEdge {
                            from_device: 0,
                            to_device: 1,
                            packets: 3,
                            bytes: 24,
                            pack_launch_seq: 0,
                            apply_launch_seq: 0,
                        }],
                    },
                    empty_exchange(1, 2),
                ],
            },
        ];
        let total = 1.0 + 3.0 + 0.0 + 4.0 + 0.75 + 5.0 + 0.0 + 0.5;
        FleetTrace::new("unit", 1.0, 0.5, total, 40, rounds, dummy_devices())
    }

    #[test]
    fn critical_path_shares_sum_and_name_resources() {
        let ft = synthetic();
        assert_eq!(ft.critical_path.len(), 2);
        let c0 = &ft.critical_path[0];
        assert_eq!(
            (c0.bound, c0.bounding_resource.as_str()),
            ("compute", "device1")
        );
        let c1 = &ft.critical_path[1];
        // compute 2.0 dominates cascade 0.5, exchange 0.35, link 0.35
        assert_eq!(
            (c1.bound, c1.bounding_resource.as_str()),
            ("compute", "device0")
        );
        for c in &ft.critical_path {
            let s = c.compute_share + c.cascade_share + c.exchange_share + c.link_share;
            assert!((s - 1.0).abs() < 1e-12, "{s}");
        }
        assert_eq!(ft.exchange_rounds, 1);
        assert_eq!(ft.border_packets, 3);
    }

    #[test]
    fn replay_must_reproduce_total_to_the_bit() {
        let ft = synthetic();
        assert!(
            ft.check_well_formed().is_ok(),
            "{:?}",
            ft.check_well_formed()
        );
        let mut bad = synthetic();
        bad.total_ms += 1e-9;
        let err = bad.check_well_formed().unwrap_err();
        assert!(err.contains("bit-for-bit"), "{err}");
    }

    #[test]
    fn check_rejects_inconsistent_ledgers() {
        let mut ft = synthetic();
        ft.rounds[1].exchanges[0].bytes = 41;
        assert!(ft.check_well_formed().unwrap_err().contains("bytes"));

        let mut ft = synthetic();
        ft.rounds[1].exchanges[0].seeds_per_device = vec![0, 0];
        assert!(ft
            .check_well_formed()
            .unwrap_err()
            .contains("seeds_per_device"));

        let mut ft = synthetic();
        ft.schema_version = 99;
        assert!(ft.check_well_formed().unwrap_err().contains("schema"));
    }

    #[test]
    fn fnv_digest_is_order_sensitive() {
        assert_ne!(fnv1a_bytes(b"ab"), fnv1a_bytes(b"ba"));
        assert_eq!(fnv1a_bytes(b""), 0xcbf2_9ce4_8422_2325);
    }
}
