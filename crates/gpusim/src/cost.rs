//! The roofline cost model.
//!
//! Each kernel launch accumulates per-block [`Counters`]; the launch's
//! simulated time is
//!
//! ```text
//! t = launch_overhead + max( makespan(block cycles over SMs) / clock,
//!                            global traffic bytes / memory bandwidth )
//! ```
//!
//! The compute term captures instruction-bound kernels (e.g. h-index
//! combiners, compaction offset math — the paper's §VI ablation insight that
//! "compaction runs additional instructions ... the cost of which is
//! non-trivial"); the bandwidth term captures the memory-bound scans and
//! adjacency walks. The makespan models the paper's block scheduling ("as
//! thread blocks terminate, new blocks are launched on the vacated SMs").
//!
//! Constants for the paper's test device are in [`CostParams::p100`]; each
//! value cites its source. The model is calibrated for *relative* orderings
//! (which algorithm wins, by roughly what factor), not absolute times —
//! EXPERIMENTS.md quantifies the match.

use crate::exec::LaunchConfig;
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-block event counters accumulated by kernels.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Counters {
    /// 128-byte global-memory transactions (coalesced accesses count one per
    /// segment; an uncoalesced warp access counts one per lane).
    pub global_tx: u64,
    /// 32-byte global-memory sector accesses — the granularity of *random*
    /// scalar reads/writes (e.g. the loop kernel's `deg[u]` probes), which on
    /// Pascal fetch one sector, not a full 128-byte line.
    pub global_sectors: u64,
    /// Serialized dependent global reads on a warp's critical path (the
    /// `v = buf[i][s']` pointer chase of Algorithm 3) — the latency the VP
    /// optimization hides by prefetching.
    pub dependent_reads: u64,
    /// Global-memory atomic operations (`atomicAdd`/`atomicSub` on device
    /// buffers).
    pub global_atomics: u64,
    /// Shared-memory atomics (cheap, hardware-accelerated — the paper's §VI
    /// point that "shared memory atomic operations have been highly
    /// optimized by NVIDIA").
    pub shared_atomics: u64,
    /// Plain shared-memory accesses.
    pub shared_accesses: u64,
    /// Warp-level instructions (one per warp per SIMT instruction, whatever
    /// the number of active lanes — divergence wastes lanes, not warps).
    pub warp_instrs: u64,
    /// Block barriers (`__syncthreads`).
    pub barriers: u64,
}

impl Counters {
    /// The counter fields as a fixed-width word array, in the canonical
    /// field order (the same order [`Counters::merge`] sums them in).
    #[inline]
    pub fn to_words(&self) -> [u64; 8] {
        [
            self.global_tx,
            self.global_sectors,
            self.dependent_reads,
            self.global_atomics,
            self.shared_atomics,
            self.shared_accesses,
            self.warp_instrs,
            self.barriers,
        ]
    }

    /// Inverse of [`Counters::to_words`].
    #[inline]
    pub fn from_words(w: [u64; 8]) -> Self {
        Counters {
            global_tx: w[0],
            global_sectors: w[1],
            dependent_reads: w[2],
            global_atomics: w[3],
            shared_atomics: w[4],
            shared_accesses: w[5],
            warp_instrs: w[6],
            barriers: w[7],
        }
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &Counters) {
        self.global_tx += other.global_tx;
        self.global_sectors += other.global_sectors;
        self.dependent_reads += other.dependent_reads;
        self.global_atomics += other.global_atomics;
        self.shared_atomics += other.shared_atomics;
        self.shared_accesses += other.shared_accesses;
        self.warp_instrs += other.warp_instrs;
        self.barriers += other.barriers;
    }

    /// Flat-combining sum of a counter slice: four fixed-width accumulator
    /// lanes of 8 words each, combined at the end — a shape the
    /// auto-vectorizer turns into packed 64-bit adds. Because u64 addition
    /// is associative and commutative, the total is bit-identical to a
    /// serial [`Counters::merge`] loop (pinned by a unit test), so launch
    /// epilogues and trace rollups can use it freely without perturbing a
    /// single golden byte.
    pub fn flat_sum(items: &[Counters]) -> Counters {
        const LANES: usize = 4;
        let mut acc = [[0u64; 8]; LANES];
        let mut chunks = items.chunks_exact(LANES);
        for chunk in &mut chunks {
            for (lane, c) in acc.iter_mut().zip(chunk) {
                let w = c.to_words();
                for (a, x) in lane.iter_mut().zip(w) {
                    *a += x;
                }
            }
        }
        let mut total = [0u64; 8];
        for lane in &acc {
            for (t, a) in total.iter_mut().zip(lane) {
                *t += a;
            }
        }
        for c in chunks.remainder() {
            for (t, x) in total.iter_mut().zip(c.to_words()) {
                *t += x;
            }
        }
        Counters::from_words(total)
    }

    /// [`Counters::flat_sum`] over an iterator (e.g. a projection of launch
    /// records): round-robins items across the same four word-array lanes.
    /// Identical totals to a serial merge loop, for the same reason.
    pub fn flat_sum_iter<'a>(items: impl Iterator<Item = &'a Counters>) -> Counters {
        const LANES: usize = 4;
        let mut acc = [[0u64; 8]; LANES];
        for (i, c) in items.enumerate() {
            let lane = &mut acc[i % LANES];
            for (a, x) in lane.iter_mut().zip(c.to_words()) {
                *a += x;
            }
        }
        let mut total = [0u64; 8];
        for lane in &acc {
            for (t, a) in total.iter_mut().zip(lane) {
                *t += a;
            }
        }
        Counters::from_words(total)
    }
}

/// Calibrated device constants.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Global (HBM) bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Host↔device (PCIe) bandwidth in bytes/s.
    pub pcie_bandwidth: f64,
    /// Fixed kernel-launch overhead in seconds.
    pub kernel_launch_s: f64,
    /// Issue cycles per 128-byte global transaction (latency is otherwise
    /// hidden by warp oversubscription; throughput is the bandwidth term).
    pub tx_issue_cycles: f64,
    /// Issue cycles per 32-byte random sector access.
    pub sector_issue_cycles: f64,
    /// Exposed latency cycles per serialized dependent read (amortized over
    /// the ~8× warp oversubscription a P100 SM sustains; raw DRAM latency is
    /// hundreds of cycles, but only the un-overlapped residue lands on the
    /// critical path).
    pub dependent_latency_cycles: f64,
    /// Fixed per-call host↔device transfer latency (driver + PCIe round
    /// trip), seconds. Dominates tiny synchronizing copies like the
    /// per-round `gpu_count` readback of Algorithm 1.
    pub pcie_latency_s: f64,
    /// Cycles per global atomic.
    pub global_atomic_cycles: f64,
    /// Cycles per shared-memory atomic.
    pub shared_atomic_cycles: f64,
    /// Cycles per plain shared-memory access.
    pub shared_access_cycles: f64,
    /// Cycles per warp instruction.
    pub instr_cycles: f64,
    /// Cycles per block barrier.
    pub barrier_cycles: f64,
    /// Global-traffic bytes attributed to one global atomic (read-modify-
    /// write of one 32-byte sector).
    pub atomic_traffic_bytes: u64,
    /// Maximum resident threads per SM (occupancy ceiling).
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM (hardware scheduler limit).
    pub max_blocks_per_sm: u32,
}

impl CostParams {
    /// NVIDIA Tesla P100 (the paper's device, §VI):
    /// 56 SMs, 1.33 GHz boost clock, 732 GB/s HBM2, 16 GB global memory
    /// (capacity is configured on the [`crate::Device`], not here), PCIe 3
    /// x16 ≈ 12 GB/s effective. Launch overhead ~5 µs is the commonly
    /// measured null-kernel cost. Atomic costs reflect Pascal's optimized
    /// atomics (the paper's [11]): shared atomics near register speed,
    /// global atomics ~1 sector round trip amortized.
    pub fn p100() -> Self {
        CostParams {
            sm_count: 56,
            clock_hz: 1.33e9,
            mem_bandwidth: 732e9,
            pcie_bandwidth: 12e9,
            kernel_launch_s: 5e-6,
            tx_issue_cycles: 4.0,
            sector_issue_cycles: 4.0,
            dependent_latency_cycles: 6.0,
            pcie_latency_s: 8e-6,
            global_atomic_cycles: 24.0,
            shared_atomic_cycles: 3.0,
            shared_access_cycles: 2.0,
            instr_cycles: 1.0,
            barrier_cycles: 32.0,
            atomic_traffic_bytes: 32,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
        }
    }

    /// Blocks of `cfg`'s width that can be *resident* on one SM at once:
    /// the thread-count ceiling (`max_threads_per_sm / BLK_DIM`) clamped by
    /// the hardware block-scheduler limit, never below one. With the paper's
    /// 1024-thread blocks a P100 SM holds 2 blocks.
    pub fn occupancy(&self, cfg: &LaunchConfig) -> u32 {
        (self.max_threads_per_sm / cfg.threads_per_block.max(1))
            .min(self.max_blocks_per_sm)
            .max(1)
    }

    /// Compute cycles a block's counters cost on one SM.
    pub fn block_cycles(&self, c: &Counters) -> f64 {
        c.global_tx as f64 * self.tx_issue_cycles
            + c.global_sectors as f64 * self.sector_issue_cycles
            + c.dependent_reads as f64 * self.dependent_latency_cycles
            + c.global_atomics as f64 * self.global_atomic_cycles
            + c.shared_atomics as f64 * self.shared_atomic_cycles
            + c.shared_accesses as f64 * self.shared_access_cycles
            + c.warp_instrs as f64 * self.instr_cycles
            + c.barriers as f64 * self.barrier_cycles
    }

    /// Global-memory traffic in bytes implied by the counters.
    pub fn traffic_bytes(&self, c: &Counters) -> u64 {
        c.global_tx * 128
            + c.global_sectors * 32
            + c.dependent_reads * 32
            + c.global_atomics * self.atomic_traffic_bytes
    }

    /// Roofline decomposition of a launch: the fixed launch overhead, the
    /// compute makespan term, and the bandwidth term. `block_cycles` holds
    /// one entry per block, in dispatch order; blocks are greedily assigned
    /// to the least-loaded SM (the hardware's dispatch behaviour).
    pub fn roofline(&self, block_cycles: &[f64], total_traffic_bytes: u64) -> Roofline {
        let makespan = makespan(block_cycles, self.sm_count as usize);
        Roofline {
            launch_overhead_s: self.kernel_launch_s,
            compute_s: makespan / self.clock_hz,
            mem_s: total_traffic_bytes as f64 / self.mem_bandwidth,
        }
    }

    /// Kernel time: launch overhead + roofline of compute makespan vs
    /// bandwidth (see [`CostParams::roofline`] for the decomposition).
    pub fn kernel_time_s(&self, block_cycles: &[f64], total_traffic_bytes: u64) -> f64 {
        self.roofline(block_cycles, total_traffic_bytes).total_s()
    }
}

/// The roofline decomposition of one launch's simulated time.
///
/// The launch's duration is `launch_overhead_s + max(compute_s, mem_s)`
/// ([`Roofline::total_s`]); [`Roofline::bound`] names the binding term.
/// Profiling traces carry this per launch so a dump shows *why* a kernel
/// costs what it costs, not just how much.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Roofline {
    /// Fixed kernel-launch overhead, seconds ([`CostParams::kernel_launch_s`]).
    pub launch_overhead_s: f64,
    /// Compute term: block-cycle makespan over the SMs / clock, seconds.
    pub compute_s: f64,
    /// Bandwidth term: global traffic bytes / memory bandwidth, seconds.
    pub mem_s: f64,
}

impl Roofline {
    /// The launch's total simulated duration.
    pub fn total_s(&self) -> f64 {
        self.launch_overhead_s + self.compute_s.max(self.mem_s)
    }

    /// Which term binds: `"launch"` when the fixed overhead exceeds both
    /// roofline terms, else `"compute"` or `"memory"` (ties → `"compute"`).
    pub fn bound(&self) -> &'static str {
        if self.launch_overhead_s >= self.compute_s.max(self.mem_s) {
            "launch"
        } else if self.compute_s >= self.mem_s {
            "compute"
        } else {
            "memory"
        }
    }
}

/// One block's placement in the per-SM schedule of a launch
/// ([`schedule_blocks`]): which SM (and residency slot on it) ran the block
/// and over which simulated cycle interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BlockSchedule {
    /// Block index within the grid (`blockIdx.x`).
    pub block: u32,
    /// SM the block ran on.
    pub sm: u32,
    /// Residency slot on that SM (0-based; bounded by
    /// [`CostParams::occupancy`]).
    pub slot: u32,
    /// Cycle at which the block began executing, relative to launch start.
    pub start_cycles: f64,
    /// Cycle at which the block retired.
    pub end_cycles: f64,
}

/// Deterministic per-SM block scheduling of a launch: each of `sm_count` SMs
/// offers `occupancy` residency slots; a slot executes its blocks
/// back-to-back. Blocks dispatch in index order to the earliest-free slot
/// (ties → lowest SM, then lowest slot), so uniform grids round-robin across
/// the SMs first and only then stack residency — the hardware's "as thread
/// blocks terminate, new blocks are launched on the vacated SMs" behaviour
/// with occupancy-limited residency. The returned spans drive the
/// [`crate::timeline::Timeline`] events; their makespan is the schedule's
/// compute horizon.
pub fn schedule_blocks(block_cycles: &[f64], sm_count: u32, occupancy: u32) -> Vec<BlockSchedule> {
    let sms = sm_count.max(1) as usize;
    let occ = occupancy.max(1) as usize;
    // context index = slot * sms + sm, so the tie-break "lowest context
    // index" fills slot 0 of every SM before any SM hosts a second block.
    // A min-heap keyed (free_at, ctx) pops exactly the lexicographic
    // minimum the old linear min-scan selected, so assignments — and the
    // float addition order behind every timestamp — are bit-identical,
    // in O(blocks log contexts) instead of O(blocks · contexts).
    let mut heap: BinaryHeap<Reverse<SlotKey>> =
        (0..sms * occ).map(|i| Reverse(SlotKey(0.0, i))).collect();
    block_cycles
        .iter()
        .enumerate()
        .map(|(b, &cycles)| {
            let Reverse(SlotKey(start, ctx_idx)) = heap.pop().unwrap();
            let end = start + cycles;
            heap.push(Reverse(SlotKey(end, ctx_idx)));
            BlockSchedule {
                block: b as u32,
                sm: (ctx_idx % sms) as u32,
                slot: (ctx_idx / sms) as u32,
                start_cycles: start,
                end_cycles: end,
            }
        })
        .collect()
}

/// Heap key for the greedy schedulers: least load first, ties broken by
/// lowest machine/context index — the order the old linear `min_by` scans
/// established. Loads are finite sums of non-negative cycles, so the
/// `partial_cmp` unwrap cannot see a NaN.
#[derive(PartialEq)]
struct SlotKey(f64, usize);

impl Eq for SlotKey {}

impl PartialOrd for SlotKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SlotKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap()
            .then(self.1.cmp(&other.1))
    }
}

/// Greedy list-scheduling makespan of `jobs` on `machines` (dispatch order,
/// least-loaded machine first, lowest index on load ties) — how block grids
/// fill SMs. Small machine counts (every real GPU) use an allocation-free
/// linear min-scan; larger ones a heap. Both make the same (load,
/// lowest-index) selection per job: identical assignment, identical float
/// results.
pub fn makespan(jobs: &[f64], machines: usize) -> f64 {
    assert!(machines > 0);
    if machines == 1 {
        // same accumulation order as the general path's single machine
        return jobs.iter().fold(0.0, |acc, &j| acc + j);
    }
    if machines <= 128 {
        // Hot shape: one call per launch with jobs = per-block cycles. The
        // strict `<` keeps the lowest-index machine on equal loads — the
        // same selection the heap's `SlotKey` ordering makes.
        let mut loads = [0.0f64; 128];
        let loads = &mut loads[..machines];
        for &j in jobs {
            let mut best = 0usize;
            for (m, &l) in loads.iter().enumerate().skip(1) {
                if l < loads[best] {
                    best = m;
                }
            }
            loads[best] += j;
        }
        return loads.iter().fold(0.0, |acc, &l| f64::max(acc, l));
    }
    let mut heap: BinaryHeap<Reverse<SlotKey>> =
        (0..machines).map(|i| Reverse(SlotKey(0.0, i))).collect();
    for &j in jobs {
        let Reverse(SlotKey(load, idx)) = heap.pop().unwrap();
        heap.push(Reverse(SlotKey(load + j, idx)));
    }
    heap.into_iter()
        .map(|Reverse(SlotKey(load, _))| load)
        .fold(0.0, f64::max)
}

/// A record of one simulated kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchRecord {
    /// Kernel name.
    pub name: &'static str,
    /// Algorithm phase active at launch time ([`crate::GpuContext::set_phase`]).
    pub phase: &'static str,
    /// Grid geometry of the launch.
    pub config: LaunchConfig,
    /// Sim-clock timestamp at which the launch was issued, seconds.
    pub start_s: f64,
    /// Simulated duration of this launch, in seconds.
    pub time_s: f64,
    /// Summed counters over all blocks.
    pub counters: Counters,
    /// Roofline decomposition of `time_s` (launch / compute / bandwidth).
    pub roofline: Roofline,
    /// Largest single-block cycle count (load-imbalance diagnostics).
    pub max_block_cycles: f64,
    /// Total cycle count across blocks.
    pub sum_block_cycles: f64,
    /// Every block's priced cycle count, in dispatch order — the input the
    /// timeline's per-SM scheduler replays ([`schedule_blocks`]).
    pub block_cycles: Vec<f64>,
    /// Per-block counter deltas, recorded only when block profiling is on
    /// ([`crate::GpuContext::set_block_profiling`]) — `counters` is their sum.
    pub block_counters: Option<Vec<Counters>>,
}

impl LaunchRecord {
    /// Number of blocks in the launch grid.
    pub fn blocks(&self) -> u32 {
        self.config.blocks
    }
}

/// Direction of a recorded host↔device copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TransferDir {
    /// Host → device (`cudaMemcpyHostToDevice`).
    HostToDevice,
    /// Device → host (`cudaMemcpyDeviceToHost`).
    DeviceToHost,
}

/// A record of one simulated host↔device transfer.
#[derive(Debug, Clone, Serialize)]
pub struct TransferRecord {
    /// Algorithm phase active at transfer time.
    pub phase: &'static str,
    /// Sim-clock timestamp at which the copy was issued, seconds.
    pub start_s: f64,
    /// Copy direction.
    pub dir: TransferDir,
    /// Payload size.
    pub bytes: u64,
    /// Simulated duration (PCIe latency + bytes / PCIe bandwidth), seconds.
    pub time_s: f64,
}

/// One host-sampled point on a named counter track (e.g. per-round frontier
/// size), timestamped with the sim clock at the moment of sampling. Sampling
/// is free (no simulated cost) — it is pure observability, recorded by
/// [`crate::GpuContext::sample_counter`] and exported as a Perfetto counter
/// track.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CounterSample {
    /// Track name (`"frontier"`, `"changed"`, …).
    pub track: &'static str,
    /// Algorithm phase active at sampling time.
    pub phase: &'static str,
    /// Sim-clock timestamp, seconds.
    pub time_s: f64,
    /// Sampled value.
    pub value: f64,
}

/// Summary of a whole simulated program run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Total simulated time (kernels + transfers), milliseconds.
    pub total_ms: f64,
    /// Number of kernel launches.
    pub launches: u64,
    /// Host→device bytes moved.
    pub h2d_bytes: u64,
    /// Device→host bytes moved.
    pub d2h_bytes: u64,
    /// Peak device memory, bytes.
    pub peak_mem_bytes: u64,
    /// Grand-total counters.
    pub counters: Counters,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_balances() {
        // 4 equal jobs on 2 machines -> 2 jobs each
        assert_eq!(makespan(&[1.0, 1.0, 1.0, 1.0], 2), 2.0);
        // one big job dominates
        assert_eq!(makespan(&[10.0, 1.0, 1.0], 4), 10.0);
        // empty
        assert_eq!(makespan(&[], 8), 0.0);
        // more machines than jobs
        assert_eq!(makespan(&[3.0, 2.0], 56), 3.0);
    }

    #[test]
    fn makespan_scan_matches_heap() {
        // The small-machine linear scan must make bit-identical float sums
        // to the heap path (same per-job machine selection).
        let jobs: Vec<f64> = (0..108).map(|i| ((i * 37 % 19) as f64) + 0.25).collect();
        let m = 56;
        let mut heap: BinaryHeap<Reverse<SlotKey>> =
            (0..m).map(|i| Reverse(SlotKey(0.0, i))).collect();
        for &j in &jobs {
            let Reverse(SlotKey(load, idx)) = heap.pop().unwrap();
            heap.push(Reverse(SlotKey(load + j, idx)));
        }
        let expect = heap
            .into_iter()
            .map(|Reverse(SlotKey(l, _))| l)
            .fold(0.0, f64::max);
        assert_eq!(makespan(&jobs, m), expect);
    }

    #[test]
    fn roofline_picks_binding_constraint() {
        let p = CostParams::p100();
        // pure compute: 1 block, lots of instructions, no traffic
        let t_compute = p.kernel_time_s(&[1.33e9], 0); // 1e9-cycle block = 1 s
        assert!((t_compute - (1.0 + p.kernel_launch_s)).abs() < 1e-9);
        // pure memory: trivial compute, 732 GB of traffic = 1 s
        let t_mem = p.kernel_time_s(&[1.0], 732_000_000_000);
        assert!((t_mem - (1.0 + p.kernel_launch_s)).abs() < 1e-6);
    }

    #[test]
    fn block_cycles_sums_components() {
        let p = CostParams::p100();
        let c = Counters {
            global_tx: 2,
            global_sectors: 3,
            dependent_reads: 1,
            global_atomics: 1,
            shared_atomics: 1,
            shared_accesses: 1,
            warp_instrs: 10,
            barriers: 1,
        };
        let expect = 2.0 * p.tx_issue_cycles
            + 3.0 * p.sector_issue_cycles
            + p.dependent_latency_cycles
            + p.global_atomic_cycles
            + p.shared_atomic_cycles
            + p.shared_access_cycles
            + 10.0 * p.instr_cycles
            + p.barrier_cycles;
        assert_eq!(p.block_cycles(&c), expect);
        assert_eq!(p.traffic_bytes(&c), 2 * 128 + 3 * 32 + 32 + 32);
    }

    #[test]
    fn counters_merge() {
        let mut a = Counters {
            global_tx: 1,
            ..Default::default()
        };
        let b = Counters {
            global_tx: 2,
            warp_instrs: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.global_tx, 3);
        assert_eq!(a.warp_instrs, 5);
    }

    #[test]
    fn flat_sum_matches_serial_merge() {
        // every length around the 4-lane chunk boundary, with all fields live
        for len in 0..=11usize {
            let items: Vec<Counters> = (0..len)
                .map(|i| {
                    let mut w = [0u64; 8];
                    for (j, slot) in w.iter_mut().enumerate() {
                        *slot = (i as u64 + 1) * 1_000_003 + j as u64 * 7919;
                    }
                    Counters::from_words(w)
                })
                .collect();
            let mut serial = Counters::default();
            for c in &items {
                serial.merge(c);
            }
            assert_eq!(Counters::flat_sum(&items), serial, "len={len}");
        }
    }

    #[test]
    fn counters_words_round_trip() {
        let c = Counters {
            global_tx: 1,
            global_sectors: 2,
            dependent_reads: 3,
            global_atomics: 4,
            shared_atomics: 5,
            shared_accesses: 6,
            warp_instrs: 7,
            barriers: 8,
        };
        assert_eq!(Counters::from_words(c.to_words()), c);
    }

    #[test]
    fn occupancy_respects_thread_and_block_limits() {
        let p = CostParams::p100();
        let cfg = |tpb: u32| LaunchConfig {
            blocks: 108,
            threads_per_block: tpb,
        };
        assert_eq!(p.occupancy(&cfg(1024)), 2); // 2048 / 1024
        assert_eq!(p.occupancy(&cfg(256)), 8);
        assert_eq!(p.occupancy(&cfg(32)), 32); // block-scheduler limit binds
        assert_eq!(p.occupancy(&cfg(2048)), 1);
    }

    #[test]
    fn schedule_round_robins_before_stacking_residency() {
        // 6 equal blocks, 4 SMs, occupancy 2: blocks 0-3 land on SMs 0-3
        // slot 0 at cycle 0; blocks 4-5 stack onto slot 1 of SMs 0-1.
        let s = schedule_blocks(&[10.0; 6], 4, 2);
        for b in 0..4 {
            assert_eq!((s[b].sm, s[b].slot, s[b].start_cycles), (b as u32, 0, 0.0));
        }
        assert_eq!((s[4].sm, s[4].slot), (0, 1));
        assert_eq!((s[5].sm, s[5].slot), (1, 1));
        assert_eq!(s[5].end_cycles, 10.0);
    }

    #[test]
    fn schedule_backfills_vacated_slots() {
        // occupancy 1, 2 SMs: the third block waits for the earliest SM.
        let s = schedule_blocks(&[5.0, 20.0, 7.0], 2, 1);
        assert_eq!(
            (s[2].sm, s[2].start_cycles, s[2].end_cycles),
            (0, 5.0, 12.0)
        );
        // schedule makespan matches the greedy makespan on the same machines
        let horizon = s.iter().map(|b| b.end_cycles).fold(0.0, f64::max);
        assert_eq!(horizon, makespan(&[5.0, 20.0, 7.0], 2));
    }

    #[test]
    fn schedule_is_deterministic_and_covers_all_blocks() {
        let cycles: Vec<f64> = (0..200).map(|i| ((i * 37) % 97) as f64).collect();
        let a = schedule_blocks(&cycles, 56, 2);
        let b = schedule_blocks(&cycles, 56, 2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        for (i, sp) in a.iter().enumerate() {
            assert_eq!(sp.block as usize, i);
            assert!(sp.sm < 56 && sp.slot < 2);
            assert!((sp.end_cycles - sp.start_cycles - cycles[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn launch_overhead_dominates_empty_kernel() {
        let p = CostParams::p100();
        let t = p.kernel_time_s(&[0.0; 108], 0);
        assert!((t - p.kernel_launch_s).abs() < 1e-12);
    }
}
