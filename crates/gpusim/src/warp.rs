//! Warp-level primitives (`__ballot_sync`, `__shfl_sync`, `__popc`).
//!
//! A warp is modelled as a slice of up to 32 lane values; a primitive is one
//! SIMT instruction executed by the whole warp, charged accordingly.

use crate::exec::BlockCtx;

/// Lanes per warp.
pub const WARP_SIZE: usize = 32;

/// `__ballot_sync`: packs each lane's predicate into a 32-bit mask
/// (lane `i` → bit `i`). One warp instruction.
pub fn ballot_sync(blk: &mut BlockCtx<'_>, predicates: &[bool]) -> u32 {
    assert!(predicates.len() <= WARP_SIZE);
    blk.charge_instr(1);
    let mut bits = 0u32;
    for (i, &p) in predicates.iter().enumerate() {
        if p {
            bits |= 1 << i;
        }
    }
    bits
}

/// `__popc` on each lane's mask — one warp instruction for the whole warp.
pub fn popc_lanes(blk: &mut BlockCtx<'_>, masks: &[u32]) -> Vec<u32> {
    blk.charge_instr(1);
    masks.iter().map(|m| m.count_ones()).collect()
}

/// `__shfl_sync` broadcast: every lane receives lane `src_lane`'s value.
/// One warp instruction.
pub fn shfl_broadcast(blk: &mut BlockCtx<'_>, values: &[u32], src_lane: usize) -> u32 {
    assert!(src_lane < values.len());
    blk.charge_instr(1);
    values[src_lane]
}

/// `__shfl_up_sync(delta)`: lane `i` receives lane `i - delta`'s value (lanes
/// below `delta` keep their own). One warp instruction. Used by the
/// Hillis–Steele scan.
pub fn shfl_up(blk: &mut BlockCtx<'_>, values: &[u32], delta: usize) -> Vec<u32> {
    blk.charge_instr(1);
    (0..values.len())
        .map(|i| {
            if i >= delta {
                values[i - delta]
            } else {
                values[i]
            }
        })
        .collect()
}

/// `__shfl_up_sync(delta)` computed in place — identical semantics and
/// charge to [`shfl_up`] but without the per-call `Vec`. A high-to-low sweep
/// reads each `lanes[i - delta]` before the sweep reaches it, so every read
/// observes the pre-shuffle value.
pub fn shfl_up_in_place(blk: &mut BlockCtx<'_>, lanes: &mut [u32], delta: usize) {
    blk.charge_instr(1);
    for i in (delta..lanes.len()).rev() {
        lanes[i] = lanes[i - delta];
    }
}

/// The mask of bits strictly below `lane` — the "last j bits" mask of the
/// paper's Fig. 8(c) ballot-scan illustration.
pub fn lane_mask_lt(lane: usize) -> u32 {
    debug_assert!(lane < WARP_SIZE);
    (1u32 << lane) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostParams, GpuContext, LaunchConfig};
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Runs `f` inside a one-block kernel and returns the instruction count.
    fn in_block(f: impl Fn(&mut BlockCtx<'_>) + Sync) -> u64 {
        let mut c = GpuContext::new(CostParams::p100(), 1 << 16);
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 32,
        };
        let instrs = AtomicU32::new(0);
        c.launch("t", cfg, |blk| {
            f(blk);
            instrs.store(blk.counters.warp_instrs as u32, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        instrs.load(Ordering::Relaxed) as u64
    }

    #[test]
    fn ballot_packs_bits() {
        in_block(|blk| {
            let preds = [true, false, true, true];
            assert_eq!(ballot_sync(blk, &preds), 0b1101);
            let all: Vec<bool> = vec![true; 32];
            assert_eq!(ballot_sync(blk, &all), u32::MAX);
            assert_eq!(ballot_sync(blk, &[]), 0);
        });
    }

    #[test]
    fn popc_counts() {
        in_block(|blk| {
            assert_eq!(popc_lanes(blk, &[0b1011, 0, u32::MAX]), vec![3, 0, 32]);
        });
    }

    #[test]
    fn broadcast_and_shfl_up() {
        in_block(|blk| {
            let vals = [10, 20, 30, 40];
            assert_eq!(shfl_broadcast(blk, &vals, 2), 30);
            assert_eq!(shfl_up(blk, &vals, 1), vec![10, 10, 20, 30]);
            assert_eq!(shfl_up(blk, &vals, 2), vec![10, 20, 10, 20]);
        });
    }

    #[test]
    fn shfl_up_in_place_matches_allocating() {
        in_block(|blk| {
            let vals: Vec<u32> = (0..32).map(|i| i * 3 + 1).collect();
            for delta in [1usize, 2, 4, 8, 16, 31] {
                let expect = shfl_up(blk, &vals, delta);
                let mut lanes = vals.clone();
                shfl_up_in_place(blk, &mut lanes, delta);
                assert_eq!(lanes, expect, "delta {delta}");
            }
        });
    }

    #[test]
    fn lane_masks() {
        assert_eq!(lane_mask_lt(0), 0);
        assert_eq!(lane_mask_lt(3), 0b111);
        assert_eq!(lane_mask_lt(31), 0x7fff_ffff);
    }

    #[test]
    fn primitives_charge_one_instruction_each() {
        let n = in_block(|blk| {
            let _ = ballot_sync(blk, &[true; 32]);
            let _ = popc_lanes(blk, &[1; 32]);
            let _ = shfl_broadcast(blk, &[1; 32], 0);
            let _ = shfl_up(blk, &[1; 32], 4);
        });
        assert_eq!(n, 4);
    }
}
