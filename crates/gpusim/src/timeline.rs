//! SM-level execution timeline and hotspot attribution.
//!
//! The trace subsystem ([`crate::trace`]) answers *how much* each launch
//! cost; this module answers **when and where** inside the device those
//! costs arose:
//!
//! * [`Timeline`] — every block of every launch placed on the SM (and
//!   residency slot) that ran it, with sim-clock begin/end timestamps
//!   derived from the cost model's per-block cycle counts via the
//!   deterministic scheduler in [`crate::cost::schedule_blocks`]. Host↔device
//!   copies and host-sampled counter tracks (frontier size per round, …)
//!   ride along so the whole run renders as one coherent picture.
//! * [`Hotspot`] — per-kernel attribution of the charged time to *why* it
//!   was charged: launch overhead, divergence/load-imbalance exposure,
//!   atomic contention, uncoalesced sector traffic, coalesced transactions,
//!   shared-memory work, plain instructions, barriers, and bandwidth stall,
//!   plus the top-k most expensive blocks (the simulator charges at warp
//!   granularity inside a block, so a skewed warp surfaces as a skewed
//!   block).
//!
//! **Timestamp derivation.** A launch's record stores its issue time
//! (`start_s`) and each block's priced cycle count. The scheduler replays
//! dispatch onto `sm_count × occupancy` residency slots; the resulting cycle
//! offsets are then scaled so the schedule spans exactly the launch's
//! roofline-charged execution window (`time_s − launch_overhead_s`). For a
//! compute-bound launch that scale is just `1/clock_hz`; for a
//! bandwidth-bound launch the blocks stretch proportionally — the DRAM stall
//! is distributed over the blocks that caused the traffic. Everything is
//! simulated arithmetic over recorded values, so a timeline (and its
//! Perfetto export) is bit-identical across runs and host thread counts.

use crate::cost::{schedule_blocks, CostParams, LaunchRecord, TransferDir};
use crate::exec::GpuContext;
use crate::trace::TRACE_SCHEMA_VERSION;
use serde::Serialize;

/// An SM-level execution timeline of one simulated run.
#[derive(Debug, Clone, Serialize)]
pub struct Timeline {
    /// Trace-subsystem schema version (shared with [`crate::trace::Trace`]).
    pub schema_version: u32,
    /// Caller-chosen run label.
    pub label: String,
    /// SMs on the simulated device (one Perfetto track each).
    pub sm_count: u32,
    /// One span per executed block, in (launch, block) order.
    pub spans: Vec<TimelineSpan>,
    /// Host↔device copies as timeline spans, in issue order.
    pub transfers: Vec<TransferSpan>,
    /// Host-sampled counter-track points, in sampling order.
    pub counters: Vec<CounterPoint>,
    /// Device-allocation lifetimes as timeline spans, in allocation order
    /// (schema v3; drives the Perfetto memory process and `device_bytes`
    /// counter track).
    pub memory: Vec<MemSpan>,
}

/// One block's residency on one SM.
#[derive(Debug, Clone, Serialize)]
pub struct TimelineSpan {
    /// Launch ordinal the block belongs to.
    pub launch_seq: usize,
    /// Kernel name.
    pub kernel: &'static str,
    /// Phase active at launch time.
    pub phase: &'static str,
    /// SM that ran the block.
    pub sm: u32,
    /// Residency slot on the SM (occupancy-limited).
    pub slot: u32,
    /// Block index within the grid.
    pub block: u32,
    /// Warps the block occupied while resident.
    pub warps: u32,
    /// Sim-clock begin, ms.
    pub start_ms: f64,
    /// Sim-clock end, ms.
    pub end_ms: f64,
}

/// One host↔device copy on the timeline.
#[derive(Debug, Clone, Serialize)]
pub struct TransferSpan {
    /// Transfer ordinal.
    pub seq: usize,
    /// Phase active at issue time.
    pub phase: &'static str,
    /// `"h2d"` or `"d2h"`.
    pub dir: &'static str,
    /// Payload bytes.
    pub bytes: u64,
    /// Sim-clock begin, ms.
    pub start_ms: f64,
    /// Sim-clock end, ms.
    pub end_ms: f64,
}

/// One device allocation's lifetime on the timeline.
#[derive(Debug, Clone, Serialize)]
pub struct MemSpan {
    /// Allocation name.
    pub name: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Scaling tag declared at the alloc site.
    pub size_class: crate::device::SizeClass,
    /// Phase the allocation was made in.
    pub phase: &'static str,
    /// Device slot the allocation occupied (its lane: slots are reused
    /// after a free, so consecutive lifetimes can share a lane).
    pub slot: u64,
    /// Sim-clock allocation time, ms.
    pub start_ms: f64,
    /// Sim-clock free time, ms (allocations never freed extend to the end
    /// of the run).
    pub end_ms: f64,
    /// Whether the allocation was freed before the snapshot.
    pub freed: bool,
}

/// One sampled point on a named counter track.
#[derive(Debug, Clone, Serialize)]
pub struct CounterPoint {
    /// Track name.
    pub track: &'static str,
    /// Phase active at sampling time.
    pub phase: &'static str,
    /// Sim-clock timestamp, ms.
    pub time_ms: f64,
    /// Sampled value.
    pub value: f64,
}

/// Per-kernel attribution of charged time to its causes. All `*_ms` buckets
/// sum to `total_ms` (up to float rounding): the fixed launch overheads,
/// then the execution window split into divergence exposure, bandwidth
/// stall, and the balanced compute distributed proportionally to the cycle
/// buckets the kernels actually charged.
#[derive(Debug, Clone, Serialize)]
pub struct Hotspot {
    /// Kernel name the attribution aggregates over.
    pub kernel: &'static str,
    /// Launches of this kernel.
    pub launches: u64,
    /// Total simulated time across those launches, ms.
    pub total_ms: f64,
    /// Fixed per-launch overhead, ms.
    pub launch_overhead_ms: f64,
    /// Divergence / load-imbalance exposure: SM-idle time caused by skewed
    /// per-block (and therefore per-warp) cycle counts — the makespan minus
    /// the perfectly balanced compute time, ms.
    pub divergence_ms: f64,
    /// Bandwidth stall: execution time beyond the compute makespan on
    /// memory-bound launches, ms.
    pub mem_stall_ms: f64,
    /// Global + shared atomic contention share of balanced compute, ms.
    pub atomics_ms: f64,
    /// Uncoalesced traffic share (random sectors + serialized dependent
    /// reads), ms.
    pub uncoalesced_ms: f64,
    /// Coalesced 128-byte transaction issue share, ms.
    pub coalesced_ms: f64,
    /// Shared-memory access share, ms.
    pub shared_ms: f64,
    /// Plain warp-instruction share, ms.
    pub instr_ms: f64,
    /// `__syncthreads` barrier share, ms.
    pub barrier_ms: f64,
    /// The most expensive blocks across all launches of this kernel,
    /// worst first.
    pub top_blocks: Vec<BlockCost>,
}

/// One expensive block, for hotspot top-k lists.
#[derive(Debug, Clone, Serialize)]
pub struct BlockCost {
    /// Launch ordinal the block ran in.
    pub launch_seq: usize,
    /// Block index within that launch's grid.
    pub block: u32,
    /// Priced cycles the block charged.
    pub cycles: f64,
}

impl Hotspot {
    /// The largest attribution bucket, as `(name, ms)` — what to blame
    /// first. Launch overhead competes too (the paper's many-tiny-launch
    /// pathology shows up here).
    pub fn dominant_bucket(&self) -> (&'static str, f64) {
        [
            ("launch_overhead", self.launch_overhead_ms),
            ("divergence", self.divergence_ms),
            ("mem_stall", self.mem_stall_ms),
            ("atomics", self.atomics_ms),
            ("uncoalesced", self.uncoalesced_ms),
            ("coalesced", self.coalesced_ms),
            ("shared", self.shared_ms),
            ("instr", self.instr_ms),
            ("barriers", self.barrier_ms),
        ]
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(a.0)))
        .unwrap()
    }
}

/// Builds per-kernel [`Hotspot`] records from launch records, keeping the
/// `top_k` worst blocks per kernel. Kernels appear in first-launch order.
pub fn hotspots(launches: &[LaunchRecord], cost: &CostParams, top_k: usize) -> Vec<Hotspot> {
    let mut out: Vec<Hotspot> = Vec::new();
    let mut blocks: Vec<Vec<BlockCost>> = Vec::new();
    for (seq, l) in launches.iter().enumerate() {
        let idx = if let Some(i) = out.iter().position(|h| h.kernel == l.name) {
            i
        } else {
            out.push(Hotspot {
                kernel: l.name,
                launches: 0,
                total_ms: 0.0,
                launch_overhead_ms: 0.0,
                divergence_ms: 0.0,
                mem_stall_ms: 0.0,
                atomics_ms: 0.0,
                uncoalesced_ms: 0.0,
                coalesced_ms: 0.0,
                shared_ms: 0.0,
                instr_ms: 0.0,
                barrier_ms: 0.0,
                top_blocks: Vec::new(),
            });
            blocks.push(Vec::new());
            out.len() - 1
        };
        let h = &mut out[idx];
        h.launches += 1;
        h.total_ms += l.time_s * 1e3;
        h.launch_overhead_ms += l.roofline.launch_overhead_s * 1e3;
        let exec_s = l.time_s - l.roofline.launch_overhead_s;
        // Bandwidth stall: whatever the roofline charged beyond the compute
        // makespan (zero for compute-bound launches).
        let mem_stall_s = (exec_s - l.roofline.compute_s).max(0.0);
        h.mem_stall_ms += mem_stall_s * 1e3;
        // Divergence/imbalance exposure: makespan minus perfectly balanced
        // distribution of the summed cycles over the SMs.
        let balanced_s = l.sum_block_cycles / cost.sm_count as f64 / cost.clock_hz;
        let divergence_s = (l.roofline.compute_s - balanced_s).max(0.0);
        h.divergence_ms += divergence_s * 1e3;
        // The balanced share splits proportionally to the cycle buckets the
        // blocks actually charged.
        let c = &l.counters;
        let atomics = c.global_atomics as f64 * cost.global_atomic_cycles
            + c.shared_atomics as f64 * cost.shared_atomic_cycles;
        let uncoalesced = c.global_sectors as f64 * cost.sector_issue_cycles
            + c.dependent_reads as f64 * cost.dependent_latency_cycles;
        let coalesced = c.global_tx as f64 * cost.tx_issue_cycles;
        let shared = c.shared_accesses as f64 * cost.shared_access_cycles;
        let instr = c.warp_instrs as f64 * cost.instr_cycles;
        let barrier = c.barriers as f64 * cost.barrier_cycles;
        let total_cycles = atomics + uncoalesced + coalesced + shared + instr + barrier;
        if total_cycles > 0.0 {
            let per_cycle_ms = balanced_s / total_cycles * 1e3;
            h.atomics_ms += atomics * per_cycle_ms;
            h.uncoalesced_ms += uncoalesced * per_cycle_ms;
            h.coalesced_ms += coalesced * per_cycle_ms;
            h.shared_ms += shared * per_cycle_ms;
            h.instr_ms += instr * per_cycle_ms;
            h.barrier_ms += barrier * per_cycle_ms;
        }
        for (b, &cyc) in l.block_cycles.iter().enumerate() {
            blocks[idx].push(BlockCost {
                launch_seq: seq,
                block: b as u32,
                cycles: cyc,
            });
        }
    }
    for (h, mut bl) in out.iter_mut().zip(blocks) {
        bl.sort_by(|a, b| {
            b.cycles
                .partial_cmp(&a.cycles)
                .unwrap()
                .then(a.launch_seq.cmp(&b.launch_seq))
                .then(a.block.cmp(&b.block))
        });
        bl.truncate(top_k);
        h.top_blocks = bl;
    }
    out
}

impl GpuContext {
    /// Builds the SM-level [`Timeline`] of everything recorded so far. Pure
    /// derivation over the launch/transfer/sample records — cheap, callable
    /// mid-run, and deterministic (see the module docs for how timestamps
    /// derive from the cost model).
    pub fn timeline(&self, label: impl Into<String>) -> Timeline {
        let mut spans = Vec::new();
        for (seq, l) in self.launches().iter().enumerate() {
            let occ = self.cost.occupancy(&l.config);
            let sched = schedule_blocks(&l.block_cycles, self.cost.sm_count, occ);
            let horizon = sched.iter().map(|s| s.end_cycles).fold(0.0, f64::max);
            let exec_s = l.time_s - l.roofline.launch_overhead_s;
            let scale_s = if horizon > 0.0 { exec_s / horizon } else { 0.0 };
            let exec_start_s = l.start_s + l.roofline.launch_overhead_s;
            for s in sched {
                spans.push(TimelineSpan {
                    launch_seq: seq,
                    kernel: l.name,
                    phase: l.phase,
                    sm: s.sm,
                    slot: s.slot,
                    block: s.block,
                    warps: l.config.warps_per_block(),
                    start_ms: (exec_start_s + s.start_cycles * scale_s) * 1e3,
                    end_ms: (exec_start_s + s.end_cycles * scale_s) * 1e3,
                });
            }
        }
        let transfers = self
            .transfers()
            .iter()
            .enumerate()
            .map(|(seq, t)| TransferSpan {
                seq,
                phase: t.phase,
                dir: match t.dir {
                    TransferDir::HostToDevice => "h2d",
                    TransferDir::DeviceToHost => "d2h",
                },
                bytes: t.bytes,
                start_ms: t.start_s * 1e3,
                end_ms: (t.start_s + t.time_s) * 1e3,
            })
            .collect();
        let counters = self
            .counter_samples()
            .iter()
            .map(|s| CounterPoint {
                track: s.track,
                phase: s.phase,
                time_ms: s.time_s * 1e3,
                value: s.value,
            })
            .collect();
        let end_ms = self.elapsed_ms();
        let memory = self
            .device
            .ledger()
            .iter()
            .map(|e| MemSpan {
                name: e.name.clone(),
                bytes: e.bytes,
                size_class: e.size_class,
                phase: e.phase,
                slot: e.slot,
                start_ms: e.alloc_ms,
                end_ms: e.free_ms.unwrap_or(end_ms),
                freed: !e.is_live(),
            })
            .collect();
        Timeline {
            schema_version: TRACE_SCHEMA_VERSION,
            label: label.into(),
            sm_count: self.cost.sm_count,
            spans,
            transfers,
            counters,
            memory,
        }
    }

    /// Per-kernel [`Hotspot`] attribution of everything recorded so far,
    /// keeping the `top_k` worst blocks per kernel.
    pub fn hotspots(&self, top_k: usize) -> Vec<Hotspot> {
        hotspots(self.launches(), &self.cost, top_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::LaunchConfig;
    use crate::CostParams;

    fn skewed_ctx() -> GpuContext {
        let mut c = GpuContext::new(CostParams::p100(), 1 << 20);
        let buf = c.htod("x", &[0u32; 64]).unwrap();
        let cfg = LaunchConfig {
            blocks: 4,
            threads_per_block: 64,
        };
        c.set_phase("Loop");
        c.launch("loop", cfg, |blk| {
            blk.charge_instr(100 * (blk.block_idx as u64 + 1));
            blk.atomic_add(&blk.device.buffer(buf)[0], 1);
            Ok(())
        })
        .unwrap();
        c.set_phase("Sync");
        c.dtoh_word(buf, 0);
        c.sample_counter("frontier", 3.0);
        c
    }

    #[test]
    fn spans_tile_the_launch_window() {
        let c = skewed_ctx();
        let tl = c.timeline("unit");
        assert_eq!(tl.sm_count, 56);
        assert_eq!(tl.spans.len(), 4);
        let l = &c.launches()[0];
        let exec_start_ms = (l.start_s + l.roofline.launch_overhead_s) * 1e3;
        let end_ms = (l.start_s + l.time_s) * 1e3;
        for s in &tl.spans {
            assert_eq!((s.kernel, s.phase), ("loop", "Loop"));
            assert_eq!(s.warps, 2);
            assert!(s.start_ms >= exec_start_ms - 1e-12);
            assert!(s.end_ms <= end_ms + 1e-12);
        }
        // with 56 SMs and 4 blocks, every block gets its own SM at slot 0
        // and starts at the window's opening edge
        for s in &tl.spans {
            assert_eq!((s.sm, s.slot), (s.block, 0));
            assert!((s.start_ms - exec_start_ms).abs() < 1e-12);
        }
        // the worst block (4× cycles) closes the window exactly
        let worst = tl.spans.iter().find(|s| s.block == 3).unwrap();
        assert!((worst.end_ms - end_ms).abs() < 1e-12);
    }

    #[test]
    fn transfers_and_counters_carry_timestamps() {
        let c = skewed_ctx();
        let tl = c.timeline("unit");
        assert_eq!(tl.transfers.len(), 2); // htod + dtoh_word
        assert_eq!(tl.transfers[0].dir, "h2d");
        assert!(tl.transfers[0].start_ms < tl.transfers[0].end_ms);
        let cp = &tl.counters[0];
        assert_eq!((cp.track, cp.phase, cp.value), ("frontier", "Sync", 3.0));
        // sampled after the dtoh_word finished
        assert!((cp.time_ms - tl.transfers[1].end_ms).abs() < 1e-12);
    }

    #[test]
    fn hotspot_buckets_sum_to_total() {
        let c = skewed_ctx();
        let hs = c.hotspots(3);
        assert_eq!(hs.len(), 1);
        let h = &hs[0];
        assert_eq!((h.kernel, h.launches), ("loop", 1));
        let sum = h.launch_overhead_ms
            + h.divergence_ms
            + h.mem_stall_ms
            + h.atomics_ms
            + h.uncoalesced_ms
            + h.coalesced_ms
            + h.shared_ms
            + h.instr_ms
            + h.barrier_ms;
        assert!((sum - h.total_ms).abs() < 1e-9 * h.total_ms.max(1.0));
        // skewed instruction counts → instruction share dominates the
        // balanced compute, and skew shows up as divergence exposure
        assert!(h.instr_ms > h.atomics_ms);
        assert!(h.divergence_ms > 0.0);
        // top blocks ranked worst-first: block 3 charged the most
        assert_eq!(h.top_blocks[0].block, 3);
        assert_eq!(h.top_blocks.len(), 3);
    }

    #[test]
    fn dominant_bucket_names_the_biggest_term() {
        let mut c = GpuContext::new(CostParams::p100(), 1 << 20);
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: 32,
        };
        c.launch("nop", cfg, |_| Ok(())).unwrap();
        let h = &c.hotspots(1)[0];
        assert_eq!(h.dominant_bucket().0, "launch_overhead");
    }

    #[test]
    fn memory_spans_cover_allocation_lifetimes() {
        let c = skewed_ctx();
        let tl = c.timeline("unit");
        assert_eq!(tl.memory.len(), 1); // the htod'd "x"
        let m = &tl.memory[0];
        assert_eq!((m.name.as_str(), m.bytes, m.slot), ("x", 256, 0));
        // never freed → the span extends to the end of the run
        assert!(!m.freed);
        assert_eq!(m.start_ms, 0.0);
        assert!((m.end_ms - c.elapsed_ms()).abs() < 1e-12);
    }

    #[test]
    fn timeline_is_deterministic() {
        let a = skewed_ctx().timeline("t");
        let b = skewed_ctx().timeline("t");
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}
