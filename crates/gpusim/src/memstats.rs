//! Device-memory statistics and full-scale capacity extrapolation.
//!
//! [`GpuContext::memstats`] snapshots the device's allocation ledger
//! ([`crate::device`]) into a schema-versioned, serializable [`MemStats`]:
//! the per-allocation table, per-phase live-byte high-watermarks, a
//! H2D/D2H transfer rollup per phase, and the top-k live allocations at the
//! global peak. Everything in it is *simulated* and *observed* — capturing
//! a snapshot charges no time and perturbs no counter, so memstats can be
//! taken from any run without changing its golden trace.
//!
//! **Capacity extrapolation.** The bench harness runs Table I stand-ins at
//! roughly 1/100 scale with a proportionally shrunk device, so a run's raw
//! peak says nothing about the paper's 16 GB P100 directly.
//! [`MemStats::extrapolate`] predicts the *full-scale* footprint from the
//! ledger: every allocation is tagged at its alloc site with a
//! [`SizeClass`] declaring how its size depends on the graph, and the
//! extrapolator scales each entry linearly by that dependence — `PerVertex`
//! by `full_vertices / sim_vertices`, `PerArc` by `full_arcs / sim_arcs`,
//! `Fixed` not at all — then replays the live-bytes step function with the
//! scaled sizes to find the predicted peak. Linear-per-class is exact for
//! every CSR array, degree/core/frontier vector and per-edge tensor in this
//! repo (their sizes are literally `n`, `n+1` or `arcs` words); it is the
//! same first-order model the paper uses when it reports which graphs fit
//! (Tables 3–5).

use crate::device::{LedgerEntry, SizeClass};
use crate::exec::GpuContext;
use serde::Serialize;

/// Version of the [`MemStats`] serialization schema, recorded in every
/// snapshot so readers can refuse shapes they don't understand.
pub const MEMSTATS_SCHEMA_VERSION: u32 = 1;

/// The paper's device: a Tesla P100 with 16 GB of global memory.
pub const P100_DEVICE_BYTES: u64 = 16 * (1 << 30);

/// Live allocations kept in the peak snapshot (and per forecast).
pub const PEAK_LIVE_SET_TOP_K: usize = 8;

/// A serializable snapshot of one run's device-memory behaviour.
#[derive(Debug, Clone, Serialize)]
pub struct MemStats {
    /// Serialization schema version ([`MEMSTATS_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Device global-memory capacity of the run, bytes.
    pub capacity_bytes: u64,
    /// Bytes live at snapshot time.
    pub live_bytes: u64,
    /// Peak live bytes over the run.
    pub peak_bytes: u64,
    /// Workload |V| declared via [`GpuContext::set_workload_dims`] (0 if
    /// never declared).
    pub sim_vertices: u64,
    /// Workload arc count declared via [`GpuContext::set_workload_dims`].
    pub sim_arcs: u64,
    /// Total host→device bytes.
    pub h2d_bytes: u64,
    /// Total device→host bytes.
    pub d2h_bytes: u64,
    /// Per-allocation ledger, in allocation order.
    pub allocations: Vec<LedgerEntry>,
    /// Per-phase live-byte high-watermarks, in first-activation order.
    pub phase_peaks: Vec<PhasePeak>,
    /// Per-phase transfer rollup, in first-transfer order.
    pub transfers: Vec<PhaseTransfers>,
    /// The largest live allocations at the moment of the global peak,
    /// descending by size (top [`PEAK_LIVE_SET_TOP_K`]).
    pub peak_live_set: Vec<LiveAlloc>,
}

/// One phase's live-byte high-watermark.
#[derive(Debug, Clone, Serialize)]
pub struct PhasePeak {
    /// Phase name.
    pub phase: &'static str,
    /// Maximum live bytes while the phase was active.
    pub peak_bytes: u64,
}

/// One phase's host↔device transfer totals.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseTransfers {
    /// Phase name.
    pub phase: &'static str,
    /// Copies issued in this phase.
    pub transfers: u64,
    /// Host→device bytes.
    pub h2d_bytes: u64,
    /// Device→host bytes.
    pub d2h_bytes: u64,
}

/// A named allocation in a live-set snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct LiveAlloc {
    /// Allocation name.
    pub name: String,
    /// Size in bytes (scaled, in a forecast's contributor list).
    pub bytes: u64,
    /// Scaling tag declared at the alloc site.
    pub size_class: SizeClass,
    /// Phase the allocation was made in.
    pub phase: &'static str,
}

/// A full-scale capacity prediction derived from a reduced-scale run — the
/// fit/OOM verdict column of the memreport table.
#[derive(Debug, Clone, Serialize)]
pub struct CapacityForecast {
    /// Capacity of the target device ([`P100_DEVICE_BYTES`]).
    pub device_capacity_bytes: u64,
    /// Full-scale |V| the run was extrapolated to.
    pub full_vertices: u64,
    /// Full-scale arc count the run was extrapolated to.
    pub full_arcs: u64,
    /// Predicted full-scale peak live bytes.
    pub predicted_peak_bytes: u64,
    /// Whether the predicted peak fits the target device.
    pub fits: bool,
    /// `capacity − predicted peak` (negative when over capacity).
    pub headroom_bytes: i64,
    /// The largest scaled allocations live at the predicted peak,
    /// descending by scaled size (top [`PEAK_LIVE_SET_TOP_K`]).
    pub top_contributors: Vec<LiveAlloc>,
}

/// Scales `bytes` by `full/sim` in u128 so per-vertex × billion-vertex
/// products can't overflow; `sim == 0` (dims never declared) scales by 1.
fn scale_bytes(bytes: u64, full: u64, sim: u64) -> u64 {
    if sim == 0 {
        return bytes;
    }
    (bytes as u128 * full as u128 / sim as u128) as u64
}

fn scaled_entry_bytes(e: &LedgerEntry, stats: &MemStats, full_n: u64, full_arcs: u64) -> u64 {
    match e.size_class {
        SizeClass::PerVertex => scale_bytes(e.bytes, full_n, stats.sim_vertices),
        SizeClass::PerArc => scale_bytes(e.bytes, full_arcs, stats.sim_arcs),
        SizeClass::Fixed | SizeClass::Batch => e.bytes,
    }
}

/// Replays the ledger's alloc/free events in fine-op order with `bytes(e)`
/// per entry, returning the peak live total and the ledger indices live at
/// the first moment that peak is reached.
fn replay_peak(ledger: &[LedgerEntry], bytes: impl Fn(&LedgerEntry) -> u64) -> (u64, Vec<usize>) {
    // (op, ledger index, is_alloc) — ops are unique, so a sort by op fully
    // reconstructs the event order.
    let mut events: Vec<(u64, usize, bool)> = Vec::with_capacity(ledger.len() * 2);
    for (i, e) in ledger.iter().enumerate() {
        events.push((e.alloc_op, i, true));
        if let Some(op) = e.free_op {
            events.push((op, i, false));
        }
    }
    events.sort_unstable_by_key(|&(op, _, _)| op);
    let mut live: Vec<usize> = Vec::new();
    let mut cur = 0u64;
    let mut peak = 0u64;
    let mut at_peak: Vec<usize> = Vec::new();
    for (_, i, is_alloc) in events {
        if is_alloc {
            cur += bytes(&ledger[i]);
            live.push(i);
            if cur > peak {
                peak = cur;
                at_peak = live.clone();
            }
        } else {
            cur -= bytes(&ledger[i]);
            live.retain(|&l| l != i);
        }
    }
    (peak, at_peak)
}

/// Turns a set of live ledger indices into a top-k list, descending by
/// `bytes(e)` with allocation order as the tie-break.
fn top_live(
    ledger: &[LedgerEntry],
    live: &[usize],
    bytes: impl Fn(&LedgerEntry) -> u64,
) -> Vec<LiveAlloc> {
    let mut set: Vec<LiveAlloc> = live
        .iter()
        .map(|&i| {
            let e = &ledger[i];
            LiveAlloc {
                name: e.name.clone(),
                bytes: bytes(e),
                size_class: e.size_class,
                phase: e.phase,
            }
        })
        .collect();
    // live indices are in allocation order already; stable sort keeps that
    // order among equal sizes
    set.sort_by_key(|a| std::cmp::Reverse(a.bytes));
    set.truncate(PEAK_LIVE_SET_TOP_K);
    set
}

impl MemStats {
    /// Serializes the snapshot as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("memstats serializes")
    }

    /// Predicts the full-scale peak footprint against the paper's 16 GB
    /// P100: scales every allocation by its [`SizeClass`] dependence on
    /// `full_vertices`/`full_arcs`, replays the live-bytes curve with the
    /// scaled sizes, and reports a fit/OOM verdict. If the run never
    /// declared its workload dimensions, sizes pass through unscaled.
    pub fn extrapolate(&self, full_vertices: u64, full_arcs: u64) -> CapacityForecast {
        let scaled = |e: &LedgerEntry| scaled_entry_bytes(e, self, full_vertices, full_arcs);
        let (predicted, live_at_peak) = replay_peak(&self.allocations, scaled);
        CapacityForecast {
            device_capacity_bytes: P100_DEVICE_BYTES,
            full_vertices,
            full_arcs,
            predicted_peak_bytes: predicted,
            fits: predicted <= P100_DEVICE_BYTES,
            headroom_bytes: P100_DEVICE_BYTES as i64 - predicted as i64,
            top_contributors: top_live(&self.allocations, &live_at_peak, scaled),
        }
    }
}

/// A multi-device memory rollup: one [`MemStats`] snapshot per worker
/// device of a sharded run, in shard-index order. Each snapshot carries its
/// own shard-local workload dimensions, so per-device forecasts are driven
/// by [`MemStats::extrapolate`] on the individual entries; the rollup adds
/// the fleet-level aggregates the scaling table reports.
#[derive(Debug, Clone, Serialize)]
pub struct FleetMemStats {
    /// Serialization schema version ([`MEMSTATS_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Per-device snapshots, in shard-index order.
    pub devices: Vec<MemStats>,
}

impl FleetMemStats {
    /// Wraps per-device snapshots into a rollup.
    pub fn new(devices: Vec<MemStats>) -> Self {
        FleetMemStats {
            schema_version: MEMSTATS_SCHEMA_VERSION,
            devices,
        }
    }

    /// The largest single-device peak — the number that must fit one card.
    pub fn max_device_peak_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.peak_bytes).max().unwrap_or(0)
    }

    /// Sum of per-device peaks (fleet-wide footprint).
    pub fn total_peak_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.peak_bytes).sum()
    }

    /// Serializes the rollup as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet memstats serializes")
    }
}

impl GpuContext {
    /// Captures a [`MemStats`] snapshot of the device-memory behaviour
    /// recorded so far. Free of charge: taking it advances no clock and
    /// touches no counter, so it cannot perturb a golden trace.
    pub fn memstats(&self) -> MemStats {
        let ledger = self.device.ledger().to_vec();
        let (peak, live_at_peak) = replay_peak(&ledger, |e| e.bytes);
        debug_assert_eq!(peak, self.device.peak_bytes());
        let peak_live_set = top_live(&ledger, &live_at_peak, |e| e.bytes);
        let phase_peaks = self
            .device
            .phase_peaks()
            .iter()
            .map(|&(phase, peak_bytes)| PhasePeak { phase, peak_bytes })
            .collect();
        let mut transfers: Vec<PhaseTransfers> = Vec::new();
        for t in self.transfers() {
            let row = match transfers.iter_mut().find(|r| r.phase == t.phase) {
                Some(r) => r,
                None => {
                    transfers.push(PhaseTransfers {
                        phase: t.phase,
                        transfers: 0,
                        h2d_bytes: 0,
                        d2h_bytes: 0,
                    });
                    transfers.last_mut().expect("just pushed")
                }
            };
            row.transfers += 1;
            match t.dir {
                crate::cost::TransferDir::HostToDevice => row.h2d_bytes += t.bytes,
                crate::cost::TransferDir::DeviceToHost => row.d2h_bytes += t.bytes,
            }
        }
        let report = self.report();
        MemStats {
            schema_version: MEMSTATS_SCHEMA_VERSION,
            capacity_bytes: self.device.capacity_bytes(),
            live_bytes: self.device.used_bytes(),
            peak_bytes: self.device.peak_bytes(),
            sim_vertices: self.workload_vertices,
            sim_arcs: self.workload_arcs,
            h2d_bytes: report.h2d_bytes,
            d2h_bytes: report.d2h_bytes,
            allocations: ledger,
            phase_peaks,
            transfers,
            peak_live_set,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostParams;

    fn ctx() -> GpuContext {
        GpuContext::new(CostParams::p100(), 1 << 30)
    }

    /// A miniature run shaped like the peel kernel's memory story: CSR
    /// inputs in Setup, a fixed scratch buffer, everything freed in Result.
    fn run(c: &mut GpuContext, n: usize, arcs: usize) {
        c.set_workload_dims(n as u64, arcs as u64);
        c.set_phase("Setup");
        let offsets = c
            .htod_tagged("offset", &vec![0u32; n + 1], SizeClass::PerVertex)
            .unwrap();
        let neigh = c
            .htod_tagged("neighbors", &vec![0u32; arcs], SizeClass::PerArc)
            .unwrap();
        let buf = c.alloc_tagged("buf", 64, SizeClass::Fixed).unwrap();
        c.set_phase("Loop");
        c.dtoh_word(buf, 0);
        c.set_phase("Result");
        c.device.free(buf);
        c.device.free(neigh);
        c.device.free(offsets);
    }

    #[test]
    fn memstats_tables_match_run() {
        let mut c = ctx();
        run(&mut c, 100, 400);
        let ms = c.memstats();
        assert_eq!(ms.schema_version, MEMSTATS_SCHEMA_VERSION);
        assert_eq!(ms.sim_vertices, 100);
        assert_eq!(ms.sim_arcs, 400);
        assert_eq!(ms.live_bytes, 0);
        // peak = offsets (404) + neighbors (1600) + buf (256)
        assert_eq!(ms.peak_bytes, 404 + 1600 + 256);
        assert_eq!(ms.allocations.len(), 3);
        assert!(ms.allocations.iter().all(|e| !e.is_live()));
        // phase watermarks: Setup saw the peak, Loop held it, Result drained
        let peaks: Vec<(&str, u64)> = ms
            .phase_peaks
            .iter()
            .map(|p| (p.phase, p.peak_bytes))
            .collect();
        assert_eq!(peaks[0], ("Setup", 2260));
        assert_eq!(peaks[1], ("Loop", 2260));
        assert_eq!(peaks[2], ("Result", 2260));
        assert!(ms.phase_peaks.iter().all(|p| p.peak_bytes <= ms.peak_bytes));
        // the peak live set is every allocation, largest first
        let names: Vec<&str> = ms.peak_live_set.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, ["neighbors", "offset", "buf"]);
        // transfer rollup: Setup did the H2D, Loop the 4-byte readback
        assert_eq!(ms.transfers[0].phase, "Setup");
        assert_eq!(ms.transfers[0].h2d_bytes, 404 + 1600);
        assert_eq!(ms.transfers[1].phase, "Loop");
        assert_eq!(ms.transfers[1].d2h_bytes, 4);
        assert_eq!(ms.h2d_bytes, 2004);
        assert_eq!(ms.d2h_bytes, 4);
    }

    #[test]
    fn extrapolation_scales_by_size_class() {
        let mut c = ctx();
        run(&mut c, 100, 400);
        let ms = c.memstats();
        // 10× vertices, 100× arcs
        let f = ms.extrapolate(1000, 40_000);
        // offsets 404 → 4040, neighbors 1600 → 160000, buf stays 256
        assert_eq!(f.predicted_peak_bytes, 4040 + 160_000 + 256);
        assert!(f.fits);
        assert_eq!(
            f.headroom_bytes,
            P100_DEVICE_BYTES as i64 - f.predicted_peak_bytes as i64
        );
        assert_eq!(f.top_contributors[0].name, "neighbors");
        assert_eq!(f.top_contributors[0].bytes, 160_000);
    }

    #[test]
    fn extrapolation_reports_oom_when_over_capacity() {
        let mut c = ctx();
        run(&mut c, 100, 400);
        let ms = c.memstats();
        // blow the arcs up until the neighbor array alone exceeds 16 GiB:
        // 1600 B × (full/400) > 16 GiB → full > 4.29e12/400 … use 1e13
        let f = ms.extrapolate(100, 10_000_000_000_000);
        assert!(!f.fits);
        assert!(f.headroom_bytes < 0);
        assert!(f.predicted_peak_bytes > P100_DEVICE_BYTES);
    }

    #[test]
    fn extrapolation_replays_lifetimes_not_totals() {
        // Two huge PerArc buffers that never coexist: the forecast must
        // replay the live curve (peak = one buffer), not sum the ledger.
        let mut c = ctx();
        c.set_workload_dims(10, 1000);
        let a = c.alloc_tagged("a", 250, SizeClass::PerArc).unwrap(); // 1000 B
        c.device.free(a);
        let _b = c.alloc_tagged("b", 250, SizeClass::PerArc).unwrap();
        let ms = c.memstats();
        assert_eq!(ms.peak_bytes, 1000);
        let f = ms.extrapolate(10, 2000);
        assert_eq!(f.predicted_peak_bytes, 2000); // one buffer, doubled arcs
        assert_eq!(f.top_contributors.len(), 1);
    }

    #[test]
    fn undeclared_dims_pass_through_unscaled() {
        let mut c = ctx();
        let _ = c.alloc_tagged("x", 100, SizeClass::PerVertex).unwrap();
        let ms = c.memstats();
        assert_eq!((ms.sim_vertices, ms.sim_arcs), (0, 0));
        let f = ms.extrapolate(1_000_000, 2_000_000);
        assert_eq!(f.predicted_peak_bytes, 400);
    }

    #[test]
    fn memstats_capture_is_free_and_repeatable() {
        let mut c = ctx();
        run(&mut c, 50, 200);
        let before = c.elapsed_ms();
        let a = c.memstats();
        assert_eq!(c.elapsed_ms(), before);
        let b = c.memstats();
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("\"size_class\": \"PerArc\""));
    }
}
