//! Tracked device (global) memory.
//!
//! Mirrors the `cudaMalloc`/`cudaFree` discipline of §III: the host program
//! allocates input and intermediate buffers in device memory, and the peak
//! footprint determines whether a graph fits on the GPU at all (Table V). All
//! buffers are `u32`-typed — vertex IDs, degrees, offsets and counters are
//! all 32-bit words on the device, as in the paper's kernels — and exposed
//! as `AtomicU32` slices because thread blocks run concurrently.

use std::sync::atomic::{AtomicU32, Ordering};

/// Handle to a device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub(crate) usize);

/// Device allocation failure — surfaces as the paper's "OOM" table entries.
#[derive(Debug, Clone, PartialEq)]
pub struct OomError {
    /// Name of the allocation that failed.
    pub name: String,
    /// Requested size in bytes.
    pub requested_bytes: u64,
    /// Bytes still free at the time of the request.
    pub available_bytes: u64,
    /// Total device capacity.
    pub capacity_bytes: u64,
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device OOM allocating {:?}: requested {} B, available {} B of {} B",
            self.name, self.requested_bytes, self.available_bytes, self.capacity_bytes
        )
    }
}

impl std::error::Error for OomError {}

struct Allocation {
    name: String,
    data: Vec<AtomicU32>,
}

/// A simulated GPU device: a fixed-capacity global memory arena with
/// current/peak accounting.
pub struct Device {
    capacity: u64,
    used: u64,
    peak: u64,
    slots: Vec<Option<Allocation>>,
}

impl Device {
    /// A device with `capacity_bytes` of global memory.
    pub fn new(capacity_bytes: u64) -> Self {
        Device {
            capacity: capacity_bytes,
            used: 0,
            peak: 0,
            slots: Vec::new(),
        }
    }

    /// Allocates `len` 32-bit words, zero-initialized.
    pub fn alloc(&mut self, name: &str, len: usize) -> Result<BufferId, OomError> {
        let bytes = len as u64 * 4;
        if self.used + bytes > self.capacity {
            return Err(OomError {
                name: name.to_owned(),
                requested_bytes: bytes,
                available_bytes: self.capacity - self.used,
                capacity_bytes: self.capacity,
            });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        let alloc = Allocation {
            name: name.to_owned(),
            data: (0..len).map(|_| AtomicU32::new(0)).collect(),
        };
        // Reuse a free slot if any, else push.
        let id = match self.slots.iter().position(Option::is_none) {
            Some(i) => {
                self.slots[i] = Some(alloc);
                i
            }
            None => {
                self.slots.push(Some(alloc));
                self.slots.len() - 1
            }
        };
        Ok(BufferId(id))
    }

    /// Frees an allocation (`cudaFree`).
    ///
    /// # Panics
    /// Panics on double free or an invalid handle — both are host-program
    /// bugs, exactly as they would be under CUDA.
    pub fn free(&mut self, id: BufferId) {
        let alloc = self.slots[id.0]
            .take()
            .expect("double free / invalid buffer id");
        self.used -= alloc.data.len() as u64 * 4;
    }

    /// The words of a buffer. Atomic because blocks execute concurrently.
    pub fn buffer(&self, id: BufferId) -> &[AtomicU32] {
        &self.slots[id.0]
            .as_ref()
            .expect("freed or invalid buffer id")
            .data
    }

    /// Name given at allocation time (for diagnostics).
    pub fn buffer_name(&self, id: BufferId) -> &str {
        &self.slots[id.0]
            .as_ref()
            .expect("freed or invalid buffer id")
            .name
    }

    /// Number of words in a buffer.
    pub fn len(&self, id: BufferId) -> usize {
        self.buffer(id).len()
    }

    /// Fills a buffer with `value` (host-side helper, like `cudaMemset`).
    pub fn fill(&self, id: BufferId, value: u32) {
        for w in self.buffer(id) {
            w.store(value, Ordering::Relaxed);
        }
    }

    /// Copies host data into a buffer.
    pub fn write_slice(&self, id: BufferId, data: &[u32]) {
        let buf = self.buffer(id);
        assert!(
            data.len() <= buf.len(),
            "host slice larger than device buffer"
        );
        for (w, &v) in buf.iter().zip(data) {
            w.store(v, Ordering::Relaxed);
        }
    }

    /// Copies a buffer back to host.
    pub fn read_vec(&self, id: BufferId) -> Vec<u32> {
        self.buffer(id)
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Peak bytes ever allocated — the Table V metric.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Bytes still free.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_accounting() {
        let mut d = Device::new(1024);
        let a = d.alloc("a", 100).unwrap(); // 400 B
        assert_eq!(d.used_bytes(), 400);
        let b = d.alloc("b", 100).unwrap(); // 800 B
        assert_eq!(d.used_bytes(), 800);
        assert_eq!(d.peak_bytes(), 800);
        d.free(a);
        assert_eq!(d.used_bytes(), 400);
        assert_eq!(d.peak_bytes(), 800); // peak sticks
        let c = d.alloc("c", 150).unwrap(); // reuses slot, 1000 B total
        assert_eq!(d.used_bytes(), 1000);
        assert_eq!(d.peak_bytes(), 1000);
        assert_eq!(d.buffer_name(c), "c");
        d.free(b);
        d.free(c);
        assert_eq!(d.used_bytes(), 0);
    }

    #[test]
    fn oom_reports_details() {
        let mut d = Device::new(100);
        let _a = d.alloc("a", 20).unwrap(); // 80 B
        let err = d.alloc("big", 10).unwrap_err(); // 40 B > 20 free
        assert_eq!(err.requested_bytes, 40);
        assert_eq!(err.available_bytes, 20);
        assert_eq!(err.name, "big");
        assert!(err.to_string().contains("OOM"));
    }

    #[test]
    fn read_write_round_trip() {
        let mut d = Device::new(1024);
        let id = d.alloc("x", 4).unwrap();
        d.write_slice(id, &[9, 8, 7, 6]);
        assert_eq!(d.read_vec(id), vec![9, 8, 7, 6]);
        d.fill(id, 5);
        assert_eq!(d.read_vec(id), vec![5, 5, 5, 5]);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut d = Device::new(1024);
        let id = d.alloc("x", 1).unwrap();
        d.free(id);
        d.free(id);
    }

    #[test]
    fn zero_initialized() {
        let mut d = Device::new(1024);
        let id = d.alloc("z", 8).unwrap();
        assert_eq!(d.read_vec(id), vec![0; 8]);
    }
}
