//! Tracked device (global) memory.
//!
//! Mirrors the `cudaMalloc`/`cudaFree` discipline of §III: the host program
//! allocates input and intermediate buffers in device memory, and the peak
//! footprint determines whether a graph fits on the GPU at all (Table V). All
//! buffers are `u32`-typed — vertex IDs, degrees, offsets and counters are
//! all 32-bit words on the device, as in the paper's kernels — and exposed
//! as `AtomicU32` slices because thread blocks run concurrently.
//!
//! Beyond the current/peak scalars, the device keeps an **allocation
//! ledger**: one [`LedgerEntry`] per `alloc`, recording what was allocated
//! (name, element count and size, byte total, [`SizeClass`] scaling tag),
//! *when* (the algorithm phase, the launch/transfer sequence number, and the
//! sim-clock timestamp — all stamped by the owning
//! [`GpuContext`](crate::GpuContext)), and when it was freed. The ledger is
//! pure observation: it charges no simulated time and perturbs no counter,
//! so enabling or reading it cannot change a golden trace. It feeds
//! [`MemStats`](crate::MemStats) (per-allocation tables, per-phase
//! high-watermarks, capacity extrapolation) and the Perfetto memory tracks.

use serde::Serialize;
use std::sync::atomic::{AtomicU32, Ordering};

/// Handle to a device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub(crate) usize);

/// How an allocation's size depends on the input graph — declared at the
/// alloc site so [`MemStats::extrapolate`](crate::MemStats::extrapolate) can
/// scale a reduced-scale run's footprint to the full-scale dataset: a
/// `PerVertex` buffer grows linearly with |V|, a `PerArc` buffer with the
/// arc count, and a `Fixed` buffer (flags, counters, per-block scratch of
/// configured size) not at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SizeClass {
    /// Size proportional to the number of vertices (degree/core arrays,
    /// frontier lists, CSR offsets).
    PerVertex,
    /// Size proportional to the number of arcs (adjacency, per-edge
    /// messages, COO tensors).
    PerArc,
    /// Size independent of the graph (device counters, flags, buffers of
    /// configuration-chosen capacity).
    Fixed,
    /// Size proportional to the dynamic-update batch capacity, not the
    /// graph: staging buffers for edge-churn batches. Extrapolates like
    /// `Fixed` (a full-scale run ships the same batches), but stays
    /// distinguishable in capacity reports so the maintenance engine's
    /// scratch is separable from graph state.
    Batch,
}

/// One allocation's life in the ledger. Timestamps come in three flavors:
/// `*_seq` is the logical launch/transfer sequence number (how many kernel
/// launches and host↔device copies had been issued), `*_ms` the sim-clock
/// time, and `*_op` a fine-grained ledger operation counter that totally
/// orders allocs and frees even between launches (several allocations made
/// back-to-back share a `seq` and an `ms` but never an `op`).
#[derive(Debug, Clone, Serialize)]
pub struct LedgerEntry {
    /// Name given at the alloc site.
    pub name: String,
    /// Element count requested.
    pub elems: u64,
    /// Bytes per element (4 for the kernels' u32 buffers).
    pub elem_bytes: u64,
    /// Total bytes (`elems * elem_bytes`).
    pub bytes: u64,
    /// Scaling tag for capacity extrapolation.
    pub size_class: SizeClass,
    /// Algorithm phase active at allocation time.
    pub phase: &'static str,
    /// Device slot the allocation occupied (Perfetto lane; slots are reused
    /// after a free, so a slot can host several non-overlapping entries).
    pub slot: u64,
    /// Launch/transfer sequence number at allocation.
    pub alloc_seq: u64,
    /// Sim-clock timestamp at allocation, ms.
    pub alloc_ms: f64,
    /// Ledger operation ordinal of the allocation.
    pub alloc_op: u64,
    /// Launch/transfer sequence number at free (`None` while live).
    pub free_seq: Option<u64>,
    /// Sim-clock timestamp at free, ms (`None` while live).
    pub free_ms: Option<f64>,
    /// Ledger operation ordinal of the free (`None` while live).
    pub free_op: Option<u64>,
}

impl LedgerEntry {
    /// Whether the allocation was still live when last observed.
    pub fn is_live(&self) -> bool {
        self.free_op.is_none()
    }
}

/// Device allocation failure — surfaces as the paper's "OOM" table entries.
#[derive(Debug, Clone, PartialEq)]
pub struct OomError {
    /// Name of the allocation that failed.
    pub name: String,
    /// Requested size in bytes.
    pub requested_bytes: u64,
    /// Bytes still free at the time of the request.
    pub available_bytes: u64,
    /// Total device capacity.
    pub capacity_bytes: u64,
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device OOM allocating {:?}: requested {} B, available {} B of {} B",
            self.name, self.requested_bytes, self.available_bytes, self.capacity_bytes
        )
    }
}

impl std::error::Error for OomError {}

struct Allocation {
    name: String,
    data: Vec<AtomicU32>,
    /// Index of this allocation's entry in the ledger (frees close it).
    ledger_idx: usize,
}

/// A simulated GPU device: a fixed-capacity global memory arena with
/// current/peak accounting and an allocation ledger.
pub struct Device {
    capacity: u64,
    used: u64,
    peak: u64,
    slots: Vec<Option<Allocation>>,
    ledger: Vec<LedgerEntry>,
    /// Per-phase live-byte high-watermarks, in first-activation order.
    phase_peaks: Vec<(&'static str, u64)>,
    /// Stamp kept current by the owning context: active phase, logical
    /// launch/transfer sequence number, sim-clock ms.
    phase: &'static str,
    /// In-launch phase-label override (see [`Device::set_launch_phase`]);
    /// `None` between launches.
    launch_phase: Option<&'static str>,
    seq: u64,
    time_ms: f64,
    /// Fine-grained ledger operation counter (allocs + frees).
    op: u64,
}

impl Device {
    /// A device with `capacity_bytes` of global memory.
    pub fn new(capacity_bytes: u64) -> Self {
        Device {
            capacity: capacity_bytes,
            used: 0,
            peak: 0,
            slots: Vec::new(),
            ledger: Vec::new(),
            phase_peaks: Vec::new(),
            phase: "main",
            launch_phase: None,
            seq: 0,
            time_ms: 0.0,
            op: 0,
        }
    }

    /// Allocates `len` 32-bit words, zero-initialized. Equivalent to
    /// [`Device::alloc_with`] with 4-byte elements and [`SizeClass::Fixed`].
    pub fn alloc(&mut self, name: &str, len: usize) -> Result<BufferId, OomError> {
        self.alloc_with(name, len, 4, SizeClass::Fixed)
    }

    /// Allocates `elems` elements of `elem_bytes` bytes each,
    /// zero-initialized, tagged with `class` for capacity extrapolation.
    /// Byte accounting is exact (`elems * elem_bytes`); the backing store is
    /// word-granular, so non-multiple-of-4 sizes round the *storage* up but
    /// never the accounting.
    pub fn alloc_with(
        &mut self,
        name: &str,
        elems: usize,
        elem_bytes: usize,
        class: SizeClass,
    ) -> Result<BufferId, OomError> {
        let bytes = elems as u64 * elem_bytes as u64;
        if self.used + bytes > self.capacity {
            return Err(OomError {
                name: name.to_owned(),
                requested_bytes: bytes,
                available_bytes: self.capacity - self.used,
                capacity_bytes: self.capacity,
            });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        self.bump_phase_peak();
        let words = (bytes as usize).div_ceil(4);
        let ledger_idx = self.ledger.len();
        // calloc-backed zero fill: `vec![0u32; n]` lowers to alloc_zeroed
        // (lazily zeroed pages from the OS), where a per-element
        // `AtomicU32::new(0)` collect would write every word up front.
        // AtomicU32 is layout-identical to u32 (same size and alignment,
        // every bit pattern valid), so rewrapping the backing is sound.
        let data = {
            let mut v = std::mem::ManuallyDrop::new(vec![0u32; words]);
            unsafe { Vec::from_raw_parts(v.as_mut_ptr() as *mut AtomicU32, v.len(), v.capacity()) }
        };
        let alloc = Allocation {
            name: name.to_owned(),
            data,
            ledger_idx,
        };
        // Reuse a free slot if any, else push.
        let id = match self.slots.iter().position(Option::is_none) {
            Some(i) => {
                self.slots[i] = Some(alloc);
                i
            }
            None => {
                self.slots.push(Some(alloc));
                self.slots.len() - 1
            }
        };
        self.ledger.push(LedgerEntry {
            name: name.to_owned(),
            elems: elems as u64,
            elem_bytes: elem_bytes as u64,
            bytes,
            size_class: class,
            phase: self.effective_phase(),
            slot: id as u64,
            alloc_seq: self.seq,
            alloc_ms: self.time_ms,
            alloc_op: self.op,
            free_seq: None,
            free_ms: None,
            free_op: None,
        });
        self.op += 1;
        Ok(BufferId(id))
    }

    /// Frees an allocation (`cudaFree`).
    ///
    /// # Panics
    /// Panics on double free or an invalid handle — both are host-program
    /// bugs, exactly as they would be under CUDA.
    pub fn free(&mut self, id: BufferId) {
        let alloc = self.slots[id.0]
            .take()
            .expect("double free / invalid buffer id");
        let entry = &mut self.ledger[alloc.ledger_idx];
        self.used -= entry.bytes;
        entry.free_seq = Some(self.seq);
        entry.free_ms = Some(self.time_ms);
        entry.free_op = Some(self.op);
        self.op += 1;
    }

    /// The allocation ledger: one entry per `alloc`, in allocation order.
    pub fn ledger(&self) -> &[LedgerEntry] {
        &self.ledger
    }

    /// Per-phase live-byte high-watermarks, in first-activation order. A
    /// phase's watermark is the maximum of `used_bytes` while it was active
    /// (so a phase that only frees still records what it started with).
    pub fn phase_peaks(&self) -> &[(&'static str, u64)] {
        &self.phase_peaks
    }

    /// Updates the stamp the ledger records on allocs/frees. The owning
    /// [`GpuContext`](crate::GpuContext) calls this after every event that
    /// advances the logical clock (launches, transfers, overheads); the
    /// device itself never advances time.
    pub fn set_stamp(&mut self, seq: u64, time_ms: f64) {
        self.seq = seq;
        self.time_ms = time_ms;
    }

    /// Records a phase change for the per-phase watermarks and subsequent
    /// ledger entries. Entering a phase floors its watermark at the current
    /// live bytes, and clears any in-launch label override (a launch cannot
    /// span a phase note, so a still-set override is an error-path leak).
    pub fn note_phase(&mut self, phase: &'static str) {
        self.phase = phase;
        self.launch_phase = None;
        self.bump_phase_peak();
    }

    /// Sets (or clears) the in-launch phase-label override. While a fused
    /// launch is in flight the engine labels the device with the active
    /// *step's* phase, so arena slots acquired inside the launch stamp
    /// their ledger entries — and attribute their phase watermarks — to the
    /// launch's phase instead of whatever sticky label the context last
    /// noted.
    pub fn set_launch_phase(&mut self, phase: Option<&'static str>) {
        self.launch_phase = phase;
    }

    fn effective_phase(&self) -> &'static str {
        self.launch_phase.unwrap_or(self.phase)
    }

    fn bump_phase_peak(&mut self) {
        let phase = self.effective_phase();
        match self.phase_peaks.iter_mut().find(|(p, _)| *p == phase) {
            Some((_, peak)) => *peak = (*peak).max(self.used),
            None => self.phase_peaks.push((phase, self.used)),
        }
    }

    /// The words of a buffer. Atomic because blocks execute concurrently.
    pub fn buffer(&self, id: BufferId) -> &[AtomicU32] {
        &self.slots[id.0]
            .as_ref()
            .expect("freed or invalid buffer id")
            .data
    }

    /// Name given at allocation time (for diagnostics).
    pub fn buffer_name(&self, id: BufferId) -> &str {
        &self.slots[id.0]
            .as_ref()
            .expect("freed or invalid buffer id")
            .name
    }

    /// Number of words in a buffer.
    pub fn len(&self, id: BufferId) -> usize {
        self.buffer(id).len()
    }

    /// Fills a buffer with `value` (host-side helper, like `cudaMemset`).
    pub fn fill(&self, id: BufferId, value: u32) {
        for w in self.buffer(id) {
            w.store(value, Ordering::Relaxed);
        }
    }

    /// Copies host data into a buffer.
    pub fn write_slice(&self, id: BufferId, data: &[u32]) {
        let buf = self.buffer(id);
        assert!(
            data.len() <= buf.len(),
            "host slice larger than device buffer"
        );
        // Transfers never overlap kernel execution (launches run to
        // completion under `&mut GpuContext`), so no simulated block races
        // these words: one bulk copy through the atomics' `UnsafeCell` is
        // equivalent to the per-word relaxed stores — and vectorizes, which
        // a loop of atomic stores never does.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), buf.as_ptr() as *mut u32, data.len());
        }
    }

    /// Copies a buffer back to host.
    pub fn read_vec(&self, id: BufferId) -> Vec<u32> {
        let buf = self.buffer(id);
        // See `write_slice`: the device is quiescent during transfers, so a
        // bulk read is equivalent to per-word relaxed loads.
        unsafe { std::slice::from_raw_parts(buf.as_ptr() as *const u32, buf.len()) }.to_vec()
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Peak bytes ever allocated — the Table V metric.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Bytes still free.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_accounting() {
        let mut d = Device::new(1024);
        let a = d.alloc("a", 100).unwrap(); // 400 B
        assert_eq!(d.used_bytes(), 400);
        let b = d.alloc("b", 100).unwrap(); // 800 B
        assert_eq!(d.used_bytes(), 800);
        assert_eq!(d.peak_bytes(), 800);
        d.free(a);
        assert_eq!(d.used_bytes(), 400);
        assert_eq!(d.peak_bytes(), 800); // peak sticks
        let c = d.alloc("c", 150).unwrap(); // reuses slot, 1000 B total
        assert_eq!(d.used_bytes(), 1000);
        assert_eq!(d.peak_bytes(), 1000);
        assert_eq!(d.buffer_name(c), "c");
        d.free(b);
        d.free(c);
        assert_eq!(d.used_bytes(), 0);
    }

    #[test]
    fn oom_reports_details() {
        let mut d = Device::new(100);
        let _a = d.alloc("a", 20).unwrap(); // 80 B
        let err = d.alloc("big", 10).unwrap_err(); // 40 B > 20 free
        assert_eq!(err.requested_bytes, 40);
        assert_eq!(err.available_bytes, 20);
        assert_eq!(err.name, "big");
        assert!(err.to_string().contains("OOM"));
    }

    #[test]
    fn read_write_round_trip() {
        let mut d = Device::new(1024);
        let id = d.alloc("x", 4).unwrap();
        d.write_slice(id, &[9, 8, 7, 6]);
        assert_eq!(d.read_vec(id), vec![9, 8, 7, 6]);
        d.fill(id, 5);
        assert_eq!(d.read_vec(id), vec![5, 5, 5, 5]);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut d = Device::new(1024);
        let id = d.alloc("x", 1).unwrap();
        d.free(id);
        d.free(id);
    }

    #[test]
    fn zero_initialized() {
        let mut d = Device::new(1024);
        let id = d.alloc("z", 8).unwrap();
        assert_eq!(d.read_vec(id), vec![0; 8]);
    }

    #[test]
    fn elem_size_accounting_is_exact() {
        let mut d = Device::new(1024);
        // 8-byte elements: 10 × 8 = 80 B, 20 words of storage
        let wide = d.alloc_with("wide", 10, 8, SizeClass::Fixed).unwrap();
        assert_eq!(d.used_bytes(), 80);
        assert_eq!(d.len(wide), 20);
        // 1-byte elements: 7 B accounted, storage rounds up to 2 words
        let bytes = d.alloc_with("bytes", 7, 1, SizeClass::PerVertex).unwrap();
        assert_eq!(d.used_bytes(), 87);
        assert_eq!(d.len(bytes), 2);
        d.free(wide);
        assert_eq!(d.used_bytes(), 7); // freed by ledger bytes, not words*4
        d.free(bytes);
        assert_eq!(d.used_bytes(), 0);
    }

    #[test]
    fn ledger_records_lifetimes_and_stamps() {
        let mut d = Device::new(1 << 20);
        d.note_phase("Setup");
        let a = d.alloc_with("deg", 100, 4, SizeClass::PerVertex).unwrap();
        d.set_stamp(3, 1.5);
        d.note_phase("Loop");
        let _b = d.alloc_with("adj", 50, 4, SizeClass::PerArc).unwrap();
        d.free(a);
        let led = d.ledger();
        assert_eq!(led.len(), 2);
        let e = &led[0];
        assert_eq!((e.name.as_str(), e.elems, e.bytes), ("deg", 100, 400));
        assert_eq!((e.phase, e.alloc_seq, e.alloc_ms), ("Setup", 0, 0.0));
        assert_eq!(e.size_class, SizeClass::PerVertex);
        assert!(!e.is_live());
        assert_eq!((e.free_seq, e.free_ms), (Some(3), Some(1.5)));
        let b = &led[1];
        assert_eq!((b.phase, b.alloc_seq, b.alloc_ms), ("Loop", 3, 1.5));
        assert!(b.is_live());
        // ops totally order the three ledger events
        assert_eq!(
            (led[0].alloc_op, led[1].alloc_op, led[0].free_op),
            (0, 1, Some(2))
        );
    }

    #[test]
    fn launch_phase_override_attributes_in_launch_allocs() {
        let mut d = Device::new(1 << 20);
        d.note_phase("Sync");
        // A fused launch is in flight under the "Loop" step: arena slots it
        // acquires must stamp and attribute to the launch's phase, not the
        // sticky context label.
        d.set_launch_phase(Some("Loop"));
        let a = d.alloc("wavebuf", 64).unwrap(); // 256 B
        assert_eq!(d.ledger()[0].phase, "Loop");
        assert!(
            d.phase_peaks().contains(&("Loop", 256)),
            "override must route the watermark to the launch's phase: {:?}",
            d.phase_peaks()
        );
        // The sticky label is untouched and takes over once cleared.
        d.set_launch_phase(None);
        let _b = d.alloc("host", 1).unwrap();
        assert_eq!(d.ledger()[1].phase, "Sync");
        // A phase note clears any stale override (error-path hygiene).
        d.set_launch_phase(Some("Loop"));
        d.note_phase("Result");
        let _c = d.alloc("late", 1).unwrap();
        assert_eq!(d.ledger()[2].phase, "Result");
        d.free(a);
    }

    #[test]
    fn phase_peaks_track_watermarks() {
        let mut d = Device::new(1 << 20);
        d.note_phase("Setup");
        let a = d.alloc("a", 100).unwrap(); // 400 B
        let b = d.alloc("b", 50).unwrap(); // 600 B
        d.note_phase("Loop");
        d.free(a); // frees don't raise any watermark
        let _c = d.alloc("c", 25).unwrap(); // 300 B live
        d.note_phase("Result");
        d.free(b);
        assert_eq!(
            d.phase_peaks(),
            &[("Setup", 600), ("Loop", 600), ("Result", 300)]
        );
        assert_eq!(d.peak_bytes(), 600);
    }
}
