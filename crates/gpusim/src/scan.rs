//! Parallel prefix-sum ("scan") algorithms — the machinery behind the
//! paper's compaction optimizations (§IV-C, Figs. 8 and 9).
//!
//! * [`hs_inclusive_scan`] — Hillis–Steele, `log n` SIMT steps (Fig. 8(b));
//! * [`blelloch_exclusive_scan`] — work-efficient but `2 log n` steps, which
//!   is why the paper adopts HS instead;
//! * [`ballot_scan`] — the warp-level 0/1 scan via `__ballot_sync` + `__popc`
//!   (Fig. 8(c)), the cheapest compaction offset computation;
//! * [`block_two_stage_scan`] — the intra-block scan of Sengupta et al.
//!   (Fig. 9): per-warp HS, warp-0 scan of warp sums, then offset add.

use crate::exec::BlockCtx;
use crate::warp::{ballot_sync, lane_mask_lt, WARP_SIZE};

/// Hillis–Steele inclusive scan over one warp's lane values, in place.
/// `ceil(log2(len))` shuffle+add steps, each one warp instruction pair.
pub fn hs_inclusive_scan(blk: &mut BlockCtx<'_>, lanes: &mut [u32]) {
    assert!(lanes.len() <= WARP_SIZE);
    let n = lanes.len();
    if n <= 1 {
        return;
    }
    let mut delta = 1usize;
    while delta < n {
        // One `__shfl_up_sync` plus one masked add, fused without the
        // shuffle's temporary: sweeping high-to-low reads each
        // `lanes[i - delta]` before the sweep reaches it, so every add sees
        // the pre-step value. Charged exactly as shfl_up (1) + add (1).
        blk.charge_instr(2);
        for i in (delta..n).rev() {
            lanes[i] += lanes[i - delta];
        }
        delta <<= 1;
    }
}

/// Blelloch work-efficient exclusive scan (upsweep + downsweep), in place.
/// Runs `2·log2(len)` steps — "Blelloch algorithm needs twice the number of
/// iterations" (§IV-C) — which is why BC/EC use HS or ballot instead.
pub fn blelloch_exclusive_scan(blk: &mut BlockCtx<'_>, lanes: &mut [u32]) {
    let n = lanes.len();
    assert!(
        n <= WARP_SIZE && n.is_power_of_two() || n <= 1,
        "blelloch needs a power-of-two width"
    );
    if n <= 1 {
        if n == 1 {
            lanes[0] = 0;
        }
        return;
    }
    // upsweep
    let mut d = 1usize;
    while d < n {
        blk.charge_instr(2); // index math + add per step
        let mut i = 2 * d - 1;
        while i < n {
            lanes[i] += lanes[i - d];
            i += 2 * d;
        }
        d <<= 1;
    }
    lanes[n - 1] = 0;
    // downsweep
    let mut d = n / 2;
    while d >= 1 {
        blk.charge_instr(2);
        let mut i = 2 * d - 1;
        while i < n {
            let t = lanes[i - d];
            lanes[i - d] = lanes[i];
            lanes[i] += t;
            i += 2 * d;
        }
        d /= 2;
    }
}

/// Warp-level exclusive scan of 0/1 flags via ballot (Fig. 8(c)):
/// returns `(exclusive offsets per lane, total ones)`.
///
/// Three warp instructions total (`__ballot_sync`, mask, `__popc`) —
/// independent of the warp width, which is what makes it faster than HS.
pub fn ballot_scan(blk: &mut BlockCtx<'_>, flags: &[bool]) -> (Vec<u32>, u32) {
    assert!(flags.len() <= WARP_SIZE);
    let bits = ballot_sync(blk, flags);
    blk.charge_instr(2); // mask construction + __popc, one SIMT step each
    let offsets: Vec<u32> = (0..flags.len())
        .map(|lane| (bits & lane_mask_lt(lane)).count_ones())
        .collect();
    (offsets, bits.count_ones())
}

/// [`ballot_scan`] from a pre-packed ballot mask, returning offsets in a
/// stack array instead of a `Vec`. Charges the full three-instruction
/// sequence (`__ballot_sync`, mask, `__popc`) — identical to calling
/// `ballot_sync` on bool flags followed by `ballot_scan`'s offset step —
/// so fast-path callers that keep predicates as bits charge the same.
pub fn ballot_scan_offsets(blk: &mut BlockCtx<'_>, bits: u32) -> ([u32; WARP_SIZE], u32) {
    // The simulated instruction sequence is data-independent, so the charge
    // is the same whether the ballot is empty or full.
    blk.charge_instr(3);
    if bits == 0 {
        // all-empty chunk — the common case between k-shell cascades
        return ([0u32; WARP_SIZE], 0);
    }
    // offsets[lane] = popcount(bits & lane_mask_lt(lane)), computed as one
    // running sum instead of 32 masked popcounts
    let mut offsets = [0u32; WARP_SIZE];
    let mut acc = 0u32;
    for (lane, slot) in offsets.iter_mut().enumerate() {
        *slot = acc;
        acc += (bits >> lane) & 1;
    }
    (offsets, acc)
}

/// Intra-block two-stage exclusive scan (Fig. 9) over one value per thread.
///
/// `values.len()` must equal the block's thread count. Stages:
/// 1. each warp HS-scans its 32 lanes;
/// 2. the last lane of each warp deposits the warp total (charged as shared
///    memory traffic), then **warp 0 alone** scans the warp totals — the
///    under-utilization the paper's §VI calls out ("only Warp 0 computes in
///    Stages (2) and (3)");
/// 3. every warp adds its warp-offset.
///
/// Block barriers separate the stages. Returns `(exclusive offsets, total)`.
pub fn block_two_stage_scan(blk: &mut BlockCtx<'_>, values: &[u32]) -> (Vec<u32>, u32) {
    let mut out = vec![0u32; values.len()];
    let total = block_two_stage_scan_into(blk, values, &mut out);
    (out, total)
}

/// [`block_two_stage_scan`] writing into a caller-provided slice — lets hot
/// loops reuse one scratch buffer across chunks instead of allocating a
/// fresh offsets `Vec` per call. Charges are identical to the allocating
/// form. `out.len()` must equal `values.len()`. Returns the total.
pub fn block_two_stage_scan_into(blk: &mut BlockCtx<'_>, values: &[u32], out: &mut [u32]) -> u32 {
    let n = values.len();
    assert_eq!(out.len(), n, "output slice must match value count");
    block_two_stage_scan_charges(blk, n);
    let mut acc = 0u32;
    for (slot, &v) in out.iter_mut().zip(values) {
        *slot = acc;
        acc += v;
    }
    acc
}

/// Books exactly the charges [`block_two_stage_scan_into`] books for an
/// `n`-value scan, without computing the scan. The three stages compose to
/// a plain exclusive scan (warp-inclusive, minus own value, plus the
/// exclusive warp offset), and every charge is a pure function of the
/// geometry, never of the data — so a caller that already knows the values
/// are all zero (no set flag in the chunk) can pay the cost model and skip
/// the arithmetic, bit-identically.
pub fn block_two_stage_scan_charges(blk: &mut BlockCtx<'_>, n: usize) {
    assert_eq!(
        n, blk.cfg.threads_per_block as usize,
        "one value per thread"
    );
    let num_warps = n.div_ceil(WARP_SIZE);
    assert!(num_warps <= WARP_SIZE, "warp totals must fit one warp");

    // Stage 1: every warp pays one HS scan over its lane width (2 SIMT
    // instructions per doubling step, `hs_steps` steps).
    let full_warps = (n / WARP_SIZE) as u64;
    let rem = n % WARP_SIZE;
    let mut instrs = full_warps * 2 * hs_steps(WARP_SIZE);
    if rem > 0 {
        instrs += 2 * hs_steps(rem);
    }
    blk.charge_instr(instrs);
    // Stage 2: warp totals to shared memory, barrier, then warp 0 alone
    // HS-scans the totals (cannot use ballot scan here: "elements are not
    // 0-1", §IV-C).
    blk.counters.shared_accesses += num_warps as u64 * 2; // deposit + reload
    blk.sync_threads();
    blk.charge_instr(2 * hs_steps(num_warps));
    blk.sync_threads();
    // Stage 3: one SIMT add per warp folds in the warp offset.
    blk.charge_instr(num_warps as u64);
}

/// Doubling steps (`ceil(log2(n))`) a Hillis–Steele scan takes over `n`
/// lanes — the step count [`hs_inclusive_scan`] charges 2 instructions for.
fn hs_steps(n: usize) -> u64 {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as u64
    }
}

/// Host-side reference exclusive scan, for tests.
pub fn reference_exclusive_scan(values: &[u32]) -> (Vec<u32>, u32) {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = 0u32;
    for &v in values {
        out.push(acc);
        acc += v;
    }
    (out, acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostParams, GpuContext, LaunchConfig};

    fn with_block(threads: u32, f: impl Fn(&mut BlockCtx<'_>) + Sync) {
        let mut c = GpuContext::new(CostParams::p100(), 1 << 16);
        let cfg = LaunchConfig {
            blocks: 1,
            threads_per_block: threads,
        };
        c.launch("t", cfg, |blk| {
            f(blk);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn hs_matches_reference() {
        with_block(32, |blk| {
            let vals: Vec<u32> = (0..32).map(|i| (i * 7 + 3) % 5).collect();
            let mut lanes = vals.clone();
            hs_inclusive_scan(blk, &mut lanes);
            let (ex, total) = reference_exclusive_scan(&vals);
            for i in 0..32 {
                assert_eq!(lanes[i], ex[i] + vals[i], "lane {i}");
            }
            assert_eq!(*lanes.last().unwrap(), total);
        });
    }

    #[test]
    fn hs_short_and_empty() {
        with_block(32, |blk| {
            let mut one = vec![5u32];
            hs_inclusive_scan(blk, &mut one);
            assert_eq!(one, vec![5]);
            let mut empty: Vec<u32> = vec![];
            hs_inclusive_scan(blk, &mut empty);
            assert!(empty.is_empty());
            let mut odd = vec![1u32, 2, 3, 4, 5];
            hs_inclusive_scan(blk, &mut odd);
            assert_eq!(odd, vec![1, 3, 6, 10, 15]);
        });
    }

    #[test]
    fn blelloch_matches_reference() {
        with_block(32, |blk| {
            let vals: Vec<u32> = (0..32).map(|i| i % 4).collect();
            let mut lanes = vals.clone();
            blelloch_exclusive_scan(blk, &mut lanes);
            let (ex, _) = reference_exclusive_scan(&vals);
            assert_eq!(lanes, ex);
        });
    }

    #[test]
    fn blelloch_takes_twice_the_steps_of_hs() {
        // The §IV-C reason for picking HS: count charged instructions.
        let mut c = GpuContext::new(CostParams::p100(), 1 << 16);
        let cfg = LaunchConfig {
            blocks: 2,
            threads_per_block: 32,
        };
        let hs_cost = std::sync::atomic::AtomicU32::new(0);
        let bl_cost = std::sync::atomic::AtomicU32::new(0);
        c.launch("cmp", cfg, |blk| {
            let mut v = [1u32; 32];
            let before = blk.counters.warp_instrs;
            if blk.block_idx == 0 {
                hs_inclusive_scan(blk, &mut v);
                hs_cost.store(
                    (blk.counters.warp_instrs - before) as u32,
                    std::sync::atomic::Ordering::Relaxed,
                );
            } else {
                blelloch_exclusive_scan(blk, &mut v);
                bl_cost.store(
                    (blk.counters.warp_instrs - before) as u32,
                    std::sync::atomic::Ordering::Relaxed,
                );
            }
            Ok(())
        })
        .unwrap();
        let (h, b) = (
            hs_cost.load(std::sync::atomic::Ordering::Relaxed),
            bl_cost.load(std::sync::atomic::Ordering::Relaxed),
        );
        assert!(b > h, "blelloch {b} should cost more than HS {h}");
    }

    #[test]
    fn ballot_scan_matches_reference() {
        with_block(32, |blk| {
            // the Fig. 8(a) example: p = [1,0,0,1,1,1,0,1]
            let flags = [true, false, false, true, true, true, false, true];
            let (off, total) = ballot_scan(blk, &flags);
            assert_eq!(off, vec![0, 1, 1, 1, 2, 3, 4, 4]);
            assert_eq!(total, 5);
        });
    }

    #[test]
    fn ballot_scan_cheaper_than_hs() {
        with_block(32, |blk| {
            let flags = [true; 32];
            let before = blk.counters.warp_instrs;
            let _ = ballot_scan(blk, &flags);
            let ballot_cost = blk.counters.warp_instrs - before;
            let before = blk.counters.warp_instrs;
            let mut v = [1u32; 32];
            hs_inclusive_scan(blk, &mut v);
            let hs_cost = blk.counters.warp_instrs - before;
            assert!(
                ballot_cost < hs_cost,
                "ballot {ballot_cost} vs hs {hs_cost}"
            );
        });
    }

    #[test]
    fn ballot_scan_offsets_matches_ballot_scan() {
        with_block(32, |blk| {
            let flags: Vec<bool> = (0..32).map(|i| (i * 7) % 3 == 0).collect();
            let before = blk.counters.warp_instrs;
            let (off, total) = ballot_scan(blk, &flags);
            let ref_cost = blk.counters.warp_instrs - before;
            let bits = flags
                .iter()
                .enumerate()
                .fold(0u32, |m, (i, &p)| if p { m | (1 << i) } else { m });
            let before = blk.counters.warp_instrs;
            let (fast, fast_total) = ballot_scan_offsets(blk, bits);
            let fast_cost = blk.counters.warp_instrs - before;
            assert_eq!(&fast[..off.len()], off.as_slice());
            assert_eq!(fast_total, total);
            assert_eq!(fast_cost, ref_cost, "identical charging");
        });
    }

    #[test]
    fn block_scan_into_matches_allocating() {
        for threads in [32u32, 256] {
            with_block(threads, move |blk| {
                let vals: Vec<u32> = (0..threads).map(|i| (i * 5 + 2) % 9).collect();
                let before = blk.counters;
                let (off, total) = block_two_stage_scan(blk, &vals);
                let ref_counters = blk.counters;
                let mut out = vec![0u32; vals.len()];
                let fast_total = block_two_stage_scan_into(blk, &vals, &mut out);
                assert_eq!(out, off);
                assert_eq!(fast_total, total);
                // both calls must charge the same deltas
                assert_eq!(
                    ref_counters.warp_instrs - before.warp_instrs,
                    blk.counters.warp_instrs - ref_counters.warp_instrs
                );
                assert_eq!(
                    ref_counters.shared_accesses - before.shared_accesses,
                    blk.counters.shared_accesses - ref_counters.shared_accesses
                );
            });
        }
    }

    #[test]
    fn block_scan_matches_reference() {
        for threads in [32u32, 64, 256, 1024] {
            with_block(threads, move |blk| {
                let vals: Vec<u32> = (0..threads).map(|i| (i * 13 + 1) % 7).collect();
                let (off, total) = block_two_stage_scan(blk, &vals);
                let (ex, t) = reference_exclusive_scan(&vals);
                assert_eq!(off, ex, "threads={threads}");
                assert_eq!(total, t);
            });
        }
    }

    #[test]
    fn block_scan_uses_barriers() {
        with_block(1024, |blk| {
            let vals = vec![1u32; 1024];
            let before = blk.counters.barriers;
            let _ = block_two_stage_scan(blk, &vals);
            assert!(
                blk.counters.barriers >= before + 2,
                "two stage boundaries expected"
            );
        });
    }
}
