//! Chrome trace-event export of a [`Timeline`], loadable in Perfetto.
//!
//! [`Timeline::to_chrome_json`] serializes an SM-level timeline to the
//! Chrome trace-event JSON format (the `traceEvents` array of `"X"`
//! complete / `"M"` metadata / `"C"` counter events, timestamps in
//! microseconds) that <https://ui.perfetto.dev> and `chrome://tracing`
//! open directly:
//!
//! * **pid 0 — the GPU.** One thread track per SM; a block executing on a
//!   residency slot beyond the first gets a sibling `SM nn · slot s` track
//!   so concurrent residents never overlap within one track. Each block is
//!   an `"X"` span named after its kernel, with the phase as category and
//!   launch/block/slot/warps in `args`.
//! * **pid 1 — PCIe.** Host↔device copies as `"X"` spans (`h2d` / `d2h`).
//! * **pid 2 — device memory.** One `"X"` lifetime slice per allocation
//!   (named after the buffer, phase as category, bytes/size-class in
//!   `args`), laned by the device slot the allocation occupied, plus a
//!   `device_bytes` counter stepping through the live-footprint curve — so
//!   footprint tiling renders directly against the SM tracks.
//! * **Counter tracks.** Every [`crate::timeline::CounterPoint`] sampled via
//!   [`crate::GpuContext::sample_counter`] (frontier size per round, …)
//!   becomes a `"C"` event, and an `active_warps` counter is derived from
//!   the block spans' begin/end edges — the live-occupancy sawtooth that
//!   makes divergence tails visible at a glance.
//!
//! The export is plain arithmetic over the timeline's recorded values in a
//! fixed order — same timeline ⇒ byte-identical JSON (asserted by the
//! golden tests across runs and rayon pool sizes).

use crate::hostprof::HostProfile;
use crate::timeline::Timeline;
use serde::{Serialize, Value};

/// Track-id stride separating residency slots of one SM: `tid = sm * 64 +
/// slot`. 64 > [`crate::CostParams::max_blocks_per_sm`] on every modelled
/// device, so slot tracks of adjacent SMs can't collide and sorting by tid
/// groups each SM with its slots.
const SLOT_STRIDE: u32 = 64;

const GPU_PID: u64 = 0;
const PCIE_PID: u64 = 1;
const MEM_PID: u64 = 2;
/// pid of the optional "Host (wall clock)" process appended by
/// [`Timeline::to_chrome_json_with_host`]. Host tracks live on a different
/// time base (host seconds, not simulated milliseconds) — the process name
/// says so.
const HOST_PID: u64 = 3;

impl Timeline {
    /// Serializes the timeline as compact Chrome trace-event JSON (see the
    /// module docs for the track layout).
    pub fn to_chrome_json(&self) -> String {
        self.to_chrome_json_with_host(None)
    }

    /// [`Timeline::to_chrome_json`] plus an optional "Host" process (pid 3)
    /// rendering a [`HostProfile`]'s per-thread span tracks and point
    /// events next to the simulated tracks. With `None` the output is
    /// byte-identical to [`Timeline::to_chrome_json`], so golden exports
    /// are unaffected by host profiling being available.
    pub fn to_chrome_json_with_host(&self, host: Option<&HostProfile>) -> String {
        let mut events: Vec<Value> = Vec::new();
        self.push_chrome_events(&mut events, GPU_PID, PCIE_PID, MEM_PID, "");

        // ---- host wall-clock tracks (optional) -----------------------
        if let Some(h) = host {
            events.extend(h.chrome_events(HOST_PID));
        }

        let doc = obj(vec![
            ("traceEvents", Value::Array(events)),
            ("displayTimeUnit", Value::Str("ms".into())),
            (
                "otherData",
                obj(vec![
                    ("schema_version", Value::UInt(self.schema_version as u64)),
                    ("label", Value::Str(self.label.clone())),
                    ("sm_count", Value::UInt(self.sm_count as u64)),
                ]),
            ),
        ]);
        serde_json::to_string(&doc).expect("timeline serializes")
    }

    /// Appends this timeline's track metadata, block/transfer/memory spans,
    /// and counter events onto `events`, parameterized over the three
    /// process ids and a process-name prefix. The single-device exports call
    /// this with `(0, 1, 2, "")` — byte-identical to the pre-refactor
    /// output — while the fleet export ([`crate::fleet`]) lays several
    /// devices side by side under distinct pids and `"D<n> · "` prefixes.
    pub(crate) fn push_chrome_events(
        &self,
        events: &mut Vec<Value>,
        gpu_pid: u64,
        pcie_pid: u64,
        mem_pid: u64,
        prefix: &str,
    ) {
        // ---- track metadata ------------------------------------------
        events.push(meta_event(
            "process_name",
            gpu_pid,
            None,
            format!("{prefix}GPU · {} SMs · {}", self.sm_count, self.label),
        ));
        events.push(meta_event(
            "process_name",
            pcie_pid,
            None,
            format!("{prefix}PCIe"),
        ));
        events.push(meta_event(
            "thread_name",
            pcie_pid,
            Some(0),
            "Host ↔ Device".into(),
        ));
        if !self.memory.is_empty() {
            events.push(meta_event(
                "process_name",
                mem_pid,
                None,
                format!("{prefix}Device memory"),
            ));
            let mut lanes: Vec<u64> = self.memory.iter().map(|m| m.slot).collect();
            lanes.sort_unstable();
            lanes.dedup();
            for lane in lanes {
                events.push(meta_event(
                    "thread_name",
                    mem_pid,
                    Some(lane),
                    format!("alloc slot {lane}"),
                ));
            }
        }
        // name only the (sm, slot) tracks that actually ran a block, in
        // (sm, slot) order
        let mut tids: Vec<(u32, u32)> = self.spans.iter().map(|s| (s.sm, s.slot)).collect();
        tids.sort_unstable();
        tids.dedup();
        for (sm, slot) in tids {
            let tid = (sm * SLOT_STRIDE + slot) as u64;
            let name = if slot == 0 {
                format!("SM {sm:02}")
            } else {
                format!("SM {sm:02} · slot {slot}")
            };
            events.push(meta_event("thread_name", gpu_pid, Some(tid), name));
            events.push(obj(vec![
                ("name", Value::Str("thread_sort_index".into())),
                ("ph", Value::Str("M".into())),
                ("pid", Value::UInt(gpu_pid)),
                ("tid", Value::UInt(tid)),
                ("args", obj(vec![("sort_index", Value::UInt(tid))])),
            ]));
        }

        // ---- block spans ---------------------------------------------
        for s in &self.spans {
            events.push(obj(vec![
                ("name", Value::Str(s.kernel.into())),
                ("cat", Value::Str(s.phase.into())),
                ("ph", Value::Str("X".into())),
                ("ts", Value::Float(s.start_ms * 1e3)),
                ("dur", Value::Float((s.end_ms - s.start_ms) * 1e3)),
                ("pid", Value::UInt(gpu_pid)),
                ("tid", Value::UInt((s.sm * SLOT_STRIDE + s.slot) as u64)),
                (
                    "args",
                    obj(vec![
                        ("launch", Value::UInt(s.launch_seq as u64)),
                        ("block", Value::UInt(s.block as u64)),
                        ("warps", Value::UInt(s.warps as u64)),
                    ]),
                ),
            ]));
        }

        // ---- PCIe transfer spans -------------------------------------
        for t in &self.transfers {
            events.push(obj(vec![
                ("name", Value::Str(t.dir.into())),
                ("cat", Value::Str(t.phase.into())),
                ("ph", Value::Str("X".into())),
                ("ts", Value::Float(t.start_ms * 1e3)),
                ("dur", Value::Float((t.end_ms - t.start_ms) * 1e3)),
                ("pid", Value::UInt(pcie_pid)),
                ("tid", Value::UInt(0)),
                (
                    "args",
                    obj(vec![
                        ("seq", Value::UInt(t.seq as u64)),
                        ("bytes", Value::UInt(t.bytes)),
                    ]),
                ),
            ]));
        }

        // ---- device-memory lifetime slices ---------------------------
        for m in &self.memory {
            events.push(obj(vec![
                ("name", Value::Str(m.name.clone())),
                ("cat", Value::Str(m.phase.into())),
                ("ph", Value::Str("X".into())),
                ("ts", Value::Float(m.start_ms * 1e3)),
                ("dur", Value::Float((m.end_ms - m.start_ms) * 1e3)),
                ("pid", Value::UInt(mem_pid)),
                ("tid", Value::UInt(m.slot)),
                (
                    "args",
                    obj(vec![
                        ("bytes", Value::UInt(m.bytes)),
                        ("size_class", m.size_class.to_value()),
                        ("freed", Value::Bool(m.freed)),
                    ]),
                ),
            ]));
        }

        // ---- counter tracks ------------------------------------------
        for c in &self.counters {
            events.push(counter_event(gpu_pid, c.track, c.time_ms, c.value));
        }
        for (ts_ms, warps) in active_warps(self) {
            events.push(counter_event(gpu_pid, "active_warps", ts_ms, warps as f64));
        }
        for (ts_ms, bytes) in device_bytes(self) {
            events.push(counter_event(mem_pid, "device_bytes", ts_ms, bytes as f64));
        }
    }
}

/// The `active_warps` sawtooth: net resident warps after each distinct span
/// edge, in timestamp order.
fn active_warps(tl: &Timeline) -> Vec<(f64, i64)> {
    let mut edges: Vec<(f64, i64)> = Vec::with_capacity(tl.spans.len() * 2);
    for s in &tl.spans {
        edges.push((s.start_ms, s.warps as i64));
        edges.push((s.end_ms, -(s.warps as i64)));
    }
    merge_edges(edges)
}

/// The `device_bytes` step function: live footprint after each distinct
/// alloc/free edge. Allocations never freed contribute no closing edge, so
/// the curve ends at the still-live level instead of draining to zero.
fn device_bytes(tl: &Timeline) -> Vec<(f64, i64)> {
    let mut edges: Vec<(f64, i64)> = Vec::with_capacity(tl.memory.len() * 2);
    for m in &tl.memory {
        edges.push((m.start_ms, m.bytes as i64));
        if m.freed {
            edges.push((m.end_ms, -(m.bytes as i64)));
        }
    }
    merge_edges(edges)
}

/// Accumulates +/− edges into a step curve with one point per distinct
/// timestamp. Negative edges sort first at equal timestamps (retire before
/// dispatch), so back-to-back occupants of one slot don't double-count.
fn merge_edges(mut edges: Vec<(f64, i64)>) -> Vec<(f64, i64)> {
    edges.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    let mut out: Vec<(f64, i64)> = Vec::new();
    let mut level = 0i64;
    for (ts, delta) in edges {
        level += delta;
        match out.last_mut() {
            Some(last) if last.0 == ts => last.1 = level,
            _ => out.push((ts, level)),
        }
    }
    out
}

pub(crate) fn counter_event(pid: u64, track: &str, ts_ms: f64, value: f64) -> Value {
    obj(vec![
        ("name", Value::Str(track.into())),
        ("ph", Value::Str("C".into())),
        ("ts", Value::Float(ts_ms * 1e3)),
        ("pid", Value::UInt(pid)),
        ("tid", Value::UInt(0)),
        ("args", obj(vec![("value", Value::Float(value))])),
    ])
}

pub(crate) fn meta_event(name: &str, pid: u64, tid: Option<u64>, value: String) -> Value {
    let mut entries = vec![
        ("name", Value::Str(name.into())),
        ("ph", Value::Str("M".into())),
        ("pid", Value::UInt(pid)),
    ];
    if let Some(tid) = tid {
        entries.push(("tid", Value::UInt(tid)));
    }
    entries.push(("args", obj(vec![("name", Value::Str(value))])));
    obj(entries)
}

pub(crate) fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

#[cfg(test)]
mod tests {
    use crate::exec::{GpuContext, LaunchConfig};
    use crate::CostParams;

    fn ctx() -> GpuContext {
        let mut c = GpuContext::new(CostParams::p100(), 1 << 20);
        let buf = c.htod("x", &[0u32; 64]).unwrap();
        let cfg = LaunchConfig {
            blocks: 3,
            threads_per_block: 64,
        };
        c.set_phase("Loop");
        c.launch("loop", cfg, |blk| {
            blk.charge_instr(50 * (blk.block_idx as u64 + 1));
            Ok(())
        })
        .unwrap();
        c.set_phase("Sync");
        c.dtoh_word(buf, 0);
        c.sample_counter("frontier", 7.0);
        c
    }

    #[test]
    fn export_contains_tracks_spans_and_counters() {
        let json = ctx().timeline("rmat9/peel").to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        // track naming
        assert!(json.contains("\"GPU · 56 SMs · rmat9/peel\""));
        assert!(json.contains("\"SM 00\""));
        assert!(json.contains("\"SM 02\""));
        assert!(json.contains("\"PCIe\""));
        // block spans carry kernel name, phase category, and block args
        assert!(json.contains("\"name\":\"loop\",\"cat\":\"Loop\",\"ph\":\"X\""));
        assert!(json.contains("\"block\":2"));
        // transfers and counter tracks
        assert!(json.contains("\"name\":\"h2d\""));
        assert!(json.contains("\"name\":\"d2h\""));
        assert!(json.contains("\"name\":\"frontier\",\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"active_warps\",\"ph\":\"C\""));
        // device-memory process: lifetime slice for the htod'd buffer and
        // the footprint counter
        assert!(json.contains("\"Device memory\""));
        assert!(json.contains("\"alloc slot 0\""));
        assert!(json.contains("\"name\":\"x\",\"cat\":\"main\",\"ph\":\"X\""));
        assert!(json.contains("\"size_class\":\"Fixed\""));
        assert!(json.contains("\"name\":\"device_bytes\",\"ph\":\"C\""));
        // trailer
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        assert!(json.contains("\"schema_version\":3"));
    }

    #[test]
    fn active_warps_rises_and_drains_to_zero() {
        let tl = ctx().timeline("t");
        let steps = super::active_warps(&tl);
        assert!(!steps.is_empty());
        // 3 blocks × 2 warps all start together at the window edge
        assert_eq!(steps[0].1, 6);
        // everything retires by the end
        assert_eq!(steps.last().unwrap().1, 0);
        // timestamps strictly increase after edge-merging
        for w in steps.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
    }

    #[test]
    fn device_bytes_steps_with_alloc_and_free() {
        let mut c = ctx();
        let tmp = c.alloc("scratch", 16).unwrap(); // +64 B
        c.device.free(tmp);
        let tl = c.timeline("t");
        let steps = super::device_bytes(&tl);
        // htod (256 B) at t=0, then +64/−64 at the current clock (merged to
        // one point back at the pre-alloc level)
        assert_eq!(steps.first().unwrap().1, 256);
        assert_eq!(steps.last().unwrap().1, 256);
        assert!(steps.iter().any(|&(_, v)| v == 256 + 64) || steps.len() == 2);
        // never drains to zero: "x" is still live at snapshot time
        assert!(steps.iter().all(|&(_, v)| v >= 256));
    }

    #[test]
    fn export_is_byte_identical_across_captures() {
        let a = ctx().timeline("t").to_chrome_json();
        let b = ctx().timeline("t").to_chrome_json();
        assert_eq!(a, b);
    }

    #[test]
    fn host_process_appends_without_touching_base_export() {
        let mut c = ctx();
        c.set_host_profiler(Some(crate::HostProfiler::faked(10)));
        {
            let _s = c.host_span("peel");
            c.launch(
                "k",
                LaunchConfig {
                    blocks: 1,
                    threads_per_block: 32,
                },
                |blk| {
                    blk.charge_instr(1);
                    Ok(())
                },
            )
            .unwrap();
        }
        let profile = c.host_profile("t").unwrap();
        let tl = c.timeline("t");
        let plain = tl.to_chrome_json();
        // None is byte-identical to the plain export
        assert_eq!(plain, tl.to_chrome_json_with_host(None));
        // Some(_) appends a Host process with the span track
        let with_host = tl.to_chrome_json_with_host(Some(&profile));
        assert!(with_host.len() > plain.len());
        assert!(with_host.contains("Host (wall clock) · t"));
        assert!(with_host.contains("\"name\":\"peel\",\"cat\":\"host\",\"ph\":\"X\""));
        // the base portion is a prefix-preserved superset: same trailer
        assert!(with_host.contains("\"displayTimeUnit\":\"ms\""));
    }
}
