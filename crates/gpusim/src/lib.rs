//! A deterministic SIMT GPU simulator.
//!
//! The paper's contribution is a CUDA kernel suite; this workspace has no
//! physical GPU, so the kernels run on this simulator instead (see DESIGN.md
//! for the substitution argument). The simulator reproduces the two things
//! the paper's claims rest on:
//!
//! 1. **Execution semantics** — grids of independent thread blocks; warps of
//!    32 lanes executing in lockstep with divergence masking; per-block
//!    shared memory; `__syncthreads`/`__syncwarp` barriers with
//!    snapshot-consistent visibility; global-memory atomics
//!    (`atomicAdd`/`atomicSub`); warp primitives (`__ballot_sync`,
//!    `__shfl_sync`, `__popc`). Blocks genuinely run in parallel on host
//!    threads; within a block, barrier-delimited phases execute
//!    warp-by-warp with the visibility the barriers guarantee on hardware.
//! 2. **A cost model** — every kernel accumulates per-block counters
//!    (coalesced global transactions, atomics, shared-memory traffic, warp
//!    instructions, barriers). Kernel time is a roofline:
//!    `launch_overhead + max(compute makespan over SMs, bytes / bandwidth)`,
//!    with constants calibrated to the paper's NVIDIA Tesla P100
//!    ([`CostParams::p100`]).
//!
//! Device memory is a tracked arena: allocations update current/peak byte
//! counts and fail with [`OomError`] beyond capacity — producing the
//! paper's "OOM" table entries naturally. Every alloc/free is also recorded
//! in an allocation ledger ([`device::LedgerEntry`]) feeding
//! [`MemStats`] snapshots, per-phase memory watermarks, and full-scale
//! capacity forecasts ([`MemStats::extrapolate`]) — observability that
//! charges nothing and cannot perturb a golden trace.
//!
//! # Example
//!
//! ```
//! use kcore_gpusim::{GpuContext, CostParams, LaunchConfig};
//!
//! let mut ctx = GpuContext::new(CostParams::p100(), 1 << 20);
//! let data = ctx.htod("numbers", &[1, 2, 3, 4]).unwrap();
//! let cfg = LaunchConfig { blocks: 2, threads_per_block: 64 };
//! ctx.launch("double", cfg, |blk| {
//!     let buf = blk.device.buffer(data);
//!     // grid-stride loop over the 4 elements
//!     for i in (blk.block_idx as usize..4).step_by(cfg.blocks as usize) {
//!         let v = blk.gread(&buf[i]);
//!         blk.gwrite(&buf[i], v * 2);
//!     }
//!     Ok(())
//! }).unwrap();
//! assert_eq!(ctx.dtoh(data), vec![2, 4, 6, 8]);
//! assert!(ctx.elapsed_ms() > 0.0);
//! ```

// Kernel-style code indexes several parallel device arrays with one
// explicit loop variable, mirroring the CUDA idiom it simulates; iterator
// rewrites would obscure that correspondence.
#![allow(clippy::needless_range_loop)]

pub mod cost;
pub mod device;
pub mod exec;
pub mod fleet;
pub mod hostprof;
pub mod memstats;
pub mod perfetto;
pub mod scan;
pub mod timeline;
pub mod trace;
pub mod warp;

pub use cost::{
    BlockSchedule, CostParams, CounterSample, Counters, LaunchRecord, Roofline, SimReport,
    TransferDir, TransferRecord,
};
pub use device::{BufferId, Device, LedgerEntry, OomError, SizeClass};
pub use exec::{
    BlockCtx, Coalescing, GpuContext, KernelError, LaunchConfig, SharedArray, SimError, SimOptions,
};
pub use fleet::{
    fnv1a_bytes, DeviceRollup, ExchangeTrace, FleetTrace, FlowEdge, RoundCritical, RoundTrace,
    SubRoundSlice, FLEET_SCHEMA_VERSION,
};
pub use hostprof::{
    FakeClock, HostBucket, HostClock, HostEvent, HostPhase, HostProfile, HostProfiler, HostSpan,
    HostThread, SpanGuard, WallClock, HOSTPROF_ENV, HOSTPROF_SCHEMA_VERSION,
};
pub use memstats::{
    CapacityForecast, FleetMemStats, LiveAlloc, MemStats, PhasePeak, PhaseTransfers,
    MEMSTATS_SCHEMA_VERSION, P100_DEVICE_BYTES, PEAK_LIVE_SET_TOP_K,
};
pub use timeline::{
    BlockCost, CounterPoint, Hotspot, MemSpan, Timeline, TimelineSpan, TransferSpan,
};
pub use trace::{
    DeviceInfo, LaunchEvent, PhaseSummary, Totals, Trace, TransferEvent, HOTSPOT_TOP_K,
    TRACE_SCHEMA_VERSION,
};
