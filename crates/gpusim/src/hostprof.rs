//! Host-side wall-clock profiling: scoped spans, per-launch host-time
//! buckets, and rayon-pool utilization sampling.
//!
//! Everything else in this crate measures *simulated* time — the
//! deterministic clock the golden traces pin bit-for-bit. This module
//! measures the opposite thing: where the **host** wall clock goes while the
//! simulator runs (launch dispatch, the plan-parallel map, the serial commit
//! lane, arena recycling, PCIe copy loops). That is the number ROADMAP
//! item 5 optimizes, and it is nondeterministic by nature, so the contract
//! is strict:
//!
//! * **Observes, never charges.** Attaching a [`HostProfiler`] to a
//!   [`GpuContext`] changes no counter, no simulated timestamp, no
//!   fingerprint, and no golden trace byte.
//! * **Excluded from fingerprints and golden compares.** The
//!   [`HostProfile`] JSON is written *alongside* a trace
//!   (`<name>.hostprof.json`), never embedded in it; `Trace::to_json` and
//!   `counters_fingerprint` are oblivious to it.
//! * **Deterministic under an injected clock.** All timing goes through the
//!   [`HostClock`] trait; tests inject [`FakeClock`] (a fixed step per
//!   reading) so span trees and bucket tables are reproducible wherever the
//!   underlying call sequence is (i.e. at rayon pool size 1).
//!
//! Spans are hierarchical RAII guards ([`HostProfiler::span`]) kept in
//! per-thread buffers (the rayon shim spawns fresh scoped worker threads per
//! parallel region, so threads self-register) and merged at
//! [`HostProfiler::profile`] time. Dropping guards out of order is tolerated:
//! a parent closed before its children closes the children at the same end
//! timestamp, and the late child drops become no-ops.

use crate::exec::GpuContext;
use serde::{Serialize, Value};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Schema version stamped into every [`HostProfile`] JSON. Bump on any
/// change to the serialized shape so stale files are recognizable.
pub const HOSTPROF_SCHEMA_VERSION: u32 = 2;

/// Environment variable that opt-ins host profiling for contexts built via
/// [`crate::SimOptions::context`] and for the global ingestion profiler:
/// `KCORE_HOSTPROF=1`.
pub const HOSTPROF_ENV: &str = "KCORE_HOSTPROF";

// ---------------------------------------------------------------------------
// Host allocation counting
// ---------------------------------------------------------------------------

/// Counting wrapper around the system allocator: two relaxed atomic adds per
/// allocation, pure pass-through otherwise. Installed as the global
/// allocator for every binary linking this crate so per-phase host
/// allocation counts are available; the counters are process-global and
/// monotone, so consumers read *deltas*.
pub struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static HOST_ALLOCATOR: CountingAlloc = CountingAlloc;

/// Process-global (allocation call count, allocated byte count) since
/// startup. Monotone; read deltas across two readings to attribute
/// allocations to a region. Counts are process-wide, so concurrent threads
/// (e.g. other tests in one test binary) bleed into each other's deltas —
/// the numbers are informational, never part of a golden compare.
pub fn host_alloc_counts() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

// ---------------------------------------------------------------------------
// Clocks
// ---------------------------------------------------------------------------

/// Injectable host clock. Implementations must be monotone non-decreasing
/// across calls on one thread.
pub trait HostClock: Send + Sync {
    /// Current reading in seconds (arbitrary origin; the profiler
    /// normalizes to its construction time).
    fn now_s(&self) -> f64;
}

/// The real wall clock ([`Instant`]-based).
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock originating now.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl HostClock for WallClock {
    fn now_s(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

/// Deterministic test clock: every reading advances a fixed step, so a
/// deterministic *call sequence* yields deterministic timestamps and
/// durations. (Under concurrency the tick assignment races — use it for
/// byte-stable goldens only at rayon pool size 1.)
#[derive(Debug)]
pub struct FakeClock {
    ticks: AtomicU64,
    step_us: u64,
}

impl FakeClock {
    /// A fake clock advancing `step_us` microseconds per reading.
    pub fn with_step_us(step_us: u64) -> Self {
        FakeClock {
            ticks: AtomicU64::new(0),
            step_us,
        }
    }
}

impl HostClock for FakeClock {
    fn now_s(&self) -> f64 {
        let t = self.ticks.fetch_add(1, Ordering::Relaxed);
        (t * self.step_us) as f64 * 1e-6
    }
}

// ---------------------------------------------------------------------------
// Buckets
// ---------------------------------------------------------------------------

/// Host-time attribution buckets, accrued per algorithm phase by the launch
/// engine (`exec.rs`). Together they answer "where does the wall clock go
/// inside a launch": everything a launch spends is charged to exactly one
/// bucket, so per-phase bucket sums ≈ host time inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostBucket {
    /// Per-launch fixed work: block setup/init loops, plain-launch block
    /// execution, counter pricing, and record bookkeeping.
    Dispatch,
    /// The phased scheduler's parallel plan map (rayon fan-out).
    PlanParallel,
    /// The serial commit lane: phased commits in wave order, plus the whole
    /// fused wave loop of the serial specialization and the reference
    /// stepped engine (both are serial lanes by construction).
    CommitSerial,
    /// Arena traffic: taking/recycling pooled shared-memory and counter
    /// scratch at launch granularity.
    ArenaAlloc,
    /// Wave orchestration of the phased parallel path: the xorshift
    /// shuffle and pulling the wave's live blocks into dispatch order.
    SchedulerWait,
    /// Host↔device copy loops and transfer bookkeeping.
    Transfer,
    /// The fused launch's inter-step handoff: carrying block state (shared
    /// backings, counters) from the scan step into the loop step and
    /// replaying the phase transition inside one dispatch
    /// ([`GpuContext::launch_fused`](crate::GpuContext::launch_fused)).
    FusedStep,
}

impl HostBucket {
    /// All buckets, in serialization order.
    pub const ALL: [HostBucket; 7] = [
        HostBucket::Dispatch,
        HostBucket::PlanParallel,
        HostBucket::CommitSerial,
        HostBucket::ArenaAlloc,
        HostBucket::SchedulerWait,
        HostBucket::Transfer,
        HostBucket::FusedStep,
    ];

    /// Stable snake_case label (the JSON field name minus the `_s` suffix).
    pub fn label(self) -> &'static str {
        match self {
            HostBucket::Dispatch => "dispatch",
            HostBucket::PlanParallel => "plan_parallel",
            HostBucket::CommitSerial => "commit_serial",
            HostBucket::ArenaAlloc => "arena",
            HostBucket::SchedulerWait => "scheduler_wait",
            HostBucket::Transfer => "transfer",
            HostBucket::FusedStep => "fused_step",
        }
    }

    fn idx(self) -> usize {
        match self {
            HostBucket::Dispatch => 0,
            HostBucket::PlanParallel => 1,
            HostBucket::CommitSerial => 2,
            HostBucket::ArenaAlloc => 3,
            HostBucket::SchedulerWait => 4,
            HostBucket::Transfer => 5,
            HostBucket::FusedStep => 6,
        }
    }
}

// ---------------------------------------------------------------------------
// Profiler internals
// ---------------------------------------------------------------------------

struct OpenSpan {
    id: u64,
    name: String,
    start_s: f64,
    depth: u32,
    allocs_at_open: u64,
}

#[derive(Default)]
struct ThreadState {
    stack: Vec<OpenSpan>,
    spans: Vec<SpanRec>,
}

struct ThreadLog {
    ordinal: u32,
    state: Mutex<ThreadState>,
}

/// A closed span as recorded in a thread buffer.
#[derive(Clone)]
struct SpanRec {
    name: String,
    depth: u32,
    start_s: f64,
    end_s: f64,
    allocs: u64,
}

struct PhaseAccum {
    phase: &'static str,
    bucket_s: [f64; HostBucket::ALL.len()],
    launches: u64,
    allocs: u64,
    util_samples: u64,
    util_busy_sum: u64,
    util_pool: u32,
}

impl PhaseAccum {
    fn new(phase: &'static str) -> Self {
        PhaseAccum {
            phase,
            bucket_s: [0.0; HostBucket::ALL.len()],
            launches: 0,
            allocs: 0,
            util_samples: 0,
            util_busy_sum: 0,
            util_pool: 0,
        }
    }
}

struct EventRec {
    t_s: f64,
    category: String,
    label: String,
}

struct Inner {
    id: u64,
    clock: Box<dyn HostClock>,
    origin_s: f64,
    alloc_origin: u64,
    threads: Mutex<Vec<Arc<ThreadLog>>>,
    phases: Mutex<Vec<PhaseAccum>>,
    events: Mutex<Vec<EventRec>>,
    next_span: AtomicU64,
}

static NEXT_PROFILER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread cache of this thread's log per profiler (keyed by the
    /// profiler's process-unique id — the rayon shim's workers are fresh
    /// scoped threads, so they self-register on first span).
    static TL_LOGS: RefCell<Vec<(u64, Arc<ThreadLog>)>> = const { RefCell::new(Vec::new()) };
}

/// Hierarchical host-side span profiler. Cheap to clone (an [`Arc`]); all
/// sinks are internally synchronized, so clones can record from any thread.
#[derive(Clone)]
pub struct HostProfiler {
    inner: Arc<Inner>,
}

impl HostProfiler {
    /// A profiler reading the given clock.
    pub fn new(clock: Box<dyn HostClock>) -> Self {
        let origin_s = clock.now_s();
        let (alloc_origin, _) = host_alloc_counts();
        HostProfiler {
            inner: Arc::new(Inner {
                id: NEXT_PROFILER_ID.fetch_add(1, Ordering::Relaxed),
                clock,
                origin_s,
                alloc_origin,
                threads: Mutex::new(Vec::new()),
                phases: Mutex::new(Vec::new()),
                events: Mutex::new(Vec::new()),
                next_span: AtomicU64::new(0),
            }),
        }
    }

    /// A wall-clock profiler (the production configuration).
    pub fn wall() -> Self {
        Self::new(Box::new(WallClock::new()))
    }

    /// A deterministic profiler advancing `step_us` µs per clock reading.
    pub fn faked(step_us: u64) -> Self {
        Self::new(Box::new(FakeClock::with_step_us(step_us)))
    }

    /// Seconds since profiler construction, per the injected clock.
    /// **Each call consumes one clock reading** — under [`FakeClock`] that
    /// advances time, which is exactly what makes call sequences visible.
    pub fn now_s(&self) -> f64 {
        self.inner.clock.now_s() - self.inner.origin_s
    }

    fn thread_log(&self) -> Arc<ThreadLog> {
        TL_LOGS.with(|logs| {
            let mut logs = logs.borrow_mut();
            if let Some((_, log)) = logs.iter().find(|(id, _)| *id == self.inner.id) {
                return log.clone();
            }
            let mut threads = self.inner.threads.lock().unwrap();
            let log = Arc::new(ThreadLog {
                ordinal: threads.len() as u32,
                state: Mutex::new(ThreadState::default()),
            });
            threads.push(log.clone());
            logs.push((self.inner.id, log.clone()));
            log
        })
    }

    /// Opens a scoped span on the calling thread; the returned guard closes
    /// it on drop. Spans nest; unbalanced drops are tolerated (see module
    /// docs).
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        let log = self.thread_log();
        let start_s = self.now_s();
        let (allocs, _) = host_alloc_counts();
        let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
        {
            let mut st = log.state.lock().unwrap();
            let depth = st.stack.len() as u32;
            st.stack.push(OpenSpan {
                id,
                name: name.into(),
                start_s,
                depth,
                allocs_at_open: allocs,
            });
        }
        SpanGuard {
            profiler: self.clone(),
            log,
            id,
        }
    }

    /// Accrues `dt_s` seconds of host time into `bucket` for `phase`.
    pub fn add_bucket(&self, phase: &'static str, bucket: HostBucket, dt_s: f64) {
        let mut phases = self.inner.phases.lock().unwrap();
        let acc = phase_accum(&mut phases, phase);
        acc.bucket_s[bucket.idx()] += dt_s.max(0.0);
    }

    /// Counts one launch against `phase`.
    pub fn note_launch(&self, phase: &'static str) {
        let mut phases = self.inner.phases.lock().unwrap();
        phase_accum(&mut phases, phase).launches += 1;
    }

    /// Attributes `n` host allocator calls to `phase`.
    pub fn note_allocs(&self, phase: &'static str, n: u64) {
        let mut phases = self.inner.phases.lock().unwrap();
        phase_accum(&mut phases, phase).allocs += n;
    }

    /// Samples rayon pool utilization for `phase`: `busy` workers active of
    /// a `pool`-sized pool (one sample per parallel region).
    pub fn sample_util(&self, phase: &'static str, busy: u32, pool: u32) {
        let mut phases = self.inner.phases.lock().unwrap();
        let acc = phase_accum(&mut phases, phase);
        acc.util_samples += 1;
        acc.util_busy_sum += busy as u64;
        acc.util_pool = acc.util_pool.max(pool);
    }

    /// Records a timestamped point event (e.g. a dataset-cache hit).
    pub fn event(&self, category: &str, label: impl Into<String>) {
        let t_s = self.now_s();
        self.inner.events.lock().unwrap().push(EventRec {
            t_s,
            category: category.to_string(),
            label: label.into(),
        });
    }

    /// Merges all per-thread buffers and accumulators into a serializable
    /// [`HostProfile`]. Still-open spans are not included — close the run
    /// guard before capturing. Threads appear in registration order; spans
    /// within a thread in (start, depth) order.
    pub fn profile(&self, label: &str) -> HostProfile {
        let total_s = self.now_s();
        let (allocs_now, alloc_bytes_now) = host_alloc_counts();
        let phases = self.inner.phases.lock().unwrap();
        let phase_rows: Vec<HostPhase> = phases
            .iter()
            .map(|acc| HostPhase {
                phase: acc.phase.to_string(),
                launches: acc.launches,
                allocs: acc.allocs,
                dispatch_s: acc.bucket_s[HostBucket::Dispatch.idx()],
                plan_parallel_s: acc.bucket_s[HostBucket::PlanParallel.idx()],
                commit_serial_s: acc.bucket_s[HostBucket::CommitSerial.idx()],
                arena_s: acc.bucket_s[HostBucket::ArenaAlloc.idx()],
                scheduler_wait_s: acc.bucket_s[HostBucket::SchedulerWait.idx()],
                transfer_s: acc.bucket_s[HostBucket::Transfer.idx()],
                fused_step_s: acc.bucket_s[HostBucket::FusedStep.idx()],
                util_samples: acc.util_samples,
                avg_busy_workers: if acc.util_samples == 0 {
                    0.0
                } else {
                    acc.util_busy_sum as f64 / acc.util_samples as f64
                },
                pool_threads: acc.util_pool,
            })
            .collect();
        drop(phases);

        let threads = self.inner.threads.lock().unwrap();
        let mut thread_rows: Vec<HostThread> = threads
            .iter()
            .map(|log| {
                let st = log.state.lock().unwrap();
                let mut spans: Vec<HostSpan> = st
                    .spans
                    .iter()
                    .map(|s| HostSpan {
                        name: s.name.clone(),
                        depth: s.depth,
                        start_s: s.start_s,
                        dur_s: (s.end_s - s.start_s).max(0.0),
                        allocs: s.allocs,
                    })
                    .collect();
                spans.sort_by(|a, b| {
                    a.start_s
                        .partial_cmp(&b.start_s)
                        .unwrap()
                        .then(a.depth.cmp(&b.depth))
                });
                HostThread {
                    thread: log.ordinal,
                    spans,
                }
            })
            .collect();
        thread_rows.sort_by_key(|t| t.thread);
        drop(threads);

        let events = self.inner.events.lock().unwrap();
        let event_rows: Vec<HostEvent> = events
            .iter()
            .map(|e| HostEvent {
                t_s: e.t_s,
                category: e.category.clone(),
                label: e.label.clone(),
            })
            .collect();
        drop(events);

        HostProfile {
            schema_version: HOSTPROF_SCHEMA_VERSION,
            label: label.to_string(),
            total_s,
            host_allocs: allocs_now.saturating_sub(self.inner.alloc_origin),
            host_alloc_bytes: alloc_bytes_now,
            phases: phase_rows,
            threads: thread_rows,
            events: event_rows,
        }
    }
}

fn phase_accum<'a>(phases: &'a mut Vec<PhaseAccum>, phase: &'static str) -> &'a mut PhaseAccum {
    if let Some(i) = phases.iter().position(|p| p.phase == phase) {
        &mut phases[i]
    } else {
        phases.push(PhaseAccum::new(phase));
        phases.last_mut().unwrap()
    }
}

/// RAII guard closing a [`HostProfiler::span`] on drop.
pub struct SpanGuard {
    profiler: HostProfiler,
    log: Arc<ThreadLog>,
    id: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end_s = self.profiler.now_s();
        let (allocs_now, _) = host_alloc_counts();
        let mut st = self.log.state.lock().unwrap();
        // If a parent guard already closed this span (unbalanced drop
        // order), there is nothing left to do.
        if !st.stack.iter().any(|o| o.id == self.id) {
            return;
        }
        // Pop up to and including our own entry; any entries above us are
        // children whose guards outlived us — close them here, at our end
        // time, so the tree stays laminar.
        while let Some(open) = st.stack.pop() {
            let mine = open.id == self.id;
            st.spans.push(SpanRec {
                name: open.name,
                depth: open.depth,
                start_s: open.start_s,
                end_s,
                allocs: allocs_now.saturating_sub(open.allocs_at_open),
            });
            if mine {
                break;
            }
        }
    }
}

/// Interval lap timer for the launch engine: one clock reading per
/// boundary, accruing each interval into a bucket. A no-op (zero clock
/// reads) when no profiler is attached.
pub(crate) struct Lap {
    p: Option<HostProfiler>,
    phase: &'static str,
    mark: f64,
}

impl Lap {
    pub(crate) fn start(p: Option<HostProfiler>, phase: &'static str) -> Self {
        let mark = p.as_ref().map_or(0.0, |p| p.now_s());
        Lap { p, phase, mark }
    }

    /// Closes the current interval into `bucket` and starts the next one.
    pub(crate) fn lap(&mut self, bucket: HostBucket) {
        if let Some(p) = &self.p {
            let now = p.now_s();
            p.add_bucket(self.phase, bucket, now - self.mark);
            self.mark = now;
        }
    }

    pub(crate) fn profiler(&self) -> Option<&HostProfiler> {
        self.p.as_ref()
    }
}

// ---------------------------------------------------------------------------
// Env-driven attachment
// ---------------------------------------------------------------------------

/// Whether `KCORE_HOSTPROF` opts host profiling in (set, non-empty, not
/// `"0"`).
pub fn enabled() -> bool {
    std::env::var(HOSTPROF_ENV)
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// A fresh wall-clock profiler when [`enabled`], else `None` — what
/// [`GpuContext::new`] attaches.
pub fn from_env() -> Option<HostProfiler> {
    enabled().then(HostProfiler::wall)
}

static GLOBAL: OnceLock<Option<HostProfiler>> = OnceLock::new();

/// The process-wide profiler for code that runs outside any [`GpuContext`]
/// (graph ingestion, the dataset cache). Created on first use when
/// [`enabled`]; the decision is latched for the process lifetime.
pub fn global() -> Option<&'static HostProfiler> {
    GLOBAL
        .get_or_init(|| enabled().then(HostProfiler::wall))
        .as_ref()
}

// ---------------------------------------------------------------------------
// Serializable profile
// ---------------------------------------------------------------------------

/// Per-phase host-time bucket row of a [`HostProfile`].
#[derive(Debug, Clone, Serialize)]
pub struct HostPhase {
    /// Algorithm phase label (matches the trace's phase rollup).
    pub phase: String,
    /// Launches the engine dispatched in this phase.
    pub launches: u64,
    /// Host allocator calls attributed to this phase.
    pub allocs: u64,
    /// [`HostBucket::Dispatch`] seconds.
    pub dispatch_s: f64,
    /// [`HostBucket::PlanParallel`] seconds.
    pub plan_parallel_s: f64,
    /// [`HostBucket::CommitSerial`] seconds.
    pub commit_serial_s: f64,
    /// [`HostBucket::ArenaAlloc`] seconds.
    pub arena_s: f64,
    /// [`HostBucket::SchedulerWait`] seconds.
    pub scheduler_wait_s: f64,
    /// [`HostBucket::Transfer`] seconds.
    pub transfer_s: f64,
    /// [`HostBucket::FusedStep`] seconds.
    pub fused_step_s: f64,
    /// Number of pool-utilization samples taken in this phase.
    pub util_samples: u64,
    /// Mean busy workers per parallel region (0 when never sampled).
    pub avg_busy_workers: f64,
    /// Largest rayon pool observed for this phase's parallel regions.
    pub pool_threads: u32,
}

impl HostPhase {
    /// Seconds attributed across all buckets of this phase.
    pub fn attributed_s(&self) -> f64 {
        self.dispatch_s
            + self.plan_parallel_s
            + self.commit_serial_s
            + self.arena_s
            + self.scheduler_wait_s
            + self.transfer_s
            + self.fused_step_s
    }

    /// Bucket value by label order of [`HostBucket::ALL`].
    pub fn bucket_s(&self, b: HostBucket) -> f64 {
        match b {
            HostBucket::Dispatch => self.dispatch_s,
            HostBucket::PlanParallel => self.plan_parallel_s,
            HostBucket::CommitSerial => self.commit_serial_s,
            HostBucket::ArenaAlloc => self.arena_s,
            HostBucket::SchedulerWait => self.scheduler_wait_s,
            HostBucket::Transfer => self.transfer_s,
            HostBucket::FusedStep => self.fused_step_s,
        }
    }
}

/// One merged per-thread span buffer.
#[derive(Debug, Clone, Serialize)]
pub struct HostThread {
    /// Registration ordinal of the thread within the profiler.
    pub thread: u32,
    /// Closed spans, sorted by (start, depth).
    pub spans: Vec<HostSpan>,
}

/// A closed span in a [`HostThread`].
#[derive(Debug, Clone, Serialize)]
pub struct HostSpan {
    /// Span name (e.g. `peel/rounds`).
    pub name: String,
    /// Nesting depth at open time (0 = top level on its thread).
    pub depth: u32,
    /// Start, seconds since profiler construction.
    pub start_s: f64,
    /// Duration, seconds.
    pub dur_s: f64,
    /// Host allocator calls while the span was open (process-global delta —
    /// informational).
    pub allocs: u64,
}

/// A timestamped point event (e.g. dataset-cache hit/miss).
#[derive(Debug, Clone, Serialize)]
pub struct HostEvent {
    /// Timestamp, seconds since profiler construction.
    pub t_s: f64,
    /// Event category (e.g. `cache`).
    pub category: String,
    /// Human-readable label.
    pub label: String,
}

/// The merged, serializable host profile. Written alongside a trace as
/// `<name>.hostprof.json`; never embedded in [`crate::Trace`], never part of
/// a fingerprint or golden compare.
#[derive(Debug, Clone, Serialize)]
pub struct HostProfile {
    /// [`HOSTPROF_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Caller-supplied label (dataset/impl).
    pub label: String,
    /// Seconds from profiler construction to capture.
    pub total_s: f64,
    /// Host allocator calls since profiler construction (process-global
    /// delta — informational).
    pub host_allocs: u64,
    /// Process-lifetime allocated bytes at capture (monotone, informational).
    pub host_alloc_bytes: u64,
    /// Per-phase bucket table, in first-use order.
    pub phases: Vec<HostPhase>,
    /// Merged per-thread span buffers.
    pub threads: Vec<HostThread>,
    /// Timestamped point events, in recording order.
    pub events: Vec<HostEvent>,
}

impl HostProfile {
    /// Pretty JSON (the `<name>.hostprof.json` artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("host profile serializes")
    }

    /// Seconds attributed to named buckets across all phases.
    pub fn attributed_s(&self) -> f64 {
        self.phases.iter().map(HostPhase::attributed_s).sum()
    }

    /// Total span seconds at depth 0 across all threads (the "measured
    /// wall time" coverage denominators compare against).
    pub fn root_span_s(&self) -> f64 {
        self.threads
            .iter()
            .flat_map(|t| &t.spans)
            .filter(|s| s.depth == 0)
            .map(|s| s.dur_s)
            .sum()
    }

    /// Validates structural well-formedness: within each thread, any two
    /// spans are either disjoint or nested (laminar intervals), and a
    /// strictly-contained span has strictly greater depth.
    pub fn check_well_formed(&self) -> Result<(), String> {
        for t in &self.threads {
            for (i, a) in t.spans.iter().enumerate() {
                if a.dur_s < 0.0 {
                    return Err(format!(
                        "thread {}: span {} has negative duration",
                        t.thread, a.name
                    ));
                }
                for b in t.spans.iter().skip(i + 1) {
                    let (a0, a1) = (a.start_s, a.start_s + a.dur_s);
                    let (b0, b1) = (b.start_s, b.start_s + b.dur_s);
                    let disjoint = a1 <= b0 || b1 <= a0;
                    let a_in_b = b0 <= a0 && a1 <= b1;
                    let b_in_a = a0 <= b0 && b1 <= a1;
                    if !(disjoint || a_in_b || b_in_a) {
                        return Err(format!(
                            "thread {}: spans {} [{a0}, {a1}] and {} [{b0}, {b1}] overlap \
                             without nesting",
                            t.thread, a.name, b.name
                        ));
                    }
                    let b_strictly_in_a = b_in_a && (a0 < b0 || b1 < a1);
                    let a_strictly_in_b = a_in_b && (b0 < a0 || a1 < b1);
                    if b_strictly_in_a && b.depth <= a.depth {
                        return Err(format!(
                            "thread {}: contained span {} (depth {}) not deeper than {} (depth {})",
                            t.thread, b.name, b.depth, a.name, a.depth
                        ));
                    }
                    if a_strictly_in_b && a.depth <= b.depth {
                        return Err(format!(
                            "thread {}: contained span {} (depth {}) not deeper than {} (depth {})",
                            t.thread, a.name, a.depth, b.name, b.depth
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Chrome trace-event objects for the "Host" Perfetto process: one
    /// thread track per merged buffer carrying its spans as `"X"` events,
    /// plus an `events` track of `"i"` instants. Timestamps are host
    /// seconds since profiler construction (a different time base than the
    /// simulated tracks — the process name says so). Allocation counts are
    /// deliberately omitted: they are process-global and nondeterministic
    /// even under an injected clock.
    pub fn chrome_events(&self, pid: u64) -> Vec<Value> {
        let mut out: Vec<Value> = Vec::new();
        out.push(chrome_obj(vec![
            ("name", Value::Str("process_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::UInt(pid)),
            (
                "args",
                chrome_obj(vec![(
                    "name",
                    Value::Str(format!("Host (wall clock) · {}", self.label)),
                )]),
            ),
        ]));
        for t in &self.threads {
            out.push(chrome_obj(vec![
                ("name", Value::Str("thread_name".into())),
                ("ph", Value::Str("M".into())),
                ("pid", Value::UInt(pid)),
                ("tid", Value::UInt(t.thread as u64)),
                (
                    "args",
                    chrome_obj(vec![(
                        "name",
                        Value::Str(format!("host thread {}", t.thread)),
                    )]),
                ),
            ]));
            for s in &t.spans {
                out.push(chrome_obj(vec![
                    ("name", Value::Str(s.name.clone())),
                    ("cat", Value::Str("host".into())),
                    ("ph", Value::Str("X".into())),
                    ("ts", Value::Float(s.start_s * 1e6)),
                    ("dur", Value::Float(s.dur_s * 1e6)),
                    ("pid", Value::UInt(pid)),
                    ("tid", Value::UInt(t.thread as u64)),
                    (
                        "args",
                        chrome_obj(vec![("depth", Value::UInt(s.depth as u64))]),
                    ),
                ]));
            }
        }
        if !self.events.is_empty() {
            let events_tid = self.threads.len() as u64;
            out.push(chrome_obj(vec![
                ("name", Value::Str("thread_name".into())),
                ("ph", Value::Str("M".into())),
                ("pid", Value::UInt(pid)),
                ("tid", Value::UInt(events_tid)),
                (
                    "args",
                    chrome_obj(vec![("name", Value::Str("events".into()))]),
                ),
            ]));
            for e in &self.events {
                out.push(chrome_obj(vec![
                    ("name", Value::Str(e.label.clone())),
                    ("cat", Value::Str(e.category.clone())),
                    ("ph", Value::Str("i".into())),
                    ("ts", Value::Float(e.t_s * 1e6)),
                    ("pid", Value::UInt(pid)),
                    ("tid", Value::UInt(events_tid)),
                    ("s", Value::Str("t".into())),
                ]));
            }
        }
        out
    }
}

fn chrome_obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

// ---------------------------------------------------------------------------
// GpuContext convenience
// ---------------------------------------------------------------------------

impl GpuContext {
    /// Opens a host span on the attached profiler (no-op `None` when host
    /// profiling is off). The guard holds only profiler handles, so it does
    /// not borrow the context.
    pub fn host_span(&self, name: &str) -> Option<SpanGuard> {
        self.host_profiler().map(|p| p.span(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rayon::prelude::*;

    #[test]
    fn spans_nest_and_record_depths() {
        let p = HostProfiler::faked(10);
        {
            let _a = p.span("a");
            {
                let _b = p.span("b");
                let _c = p.span("c");
            }
            let _d = p.span("d");
        }
        let prof = p.profile("t");
        assert_eq!(prof.threads.len(), 1);
        let spans = &prof.threads[0].spans;
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        assert_eq!(by_name("a").depth, 0);
        assert_eq!(by_name("b").depth, 1);
        assert_eq!(by_name("c").depth, 2);
        assert_eq!(by_name("d").depth, 1);
        prof.check_well_formed().unwrap();
        // fake clock: durations strictly positive, a contains b contains c
        let (a, b, c) = (by_name("a"), by_name("b"), by_name("c"));
        assert!(a.start_s <= b.start_s && b.start_s <= c.start_s);
        assert!(a.start_s + a.dur_s >= b.start_s + b.dur_s);
        assert!(b.start_s + b.dur_s >= c.start_s + c.dur_s);
    }

    #[test]
    fn unbalanced_guard_drops_are_tolerated() {
        let p = HostProfiler::faked(10);
        let a = p.span("parent");
        let b = p.span("child");
        // parent dropped first: child must be closed at the parent's end
        drop(a);
        drop(b); // no-op, already closed
        let prof = p.profile("t");
        let spans = &prof.threads[0].spans;
        assert_eq!(spans.len(), 2);
        let parent = spans.iter().find(|s| s.name == "parent").unwrap();
        let child = spans.iter().find(|s| s.name == "child").unwrap();
        assert_eq!(child.depth, 1);
        // both closed at the same instant, child still inside parent
        let p_end = parent.start_s + parent.dur_s;
        let c_end = child.start_s + child.dur_s;
        assert_eq!(p_end, c_end);
        prof.check_well_formed().unwrap();
    }

    #[test]
    fn per_thread_buffers_merge_in_registration_order() {
        let p = HostProfiler::faked(10);
        let _main = p.span("main-thread");
        std::thread::scope(|s| {
            for i in 0..3 {
                let p = p.clone();
                s.spawn(move || {
                    let _g = p.span(format!("worker-{i}"));
                });
            }
        });
        let prof = p.profile("t");
        // main thread + 3 workers, ordinals dense from 0
        assert_eq!(prof.threads.len(), 4);
        for (i, t) in prof.threads.iter().enumerate() {
            assert_eq!(t.thread, i as u32);
        }
        let all: Vec<&str> = prof
            .threads
            .iter()
            .flat_map(|t| t.spans.iter().map(|s| s.name.as_str()))
            .collect();
        for i in 0..3 {
            assert!(all.contains(&format!("worker-{i}").as_str()));
        }
        prof.check_well_formed().unwrap();
    }

    #[test]
    fn buckets_accumulate_per_phase() {
        let p = HostProfiler::faked(100);
        p.add_bucket("Scan", HostBucket::Dispatch, 0.5);
        p.add_bucket("Scan", HostBucket::Dispatch, 0.25);
        p.add_bucket("Loop", HostBucket::CommitSerial, 1.0);
        p.note_launch("Scan");
        p.note_launch("Scan");
        p.sample_util("Loop", 6, 8);
        p.sample_util("Loop", 2, 8);
        let prof = p.profile("t");
        let scan = prof.phases.iter().find(|r| r.phase == "Scan").unwrap();
        assert_eq!(scan.launches, 2);
        assert!((scan.dispatch_s - 0.75).abs() < 1e-12);
        let lp = prof.phases.iter().find(|r| r.phase == "Loop").unwrap();
        assert!((lp.commit_serial_s - 1.0).abs() < 1e-12);
        assert_eq!(lp.util_samples, 2);
        assert!((lp.avg_busy_workers - 4.0).abs() < 1e-12);
        assert_eq!(lp.pool_threads, 8);
        assert!((prof.attributed_s() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn fake_clock_profiles_are_deterministic() {
        let run = || {
            let p = HostProfiler::faked(7);
            {
                let _a = p.span("a");
                let _b = p.span("b");
            }
            p.event("cat", "hello");
            let mut prof = p.profile("det");
            // alloc counts are process-global (other tests run concurrently):
            // zero them before comparing bytes
            prof.host_allocs = 0;
            prof.host_alloc_bytes = 0;
            for t in &mut prof.threads {
                for s in &mut t.spans {
                    s.allocs = 0;
                }
            }
            prof.to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn events_carry_timestamps_in_order() {
        let p = HostProfiler::faked(10);
        p.event("cache", "miss k1");
        p.event("cache", "generated k1");
        let prof = p.profile("t");
        assert_eq!(prof.events.len(), 2);
        assert!(prof.events[0].t_s < prof.events[1].t_s);
        assert_eq!(prof.events[0].category, "cache");
        assert_eq!(prof.events[0].label, "miss k1");
    }

    #[test]
    fn chrome_events_render_host_process_and_tracks() {
        let p = HostProfiler::faked(10);
        {
            let _a = p.span("peel");
        }
        p.event("cache", "hit rmat9");
        let prof = p.profile("rmat9/peel");
        let events = prof.chrome_events(3);
        let json = serde_json::to_string(&Value::Array(events)).unwrap();
        assert!(json.contains("Host (wall clock) · rmat9/peel"));
        assert!(json.contains("\"host thread 0\""));
        assert!(json.contains("\"name\":\"peel\",\"cat\":\"host\",\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"hit rmat9\",\"cat\":\"cache\",\"ph\":\"i\""));
        // allocation counts stay out of the (golden-pinned) chrome export
        assert!(!json.contains("alloc"));
    }

    proptest! {
        /// Arbitrary open/close scripts executed on rayon pools of size
        /// 1/2/8 always yield laminar per-thread span trees, whatever the
        /// guard drop order.
        #[test]
        fn span_trees_are_well_formed_across_pools(
            scripts in proptest::collection::vec(
                proptest::collection::vec(0u8..3, 1..12), 1..6),
        ) {
            for threads in [1usize, 2, 8] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let p = HostProfiler::faked(3);
                let prof = pool.install(|| {
                    (0..scripts.len()).into_par_iter().for_each(|si| {
                        let script = &scripts[si];
                        let mut guards: Vec<SpanGuard> = Vec::new();
                        for (oi, op) in script.iter().enumerate() {
                            match op {
                                0 => guards.push(p.span(format!("s{si}-{oi}"))),
                                // LIFO close (balanced)
                                1 => { guards.pop(); }
                                // FIFO close (unbalanced: parent first)
                                _ => {
                                    if !guards.is_empty() {
                                        guards.remove(0);
                                    }
                                }
                            }
                        }
                        drop(guards);
                    });
                    p.profile("prop")
                });
                prop_assert!(prof.check_well_formed().is_ok(),
                    "pool {}: {:?}", threads, prof.check_well_formed());
            }
        }
    }
}
