//! Property-based tests of the simulator's foundational pieces: the
//! makespan scheduler, the scan algorithms, and device memory accounting.

use kcore_gpusim::cost::makespan;
use kcore_gpusim::scan::{
    ballot_scan, blelloch_exclusive_scan, block_two_stage_scan, hs_inclusive_scan,
    reference_exclusive_scan,
};
use kcore_gpusim::{CostParams, Device, GpuContext, LaunchConfig, SizeClass};
use proptest::prelude::*;

proptest! {
    /// makespan is bounded below by both max(job) and sum/machines, and
    /// above by the sum; greedy list scheduling is within 2x of the lower
    /// bound (classic Graham bound).
    #[test]
    fn makespan_bounds(jobs in proptest::collection::vec(0.0f64..1e6, 0..200), machines in 1usize..64) {
        let ms = makespan(&jobs, machines);
        let sum: f64 = jobs.iter().sum();
        let max = jobs.iter().copied().fold(0.0, f64::max);
        let lower = max.max(sum / machines as f64);
        prop_assert!(ms >= lower - 1e-9);
        prop_assert!(ms <= sum + 1e-9);
        prop_assert!(ms <= 2.0 * lower + 1e-9, "greedy within Graham bound");
    }

    /// All scan implementations agree with the host reference.
    #[test]
    fn scans_agree(values in proptest::collection::vec(0u32..100, 1..=32)) {
        let mut ctx = GpuContext::new(CostParams::p100(), 1 << 16);
        let vals = values.clone();
        ctx.launch("scans", LaunchConfig { blocks: 1, threads_per_block: 32 }, move |blk| {
            let (ex, total) = reference_exclusive_scan(&vals);
            // HS inclusive
            let mut hs = vals.clone();
            hs_inclusive_scan(blk, &mut hs);
            for i in 0..vals.len() {
                assert_eq!(hs[i], ex[i] + vals[i], "hs lane {i}");
            }
            // Blelloch (power-of-two only)
            if vals.len().is_power_of_two() {
                let mut bl = vals.clone();
                blelloch_exclusive_scan(blk, &mut bl);
                assert_eq!(bl, ex, "blelloch");
            }
            // ballot over derived 0/1 flags
            let flags: Vec<bool> = vals.iter().map(|&v| v % 2 == 1).collect();
            let ones: Vec<u32> = flags.iter().map(|&f| f as u32).collect();
            let (ex1, t1) = reference_exclusive_scan(&ones);
            let (off, tot) = ballot_scan(blk, &flags);
            assert_eq!(off, ex1, "ballot offsets");
            assert_eq!(tot, t1, "ballot total");
            let _ = total;
            Ok(())
        }).unwrap();
    }

    /// Block-level two-stage scan agrees with the reference for any block
    /// width (multiple of 32, one value per thread).
    #[test]
    fn block_scan_agrees(warps in 1u32..=32, seed in 0u64..1000) {
        let threads = warps * 32;
        let mut ctx = GpuContext::new(CostParams::p100(), 1 << 16);
        ctx.launch("bscan", LaunchConfig { blocks: 1, threads_per_block: threads }, move |blk| {
            let vals: Vec<u32> = (0..threads as u64)
                .map(|i| ((i.wrapping_mul(seed + 7)) % 9) as u32)
                .collect();
            let (off, total) = block_two_stage_scan(blk, &vals);
            let (ex, t) = reference_exclusive_scan(&vals);
            assert_eq!(off, ex);
            assert_eq!(total, t);
            Ok(())
        }).unwrap();
    }

    /// Device accounting: any interleaving of allocs and frees keeps
    /// used = sum(live) and peak = running max.
    #[test]
    fn device_accounting(ops in proptest::collection::vec((1usize..1000, any::<bool>()), 1..60)) {
        let mut d = Device::new(1 << 30);
        let mut live: Vec<(kcore_gpusim::BufferId, u64)> = Vec::new();
        let mut used = 0u64;
        let mut peak = 0u64;
        for (len, free_first) in ops {
            if free_first && !live.is_empty() {
                let (id, bytes) = live.swap_remove(0);
                d.free(id);
                used -= bytes;
            }
            let id = d.alloc("x", len).unwrap();
            let bytes = len as u64 * 4;
            live.push((id, bytes));
            used += bytes;
            peak = peak.max(used);
            prop_assert_eq!(d.used_bytes(), used);
            prop_assert_eq!(d.peak_bytes(), peak);
        }
    }

    /// Allocation-ledger invariants under any interleaving of tagged
    /// allocs and frees: live bytes = sum of live ledger entries, the
    /// device peak = the max of the ledger's replayed live curve, every
    /// per-phase watermark ≤ the global peak, and the phase watermark of
    /// the currently active phase ≥ current live bytes.
    #[test]
    fn ledger_invariants(ops in proptest::collection::vec(
        (1usize..1000, 1usize..=8, 0u8..3, any::<bool>(), any::<bool>()),
        1..60,
    )) {
        let phases: [&'static str; 3] = ["Setup", "Loop", "Result"];
        let mut d = Device::new(1 << 30);
        let mut live: Vec<kcore_gpusim::BufferId> = Vec::new();
        let mut phase = "main";
        for (i, (elems, elem_bytes, class, free_first, switch_phase)) in
            ops.into_iter().enumerate()
        {
            if switch_phase {
                phase = phases[i % phases.len()];
                d.note_phase(phase);
            }
            if free_first && !live.is_empty() {
                d.free(live.swap_remove(0));
            }
            let class = [SizeClass::PerVertex, SizeClass::PerArc, SizeClass::Fixed]
                [class as usize];
            live.push(d.alloc_with("x", elems, elem_bytes, class).unwrap());

            let ledger = d.ledger();
            let live_sum: u64 = ledger.iter().filter(|e| e.is_live()).map(|e| e.bytes).sum();
            prop_assert_eq!(d.used_bytes(), live_sum, "used = sum of live ledger entries");
            // replay the live curve in fine-op order; its max is the peak
            let mut events: Vec<(u64, i64)> = Vec::new();
            for e in ledger {
                events.push((e.alloc_op, e.bytes as i64));
                if let Some(op) = e.free_op {
                    events.push((op, -(e.bytes as i64)));
                }
            }
            events.sort_unstable();
            let mut cur = 0i64;
            let mut replay_peak = 0i64;
            for (_, delta) in events {
                cur += delta;
                replay_peak = replay_peak.max(cur);
            }
            prop_assert_eq!(d.peak_bytes(), replay_peak as u64, "peak = max of live curve");
            for &(p, watermark) in d.phase_peaks() {
                prop_assert!(watermark <= d.peak_bytes(), "phase {} above global peak", p);
                if p == phase {
                    prop_assert!(watermark >= d.used_bytes(), "active phase below live bytes");
                }
            }
        }
    }

    /// An OOM error reports exactly the numbers the ledger implies: the
    /// requested size, the free bytes derived from the live ledger sum, and
    /// the configured capacity.
    #[test]
    fn oom_error_matches_ledger(fill in 1usize..200, req_over in 1usize..100) {
        let capacity = 4096u64;
        let mut d = Device::new(capacity);
        let fill = fill.min(1000);
        d.alloc_with("fill", fill, 4, SizeClass::Fixed).unwrap();
        let live_sum: u64 = d.ledger().iter().filter(|e| e.is_live()).map(|e| e.bytes).sum();
        let free = capacity - live_sum;
        let req_elems = (free / 4) as usize + req_over; // always too big
        let err = d.alloc_with("big", req_elems, 4, SizeClass::PerArc).unwrap_err();
        prop_assert_eq!(err.requested_bytes, req_elems as u64 * 4);
        prop_assert_eq!(err.available_bytes, free);
        prop_assert_eq!(err.capacity_bytes, capacity);
        // the failed request left no ledger entry and charged nothing
        prop_assert_eq!(d.ledger().len(), 1);
        prop_assert_eq!(d.used_bytes(), live_sum);
    }

    /// Simulated time is additive across launches and monotone.
    #[test]
    fn time_is_monotone(instrs in proptest::collection::vec(1u64..1_000_000, 1..20)) {
        let mut ctx = GpuContext::new(CostParams::p100(), 1 << 16);
        let mut last = 0.0f64;
        for n in instrs {
            ctx.launch("w", LaunchConfig { blocks: 2, threads_per_block: 32 }, move |blk| {
                blk.charge_instr(n);
                Ok(())
            }).unwrap();
            let now = ctx.elapsed_ms();
            prop_assert!(now > last);
            last = now;
        }
    }
}
