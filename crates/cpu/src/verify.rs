//! Correctness checking for core decompositions.
//!
//! Two independent oracles used across the workspace's test suites:
//!
//! * [`reference_core_numbers`] — an O(n²)-ish min-degree peeling that shares
//!   no code with [`crate::bz`];
//! * [`check_core_numbers`] — verifies a claimed decomposition directly from
//!   the *definition* of the k-core (minimum-degree property + maximality),
//!   without recomputing it.

use kcore_graph::Csr;

/// Simple quadratic min-degree peeling. Slow but obviously correct.
pub fn reference_core_numbers(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    let mut deg = g.degrees();
    let mut removed = vec![false; n];
    let mut core = vec![0u32; n];
    let mut k = 0u32;
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| deg[v])
            .expect("vertex remains");
        k = k.max(deg[v]);
        core[v] = k;
        removed[v] = true;
        for &u in g.neighbors(v as u32) {
            if !removed[u as usize] {
                deg[u as usize] -= 1;
            }
        }
    }
    core
}

/// A violation of the k-core definition found by [`check_core_numbers`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreViolation {
    /// Wrong output length.
    WrongLength { expected: usize, got: usize },
    /// `core(v)` exceeds `deg(v)` — impossible.
    ExceedsDegree { vertex: u32, core: u32, degree: u32 },
    /// Vertex `v` does not have `core(v)` neighbors with core ≥ `core(v)`,
    /// i.e. the claimed "core(v)-core" would not have min degree core(v) at v.
    NotInClaimedCore {
        vertex: u32,
        core: u32,
        supporters: u32,
    },
    /// `core(v)` is not maximal: v also survives peeling at `core(v) + 1`.
    NotMaximal { vertex: u32, core: u32 },
}

impl std::fmt::Display for CoreViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreViolation::WrongLength { expected, got } => {
                write!(f, "expected {expected} core numbers, got {got}")
            }
            CoreViolation::ExceedsDegree { vertex, core, degree } => {
                write!(f, "core({vertex})={core} exceeds degree {degree}")
            }
            CoreViolation::NotInClaimedCore { vertex, core, supporters } => write!(
                f,
                "vertex {vertex} claims core {core} but only {supporters} neighbors have core >= {core}"
            ),
            CoreViolation::NotMaximal { vertex, core } => {
                write!(f, "vertex {vertex} claims core {core} but belongs to a ({core}+1)-core")
            }
        }
    }
}

/// Checks a claimed decomposition against the definition of core numbers.
///
/// Properties verified:
///
/// 1. *Consistency*: within `H_k = {v : core(v) >= k}`, every member of the
///    k-shell has at least `k` neighbors in `H_k` (so `H_k` has min degree
///    ≥ k — it is *a* k-core candidate). Checked for each vertex at its own
///    level.
/// 2. *Maximality*: iteratively discard vertices whose claimed core is
///    *strictly greater* than their supportable level; if the claimed values
///    were too low anywhere, peeling the graph at `core(v)+1` from scratch
///    would retain v. We verify via a direct recomputation-free argument:
///    run a peeling at threshold `core(v)+1` restricted to vertices claiming
///    ≥ that... (expensive in general), so instead we compare against
///    [`reference_core_numbers`] when `n` is small and use property 1 plus
///    the shell-greedy check below otherwise.
pub fn check_core_numbers(g: &Csr, core: &[u32]) -> Result<(), CoreViolation> {
    let n = g.num_vertices() as usize;
    if core.len() != n {
        return Err(CoreViolation::WrongLength {
            expected: n,
            got: core.len(),
        });
    }
    // Property 0: core(v) <= deg(v).
    for v in 0..n {
        if core[v] > g.degree(v as u32) {
            return Err(CoreViolation::ExceedsDegree {
                vertex: v as u32,
                core: core[v],
                degree: g.degree(v as u32),
            });
        }
    }
    // Property 1: supporters at own level.
    for v in 0..n {
        let k = core[v];
        if k == 0 {
            continue;
        }
        let supporters = g
            .neighbors(v as u32)
            .iter()
            .filter(|&&u| core[u as usize] >= k)
            .count() as u32;
        if supporters < k {
            return Err(CoreViolation::NotInClaimedCore {
                vertex: v as u32,
                core: k,
                supporters,
            });
        }
    }
    // Property 2 (maximality): peel the whole graph once, Kahn-style, using
    // the claimed values as an upper bound: if we peel with threshold
    // core(v)+1 and v survives, core(v) was understated. Doing this for all
    // distinct k at once: recompute true cores with BZ-equivalent logic (the
    // quadratic reference) would defeat the purpose, so we use the standard
    // characterization — the claimed assignment is correct iff properties
    // 0&1 hold AND the claimed assignment is pointwise >= the true cores.
    // We establish the latter by peeling: repeatedly remove any vertex whose
    // remaining degree (counting only unremoved neighbors) is < its claimed
    // core+1... that checks understatement. Simpler and fully rigorous:
    // property 1 proves claimed <= true. For claimed >= true we run one
    // linear-time peeling that computes, for each vertex, an upper bound and
    // compares. The cheapest rigorous upper-bound pass IS a full BZ run; we
    // accept that cost: verification may be linear-time like the algorithms
    // it checks.
    let truth = crate::bz::core_numbers(g);
    for v in 0..n {
        if core[v] < truth[v] {
            return Err(CoreViolation::NotMaximal {
                vertex: v as u32,
                core: core[v],
            });
        }
        // claimed > truth would already have tripped property 1 whenever the
        // overstated set is inconsistent; still, compare exactly for a crisp
        // error message.
        if core[v] > truth[v] {
            return Err(CoreViolation::NotInClaimedCore {
                vertex: v as u32,
                core: core[v],
                supporters: g
                    .neighbors(v as u32)
                    .iter()
                    .filter(|&&u| core[u as usize] >= core[v])
                    .count() as u32,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_graph::{fig1_core_numbers, fig1_graph, gen};

    #[test]
    fn reference_matches_fig1() {
        assert_eq!(reference_core_numbers(&fig1_graph()), fig1_core_numbers());
    }

    #[test]
    fn check_accepts_correct() {
        let g = fig1_graph();
        assert_eq!(check_core_numbers(&g, &fig1_core_numbers()), Ok(()));
    }

    #[test]
    fn check_rejects_wrong_length() {
        let g = fig1_graph();
        assert!(matches!(
            check_core_numbers(&g, &[0, 1]),
            Err(CoreViolation::WrongLength { .. })
        ));
    }

    #[test]
    fn check_rejects_overstated() {
        let g = gen::cycle(5);
        let mut core = vec![2u32; 5];
        core[0] = 3; // cycle vertex can't be in a 3-core
        assert!(check_core_numbers(&g, &core).is_err());
    }

    #[test]
    fn check_rejects_understated() {
        let g = gen::complete(4);
        let core = vec![2u32; 4]; // truth is 3 everywhere
        assert!(matches!(
            check_core_numbers(&g, &core),
            Err(CoreViolation::NotMaximal { .. })
        ));
    }

    #[test]
    fn check_rejects_exceeding_degree() {
        let g = gen::path(3);
        assert!(matches!(
            check_core_numbers(&g, &[5, 1, 1]),
            Err(CoreViolation::ExceedsDegree { vertex: 0, .. })
        ));
    }
}
