//! CPU k-core decomposition algorithms.
//!
//! This crate implements every CPU baseline of the paper's Table IV:
//!
//! * [`bz`] — Batagelj–Zaversnik serial peeling, the linear-time
//!   state of the art and the *reference implementation* every other
//!   algorithm in the workspace is validated against;
//! * [`park`] — ParK (Dasari et al.), the first parallel peeling algorithm
//!   (two-phase scan/loop with sub-level synchronization), serial and
//!   parallel;
//! * [`pkc`] — PKC (Kabir & Madduri): thread-local buffers remove sub-level
//!   synchronization; the optimized variant additionally compacts the
//!   remaining-vertex list to cut scan cost (the paper's `PKC` vs `PKC-o`);
//! * [`mpm`] — Montresor–De Pellegrini–Miorandi iterative h-index
//!   refinement, serial and parallel;
//! * [`naive`] — a deliberately allocation-heavy dict-of-sets implementation
//!   mirroring the algorithmic profile of NetworkX's `core_number`;
//! * [`hcd`] — hierarchical core decomposition (related-work extension);
//! * [`incremental`] — streaming core maintenance under edge
//!   insertions/deletions (related-work extension, §II-C).
//!
//! # Example
//!
//! ```
//! use kcore_cpu::{bz, CoreAlgorithm};
//! let g = kcore_graph::fig1_graph();
//! let core = bz::Bz.run(&g);
//! assert_eq!(core, kcore_graph::fig1_core_numbers());
//! ```

// Kernel-style code indexes several parallel device arrays with one
// explicit loop variable, mirroring the CUDA idiom it simulates; iterator
// rewrites would obscure that correspondence.
#![allow(clippy::needless_range_loop)]

pub mod bz;
pub mod degeneracy;
pub mod hcd;
pub mod hindex;
pub mod incremental;
pub mod mpm;
pub mod naive;
pub mod park;
pub mod pkc;
pub mod verify;

use kcore_graph::Csr;

/// A k-core decomposition algorithm: maps a graph to per-vertex core numbers.
pub trait CoreAlgorithm {
    /// Display name matching the paper's table column.
    fn name(&self) -> &'static str;

    /// Computes `core(v)` for every vertex.
    fn run(&self, g: &Csr) -> Vec<u32>;
}

/// The graph's degeneracy `k_max = max_v core(v)` (0 for an empty graph).
pub fn k_max(core: &[u32]) -> u32 {
    core.iter().copied().max().unwrap_or(0)
}

/// Splits vertices into shells: `shells[k]` lists the vertices with
/// `core(v) == k`, for `k = 0..=k_max`.
pub fn shells(core: &[u32]) -> Vec<Vec<u32>> {
    let km = k_max(core) as usize;
    let mut out = vec![Vec::new(); km + 1];
    for (v, &k) in core.iter().enumerate() {
        out[k as usize].push(v as u32);
    }
    out
}

/// Boolean membership mask of the k-core: `core(v) >= k`.
pub fn kcore_mask(core: &[u32], k: u32) -> Vec<bool> {
    core.iter().map(|&c| c >= k).collect()
}

/// Vertices of the k-core, ascending.
pub fn kcore_vertices(core: &[u32], k: u32) -> Vec<u32> {
    core.iter()
        .enumerate()
        .filter_map(|(v, &c)| (c >= k).then_some(v as u32))
        .collect()
}

/// Default worker count for the parallel algorithms: the machine's available
/// parallelism (the paper uses all 48 hardware threads of its test server).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shell_partition_sums_to_n() {
        let core = vec![3, 3, 2, 1, 1, 0];
        let sh = shells(&core);
        assert_eq!(sh.len(), 4);
        assert_eq!(sh.iter().map(Vec::len).sum::<usize>(), 6);
        assert_eq!(sh[1], vec![3, 4]);
        assert_eq!(sh[0], vec![5]);
    }

    #[test]
    fn kmax_of_empty_is_zero() {
        assert_eq!(k_max(&[]), 0);
    }

    #[test]
    fn kcore_helpers() {
        let core = vec![3, 1, 2, 3];
        assert_eq!(kcore_vertices(&core, 2), vec![0, 2, 3]);
        assert_eq!(kcore_mask(&core, 3), vec![true, false, false, true]);
    }
}
