//! NetworkX-profile baseline.
//!
//! Table IV includes NetworkX's `core_number` to show what graph analysts
//! get from the most popular Python library: the same O(m) algorithm as BZ,
//! but executed over dict-of-lists adjacency with per-step boxed bookkeeping,
//! which costs orders of magnitude in constants. This Rust stand-in
//! reproduces that *algorithmic profile* — hash-map adjacency, hash-map
//! degrees and positions, an owned neighbor-list copy per peeled vertex
//! (NetworkX's `nbrs[v] = list(G[v])`), and per-vertex heap allocations —
//! while remaining the same asymptotic algorithm.

use crate::CoreAlgorithm;
use kcore_graph::Csr;
use std::collections::HashMap;

/// The deliberately slow dict-of-lists implementation (default hasher, like
/// Python's dicts use a general-purpose hash).
#[derive(Debug, Clone, Copy, Default)]
pub struct Naive;

impl CoreAlgorithm for Naive {
    fn name(&self) -> &'static str {
        "NetworkX"
    }

    fn run(&self, g: &Csr) -> Vec<u32> {
        let n = g.num_vertices() as usize;
        // G = {v: [neighbors]} — dict-of-lists like networkx.Graph.adj
        let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
        for v in 0..n as u32 {
            adj.insert(v, g.neighbors(v).to_vec());
        }
        // degrees = dict(G.degree())
        let mut degrees: HashMap<u32, u32> = HashMap::new();
        for v in 0..n as u32 {
            degrees.insert(v, adj[&v].len() as u32);
        }
        // nodes = sorted(G, key=degrees.get)
        let mut nodes: Vec<u32> = (0..n as u32).collect();
        nodes.sort_by_key(|v| degrees[v]);
        // bin_boundaries
        let mut bin_boundaries = vec![0usize];
        let mut curr_degree = 0u32;
        for (i, v) in nodes.iter().enumerate() {
            let d = degrees[v];
            if d > curr_degree {
                for _ in 0..(d - curr_degree) {
                    bin_boundaries.push(i);
                }
                curr_degree = d;
            }
        }
        // node_pos = {v: pos}
        let mut node_pos: HashMap<u32, usize> = HashMap::new();
        for (pos, v) in nodes.iter().enumerate() {
            node_pos.insert(*v, pos);
        }
        // core = degrees.copy(); nbrs = {v: list(G[v])}
        let mut core: HashMap<u32, u32> = degrees.clone();
        let mut nbrs: HashMap<u32, Vec<u32>> = HashMap::new();
        for v in 0..n as u32 {
            nbrs.insert(v, adj[&v].clone());
        }
        for i in 0..nodes.len() {
            let v = nodes[i];
            // for u in nbrs[v]:  (owned copy, like the Python list)
            let v_nbrs = nbrs[&v].clone();
            let core_v = core[&v];
            for u in v_nbrs {
                if core[&u] > core_v {
                    // nbrs[u].remove(v) — linear scan, as list.remove does
                    let lu = nbrs.get_mut(&u).unwrap();
                    if let Some(idx) = lu.iter().position(|&x| x == v) {
                        lu.swap_remove(idx);
                    }
                    // bucket swap bookkeeping via dict lookups
                    let pos = node_pos[&u];
                    let bin_start = bin_boundaries[core[&u] as usize];
                    let w = nodes[bin_start];
                    node_pos.insert(u, bin_start);
                    node_pos.insert(w, pos);
                    nodes.swap(bin_start, pos);
                    bin_boundaries[core[&u] as usize] += 1;
                    *core.get_mut(&u).unwrap() -= 1;
                }
            }
        }
        (0..n as u32).map(|v| core[&v]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bz;
    use kcore_graph::{fig1_core_numbers, fig1_graph, gen};

    #[test]
    fn fig1() {
        assert_eq!(Naive.run(&fig1_graph()), fig1_core_numbers());
    }

    #[test]
    fn agrees_with_bz() {
        for seed in 0..4 {
            let g = gen::erdos_renyi_gnm(300, 1_200, seed);
            assert_eq!(Naive.run(&g), bz::core_numbers(&g), "seed {seed}");
        }
    }

    #[test]
    fn structured_graphs() {
        assert_eq!(Naive.run(&gen::complete(5)), vec![4; 5]);
        assert_eq!(Naive.run(&gen::cycle(6)), vec![2; 6]);
        assert_eq!(Naive.run(&gen::star(4)), vec![1; 5]);
        assert_eq!(Naive.run(&Csr::empty(3)), vec![0; 3]);
    }
}
