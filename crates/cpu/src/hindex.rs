//! The h-index operator at the heart of MPM (paper Fig. 2).
//!
//! Given the multiset `A` of the neighbors' current core-number estimates,
//! the operator returns `max { i : at least i elements of A are >= i }`.
//! MPM initializes each estimate to the degree and applies the operator until
//! a global fixpoint; the fixpoint is exactly the core number.

/// h-index of `values`: the largest `h` such that at least `h` values are
/// `>= h`. Runs in O(len) time and O(min(len, bound)+1) scratch space using
/// counting buckets; `scratch` is reused across calls to avoid allocation.
///
/// `bound` caps the answer (MPM uses the vertex's current estimate, since the
/// estimate never increases).
pub fn h_index_bounded(
    values: impl Iterator<Item = u32>,
    bound: u32,
    scratch: &mut Vec<u32>,
) -> u32 {
    let b = bound as usize;
    scratch.clear();
    scratch.resize(b + 1, 0);
    let mut total = 0u32;
    for v in values {
        let capped = (v as usize).min(b);
        scratch[capped] += 1;
        total += 1;
    }
    // Scan from the top: h is the largest i with (count of values >= i) >= i.
    let mut at_least = 0u32;
    for i in (1..=b).rev() {
        at_least += scratch[i];
        if at_least as usize >= i {
            return i as u32;
        }
    }
    let _ = total;
    0
}

/// Convenience h-index over a slice, unbounded (bound = len).
pub fn h_index(values: &[u32]) -> u32 {
    let mut scratch = Vec::new();
    h_index_bounded(values.iter().copied(), values.len() as u32, &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        // Fig. 2: sorted estimates [5,5,3,3,2,2] -> h = 3.
        assert_eq!(h_index(&[5, 5, 3, 3, 2, 2]), 3);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(h_index(&[]), 0);
        assert_eq!(h_index(&[0]), 0);
        assert_eq!(h_index(&[1]), 1);
        assert_eq!(h_index(&[100]), 1);
        assert_eq!(h_index(&[1, 1, 1]), 1);
        assert_eq!(h_index(&[3, 3, 3]), 3);
        assert_eq!(h_index(&[4, 4, 4]), 3);
    }

    #[test]
    fn bound_caps_result() {
        let mut scratch = Vec::new();
        let vals = [9u32, 9, 9, 9, 9];
        assert_eq!(h_index_bounded(vals.iter().copied(), 3, &mut scratch), 3);
        assert_eq!(h_index_bounded(vals.iter().copied(), 10, &mut scratch), 5);
    }

    #[test]
    fn matches_sort_based_definition() {
        // Cross-check against the textbook sort-and-scan definition.
        let cases: Vec<Vec<u32>> = vec![
            vec![2, 0, 6, 1, 5],
            vec![7, 7, 7, 7, 7, 7, 7],
            vec![1, 2, 3, 4, 5, 6, 7, 8],
            vec![0, 0, 0],
        ];
        for vals in cases {
            let mut sorted = vals.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let mut expect = 0u32;
            for (i, &v) in sorted.iter().enumerate() {
                if v as usize > i {
                    expect = (i + 1) as u32;
                }
            }
            assert_eq!(h_index(&vals), expect, "values {vals:?}");
        }
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let mut scratch = Vec::new();
        assert_eq!(h_index_bounded([5, 5, 5].into_iter(), 5, &mut scratch), 3);
        // A second call with smaller bound must not see stale counts.
        assert_eq!(h_index_bounded([1].into_iter(), 1, &mut scratch), 1);
        assert_eq!(h_index_bounded(std::iter::empty(), 0, &mut scratch), 0);
    }
}
