//! Batagelj–Zaversnik (BZ) serial peeling — the linear-time reference.
//!
//! BZ repeatedly removes a vertex of minimum degree; the key contribution is
//! the O(m) implementation with four arrays (the paper points to §II-A of
//! ParK for the details):
//!
//! * `vert` — vertices sorted by current degree (bucket order),
//! * `pos`  — `pos[v]` is `v`'s position in `vert`,
//! * `bin`  — `bin[d]` is the start index in `vert` of the bucket of
//!   degree-`d` vertices,
//! * `deg`  — current degrees.
//!
//! When a vertex is peeled, each neighbor with a larger current degree is
//! swapped to the front of its bucket and the bucket boundary advances —
//! an O(1) "decrease-degree" operation.

use crate::CoreAlgorithm;
use kcore_graph::Csr;

/// The serial BZ algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bz;

impl CoreAlgorithm for Bz {
    fn name(&self) -> &'static str {
        "BZ"
    }

    fn run(&self, g: &Csr) -> Vec<u32> {
        core_numbers(g)
    }
}

/// Computes core numbers with the 4-array bucket peeling.
pub fn core_numbers(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    let mut deg = g.degrees();
    let md = g.max_degree() as usize;

    // bin[d] = number of vertices of degree d, then prefix-summed to starts.
    let mut bin = vec![0usize; md + 2];
    for &d in &deg {
        bin[d as usize] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut().take(md + 1) {
        let count = *b;
        *b = start;
        start += count;
    }
    bin[md + 1] = n;

    // Bucket-sort vertices by degree.
    let mut vert = vec![0u32; n];
    let mut pos = vec![0usize; n];
    {
        let mut cursor = bin.clone();
        for v in 0..n {
            let d = deg[v] as usize;
            pos[v] = cursor[d];
            vert[cursor[d]] = v as u32;
            cursor[d] += 1;
        }
    }

    // Peel in degree order.
    for i in 0..n {
        let v = vert[i] as usize;
        let dv = deg[v];
        for j in g.offsets()[v] as usize..g.offsets()[v + 1] as usize {
            let u = g.neighbor_array()[j] as usize;
            if deg[u] > dv {
                // Move u to the front of its bucket, shrink the bucket.
                let du = deg[u] as usize;
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw] as usize;
                if u != w {
                    vert.swap(pu, pw);
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bin[du] += 1;
                deg[u] -= 1;
            }
        }
    }
    // After peeling, deg[v] has converged to core(v).
    deg
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_graph::{fig1_core_numbers, fig1_graph, gen};

    #[test]
    fn fig1() {
        assert_eq!(core_numbers(&fig1_graph()), fig1_core_numbers());
    }

    #[test]
    fn empty_and_isolated() {
        assert_eq!(core_numbers(&Csr::empty(0)), Vec::<u32>::new());
        assert_eq!(core_numbers(&Csr::empty(3)), vec![0, 0, 0]);
    }

    #[test]
    fn complete_graph() {
        let g = gen::complete(6);
        assert_eq!(core_numbers(&g), vec![5; 6]);
    }

    #[test]
    fn cycle_is_2core() {
        assert_eq!(core_numbers(&gen::cycle(10)), vec![2; 10]);
    }

    #[test]
    fn path_is_1core() {
        assert_eq!(core_numbers(&gen::path(5)), vec![1; 5]);
    }

    #[test]
    fn star_is_1core() {
        assert_eq!(core_numbers(&gen::star(9)), vec![1; 10]);
    }

    #[test]
    fn bipartite_core_is_min_side() {
        assert_eq!(core_numbers(&gen::complete_bipartite(3, 7)), vec![3; 10]);
    }

    #[test]
    fn clique_with_tail() {
        // K4 (0-3) + path 3-4-5: tail is 1-shell.
        let mut b = kcore_graph::GraphBuilder::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(3, 4);
        b.add_edge(4, 5);
        assert_eq!(core_numbers(&b.build()), vec![3, 3, 3, 3, 1, 1]);
    }

    #[test]
    fn matches_quadratic_reference_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::erdos_renyi_gnm(300, 900, seed);
            assert_eq!(
                core_numbers(&g),
                crate::verify::reference_core_numbers(&g),
                "seed {seed}"
            );
        }
    }
}
