//! Degeneracy ordering and the "lightweight preprocessing" applications the
//! paper's introduction motivates: k-core decomposition "often serves as an
//! effective lightweight preprocessing to prune unpromising vertices when
//! computing denser structures" (cliques, quasi-cliques, k-plexes).
//!
//! * [`degeneracy_order`] — the smallest-last vertex ordering (Matula &
//!   Beck): peel minimum-degree vertices; the reverse order makes every
//!   vertex have at most `k_max` later neighbors.
//! * [`greedy_coloring_bound`] — coloring along the degeneracy order uses at
//!   most `k_max + 1` colors.
//! * [`prune_for_clique`] — the classic pruning: a clique of size `q` lives
//!   entirely inside the `(q-1)`-core.

use crate::bz;
use kcore_graph::Csr;

/// The degeneracy (smallest-last) ordering: repeatedly remove a vertex of
/// minimum remaining degree. Returns `(order, degeneracy)` where
/// `order[i]` is the i-th removed vertex and `degeneracy == k_max`.
pub fn degeneracy_order(g: &Csr) -> (Vec<u32>, u32) {
    // BZ's bucket structure already peels in exactly this order; re-run it
    // here tracking the order explicitly.
    let n = g.num_vertices() as usize;
    if n == 0 {
        return (Vec::new(), 0);
    }
    let mut deg = g.degrees();
    let md = g.max_degree() as usize;
    let mut bin = vec![0usize; md + 2];
    for &d in &deg {
        bin[d as usize] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut().take(md + 1) {
        let c = *b;
        *b = start;
        start += c;
    }
    bin[md + 1] = n;
    let mut vert = vec![0u32; n];
    let mut pos = vec![0usize; n];
    {
        let mut cursor = bin.clone();
        for v in 0..n {
            let d = deg[v] as usize;
            pos[v] = cursor[d];
            vert[cursor[d]] = v as u32;
            cursor[d] += 1;
        }
    }
    let mut degeneracy = 0u32;
    for i in 0..n {
        let v = vert[i] as usize;
        degeneracy = degeneracy.max(deg[v]);
        for j in g.offsets()[v] as usize..g.offsets()[v + 1] as usize {
            let u = g.neighbor_array()[j] as usize;
            if deg[u] > deg[v] {
                let du = deg[u] as usize;
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw] as usize;
                if u != w {
                    vert.swap(pu, pw);
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bin[du] += 1;
                deg[u] -= 1;
            }
        }
    }
    (vert, degeneracy)
}

/// Greedy coloring along the degeneracy order (processed in *reverse* removal
/// order, so each vertex sees at most `degeneracy` colored neighbors).
/// Returns `(colors, num_colors)` with `num_colors <= degeneracy + 1`.
pub fn greedy_coloring_bound(g: &Csr) -> (Vec<u32>, u32) {
    let (order, _) = degeneracy_order(g);
    let n = g.num_vertices() as usize;
    let mut color = vec![u32::MAX; n];
    let mut used: Vec<bool> = Vec::new();
    for &v in order.iter().rev() {
        used.clear();
        used.resize(g.degree(v) as usize + 1, false);
        for &u in g.neighbors(v) {
            let c = color[u as usize];
            if c != u32::MAX && (c as usize) < used.len() {
                used[c as usize] = true;
            }
        }
        let c = used.iter().position(|&b| !b).expect("a free color exists") as u32;
        color[v as usize] = c;
    }
    let num = color.iter().copied().max().map(|c| c + 1).unwrap_or(0);
    (color, num)
}

/// Prunes the graph for q-clique search: returns the vertices of the
/// `(q-1)`-core — any clique of `q` vertices is contained in it — together
/// with the survival ratio, the quantity that makes core decomposition a
/// worthwhile preprocessing step.
pub fn prune_for_clique(g: &Csr, q: u32) -> (Vec<u32>, f64) {
    assert!(q >= 1);
    let core = bz::core_numbers(g);
    let survivors: Vec<u32> = core
        .iter()
        .enumerate()
        .filter_map(|(v, &c)| (c + 1 >= q).then_some(v as u32))
        .collect();
    let ratio = if g.num_vertices() == 0 {
        0.0
    } else {
        survivors.len() as f64 / g.num_vertices() as f64
    };
    (survivors, ratio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_graph::{gen, GraphBuilder};

    #[test]
    fn order_is_a_permutation_and_degeneracy_is_kmax() {
        let g = gen::rmat(8, 700, gen::RmatParams::graph500(), 2);
        let (order, d) = degeneracy_order(&g);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..g.num_vertices()).collect::<Vec<_>>());
        let core = bz::core_numbers(&g);
        assert_eq!(d, core.iter().copied().max().unwrap());
    }

    #[test]
    fn reverse_order_bounds_later_neighbors() {
        // definitional property: in reverse removal order, every vertex has
        // at most `degeneracy` neighbors that come before it.
        let g = gen::erdos_renyi_gnm(200, 800, 9);
        let (order, d) = degeneracy_order(&g);
        let mut rank = vec![0usize; order.len()];
        for (i, &v) in order.iter().enumerate() {
            rank[v as usize] = i;
        }
        for v in 0..g.num_vertices() {
            let later = g
                .neighbors(v)
                .iter()
                .filter(|&&u| rank[u as usize] > rank[v as usize])
                .count();
            assert!(
                later as u32 <= d,
                "vertex {v} has {later} later neighbors > degeneracy {d}"
            );
        }
    }

    #[test]
    fn coloring_is_proper_and_bounded() {
        let g = gen::rmat(8, 900, gen::RmatParams::mild(), 5);
        let (colors, num) = greedy_coloring_bound(&g);
        let (_, d) = degeneracy_order(&g);
        assert!(num <= d + 1, "{num} colors > degeneracy {d} + 1");
        for (u, v) in g.edges() {
            assert_ne!(
                colors[u as usize], colors[v as usize],
                "edge {u}-{v} monochromatic"
            );
        }
    }

    #[test]
    fn bipartite_two_colorable() {
        let g = gen::complete_bipartite(5, 7);
        let (_, num) = greedy_coloring_bound(&g);
        assert!(num <= 6); // degeneracy 5 bound; actual greedy often finds 2
        let (colors, _) = greedy_coloring_bound(&g);
        for (u, v) in g.edges() {
            assert_ne!(colors[u as usize], colors[v as usize]);
        }
    }

    #[test]
    fn clique_pruning_keeps_the_clique() {
        // plant a K8 in sparse noise; prune for q=8 keeps all 8 members
        let noise = gen::erdos_renyi_gnm(500, 700, 3);
        let g = gen::plant_clique(&noise, 8, 4);
        let (survivors, ratio) = prune_for_clique(&g, 8);
        assert!(survivors.len() >= 8);
        assert!(
            ratio < 0.5,
            "pruning should remove most of the sparse noise, kept {ratio}"
        );
        // the survivors' induced subgraph still contains an 8-clique: check
        // that at least 8 survivors are mutually adjacent is expensive;
        // instead verify every vertex of the planted clique survived by the
        // core property (core >= 7).
        let core = bz::core_numbers(&g);
        let deep = core.iter().filter(|&&c| c >= 7).count();
        assert!(deep >= 8);
        for &s in &survivors {
            assert!(core[s as usize] >= 7);
        }
    }

    #[test]
    fn prune_degenerate_inputs() {
        let empty = kcore_graph::Csr::empty(0);
        assert_eq!(prune_for_clique(&empty, 3).0.len(), 0);
        // q = 1: everything survives (every vertex is a 1-clique)
        let mut b = GraphBuilder::with_num_vertices(4);
        b.add_edge(0, 1);
        let g = b.build();
        let (s, r) = prune_for_clique(&g, 1);
        assert_eq!(s.len(), 4);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn empty_graph_order() {
        let (order, d) = degeneracy_order(&kcore_graph::Csr::empty(0));
        assert!(order.is_empty());
        assert_eq!(d, 0);
    }
}
