//! Incremental k-core maintenance under edge insertions/deletions — the
//! streaming setting the paper surveys in §II-C (Sariyüce et al., VLDB'13)
//! and the motivation for "lightning fast" decomposition of evolving
//! networks in the §VI case study.
//!
//! Both update algorithms are *localized*: after inserting or deleting an
//! edge `{u, v}` with `K = min(core(u), core(v))`, only vertices with core
//! number exactly `K` inside the **subcore** of the affected endpoints —
//! the K-class connected component through edges between core-`K` vertices —
//! can change, and by at most 1 (the classic theorems of the streaming
//! k-core literature). The traversal algorithms below visit just that
//! subcore instead of re-running a full decomposition.

use crate::bz;
use kcore_graph::{Csr, GraphBuilder};
use rustc_hash::FxHashMap;
use rustc_hash::FxHashSet;

/// A mutable graph with continuously maintained core numbers.
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    adj: Vec<Vec<u32>>,
    core: Vec<u32>,
}

impl DynamicGraph {
    /// An edgeless graph on `n` vertices (all cores 0).
    pub fn new(n: usize) -> Self {
        DynamicGraph {
            adj: vec![Vec::new(); n],
            core: vec![0; n],
        }
    }

    /// Imports a static graph and computes its decomposition once (BZ).
    pub fn from_csr(g: &Csr) -> Self {
        let n = g.num_vertices() as usize;
        let adj = (0..n as u32).map(|v| g.neighbors(v).to_vec()).collect();
        DynamicGraph {
            adj,
            core: bz::core_numbers(g),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Current degree of `v`.
    pub fn degree(&self, v: u32) -> u32 {
        self.adj[v as usize].len() as u32
    }

    /// Current core number of `v`.
    pub fn core(&self, v: u32) -> u32 {
        self.core[v as usize]
    }

    /// All current core numbers.
    pub fn cores(&self) -> &[u32] {
        &self.core
    }

    /// Exports the current graph (for cross-checking).
    pub fn to_csr(&self) -> Csr {
        let mut b = GraphBuilder::with_num_vertices(self.adj.len() as u32);
        for (v, ns) in self.adj.iter().enumerate() {
            for &u in ns {
                if (v as u32) < u {
                    b.add_edge(v as u32, u);
                }
            }
        }
        b.build()
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    fn add_adj(&mut self, u: u32, v: u32) {
        let list = &mut self.adj[u as usize];
        let pos = list.binary_search(&v).unwrap_err();
        list.insert(pos, v);
    }

    fn del_adj(&mut self, u: u32, v: u32) {
        let list = &mut self.adj[u as usize];
        let pos = list.binary_search(&v).expect("edge present");
        list.remove(pos);
    }

    /// The subcore of `roots`: core-`k` vertices connected to a root through
    /// edges whose both endpoints have core `k`.
    fn subcore(&self, roots: &[u32], k: u32) -> Vec<u32> {
        let mut seen = FxHashSet::default();
        let mut queue: Vec<u32> = Vec::new();
        for &r in roots {
            if self.core[r as usize] == k && seen.insert(r) {
                queue.push(r);
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let w = queue[qi];
            qi += 1;
            for &x in &self.adj[w as usize] {
                if self.core[x as usize] == k && seen.insert(x) {
                    queue.push(x);
                }
            }
        }
        queue
    }

    /// Inserts edge `{u, v}` and repairs the core numbers. Returns `false`
    /// (and changes nothing) for self-loops or already-present edges.
    pub fn insert_edge(&mut self, u: u32, v: u32) -> bool {
        if u == v
            || u as usize >= self.adj.len()
            || v as usize >= self.adj.len()
            || self.has_edge(u, v)
        {
            return false;
        }
        self.add_adj(u, v);
        self.add_adj(v, u);

        let k = self.core[u as usize].min(self.core[v as usize]);
        let roots: Vec<u32> = [u, v]
            .into_iter()
            .filter(|&w| self.core[w as usize] == k)
            .collect();
        // Candidates: the subcore of the roots. Only they can rise to k+1.
        let candidates = self.subcore(&roots, k);
        let cand_set: FxHashSet<u32> = candidates.iter().copied().collect();

        // Support of w toward level k+1: neighbors already above k, plus
        // candidate neighbors (which may rise together with w).
        let mut support: FxHashMap<u32, u32> = FxHashMap::default();
        for &w in &candidates {
            let s = self.adj[w as usize]
                .iter()
                .filter(|&&x| self.core[x as usize] > k || cand_set.contains(&x))
                .count() as u32;
            support.insert(w, s);
        }
        // Iteratively evict candidates that cannot reach k+1 support.
        let mut evicted: FxHashSet<u32> = FxHashSet::default();
        let mut stack: Vec<u32> = candidates
            .iter()
            .copied()
            .filter(|w| support[w] <= k)
            .collect();
        for &w in &stack {
            evicted.insert(w);
        }
        while let Some(w) = stack.pop() {
            for &x in &self.adj[w as usize] {
                if cand_set.contains(&x) && !evicted.contains(&x) {
                    let s = support.get_mut(&x).expect("candidate has support");
                    *s -= 1;
                    if *s <= k {
                        evicted.insert(x);
                        stack.push(x);
                    }
                }
            }
        }
        for &w in &candidates {
            if !evicted.contains(&w) {
                self.core[w as usize] = k + 1;
            }
        }
        true
    }

    /// Removes edge `{u, v}` and repairs the core numbers. Returns `false`
    /// if the edge was absent.
    pub fn remove_edge(&mut self, u: u32, v: u32) -> bool {
        if u == v
            || u as usize >= self.adj.len()
            || v as usize >= self.adj.len()
            || !self.has_edge(u, v)
        {
            return false;
        }
        self.del_adj(u, v);
        self.del_adj(v, u);

        let k = self.core[u as usize].min(self.core[v as usize]);
        if k == 0 {
            return true; // isolated endpoints cannot drop below 0
        }
        let roots: Vec<u32> = [u, v]
            .into_iter()
            .filter(|&w| self.core[w as usize] == k)
            .collect();
        let candidates = self.subcore(&roots, k);
        let cand_set: FxHashSet<u32> = candidates.iter().copied().collect();

        // Support of w toward keeping level k: neighbors with core >= k
        // (drops as candidate neighbors fall to k-1).
        let mut support: FxHashMap<u32, u32> = FxHashMap::default();
        for &w in &candidates {
            let s = self.adj[w as usize]
                .iter()
                .filter(|&&x| self.core[x as usize] >= k)
                .count() as u32;
            support.insert(w, s);
        }
        let mut dropped: FxHashSet<u32> = FxHashSet::default();
        let mut stack: Vec<u32> = candidates
            .iter()
            .copied()
            .filter(|w| support[w] < k)
            .collect();
        for &w in &stack {
            dropped.insert(w);
        }
        while let Some(w) = stack.pop() {
            self.core[w as usize] = k - 1;
            for &x in &self.adj[w as usize] {
                if cand_set.contains(&x) && !dropped.contains(&x) {
                    let s = support.get_mut(&x).expect("candidate has support");
                    *s -= 1;
                    if *s < k {
                        dropped.insert(x);
                        stack.push(x);
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_graph::gen;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn assert_cores_fresh(dg: &DynamicGraph, label: &str) {
        let expect = bz::core_numbers(&dg.to_csr());
        assert_eq!(dg.cores(), &expect[..], "{label}");
    }

    #[test]
    fn build_triangle_incrementally() {
        let mut dg = DynamicGraph::new(3);
        assert!(dg.insert_edge(0, 1));
        assert_eq!(dg.cores(), &[1, 1, 0]);
        assert!(dg.insert_edge(1, 2));
        assert_eq!(dg.cores(), &[1, 1, 1]);
        assert!(dg.insert_edge(2, 0));
        assert_eq!(dg.cores(), &[2, 2, 2]);
        // tearing it down reverses the cores
        assert!(dg.remove_edge(2, 0));
        assert_eq!(dg.cores(), &[1, 1, 1]);
        assert!(dg.remove_edge(1, 2));
        assert_eq!(dg.cores(), &[1, 1, 0]);
    }

    #[test]
    fn rejects_duplicates_and_self_loops() {
        let mut dg = DynamicGraph::new(3);
        assert!(dg.insert_edge(0, 1));
        assert!(!dg.insert_edge(0, 1));
        assert!(!dg.insert_edge(1, 0));
        assert!(!dg.insert_edge(2, 2));
        assert!(!dg.remove_edge(0, 2));
        assert_eq!(dg.degree(0), 1);
    }

    #[test]
    fn clique_completion_raises_all() {
        // building K5 one edge at a time stays consistent throughout
        let mut dg = DynamicGraph::new(5);
        let mut count = 0;
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                assert!(dg.insert_edge(u, v));
                count += 1;
                assert_cores_fresh(&dg, &format!("after edge {count}"));
            }
        }
        assert_eq!(dg.cores(), &[4, 4, 4, 4, 4]);
    }

    #[test]
    fn from_csr_matches_static() {
        let g = gen::rmat(8, 800, gen::RmatParams::mild(), 4);
        let dg = DynamicGraph::from_csr(&g);
        assert_eq!(dg.cores(), &bz::core_numbers(&g)[..]);
        assert_eq!(dg.to_csr().num_edges(), g.num_edges());
    }

    #[test]
    fn random_insert_stream_stays_consistent() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut dg = DynamicGraph::new(40);
        for step in 0..300 {
            let u = rng.gen_range(0..40);
            let v = rng.gen_range(0..40);
            dg.insert_edge(u, v);
            if step % 25 == 0 {
                assert_cores_fresh(&dg, &format!("insert step {step}"));
            }
        }
        assert_cores_fresh(&dg, "final");
    }

    #[test]
    fn random_mixed_stream_stays_consistent() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = gen::erdos_renyi_gnm(50, 200, 3);
        let mut dg = DynamicGraph::from_csr(&g);
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        for step in 0..400 {
            if rng.gen_bool(0.5) && !edges.is_empty() {
                let i = rng.gen_range(0..edges.len());
                let (u, v) = edges.swap_remove(i);
                assert!(dg.remove_edge(u, v), "step {step}: remove {u}-{v}");
            } else {
                let u = rng.gen_range(0..50);
                let v = rng.gen_range(0..50);
                if dg.insert_edge(u, v) {
                    edges.push((u.min(v), u.max(v)));
                }
            }
            if step % 20 == 0 {
                assert_cores_fresh(&dg, &format!("mixed step {step}"));
            }
        }
        assert_cores_fresh(&dg, "final mixed");
    }

    #[test]
    fn deletion_cascades_through_subcore() {
        // a cycle is a 2-core; cutting one edge drops the whole ring to 1
        let g = gen::cycle(20);
        let mut dg = DynamicGraph::from_csr(&g);
        assert!(dg.remove_edge(0, 1));
        assert_eq!(dg.cores(), &vec![1; 20][..]);
    }

    #[test]
    fn insertion_cascades_through_subcore() {
        // a path closed into a cycle raises the whole ring to 2
        let g = gen::path(20);
        let mut dg = DynamicGraph::from_csr(&g);
        assert!(dg.insert_edge(0, 19));
        assert_eq!(dg.cores(), &vec![2; 20][..]);
    }
}
