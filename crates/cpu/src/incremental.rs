//! Incremental k-core maintenance under edge insertions/deletions — the
//! streaming setting the paper surveys in §II-C (Sariyüce et al., VLDB'13)
//! and the motivation for "lightning fast" decomposition of evolving
//! networks in the §VI case study.
//!
//! Both update algorithms are *localized*: after inserting or deleting an
//! edge `{u, v}` with `K = min(core(u), core(v))`, only vertices with core
//! number exactly `K` inside the **subcore** of the affected endpoints —
//! the K-class connected component through edges between core-`K` vertices —
//! can change, and by at most 1 (the classic theorems of the streaming
//! k-core literature). The traversal algorithms below visit just that
//! subcore instead of re-running a full decomposition.

use crate::bz;
use kcore_graph::{Csr, EdgeUpdate, GraphBuilder};
use rustc_hash::FxHashMap;
use rustc_hash::FxHashSet;

/// What happened to each update of an [`DynamicGraph::apply_batch`] call.
///
/// `rejected` counts self-loops, out-of-range endpoints, duplicate inserts
/// and deletes of absent edges — evaluated *sequentially*, so an
/// insert-then-delete of the same fresh edge within one batch applies both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Insertions that changed the graph.
    pub inserted: usize,
    /// Deletions that changed the graph.
    pub deleted: usize,
    /// Updates that were no-ops.
    pub rejected: usize,
}

/// A mutable graph with continuously maintained core numbers.
#[derive(Debug, Clone)]
pub struct DynamicGraph {
    adj: Vec<Vec<u32>>,
    core: Vec<u32>,
}

impl DynamicGraph {
    /// An edgeless graph on `n` vertices (all cores 0).
    pub fn new(n: usize) -> Self {
        DynamicGraph {
            adj: vec![Vec::new(); n],
            core: vec![0; n],
        }
    }

    /// Imports a static graph and computes its decomposition once (BZ).
    pub fn from_csr(g: &Csr) -> Self {
        let n = g.num_vertices() as usize;
        let adj = (0..n as u32).map(|v| g.neighbors(v).to_vec()).collect();
        DynamicGraph {
            adj,
            core: bz::core_numbers(g),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Current degree of `v`.
    pub fn degree(&self, v: u32) -> u32 {
        self.adj[v as usize].len() as u32
    }

    /// Current core number of `v`.
    pub fn core(&self, v: u32) -> u32 {
        self.core[v as usize]
    }

    /// All current core numbers.
    pub fn cores(&self) -> &[u32] {
        &self.core
    }

    /// Exports the current graph (for cross-checking).
    ///
    /// Each undirected edge is stored twice in `adj` (once per endpoint)
    /// and emitted once, from the lower endpoint, via the strict `<` below.
    /// Strict `<` would also *silently drop* any self-loop (`u == v`
    /// matches neither direction) — so the method asserts the adjacency
    /// holds none. The invariant is real, not incidental: self-loops are
    /// **rejected** at [`DynamicGraph::insert_edge`] (it returns `false`),
    /// never normalized away later, and [`DynamicGraph::from_csr`] imports
    /// from [`Csr`], whose builder already drops them.
    pub fn to_csr(&self) -> Csr {
        let mut b = GraphBuilder::with_num_vertices(self.adj.len() as u32);
        for (v, ns) in self.adj.iter().enumerate() {
            for &u in ns {
                assert!(
                    v as u32 != u,
                    "DynamicGraph invariant broken: self-loop {u}-{u} in adjacency"
                );
                if (v as u32) < u {
                    b.add_edge(v as u32, u);
                }
            }
        }
        b.build()
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    fn add_adj(&mut self, u: u32, v: u32) {
        let list = &mut self.adj[u as usize];
        let pos = list.binary_search(&v).unwrap_err();
        list.insert(pos, v);
    }

    fn del_adj(&mut self, u: u32, v: u32) {
        let list = &mut self.adj[u as usize];
        let pos = list.binary_search(&v).expect("edge present");
        list.remove(pos);
    }

    /// The subcore of `roots`: core-`k` vertices connected to a root through
    /// edges whose both endpoints have core `k`.
    fn subcore(&self, roots: &[u32], k: u32) -> Vec<u32> {
        let mut seen = FxHashSet::default();
        let mut queue: Vec<u32> = Vec::new();
        for &r in roots {
            if self.core[r as usize] == k && seen.insert(r) {
                queue.push(r);
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let w = queue[qi];
            qi += 1;
            for &x in &self.adj[w as usize] {
                if self.core[x as usize] == k && seen.insert(x) {
                    queue.push(x);
                }
            }
        }
        queue
    }

    /// Inserts edge `{u, v}` and repairs the core numbers. Returns `false`
    /// (and changes nothing) for self-loops or already-present edges.
    pub fn insert_edge(&mut self, u: u32, v: u32) -> bool {
        if u == v
            || u as usize >= self.adj.len()
            || v as usize >= self.adj.len()
            || self.has_edge(u, v)
        {
            return false;
        }
        self.add_adj(u, v);
        self.add_adj(v, u);

        let k = self.core[u as usize].min(self.core[v as usize]);
        let roots: Vec<u32> = [u, v]
            .into_iter()
            .filter(|&w| self.core[w as usize] == k)
            .collect();
        // Candidates: the subcore of the roots. Only they can rise to k+1.
        let candidates = self.subcore(&roots, k);
        let cand_set: FxHashSet<u32> = candidates.iter().copied().collect();

        // Support of w toward level k+1: neighbors already above k, plus
        // candidate neighbors (which may rise together with w).
        let mut support: FxHashMap<u32, u32> = FxHashMap::default();
        for &w in &candidates {
            let s = self.adj[w as usize]
                .iter()
                .filter(|&&x| self.core[x as usize] > k || cand_set.contains(&x))
                .count() as u32;
            support.insert(w, s);
        }
        // Iteratively evict candidates that cannot reach k+1 support.
        let mut evicted: FxHashSet<u32> = FxHashSet::default();
        let mut stack: Vec<u32> = candidates
            .iter()
            .copied()
            .filter(|w| support[w] <= k)
            .collect();
        for &w in &stack {
            evicted.insert(w);
        }
        while let Some(w) = stack.pop() {
            for &x in &self.adj[w as usize] {
                if cand_set.contains(&x) && !evicted.contains(&x) {
                    let s = support.get_mut(&x).expect("candidate has support");
                    *s -= 1;
                    if *s <= k {
                        evicted.insert(x);
                        stack.push(x);
                    }
                }
            }
        }
        for &w in &candidates {
            if !evicted.contains(&w) {
                self.core[w as usize] = k + 1;
            }
        }
        true
    }

    /// Removes edge `{u, v}` and repairs the core numbers. Returns `false`
    /// if the edge was absent.
    pub fn remove_edge(&mut self, u: u32, v: u32) -> bool {
        if u == v
            || u as usize >= self.adj.len()
            || v as usize >= self.adj.len()
            || !self.has_edge(u, v)
        {
            return false;
        }
        self.del_adj(u, v);
        self.del_adj(v, u);

        let k = self.core[u as usize].min(self.core[v as usize]);
        if k == 0 {
            return true; // isolated endpoints cannot drop below 0
        }
        let roots: Vec<u32> = [u, v]
            .into_iter()
            .filter(|&w| self.core[w as usize] == k)
            .collect();
        let candidates = self.subcore(&roots, k);
        let cand_set: FxHashSet<u32> = candidates.iter().copied().collect();

        // Support of w toward keeping level k: neighbors with core >= k
        // (drops as candidate neighbors fall to k-1).
        let mut support: FxHashMap<u32, u32> = FxHashMap::default();
        for &w in &candidates {
            let s = self.adj[w as usize]
                .iter()
                .filter(|&&x| self.core[x as usize] >= k)
                .count() as u32;
            support.insert(w, s);
        }
        let mut dropped: FxHashSet<u32> = FxHashSet::default();
        let mut stack: Vec<u32> = candidates
            .iter()
            .copied()
            .filter(|w| support[w] < k)
            .collect();
        for &w in &stack {
            dropped.insert(w);
        }
        while let Some(w) = stack.pop() {
            self.core[w as usize] = k - 1;
            for &x in &self.adj[w as usize] {
                if cand_set.contains(&x) && !dropped.contains(&x) {
                    let s = support.get_mut(&x).expect("candidate has support");
                    *s -= 1;
                    if *s < k {
                        dropped.insert(x);
                        stack.push(x);
                    }
                }
            }
        }
        true
    }

    /// Applies a batch of updates **in order**, repairing cores after each,
    /// and reports how many took effect. This is the batch oracle the GPU
    /// maintenance engine (`kcore-gpu::dynamic`) is differentially tested
    /// against: because core numbers are a function of the final graph
    /// alone, any engine that applies the same *net* edge set must end in
    /// exactly this state, whatever order or batching it uses internally.
    pub fn apply_batch(&mut self, updates: &[EdgeUpdate]) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        for &up in updates {
            let applied = match up {
                EdgeUpdate::Insert(u, v) => {
                    let ok = self.insert_edge(u, v);
                    if ok {
                        out.inserted += 1;
                    }
                    ok
                }
                EdgeUpdate::Delete(u, v) => {
                    let ok = self.remove_edge(u, v);
                    if ok {
                        out.deleted += 1;
                    }
                    ok
                }
            };
            if !applied {
                out.rejected += 1;
            }
        }
        out
    }

    /// Reference MCD (*maximum core degree*) of every vertex:
    /// `mcd(v) = |{u ∈ N(v) : core(u) ≥ core(v)}|` — the number of
    /// neighbors that can possibly support `v` at its current level
    /// (Snippet 3's `computeMcd`, Sariyüce et al.). Computed from scratch
    /// on demand so the oracle stays obviously correct; the GPU engine
    /// maintains the same counter incrementally and is checked against
    /// this.
    ///
    /// For a core-`k` vertex, `mcd` *equals* its deletion-cascade support
    /// (`|{u ∈ N(v): core(u) ≥ k}|`), and upper-bounds its insertion
    /// support, so `mcd(v) ≤ core(v)` would contradict the k-core property
    /// — `mcd(v) ≥ core(v)` always holds (the invariant proptest below).
    pub fn mcd(&self) -> Vec<u32> {
        (0..self.adj.len())
            .map(|v| {
                let cv = self.core[v];
                self.adj[v]
                    .iter()
                    .filter(|&&u| self.core[u as usize] >= cv)
                    .count() as u32
            })
            .collect()
    }

    /// Reference PCD (*potential core degree*) of every vertex:
    /// `pcd(v) = |{u ∈ N(v) : core(u) > core(v), or core(u) == core(v) and
    /// mcd(u) > core(v)}|` — neighbors that could still support `v` at
    /// level `core(v) + 1` after an insertion. If `pcd(v) ≤ core(v)` then
    /// `v` cannot rise, which is how the engines prune insertion root sets
    /// before traversing a subcore.
    pub fn pcd(&self) -> Vec<u32> {
        let mcd = self.mcd();
        (0..self.adj.len())
            .map(|v| {
                let cv = self.core[v];
                self.adj[v]
                    .iter()
                    .filter(|&&u| {
                        let cu = self.core[u as usize];
                        cu > cv || (cu == cv && mcd[u as usize] > cv)
                    })
                    .count() as u32
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_graph::gen;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn assert_cores_fresh(dg: &DynamicGraph, label: &str) {
        let expect = bz::core_numbers(&dg.to_csr());
        assert_eq!(dg.cores(), &expect[..], "{label}");
    }

    #[test]
    fn build_triangle_incrementally() {
        let mut dg = DynamicGraph::new(3);
        assert!(dg.insert_edge(0, 1));
        assert_eq!(dg.cores(), &[1, 1, 0]);
        assert!(dg.insert_edge(1, 2));
        assert_eq!(dg.cores(), &[1, 1, 1]);
        assert!(dg.insert_edge(2, 0));
        assert_eq!(dg.cores(), &[2, 2, 2]);
        // tearing it down reverses the cores
        assert!(dg.remove_edge(2, 0));
        assert_eq!(dg.cores(), &[1, 1, 1]);
        assert!(dg.remove_edge(1, 2));
        assert_eq!(dg.cores(), &[1, 1, 0]);
    }

    #[test]
    fn rejects_duplicates_and_self_loops() {
        let mut dg = DynamicGraph::new(3);
        assert!(dg.insert_edge(0, 1));
        assert!(!dg.insert_edge(0, 1));
        assert!(!dg.insert_edge(1, 0));
        assert!(!dg.insert_edge(2, 2));
        assert!(!dg.remove_edge(0, 2));
        assert_eq!(dg.degree(0), 1);
    }

    #[test]
    fn clique_completion_raises_all() {
        // building K5 one edge at a time stays consistent throughout
        let mut dg = DynamicGraph::new(5);
        let mut count = 0;
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                assert!(dg.insert_edge(u, v));
                count += 1;
                assert_cores_fresh(&dg, &format!("after edge {count}"));
            }
        }
        assert_eq!(dg.cores(), &[4, 4, 4, 4, 4]);
    }

    #[test]
    fn from_csr_matches_static() {
        let g = gen::rmat(8, 800, gen::RmatParams::mild(), 4);
        let dg = DynamicGraph::from_csr(&g);
        assert_eq!(dg.cores(), &bz::core_numbers(&g)[..]);
        assert_eq!(dg.to_csr().num_edges(), g.num_edges());
    }

    #[test]
    fn random_insert_stream_stays_consistent() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut dg = DynamicGraph::new(40);
        for step in 0..300 {
            let u = rng.gen_range(0..40);
            let v = rng.gen_range(0..40);
            dg.insert_edge(u, v);
            if step % 25 == 0 {
                assert_cores_fresh(&dg, &format!("insert step {step}"));
            }
        }
        assert_cores_fresh(&dg, "final");
    }

    #[test]
    fn random_mixed_stream_stays_consistent() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = gen::erdos_renyi_gnm(50, 200, 3);
        let mut dg = DynamicGraph::from_csr(&g);
        let mut edges: Vec<(u32, u32)> = g.edges().collect();
        for step in 0..400 {
            if rng.gen_bool(0.5) && !edges.is_empty() {
                let i = rng.gen_range(0..edges.len());
                let (u, v) = edges.swap_remove(i);
                assert!(dg.remove_edge(u, v), "step {step}: remove {u}-{v}");
            } else {
                let u = rng.gen_range(0..50);
                let v = rng.gen_range(0..50);
                if dg.insert_edge(u, v) {
                    edges.push((u.min(v), u.max(v)));
                }
            }
            if step % 20 == 0 {
                assert_cores_fresh(&dg, &format!("mixed step {step}"));
            }
        }
        assert_cores_fresh(&dg, "final mixed");
    }

    #[test]
    fn deletion_cascades_through_subcore() {
        // a cycle is a 2-core; cutting one edge drops the whole ring to 1
        let g = gen::cycle(20);
        let mut dg = DynamicGraph::from_csr(&g);
        assert!(dg.remove_edge(0, 1));
        assert_eq!(dg.cores(), &vec![1; 20][..]);
    }

    #[test]
    fn insertion_cascades_through_subcore() {
        // a path closed into a cycle raises the whole ring to 2
        let g = gen::path(20);
        let mut dg = DynamicGraph::from_csr(&g);
        assert!(dg.insert_edge(0, 19));
        assert_eq!(dg.cores(), &vec![2; 20][..]);
    }

    #[test]
    fn delete_of_absent_edge_is_a_clean_noop() {
        let mut dg = DynamicGraph::new(4);
        assert!(dg.insert_edge(0, 1));
        let before = dg.clone();
        assert!(!dg.remove_edge(0, 2)); // never existed
        assert!(!dg.remove_edge(2, 3)); // between isolated vertices
        assert!(!dg.remove_edge(0, 7)); // out of range
        assert!(!dg.remove_edge(2, 2)); // self-loop
        assert_eq!(dg.cores(), before.cores());
        assert_eq!(dg.degree(0), 1);
        assert!(dg.remove_edge(1, 0)); // direction-insensitive removal still works
        assert_eq!(dg.cores(), &[0; 4]);
    }

    #[test]
    fn insert_into_edgeless_graph() {
        let mut dg = DynamicGraph::new(6);
        assert_eq!(dg.cores(), &[0; 6]);
        assert_eq!(dg.to_csr().num_edges(), 0);
        assert!(dg.insert_edge(4, 5));
        assert_eq!(dg.cores(), &[0, 0, 0, 0, 1, 1]);
        assert_eq!(dg.mcd(), vec![0, 0, 0, 0, 1, 1]);
        assert_cores_fresh(&dg, "first edge into edgeless graph");
    }

    #[test]
    fn churn_empties_then_rebuilds_component() {
        // build a triangle, tear it down to nothing, rebuild it elsewhere
        let mut dg = DynamicGraph::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0)] {
            assert!(dg.insert_edge(u, v));
        }
        assert_eq!(dg.cores()[..3], [2, 2, 2]);
        for (u, v) in [(0, 1), (1, 2), (2, 0)] {
            assert!(dg.remove_edge(u, v));
        }
        assert_eq!(dg.cores(), &[0; 6]);
        assert_eq!(dg.to_csr().num_edges(), 0);
        assert_eq!(dg.mcd(), vec![0; 6]);
        for (u, v) in [(3, 4), (4, 5), (5, 3)] {
            assert!(dg.insert_edge(u, v));
        }
        assert_eq!(dg.cores(), &[0, 0, 0, 2, 2, 2]);
        assert_cores_fresh(&dg, "rebuilt component");
    }

    #[test]
    fn apply_batch_counts_and_applies_in_order() {
        let mut dg = DynamicGraph::new(5);
        let out = dg.apply_batch(&[
            EdgeUpdate::Insert(0, 1),
            EdgeUpdate::Insert(1, 0), // duplicate (orientation-insensitive)
            EdgeUpdate::Insert(2, 2), // self-loop
            EdgeUpdate::Insert(1, 2),
            EdgeUpdate::Delete(0, 1), // deletes the edge inserted above
            EdgeUpdate::Delete(0, 1), // now absent
            EdgeUpdate::Insert(0, 9), // out of range
        ]);
        assert_eq!(
            out,
            BatchOutcome {
                inserted: 2,
                deleted: 1,
                rejected: 4
            }
        );
        assert_eq!(dg.cores(), &[0, 1, 1, 0, 0]);
        assert_cores_fresh(&dg, "after batch");
    }

    #[test]
    fn mcd_pcd_on_fig1() {
        let dg = DynamicGraph::from_csr(&kcore_graph::fig1_graph());
        let (mcd, pcd) = (dg.mcd(), dg.pcd());
        for v in 0..dg.num_vertices() {
            let c = dg.core(v as u32);
            assert!(mcd[v] >= c, "mcd({v}) = {} < core = {c}", mcd[v]);
            assert!(pcd[v] <= mcd[v], "pcd({v}) > mcd({v})");
        }
        // the 3-shell K4: every member sees all 3 clique neighbors at core 3
        assert_eq!(&mcd[..4], &[3, 3, 3, 3]);
    }
}

#[cfg(test)]
mod counter_invariants {
    use super::*;
    use kcore_graph::builder::from_edges;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// MCD/PCD invariants on random dynamic graphs after random churn:
        /// `core(v) ≤ mcd(v) ≤ deg(v)` and `pcd(v) ≤ mcd(v)`, and both
        /// counters recompute identically after a to_csr round-trip
        /// (they are functions of the graph + cores only).
        #[test]
        fn mcd_pcd_invariants_hold_under_churn(
            n in 2u32..40,
            edges in proptest::collection::vec((0u32..40, 0u32..40), 0..120),
            churn in proptest::collection::vec((0u32..2, 0u32..40, 0u32..40), 0..60),
        ) {
            let edges: Vec<(u32, u32)> = edges
                .into_iter()
                .filter(|&(u, v)| u < n && v < n)
                .collect();
            let mut dg = DynamicGraph::from_csr(&from_edges(n, &edges));
            let ups: Vec<EdgeUpdate> = churn
                .into_iter()
                .map(|(ins, u, v)| {
                    let (u, v) = (u % n, v % n);
                    if ins == 0 { EdgeUpdate::Insert(u, v) } else { EdgeUpdate::Delete(u, v) }
                })
                .collect();
            dg.apply_batch(&ups);
            let (mcd, pcd) = (dg.mcd(), dg.pcd());
            for v in 0..n {
                let (c, d) = (dg.core(v), dg.degree(v));
                prop_assert!(mcd[v as usize] >= c, "mcd({v}) < core({v})");
                prop_assert!(mcd[v as usize] <= d, "mcd({v}) > deg({v})");
                prop_assert!(pcd[v as usize] <= mcd[v as usize], "pcd({v}) > mcd({v})");
            }
            // counters are pure functions of (graph, cores)
            let again = DynamicGraph::from_csr(&dg.to_csr());
            prop_assert_eq!(again.cores(), dg.cores());
            prop_assert_eq!(again.mcd(), mcd);
            prop_assert_eq!(again.pcd(), pcd);
        }
    }
}
