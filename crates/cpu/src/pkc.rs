//! PKC (Kabir & Madduri; IPDPSW'17) — parallel peeling with thread-local
//! buffers.
//!
//! Like ParK, each round `k` has a scan phase and a loop phase, but every
//! thread owns a private buffer `B_loc`: the scan collects the thread's own
//! degree-`k` vertices into `B_loc`, and the loop phase drains/extends
//! `B_loc` *independently* — newly degree-`k` neighbors are appended to the
//! discovering thread's buffer, so there is **no sub-level synchronization**
//! (only one barrier after scan and one at end of round).
//!
//! Two variants, matching the paper's Table IV columns:
//!
//! * [`ParallelPkcO`] / [`SerialPkcO`] — the base algorithm ("PKC-o"), which
//!   rescans the full degree array every round (`O(n·k_max)` scan cost);
//! * [`ParallelPkc`] / [`SerialPkc`] — the optimized PKC, which keeps a
//!   per-thread *alive list* compacted as vertices are peeled, so round `k`
//!   scans only the not-yet-peeled vertices. On high-`k_max` graphs
//!   (`indochina-2004` style) this is the difference between 64 s and 3 s in
//!   the paper.

use crate::CoreAlgorithm;
use kcore_graph::Csr;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Barrier;

/// Serial PKC-o: full rescan per round, single local buffer.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialPkcO;

impl CoreAlgorithm for SerialPkcO {
    fn name(&self) -> &'static str {
        "Serial PKC-o"
    }

    fn run(&self, g: &Csr) -> Vec<u32> {
        serial_core_numbers(g, false)
    }
}

/// Serial PKC: alive-list compaction cuts the per-round scan cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialPkc;

impl CoreAlgorithm for SerialPkc {
    fn name(&self) -> &'static str {
        "Serial PKC"
    }

    fn run(&self, g: &Csr) -> Vec<u32> {
        serial_core_numbers(g, true)
    }
}

fn serial_core_numbers(g: &Csr, compact: bool) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    let mut deg = g.degrees();
    let mut alive: Vec<u32> = (0..n as u32).collect();
    let mut count = 0usize;
    let mut k = 0u32;
    let mut buf: Vec<u32> = Vec::new();
    while count < n {
        buf.clear();
        if compact {
            // Scan the alive list, compacting out already-peeled vertices.
            let mut w = 0usize;
            for i in 0..alive.len() {
                let v = alive[i];
                let d = deg[v as usize];
                if d == k {
                    buf.push(v);
                } else if d > k {
                    alive[w] = v;
                    w += 1;
                }
            }
            alive.truncate(w);
        } else {
            for v in 0..n {
                if deg[v] == k {
                    buf.push(v as u32);
                }
            }
        }
        // Loop phase: drain the buffer without sub-level structure.
        let mut i = 0usize;
        while i < buf.len() {
            let v = buf[i];
            i += 1;
            for &u in g.neighbors(v) {
                let u = u as usize;
                if deg[u] > k {
                    deg[u] -= 1;
                    if deg[u] == k {
                        buf.push(u as u32);
                    }
                }
            }
        }
        count += buf.len();
        k += 1;
    }
    deg
}

/// Parallel PKC-o: per-thread buffers, full rescan per round.
#[derive(Debug, Clone, Copy)]
pub struct ParallelPkcO {
    /// Worker count; default is all available cores.
    pub threads: usize,
}

impl Default for ParallelPkcO {
    fn default() -> Self {
        ParallelPkcO {
            threads: crate::default_threads(),
        }
    }
}

impl CoreAlgorithm for ParallelPkcO {
    fn name(&self) -> &'static str {
        "PKC-o"
    }

    fn run(&self, g: &Csr) -> Vec<u32> {
        parallel_core_numbers(g, self.threads.max(1), false)
    }
}

/// Parallel PKC with alive-list compaction — the strongest CPU baseline in
/// the paper's Table IV.
#[derive(Debug, Clone, Copy)]
pub struct ParallelPkc {
    /// Worker count; default is all available cores.
    pub threads: usize,
}

impl Default for ParallelPkc {
    fn default() -> Self {
        ParallelPkc {
            threads: crate::default_threads(),
        }
    }
}

impl CoreAlgorithm for ParallelPkc {
    fn name(&self) -> &'static str {
        "PKC"
    }

    fn run(&self, g: &Csr) -> Vec<u32> {
        parallel_core_numbers(g, self.threads.max(1), true)
    }
}

/// Parallel PKC implementation. `compact` selects PKC (true) vs PKC-o (false).
pub fn parallel_core_numbers(g: &Csr, threads: usize, compact: bool) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    let deg: Vec<AtomicU32> = g.degrees().into_iter().map(AtomicU32::new).collect();
    let processed = AtomicUsize::new(0);
    let barrier = Barrier::new(threads);

    crossbeam::scope(|s| {
        for t in 0..threads {
            let deg = &deg;
            let (processed, barrier) = (&processed, &barrier);
            s.spawn(move |_| {
                let lo = t * n / threads;
                let hi = (t + 1) * n / threads;
                let mut alive: Vec<u32> = (lo as u32..hi as u32).collect();
                let mut buf: Vec<u32> = Vec::new();
                let mut k = 0u32;
                loop {
                    if processed.load(Ordering::Acquire) >= n {
                        break;
                    }
                    // ---- scan phase over this thread's partition.
                    buf.clear();
                    if compact {
                        let mut w = 0usize;
                        for i in 0..alive.len() {
                            let v = alive[i];
                            let d = deg[v as usize].load(Ordering::Relaxed);
                            if d == k {
                                buf.push(v);
                            } else if d > k {
                                alive[w] = v;
                                w += 1;
                            }
                        }
                        alive.truncate(w);
                    } else {
                        for v in lo..hi {
                            if deg[v].load(Ordering::Relaxed) == k {
                                buf.push(v as u32);
                            }
                        }
                    }
                    // Degrees are stable during scan only if no thread is
                    // already looping; hence the barrier before any
                    // decrement (matches the scan/loop kernel split).
                    barrier.wait();
                    // ---- loop phase: fully local, no sub-level sync.
                    let mut i = 0usize;
                    while i < buf.len() {
                        let v = buf[i];
                        i += 1;
                        for &u in g.neighbors(v) {
                            let u = u as usize;
                            if deg[u].load(Ordering::Relaxed) > k {
                                let old = deg[u].fetch_sub(1, Ordering::AcqRel);
                                if old == k + 1 {
                                    buf.push(u as u32);
                                } else if old <= k {
                                    deg[u].fetch_add(1, Ordering::AcqRel);
                                }
                            }
                        }
                    }
                    processed.fetch_add(buf.len(), Ordering::AcqRel);
                    // End-of-round barrier so next round's scan sees settled
                    // degrees and a settled `processed`.
                    barrier.wait();
                    k += 1;
                }
            });
        }
    })
    .expect("worker panicked");

    deg.into_iter().map(AtomicU32::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bz;
    use kcore_graph::{fig1_core_numbers, fig1_graph, gen};

    #[test]
    fn serial_variants_fig1() {
        assert_eq!(SerialPkcO.run(&fig1_graph()), fig1_core_numbers());
        assert_eq!(SerialPkc.run(&fig1_graph()), fig1_core_numbers());
    }

    #[test]
    fn parallel_variants_fig1() {
        for threads in [1, 2, 4] {
            assert_eq!(
                ParallelPkcO { threads }.run(&fig1_graph()),
                fig1_core_numbers()
            );
            assert_eq!(
                ParallelPkc { threads }.run(&fig1_graph()),
                fig1_core_numbers()
            );
        }
    }

    #[test]
    fn agrees_with_bz_on_random_graphs() {
        for seed in 0..4 {
            let g = gen::erdos_renyi_gnm(500, 2_500, seed);
            let expect = bz::core_numbers(&g);
            assert_eq!(SerialPkc.run(&g), expect, "serial pkc seed {seed}");
            assert_eq!(SerialPkcO.run(&g), expect, "serial pkc-o seed {seed}");
            assert_eq!(
                ParallelPkc { threads: 4 }.run(&g),
                expect,
                "pkc seed {seed}"
            );
            assert_eq!(
                ParallelPkcO { threads: 4 }.run(&g),
                expect,
                "pkc-o seed {seed}"
            );
        }
    }

    #[test]
    fn agrees_on_planted_core_graph() {
        // high k_max exercises the compaction path over many rounds
        let g = gen::plant_clique(&gen::erdos_renyi_gnm(1_000, 2_000, 9), 30, 10);
        let expect = bz::core_numbers(&g);
        assert_eq!(SerialPkc.run(&g), expect);
        assert_eq!(ParallelPkc { threads: 8 }.run(&g), expect);
    }

    #[test]
    fn handles_trivial_graphs() {
        assert_eq!(
            ParallelPkc { threads: 2 }.run(&Csr::empty(0)),
            Vec::<u32>::new()
        );
        assert_eq!(ParallelPkc { threads: 2 }.run(&Csr::empty(5)), vec![0; 5]);
        assert_eq!(SerialPkc.run(&gen::complete(3)), vec![2, 2, 2]);
    }

    #[test]
    fn more_threads_than_vertices() {
        let g = gen::complete(3);
        assert_eq!(ParallelPkc { threads: 16 }.run(&g), vec![2, 2, 2]);
    }
}
