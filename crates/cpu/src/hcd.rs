//! Hierarchical core decomposition (HCD) — the related-work extension the
//! paper surveys in §II-C.
//!
//! HCD organizes the k-core *connected components* of a graph into a forest:
//! each tree node is a connected component of some k-core, and a node's
//! parent is the (k-1)-core component containing it. Computable in linear
//! time given core numbers (Matula & Beck); it supports queries like "the
//! best k-core component containing v".
//!
//! Construction: process vertices in *decreasing* core-number order with a
//! union–find. When vertex v (core k) arrives, union it with already-placed
//! neighbors; components created while processing level k are the k-core
//! components.

use kcore_graph::Csr;

/// One node of the core hierarchy forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HcdNode {
    /// The level: this node is a connected component of the k-core for this k.
    pub k: u32,
    /// Parent node index in [`CoreHierarchy::nodes`] (None for roots,
    /// i.e. components of the 0-core / connected components of G plus
    /// isolated vertices).
    pub parent: Option<usize>,
    /// Vertices whose *own* core number is `k` and whose k-shell membership
    /// attaches them at this node (vertices of deeper cores live in
    /// descendant nodes).
    pub vertices: Vec<u32>,
}

/// The full core hierarchy of a graph.
#[derive(Debug, Clone)]
pub struct CoreHierarchy {
    /// Forest nodes; children always appear after their parents is *not*
    /// guaranteed — use [`HcdNode::parent`] links.
    pub nodes: Vec<HcdNode>,
    /// For each vertex, the index of its attachment node.
    pub vertex_node: Vec<usize>,
}

struct Dsu {
    parent: Vec<u32>,
    // current hierarchy node represented by each DSU root
    node_of_root: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            node_of_root: vec![usize::MAX; n],
        }
    }
    fn find(&mut self, v: u32) -> u32 {
        let mut v = v;
        while self.parent[v as usize] != v {
            let gp = self.parent[self.parent[v as usize] as usize];
            self.parent[v as usize] = gp;
            v = gp;
        }
        v
    }
    fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        // attach smaller id under larger arbitrarily (rank-free is fine with
        // path halving at this scale)
        self.parent[rb as usize] = ra;
        ra
    }
}

/// Builds the core hierarchy from a graph and its core numbers.
pub fn build_hierarchy(g: &Csr, core: &[u32]) -> CoreHierarchy {
    let n = g.num_vertices() as usize;
    assert_eq!(core.len(), n);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| core[b as usize].cmp(&core[a as usize]));

    let mut dsu = Dsu::new(n);
    let mut placed = vec![false; n];
    let mut nodes: Vec<HcdNode> = Vec::new();
    let mut vertex_node = vec![usize::MAX; n];

    let mut i = 0usize;
    while i < n {
        let k = core[order[i] as usize];
        // place all vertices of this core level
        let level_start = i;
        while i < n && core[order[i] as usize] == k {
            let v = order[i];
            placed[v as usize] = true;
            i += 1;
        }
        // union with placed neighbors
        for &v in &order[level_start..i] {
            for &u in g.neighbors(v) {
                if placed[u as usize] {
                    let ra = dsu.find(v);
                    let rb = dsu.find(u);
                    if ra != rb {
                        let na = dsu.node_of_root[ra as usize];
                        let nb = dsu.node_of_root[rb as usize];
                        let r = dsu.union(ra, rb);
                        // merged component at level k: its node is created
                        // lazily below; existing child nodes (higher k) will
                        // get this as parent then.
                        dsu.node_of_root[r as usize] = usize::MAX;
                        // remember children to re-parent via a merge node
                        // (handled after node creation below)
                        let _ = (na, nb);
                    }
                }
            }
        }
        // create one node per component that exists at this level, and
        // re-parent the previous (deeper) nodes of merged roots.
        // Strategy: for every root whose component contains a level-k vertex
        // or spans multiple previous nodes, make a level-k node.
        // First pass: collect roots touched at this level.
        let mut root_to_new: rustc_hash::FxHashMap<u32, usize> = rustc_hash::FxHashMap::default();
        for &v in &order[level_start..i] {
            let r = dsu.find(v);
            let node_idx = *root_to_new.entry(r).or_insert_with(|| {
                nodes.push(HcdNode {
                    k,
                    parent: None,
                    vertices: Vec::new(),
                });
                nodes.len() - 1
            });
            nodes[node_idx].vertices.push(v);
            vertex_node[v as usize] = node_idx;
        }
        // Re-parent: any previous node whose root merged into a touched root
        // becomes a child of the new node. We detect this by walking all
        // roots' node assignments: a root r with node_of_root == some old
        // node but now find(r)!=r ... simpler: walk every existing deeper
        // node's representative vertex.
        for idx in 0..nodes.len() {
            if nodes[idx].k > k && nodes[idx].parent.is_none() {
                let rep = nodes[idx].vertices[0];
                let r = dsu.find(rep);
                if let Some(&newn) = root_to_new.get(&r) {
                    nodes[idx].parent = Some(newn);
                }
            }
        }
        // update node_of_root for touched roots
        for (&r, &nidx) in &root_to_new {
            dsu.node_of_root[r as usize] = nidx;
        }
    }
    CoreHierarchy { nodes, vertex_node }
}

impl CoreHierarchy {
    /// The vertices of the connected k-core component rooted at `node`
    /// (that node's own shell vertices plus all descendants').
    pub fn component_vertices(&self, node: usize) -> Vec<u32> {
        let mut out = Vec::new();
        // collect descendants by scanning parent links (forest is small)
        let mut in_subtree = vec![false; self.nodes.len()];
        in_subtree[node] = true;
        // nodes were created level-by-level from deepest k to shallowest, so
        // parents are created *after* children; iterate repeatedly until fixed.
        let mut changed = true;
        while changed {
            changed = false;
            for (i, nd) in self.nodes.iter().enumerate() {
                if !in_subtree[i] {
                    if let Some(p) = nd.parent {
                        if in_subtree[p] {
                            in_subtree[i] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        for (i, nd) in self.nodes.iter().enumerate() {
            if in_subtree[i] {
                out.extend_from_slice(&nd.vertices);
            }
        }
        out.sort_unstable();
        out
    }

    /// Number of nodes at level k.
    pub fn components_at(&self, k: u32) -> usize {
        self.nodes.iter().filter(|n| n.k == k).count()
    }

    /// Finds the "best" k-core component by edge density (the §II-C
    /// related-work problem of Chu et al., "Finding the best k in core
    /// decomposition"): scans every connected k-core component in the
    /// hierarchy and returns `(node index, density)` of the densest, where
    /// density = `|E(C)| / |C|` of the induced component. Returns `None`
    /// for an edgeless graph.
    pub fn densest_core(&self, g: &kcore_graph::Csr) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for idx in 0..self.nodes.len() {
            if self.nodes[idx].k == 0 {
                continue;
            }
            let members = self.component_vertices(idx);
            if members.is_empty() {
                continue;
            }
            let member_set: rustc_hash::FxHashSet<u32> = members.iter().copied().collect();
            let mut edges = 0u64;
            for &v in &members {
                for &u in g.neighbors(v) {
                    if v < u && member_set.contains(&u) {
                        edges += 1;
                    }
                }
            }
            let density = edges as f64 / members.len() as f64;
            if best.is_none_or(|(_, d)| density > d) {
                best = Some((idx, density));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bz;
    use kcore_graph::{fig1_graph, GraphBuilder};

    #[test]
    fn two_disjoint_triangles() {
        let mut b = GraphBuilder::new();
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        let core = bz::core_numbers(&g);
        let h = build_hierarchy(&g, &core);
        // two 2-core components
        assert_eq!(h.components_at(2), 2);
        let n0 = h.vertex_node[0];
        let n3 = h.vertex_node[3];
        assert_ne!(n0, n3);
        assert_eq!(h.component_vertices(n0), vec![0, 1, 2]);
    }

    #[test]
    fn nested_cores_form_chain() {
        // K4 + pendant path: 3-core {0..3} inside 1-core {0..5}
        let mut b = GraphBuilder::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(3, 4);
        b.add_edge(4, 5);
        let g = b.build();
        let core = bz::core_numbers(&g);
        let h = build_hierarchy(&g, &core);
        assert_eq!(h.components_at(3), 1);
        assert_eq!(h.components_at(1), 1);
        // the 3-core node's parent chain reaches the 1-core node
        let deep = h.vertex_node[0];
        let shallow = h.vertex_node[4];
        assert_eq!(h.nodes[deep].k, 3);
        assert_eq!(h.nodes[shallow].k, 1);
        let mut cur = Some(deep);
        let mut reached = false;
        while let Some(c) = cur {
            if c == shallow {
                reached = true;
                break;
            }
            cur = h.nodes[c].parent;
        }
        assert!(
            reached,
            "3-core component must nest inside the 1-core component"
        );
        // full component at the shallow node is everything
        assert_eq!(h.component_vertices(shallow), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn fig1_hierarchy() {
        let g = fig1_graph();
        let core = bz::core_numbers(&g);
        let h = build_hierarchy(&g, &core);
        // one component at each level 1..3 (Fig. 1's nested cores)
        assert_eq!(h.components_at(3), 1);
        assert!(h.components_at(2) >= 1);
        assert!(h.components_at(1) >= 1);
        // every vertex attached somewhere
        assert!(h.vertex_node.iter().all(|&i| i != usize::MAX));
    }

    #[test]
    fn densest_core_prefers_the_clique() {
        // K6 + a sparse ring: the densest component is the clique's level-5
        // node (density 2.5) rather than the ring (density 1).
        let mut b = GraphBuilder::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                b.add_edge(u, v);
            }
        }
        for i in 6..16u32 {
            b.add_edge(i, if i == 15 { 6 } else { i + 1 });
        }
        let g = b.build();
        let core = bz::core_numbers(&g);
        let h = build_hierarchy(&g, &core);
        let (node, density) = h.densest_core(&g).unwrap();
        assert_eq!(h.nodes[node].k, 5);
        assert!((density - 2.5).abs() < 1e-9, "density {density}");
    }

    #[test]
    fn densest_core_none_on_edgeless() {
        let g = kcore_graph::Csr::empty(4);
        let h = build_hierarchy(&g, &[0; 4]);
        assert!(h.densest_core(&g).is_none());
    }

    #[test]
    fn isolated_vertices_get_zero_nodes() {
        let g = kcore_graph::Csr::empty(3);
        let h = build_hierarchy(&g, &[0, 0, 0]);
        assert_eq!(h.components_at(0), 3);
    }
}
