//! ParK (Dasari, Ranjan, Zubair; IEEE BigData'14) — the first parallelization
//! of the peeling algorithm.
//!
//! Each round `k` has two phases: a **scan** phase collects all vertices of
//! degree `k` into a *global* buffer `B`, and a **loop** phase removes
//! vertices from `B` in BFS **sub-levels**: each sub-level processes the
//! current buffer and collects newly degree-`k` vertices into `B_new`, then a
//! barrier swaps the buffers. The per-sub-level synchronization is the
//! overhead PKC later removes.

use crate::CoreAlgorithm;
use kcore_graph::Csr;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Barrier;

/// Serial ParK: full-array scan per round, queue-driven loop phase.
///
/// Asymptotically `O(m + n·k_max)` — the `n·k_max` term (a full degree scan
/// every round) is what makes it slower than BZ on high-`k_max` graphs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialPark;

impl CoreAlgorithm for SerialPark {
    fn name(&self) -> &'static str {
        "Serial ParK"
    }

    fn run(&self, g: &Csr) -> Vec<u32> {
        let n = g.num_vertices() as usize;
        let mut deg = g.degrees();
        let mut count = 0usize;
        let mut k = 0u32;
        let mut buf: Vec<u32> = Vec::new();
        let mut next: Vec<u32> = Vec::new();
        while count < n {
            // scan phase
            buf.clear();
            for v in 0..n {
                if deg[v] == k {
                    buf.push(v as u32);
                }
            }
            // loop phase in sub-levels (mirrors the parallel structure)
            while !buf.is_empty() {
                count += buf.len();
                next.clear();
                for &v in &buf {
                    for &u in g.neighbors(v) {
                        let u = u as usize;
                        if deg[u] > k {
                            deg[u] -= 1;
                            if deg[u] == k {
                                next.push(u as u32);
                            }
                        }
                    }
                }
                std::mem::swap(&mut buf, &mut next);
            }
            k += 1;
        }
        deg
    }
}

/// Parallel ParK over `threads` workers sharing one global buffer.
#[derive(Debug, Clone, Copy)]
pub struct ParallelPark {
    /// Worker count. `ParallelPark::default()` uses all available cores.
    pub threads: usize,
}

impl Default for ParallelPark {
    fn default() -> Self {
        ParallelPark {
            threads: crate::default_threads(),
        }
    }
}

impl CoreAlgorithm for ParallelPark {
    fn name(&self) -> &'static str {
        "ParK"
    }

    fn run(&self, g: &Csr) -> Vec<u32> {
        parallel_core_numbers(g, self.threads.max(1))
    }
}

/// The parallel ParK implementation proper.
pub fn parallel_core_numbers(g: &Csr, threads: usize) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    if n == 0 {
        return Vec::new();
    }
    let deg: Vec<AtomicU32> = g.degrees().into_iter().map(AtomicU32::new).collect();
    // Global buffer shared by all threads; capacity n since each vertex
    // enters exactly once across the whole run of a round... across all
    // rounds each vertex enters exactly once, so n is a safe capacity.
    let buf: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let tail = AtomicUsize::new(0); // next append slot in buf
    let cursor = AtomicUsize::new(0); // next item to claim in current sub-level
    let sub_start = AtomicUsize::new(0); // current sub-level start
    let sub_end = AtomicUsize::new(0); // current sub-level end
    let processed = AtomicUsize::new(0);
    let barrier = Barrier::new(threads);

    crossbeam::scope(|s| {
        for t in 0..threads {
            let deg = &deg;
            let buf = &buf;
            let (tail, cursor, sub_start, sub_end, processed, barrier) =
                (&tail, &cursor, &sub_start, &sub_end, &processed, &barrier);
            s.spawn(move |_| {
                let mut k = 0u32;
                loop {
                    if processed.load(Ordering::Acquire) >= n {
                        break;
                    }
                    // ---- scan phase: strided partition of the vertex set.
                    let lo = t * n / threads;
                    let hi = (t + 1) * n / threads;
                    for v in lo..hi {
                        if deg[v].load(Ordering::Relaxed) == k {
                            let slot = tail.fetch_add(1, Ordering::AcqRel);
                            buf[slot].store(v as u32, Ordering::Relaxed);
                        }
                    }
                    if barrier.wait().is_leader() {
                        sub_end.store(tail.load(Ordering::Acquire), Ordering::Release);
                        cursor.store(sub_start.load(Ordering::Acquire), Ordering::Release);
                    }
                    barrier.wait();
                    // ---- loop phase: BFS sub-levels with barrier sync.
                    loop {
                        let end = sub_end.load(Ordering::Acquire);
                        if sub_start.load(Ordering::Acquire) == end {
                            break;
                        }
                        // claim items of the current sub-level
                        loop {
                            let i = cursor.fetch_add(1, Ordering::AcqRel);
                            if i >= end {
                                break;
                            }
                            let v = buf[i].load(Ordering::Relaxed);
                            for &u in g.neighbors(v) {
                                let u = u as usize;
                                if deg[u].load(Ordering::Relaxed) > k {
                                    let old = deg[u].fetch_sub(1, Ordering::AcqRel);
                                    if old == k + 1 {
                                        let slot = tail.fetch_add(1, Ordering::AcqRel);
                                        buf[slot].store(u as u32, Ordering::Relaxed);
                                    } else if old <= k {
                                        // raced below the floor: restore
                                        deg[u].fetch_add(1, Ordering::AcqRel);
                                    }
                                }
                            }
                        }
                        // sub-level barrier; leader advances the window
                        if barrier.wait().is_leader() {
                            let end = sub_end.load(Ordering::Acquire);
                            processed.fetch_add(
                                end - sub_start.load(Ordering::Acquire),
                                Ordering::AcqRel,
                            );
                            sub_start.store(end, Ordering::Release);
                            sub_end.store(tail.load(Ordering::Acquire), Ordering::Release);
                            cursor.store(end, Ordering::Release);
                        }
                        barrier.wait();
                    }
                    k += 1;
                }
            });
        }
    })
    .expect("worker panicked");

    deg.into_iter().map(AtomicU32::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bz;
    use kcore_graph::{fig1_core_numbers, fig1_graph, gen};

    #[test]
    fn serial_fig1() {
        assert_eq!(SerialPark.run(&fig1_graph()), fig1_core_numbers());
    }

    #[test]
    fn parallel_fig1() {
        for threads in [1, 2, 4] {
            assert_eq!(
                ParallelPark { threads }.run(&fig1_graph()),
                fig1_core_numbers(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn agrees_with_bz_on_random_graphs() {
        for seed in 0..4 {
            let g = gen::erdos_renyi_gnm(500, 2_000, seed);
            let expect = bz::core_numbers(&g);
            assert_eq!(SerialPark.run(&g), expect, "serial seed {seed}");
            assert_eq!(
                ParallelPark { threads: 4 }.run(&g),
                expect,
                "parallel seed {seed}"
            );
        }
    }

    #[test]
    fn agrees_on_skewed_graph() {
        let g = gen::power_law_hubs(2_000, 4_000, 2, 0.3, 5);
        assert_eq!(ParallelPark { threads: 8 }.run(&g), bz::core_numbers(&g));
    }

    #[test]
    fn handles_empty_and_edgeless() {
        assert_eq!(
            ParallelPark { threads: 3 }.run(&Csr::empty(0)),
            Vec::<u32>::new()
        );
        assert_eq!(ParallelPark { threads: 3 }.run(&Csr::empty(7)), vec![0; 7]);
        assert_eq!(SerialPark.run(&Csr::empty(7)), vec![0; 7]);
    }
}
