//! MPM — distributed-style k-core decomposition by iterative h-index
//! refinement (Montresor, De Pellegrini, Miorandi; PODC'11).
//!
//! Every vertex keeps an estimate `a(v)`, initialized to `deg(v)`, and
//! repeatedly replaces it with the h-index of its neighbors' estimates until
//! nothing changes; the fixpoint is `core(v)`. Each vertex may recompute many
//! times (total work above BZ's) but all updates are independent — the
//! paper's motivation for trying it on massively parallel hardware.

use crate::hindex::h_index_bounded;
use crate::CoreAlgorithm;
use kcore_graph::Csr;
use rayon::prelude::*;

/// Serial MPM with in-place (Gauss–Seidel) updates: within a sweep, later
/// vertices see earlier vertices' fresh estimates, which speeds convergence
/// without changing the fixpoint (estimates only ever decrease toward it).
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialMpm;

impl CoreAlgorithm for SerialMpm {
    fn name(&self) -> &'static str {
        "Serial MPM"
    }

    fn run(&self, g: &Csr) -> Vec<u32> {
        let n = g.num_vertices() as usize;
        let mut a = g.degrees();
        let mut scratch = Vec::new();
        let mut changed = true;
        while changed {
            changed = false;
            for v in 0..n {
                let cur = a[v];
                if cur == 0 {
                    continue;
                }
                let h = h_index_bounded(
                    g.neighbors(v as u32).iter().map(|&u| a[u as usize]),
                    cur,
                    &mut scratch,
                );
                if h < cur {
                    a[v] = h;
                    changed = true;
                }
            }
        }
        a
    }
}

/// Parallel MPM with synchronous (Jacobi) sweeps, the BSP schedule a
/// distributed or GPU deployment uses: every vertex reads the previous
/// sweep's estimates. Returns the number of sweeps via [`parallel_with_rounds`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelMpm;

impl CoreAlgorithm for ParallelMpm {
    fn name(&self) -> &'static str {
        "MPM"
    }

    fn run(&self, g: &Csr) -> Vec<u32> {
        parallel_with_rounds(g).0
    }
}

/// Runs parallel (Jacobi) MPM and also reports how many sweeps it needed —
/// the quantity that makes MPM's total workload exceed peeling's.
pub fn parallel_with_rounds(g: &Csr) -> (Vec<u32>, u32) {
    let mut a = g.degrees();
    let mut next = a.clone();
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        let changed = next
            .par_iter_mut()
            .enumerate()
            .map(|(v, slot)| {
                let cur = a[v];
                if cur == 0 {
                    *slot = 0;
                    return false;
                }
                let mut scratch = Vec::new();
                let h = h_index_bounded(
                    g.neighbors(v as u32).iter().map(|&u| a[u as usize]),
                    cur,
                    &mut scratch,
                );
                *slot = h;
                h != cur
            })
            .reduce(|| false, |x, y| x | y);
        std::mem::swap(&mut a, &mut next);
        if !changed {
            return (a, rounds);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bz;
    use kcore_graph::{fig1_core_numbers, fig1_graph, gen};

    #[test]
    fn serial_fig1() {
        assert_eq!(SerialMpm.run(&fig1_graph()), fig1_core_numbers());
    }

    #[test]
    fn parallel_fig1() {
        assert_eq!(ParallelMpm.run(&fig1_graph()), fig1_core_numbers());
    }

    #[test]
    fn agrees_with_bz_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::erdos_renyi_gnm(400, 1_600, seed);
            let expect = bz::core_numbers(&g);
            assert_eq!(SerialMpm.run(&g), expect, "serial seed {seed}");
            assert_eq!(ParallelMpm.run(&g), expect, "parallel seed {seed}");
        }
    }

    #[test]
    fn estimates_decrease_monotonically() {
        // One Jacobi sweep never increases any estimate.
        let g = gen::rmat(8, 1_000, gen::RmatParams::graph500(), 3);
        let (final_a, rounds) = parallel_with_rounds(&g);
        assert!(rounds >= 1);
        let deg = g.degrees();
        for v in 0..g.num_vertices() as usize {
            assert!(final_a[v] <= deg[v]);
        }
    }

    #[test]
    fn long_path_needs_many_rounds() {
        // A path of length L takes O(L) Jacobi sweeps for the 1s to
        // propagate... actually estimates start at deg=2 in the middle and
        // the h-index drops by distance from the ends, one hop per sweep.
        let g = gen::path(64);
        let (core, rounds) = parallel_with_rounds(&g);
        assert_eq!(core, vec![1; 64]);
        assert!(
            rounds >= 16,
            "expected slow convergence, got {rounds} rounds"
        );
    }

    #[test]
    fn empty_graph() {
        assert_eq!(SerialMpm.run(&Csr::empty(4)), vec![0; 4]);
        assert_eq!(ParallelMpm.run(&Csr::empty(0)), Vec::<u32>::new());
    }
}
