//! Differential tests: the parallel ingestion paths must be *bit-identical*
//! to their serial oracles at every rayon pool size.
//!
//! This is the determinism contract the whole suite leans on (golden
//! traces, counter fingerprints, recorded bench snapshots and the binary
//! dataset cache all assume the ingested graphs do not depend on host
//! parallelism). Three paths are pinned here:
//!
//! * `GraphBuilder::build_with(Parallel)` vs `Serial` — random multigraph
//!   edge lists with self-loops, duplicates and both edge orientations;
//! * `gen::rmat` (chunked parallel sampler) vs `gen::rmat_serial`;
//! * `io::parse_edge_list_bytes` (chunked parallel tokenizer) vs the
//!   streaming `io::parse_edge_list`.

use kcore_graph::builder::{self, PARALLEL_BUILD_MIN_EDGES};
use kcore_graph::{gen, io, BuildPath, VertexId};
use proptest::prelude::*;

/// Runs `f` inside dedicated rayon pools of 1, 2 and 8 threads and checks
/// every pool produces the same value as the caller's pool.
fn assert_pool_invariant<T: PartialEq + std::fmt::Debug + Send>(f: impl Fn() -> T + Sync) {
    let reference = f();
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let got = pool.install(&f);
        assert_eq!(got, reference, "pool size {threads} diverged");
    }
}

/// Deterministic pseudo-random edge list with self-loops, duplicates and
/// mixed orientations — every normalization case the builder handles.
fn adversarial_edges(n: u32, m: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = (next() % n as u64) as u32;
        let roll = next();
        let v = match roll % 8 {
            // self loop (must be dropped)
            0 => u,
            // hub collisions (heavy duplicate pressure on few vertices)
            1 | 2 => (roll >> 3) as u32 % 4,
            _ => (roll >> 3) as u32 % n,
        };
        // Both orientations appear: normalization must symmetrize them.
        if roll & (1 << 62) != 0 {
            edges.push((v, u));
        } else {
            edges.push((u, v));
        }
    }
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Parallel CSR build == serial CSR build (exact offsets + neighbors)
    /// on adversarial inputs, at pool sizes 1/2/8.
    #[test]
    fn parallel_build_matches_serial(
        n in 1u32..2_000,
        m in 0usize..150_000,
        seed in 0u64..u64::MAX,
    ) {
        let edges = adversarial_edges(n, m, seed);
        let serial = builder::from_edges_with(n, &edges, BuildPath::Serial);
        assert_pool_invariant(|| builder::from_edges_with(n, &edges, BuildPath::Parallel));
        let parallel = builder::from_edges_with(n, &edges, BuildPath::Parallel);
        prop_assert_eq!(&parallel, &serial);
        // Auto picks one of the two; either way the result is the same.
        prop_assert_eq!(builder::from_edges_with(n, &edges, BuildPath::Auto), serial);
    }
}

/// The Auto threshold actually flips to the parallel path for large inputs
/// and the result still matches the serial oracle (belt over the proptest
/// above, which may draw only small `m`).
#[test]
fn auto_threshold_crossing_is_invisible() {
    let n = 5_000u32;
    for m in [PARALLEL_BUILD_MIN_EDGES - 1, PARALLEL_BUILD_MIN_EDGES + 1] {
        let edges = adversarial_edges(n, m, 0xA5A5_5A5A);
        assert_eq!(
            builder::from_edges_with(n, &edges, BuildPath::Auto),
            builder::from_edges_with(n, &edges, BuildPath::Serial),
            "m = {m}"
        );
    }
}

/// Directed input (every edge one orientation only) symmetrizes
/// identically on both paths.
#[test]
fn directed_input_symmetrizes_identically() {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for u in 0..400u32 {
        for k in 1..=5u32 {
            edges.push((u, (u * 7 + k * 13) % 400));
        }
    }
    assert_eq!(
        builder::from_edges_with(400, &edges, BuildPath::Parallel),
        builder::from_edges_with(400, &edges, BuildPath::Serial)
    );
}

/// Chunked parallel R-MAT equals the single-stream serial sampler, across
/// pool sizes, for a multi-chunk edge count.
#[test]
fn rmat_multi_chunk_pool_invariant() {
    let (scale, m, seed) = (12u32, 100_000u64, 0xDEAD_BEEF_u64);
    let serial = gen::rmat_serial(scale, m, gen::RmatParams::graph500(), seed);
    assert_pool_invariant(|| gen::rmat(scale, m, gen::RmatParams::graph500(), seed));
    assert_eq!(
        gen::rmat(scale, m, gen::RmatParams::graph500(), seed),
        serial
    );
}

/// Parallel in-memory parse == streaming parse (same graph AND same
/// recoder table), across pool sizes, on an input large enough to span
/// multiple parse chunks (> 2 MiB of text).
#[test]
fn parse_bytes_matches_streaming_parse() {
    let mut text = String::from("# big synthetic edge list\n");
    let mut state = 7u64;
    while text.len() < (2 << 20) + 4_096 {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1);
        let u = state >> 40;
        let v = (state >> 17) & 0xFFFF;
        // Sprinkle comments and blank lines through the body.
        match state % 37 {
            0 => text.push_str("% konect comment\n"),
            1 => text.push('\n'),
            _ => text.push_str(&format!("{u}\t{v}\n")),
        }
    }
    // Recoders compare by their full dense-ID -> external-ID table.
    fn table(rec: &kcore_graph::recode::Recoder) -> Vec<u64> {
        (0..rec.len() as u32)
            .map(|i| rec.decode(i).unwrap())
            .collect()
    }
    let streamed = io::parse_edge_list(text.as_bytes()).unwrap();
    assert_pool_invariant(|| {
        let (g, rec) = io::parse_edge_list_bytes(text.as_bytes()).unwrap();
        (g, table(&rec))
    });
    let (g, rec) = io::parse_edge_list_bytes(text.as_bytes()).unwrap();
    assert_eq!(g, streamed.0);
    assert_eq!(table(&rec), table(&streamed.1));
}

/// Malformed lines report the same 1-based line number on both parse
/// paths, including when the bad line sits in a late parallel chunk.
#[test]
fn parse_bytes_reports_same_error_line() {
    let mut text = String::new();
    for i in 0..200_000u64 {
        text.push_str(&format!("{} {}\n", i, i + 1));
    }
    assert!(text.len() > (1 << 20), "must exercise the parallel path");
    text.push_str("not an edge\n");
    let bad_line = 200_001;
    // A >1-thread pool forces the chunked tokenizer (on a single-threaded
    // pool `parse_edge_list_bytes` legitimately delegates to streaming).
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    for result in [
        io::parse_edge_list(text.as_bytes()),
        pool.install(|| io::parse_edge_list_bytes(text.as_bytes())),
    ] {
        match result {
            Err(io::IoError::Parse { line_no, line }) => {
                assert_eq!(line_no, bad_line);
                assert_eq!(line, "not an edge");
            }
            other => panic!("expected parse error, got {:?}", other.map(|_| ())),
        }
    }
}
