//! Graph substrate for the k-core decomposition suite.
//!
//! This crate provides everything the algorithms need from a graph:
//!
//! * [`Csr`] — the compressed-sparse-row representation used verbatim by the
//!   paper (§IV "Graph Organization in GPU": `neighbors`, `offset`, `deg`).
//! * [`GraphBuilder`] — normalizing builder (undirect, dedup, drop self-loops,
//!   dense ID recoding) so every algorithm sees a *simple undirected* graph.
//! * [`io`] — SNAP-style edge-list text loading/saving (streaming and
//!   parallel in-memory paths with identical output).
//! * [`binio`] — versioned, checksummed binary CSR files (`.kcsr`).
//! * [`gen`] — synthetic generators (Erdős–Rényi, RMAT, Barabási–Albert,
//!   tracker-skew, web-crawl-like, temporal co-authorship, …).
//! * [`datasets`] — a registry of 20 named stand-ins mirroring Table I of the
//!   paper at reduced scale (see DESIGN.md for the substitution rationale).
//! * [`cache`] — the `KCORE_CACHE_DIR` dataset cache: generate once, load
//!   the binary CSR afterwards.
//! * [`stats`] — the per-dataset statistics columns of Table I.
//!
//! # Example
//!
//! ```
//! use kcore_graph::{GraphBuilder, gen};
//!
//! // The example graph of Fig. 1 is tiny; build your own the same way:
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 0);
//! let g = b.build();
//! assert_eq!(g.num_vertices(), 3);
//! assert_eq!(g.degree(0), 2);
//!
//! // Or generate a synthetic one:
//! let g = gen::erdos_renyi_gnm(1_000, 5_000, 42);
//! assert_eq!(g.num_vertices(), 1_000);
//! ```

pub mod binio;
pub mod builder;
pub mod cache;
pub mod csr;
pub mod datasets;
pub mod gen;
pub mod io;
pub mod partition;
pub mod recode;
pub mod stats;
pub mod update;

pub use builder::{BuildPath, GraphBuilder};
pub use csr::{Csr, VertexId};
pub use partition::{Partition, PartitionStats, PartitionStrategy, PeerStats, Shard, ShardStats};
pub use stats::GraphStats;
pub use update::EdgeUpdate;

/// Canonical example graph of the paper's Fig. 1.
///
/// 12 vertices: a 4-clique core (red, 3-shell), a yellow ring attached to it
/// (2-shell) and green pendant vertices (1-shell). Vertex indices:
///
/// * `0..4`  — the 3-shell clique (core numbers 3),
/// * `4..9`  — the 2-shell (core numbers 2); vertex 4 plays the role of the
///   paper's vertex `A` (degree 3 but core 2) and vertex 5 the role of `B`,
/// * `9..12` — degree-1 pendants (core numbers 1).
pub fn fig1_graph() -> Csr {
    let mut b = GraphBuilder::new();
    // 3-shell: K4 on {0,1,2,3}
    for u in 0..4u32 {
        for v in (u + 1)..4 {
            b.add_edge(u, v);
        }
    }
    // 2-shell ring {4,5,6,7,8}: A=4 has degree 3 (edges to 0, 5, 6) but its
    // neighbor B=5 has degree 2, so core(A)=2 exactly as in the paper.
    b.add_edge(4, 0); // A touches the 3-core
    b.add_edge(4, 5); // A - B
    b.add_edge(4, 6);
    b.add_edge(5, 6); // B closes a triangle with A's other neighbor
    b.add_edge(6, 7);
    b.add_edge(7, 8);
    b.add_edge(8, 1); // ring re-enters the clique region
                      // 1-shell pendants
    b.add_edge(9, 2);
    b.add_edge(10, 7);
    b.add_edge(11, 5);
    b.build()
}

/// Expected core numbers for [`fig1_graph`], used across the test suites.
pub fn fig1_core_numbers() -> Vec<u32> {
    vec![3, 3, 3, 3, 2, 2, 2, 2, 2, 1, 1, 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_has_expected_shape() {
        let g = fig1_graph();
        assert_eq!(g.num_vertices(), 12);
        // A (=4) has degree 3 as in the paper's narrative.
        assert_eq!(g.degree(4), 3);
        // B (=5) has degree 3 here (A, 6, pendant 11): removing the pendant
        // in round 1 leaves it with degree 2 for round 2, mirroring Fig. 1.
        assert_eq!(g.degree(5), 3);
        // pendants have degree 1
        for v in 9..12 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn fig1_core_numbers_match_reference_peeling() {
        // Reference O(n^2) peeling, independent of the kcore-cpu crate.
        let g = fig1_graph();
        let n = g.num_vertices() as usize;
        let mut deg: Vec<u32> = (0..n as u32).map(|v| g.degree(v)).collect();
        let mut removed = vec![false; n];
        let mut core = vec![0u32; n];
        let mut k = 0u32;
        for _ in 0..n {
            // find min-degree unremoved vertex
            let (v, &d) = deg
                .iter()
                .enumerate()
                .filter(|(v, _)| !removed[*v])
                .min_by_key(|(_, d)| **d)
                .unwrap();
            k = k.max(d);
            core[v] = k;
            removed[v] = true;
            for &u in g.neighbors(v as u32) {
                if !removed[u as usize] {
                    deg[u as usize] -= 1;
                }
            }
        }
        assert_eq!(core, fig1_core_numbers());
    }
}
