//! Versioned, checksummed binary CSR serialization.
//!
//! The on-disk format (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"KCSR"
//! 4       4     format version (u32) — currently [`CSR_BINARY_VERSION`]
//! 8       8     num_vertices n (u64)
//! 16      8     num_arcs |neighbors| (u64)
//! 24      8     FNV-1a 64 checksum of the payload bytes
//! 32      ...   payload: (n + 1) offsets as u64, then num_arcs neighbors as u32
//! ```
//!
//! [`Csr::read_binary`] rejects — with a typed [`BinError`], never a panic —
//! anything with a wrong magic, an unknown version, a truncated or oversized
//! payload, a checksum mismatch, or structurally invalid offsets/neighbor
//! IDs, so a consumer (the dataset cache in [`crate::cache`]) can fall back
//! to regeneration. The encoding is a pure function of the graph, so two
//! structurally equal CSRs always serialize to identical bytes — the
//! property the cache's determinism contract rests on (DESIGN.md
//! "Ingestion pipeline & dataset cache").

use crate::csr::{Csr, VertexId};
use std::io::{Read, Write};
use std::path::Path;

/// Current version of the binary CSR format. Bump on any layout change;
/// readers refuse other versions (the cache then regenerates).
pub const CSR_BINARY_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"KCSR";
const HEADER_LEN: usize = 32;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Errors from [`Csr::read_binary`] / [`Csr::write_binary`].
#[derive(Debug)]
pub enum BinError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with `KCSR`.
    BadMagic,
    /// The format version is not [`CSR_BINARY_VERSION`].
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The payload is shorter than the header promises.
    Truncated,
    /// The payload is longer than the header promises.
    TrailingBytes,
    /// The payload bytes do not hash to the header checksum.
    ChecksumMismatch,
    /// Offsets/neighbors decoded but violate CSR invariants.
    Malformed(&'static str),
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "io error: {e}"),
            BinError::BadMagic => write!(f, "not a KCSR file (bad magic)"),
            BinError::BadVersion { found } => {
                write!(f, "KCSR version {found} (expected {CSR_BINARY_VERSION})")
            }
            BinError::Truncated => write!(f, "truncated KCSR payload"),
            BinError::TrailingBytes => write!(f, "trailing bytes after KCSR payload"),
            BinError::ChecksumMismatch => write!(f, "KCSR checksum mismatch"),
            BinError::Malformed(what) => write!(f, "malformed KCSR payload: {what}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<std::io::Error> for BinError {
    fn from(e: std::io::Error) -> Self {
        BinError::Io(e)
    }
}

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Encodes the payload (offsets then neighbors, little-endian) into one
/// buffer. Kept separate so the writer can checksum exactly what it emits.
fn encode_payload(offsets: &[u64], neighbors: &[VertexId]) -> Vec<u8> {
    let mut out = Vec::with_capacity(offsets.len() * 8 + neighbors.len() * 4);
    for &o in offsets {
        out.extend_from_slice(&o.to_le_bytes());
    }
    for &v in neighbors {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

impl Csr {
    /// Serializes the graph in the KCSR binary format (see module docs).
    pub fn write_binary<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let offsets = self.offsets();
        let neighbors = self.neighbor_array();
        let payload = encode_payload(offsets, neighbors);
        let mut header = [0u8; HEADER_LEN];
        header[0..4].copy_from_slice(&MAGIC);
        header[4..8].copy_from_slice(&CSR_BINARY_VERSION.to_le_bytes());
        header[8..16].copy_from_slice(&(self.num_vertices() as u64).to_le_bytes());
        header[16..24].copy_from_slice(&(neighbors.len() as u64).to_le_bytes());
        header[24..32].copy_from_slice(&fnv1a(FNV_OFFSET, &payload).to_le_bytes());
        w.write_all(&header)?;
        w.write_all(&payload)?;
        w.flush()
    }

    /// Deserializes a KCSR binary stream, validating magic, version,
    /// length, checksum, and the cheap structural CSR invariants
    /// (monotonic offsets bracketing the neighbor array, in-range neighbor
    /// IDs, sorted duplicate-free self-loop-free adjacency lists). The
    /// O(m log m) symmetry check is skipped — the writer only accepts
    /// [`Csr`] values, which are symmetric by construction.
    pub fn read_binary<R: Read>(mut r: R) -> Result<Csr, BinError> {
        let mut header = [0u8; HEADER_LEN];
        let mut filled = 0usize;
        while filled < HEADER_LEN {
            match r.read(&mut header[filled..])? {
                0 => return Err(BinError::Truncated),
                k => filled += k,
            }
        }
        if header[0..4] != MAGIC {
            return Err(BinError::BadMagic);
        }
        let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if version != CSR_BINARY_VERSION {
            return Err(BinError::BadVersion { found: version });
        }
        let n = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let arcs = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let checksum = u64::from_le_bytes(header[24..32].try_into().unwrap());

        let expected = n
            .checked_add(1)
            .and_then(|k| k.checked_mul(8))
            .and_then(|b| b.checked_add(arcs.checked_mul(4)?))
            .and_then(|b| usize::try_from(b).ok())
            .ok_or(BinError::Malformed("size overflow"))?;
        let mut payload = Vec::new();
        r.read_to_end(&mut payload)?;
        match payload.len().cmp(&expected) {
            std::cmp::Ordering::Less => return Err(BinError::Truncated),
            std::cmp::Ordering::Greater => return Err(BinError::TrailingBytes),
            std::cmp::Ordering::Equal => {}
        }
        if fnv1a(FNV_OFFSET, &payload) != checksum {
            return Err(BinError::ChecksumMismatch);
        }

        let n = n as usize;
        let mut offsets = Vec::with_capacity(n + 1);
        for c in payload[..(n + 1) * 8].chunks_exact(8) {
            offsets.push(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let mut neighbors = Vec::with_capacity(arcs as usize);
        for c in payload[(n + 1) * 8..].chunks_exact(4) {
            neighbors.push(VertexId::from_le_bytes(c.try_into().unwrap()));
        }

        if offsets[0] != 0 || *offsets.last().unwrap() != arcs {
            return Err(BinError::Malformed("offsets do not bracket neighbors"));
        }
        // Validate all offsets before slicing any adjacency list: with
        // offsets[0] == 0, offsets[n] == arcs, and monotonicity, every
        // offset is a valid index into `neighbors`.
        for v in 0..n {
            if offsets[v] > offsets[v + 1] {
                return Err(BinError::Malformed("offsets decrease"));
            }
        }
        for v in 0..n {
            let list = &neighbors[offsets[v] as usize..offsets[v + 1] as usize];
            for (i, &u) in list.iter().enumerate() {
                if u as usize >= n {
                    return Err(BinError::Malformed("neighbor out of range"));
                }
                if u as usize == v {
                    return Err(BinError::Malformed("self-loop"));
                }
                if i > 0 && list[i - 1] >= u {
                    return Err(BinError::Malformed("unsorted adjacency"));
                }
            }
        }
        Ok(Csr::from_parts_unchecked(offsets, neighbors))
    }

    /// Writes the graph to `path` in KCSR format (buffered).
    pub fn save_binary<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let f = std::fs::File::create(path)?;
        self.write_binary(std::io::BufWriter::new(f))
    }

    /// Loads a KCSR file from `path`.
    pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<Csr, BinError> {
        let f = std::fs::File::open(path)?;
        Csr::read_binary(std::io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        crate::fig1_graph()
    }

    fn bytes_of(g: &Csr) -> Vec<u8> {
        let mut buf = Vec::new();
        g.write_binary(&mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_is_identity() {
        let g = sample();
        let back = Csr::read_binary(&bytes_of(&g)[..]).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Csr::empty(5);
        assert_eq!(Csr::read_binary(&bytes_of(&g)[..]).unwrap(), g);
        let g = Csr::empty(0);
        assert_eq!(Csr::read_binary(&bytes_of(&g)[..]).unwrap(), g);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(bytes_of(&sample()), bytes_of(&sample()));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut b = bytes_of(&sample());
        b[0] = b'X';
        assert!(matches!(Csr::read_binary(&b[..]), Err(BinError::BadMagic)));
    }

    #[test]
    fn rejects_stale_version() {
        let mut b = bytes_of(&sample());
        b[4..8].copy_from_slice(&(CSR_BINARY_VERSION + 1).to_le_bytes());
        assert!(matches!(
            Csr::read_binary(&b[..]),
            Err(BinError::BadVersion { .. })
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let b = bytes_of(&sample());
        for cut in [0, 3, HEADER_LEN - 1, HEADER_LEN, b.len() - 1] {
            assert!(
                matches!(Csr::read_binary(&b[..cut]), Err(BinError::Truncated)),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut b = bytes_of(&sample());
        b.push(0);
        assert!(matches!(
            Csr::read_binary(&b[..]),
            Err(BinError::TrailingBytes)
        ));
    }

    #[test]
    fn rejects_payload_corruption() {
        let mut b = bytes_of(&sample());
        let last = b.len() - 1;
        b[last] ^= 0xff;
        assert!(matches!(
            Csr::read_binary(&b[..]),
            Err(BinError::ChecksumMismatch)
        ));
    }

    #[test]
    fn rejects_checksummed_garbage_structure() {
        // A payload that checksums fine but is not a valid CSR: rewrite a
        // neighbor to a self-loop and re-stamp the checksum.
        let g = sample();
        let mut offsets = g.offsets().to_vec();
        let mut neighbors = g.neighbor_array().to_vec();
        neighbors[0] = 0; // vertex 0's first neighbor := 0 (self-loop)
        let mut b = Vec::new();
        let payload = encode_payload(&offsets, &neighbors);
        b.extend_from_slice(&MAGIC);
        b.extend_from_slice(&CSR_BINARY_VERSION.to_le_bytes());
        b.extend_from_slice(&(g.num_vertices() as u64).to_le_bytes());
        b.extend_from_slice(&(neighbors.len() as u64).to_le_bytes());
        b.extend_from_slice(&fnv1a(FNV_OFFSET, &payload).to_le_bytes());
        b.extend_from_slice(&payload);
        assert!(matches!(
            Csr::read_binary(&b[..]),
            Err(BinError::Malformed(_))
        ));
        // and a decreasing offsets array
        offsets[1] = u64::MAX;
        let payload = encode_payload(&offsets, g.neighbor_array());
        b.truncate(24);
        b.extend_from_slice(&fnv1a(FNV_OFFSET, &payload).to_le_bytes());
        b.extend_from_slice(&payload);
        assert!(Csr::read_binary(&b[..]).is_err());
    }

    #[test]
    fn rejects_overflowing_header_sizes() {
        let mut b = [0u8; HEADER_LEN];
        b[0..4].copy_from_slice(&MAGIC);
        b[4..8].copy_from_slice(&CSR_BINARY_VERSION.to_le_bytes());
        b[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        b[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Csr::read_binary(&b[..]),
            Err(BinError::Malformed(_))
        ));
    }

    #[test]
    fn file_round_trip() {
        let g = sample();
        let dir = std::env::temp_dir().join("kcore_binio_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.kcsr");
        g.save_binary(&path).unwrap();
        assert_eq!(Csr::load_binary(&path).unwrap(), g);
        std::fs::remove_file(&path).ok();
    }
}
