//! Edge updates for the dynamic (streaming) setting.
//!
//! A batch of [`EdgeUpdate`]s is the unit of work the dynamic maintenance
//! engines consume: the CPU oracle ([`kcore-cpu`]'s `incremental` module)
//! applies them one at a time, the GPU engine (`kcore-gpu`'s `dynamic`
//! module) classifies a whole batch and processes it kernelized. The type
//! lives here so both sides — and the bench/tests that drive them — share
//! one vocabulary without `kcore-gpu` depending on `kcore-cpu`.

/// One edge mutation against an undirected simple graph.
///
/// Endpoints are unordered: `Insert(u, v)` and `Insert(v, u)` denote the
/// same update. Self-loops (`u == v`) and out-of-range endpoints are *valid
/// values* but are rejected (not normalized) by every consumer, mirroring
/// [`GraphBuilder`](crate::GraphBuilder)'s simple-graph contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeUpdate {
    /// Insert undirected edge `{u, v}`.
    Insert(u32, u32),
    /// Delete undirected edge `{u, v}`.
    Delete(u32, u32),
}

impl EdgeUpdate {
    /// The endpoints as written (not canonicalized).
    pub fn endpoints(self) -> (u32, u32) {
        match self {
            EdgeUpdate::Insert(u, v) | EdgeUpdate::Delete(u, v) => (u, v),
        }
    }

    /// The endpoints as a canonical `(min, max)` pair — the undirected
    /// edge's identity.
    pub fn key(self) -> (u32, u32) {
        let (u, v) = self.endpoints();
        (u.min(v), u.max(v))
    }

    /// Whether this update is an insertion.
    pub fn is_insert(self) -> bool {
        matches!(self, EdgeUpdate::Insert(..))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_orientation_invariant() {
        assert_eq!(EdgeUpdate::Insert(7, 3).key(), (3, 7));
        assert_eq!(EdgeUpdate::Delete(3, 7).key(), (3, 7));
        assert_eq!(EdgeUpdate::Insert(5, 5).key(), (5, 5));
        assert!(EdgeUpdate::Insert(0, 1).is_insert());
        assert!(!EdgeUpdate::Delete(0, 1).is_insert());
        assert_eq!(EdgeUpdate::Delete(9, 2).endpoints(), (9, 2));
    }
}
