//! Dense ID recoding.
//!
//! The paper assumes vertex IDs are densely indexed; "if they are not, we can
//! perform ID recoding of G as preprocessing" (§IV, citing Blogel). This
//! module provides that preprocessing for loaders whose inputs use sparse or
//! arbitrary 64-bit IDs.

use rustc_hash::FxHashMap;

/// Maps arbitrary external IDs to dense `0..n` internal IDs, preserving
/// first-seen order, and remembers the inverse mapping.
#[derive(Default, Debug, Clone)]
pub struct Recoder {
    to_dense: FxHashMap<u64, u32>,
    to_external: Vec<u64>,
}

impl Recoder {
    /// An empty recoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the dense ID for `external`, assigning the next free one on
    /// first sight.
    pub fn encode(&mut self, external: u64) -> u32 {
        match self.to_dense.entry(external) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let id = self.to_external.len() as u32;
                e.insert(id);
                self.to_external.push(external);
                id
            }
        }
    }

    /// The external ID originally mapped to dense `id`.
    pub fn decode(&self, id: u32) -> Option<u64> {
        self.to_external.get(id as usize).copied()
    }

    /// Dense ID already assigned to `external`, if any.
    pub fn lookup(&self, external: u64) -> Option<u32> {
        self.to_dense.get(&external).copied()
    }

    /// Number of distinct external IDs seen.
    pub fn len(&self) -> usize {
        self.to_external.len()
    }

    /// Whether no ID has been assigned yet.
    pub fn is_empty(&self) -> bool {
        self.to_external.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigns_dense_ids_in_first_seen_order() {
        let mut r = Recoder::new();
        assert_eq!(r.encode(1000), 0);
        assert_eq!(r.encode(7), 1);
        assert_eq!(r.encode(1000), 0);
        assert_eq!(r.encode(u64::MAX), 2);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn round_trips() {
        let mut r = Recoder::new();
        for ext in [42u64, 0, 999_999_999_999] {
            let d = r.encode(ext);
            assert_eq!(r.decode(d), Some(ext));
            assert_eq!(r.lookup(ext), Some(d));
        }
        assert_eq!(r.decode(99), None);
        assert_eq!(r.lookup(123), None);
    }

    #[test]
    fn empty() {
        let r = Recoder::new();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }
}
