//! Compressed-sparse-row graph storage.
//!
//! This is the exact layout the paper keeps in GPU global memory (§IV):
//! a `neighbors` array concatenating all adjacency lists, an `offsets` array
//! locating each vertex's list, and the degree of vertex `v` implied by
//! `offsets[v + 1] - offsets[v]`.

/// Vertex identifier. The paper assumes densely indexed 32-bit IDs
/// (non-dense inputs are recoded by [`crate::recode`] / [`crate::GraphBuilder`]).
pub type VertexId = u32;

/// An immutable simple undirected graph in CSR form.
///
/// Invariants (enforced by [`Csr::new`] and checked by `debug_assert`s):
///
/// * `offsets.len() == num_vertices + 1`, `offsets[0] == 0`,
///   `offsets` is non-decreasing and `offsets[n] == neighbors.len()`;
/// * every neighbor ID is `< num_vertices`;
/// * adjacency lists are sorted, contain no duplicates and no self-loops;
/// * the graph is symmetric: `v ∈ adj(u)` ⇔ `u ∈ adj(v)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u64>,
    neighbors: Vec<VertexId>,
}

/// Errors produced when validating raw CSR input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    /// `offsets` was empty or did not end at `neighbors.len()`.
    BadOffsets,
    /// `offsets` decreased between two vertices.
    NonMonotonicOffsets { vertex: VertexId },
    /// A neighbor ID was out of range.
    NeighborOutOfRange {
        vertex: VertexId,
        neighbor: VertexId,
    },
    /// An adjacency list contained a self-loop.
    SelfLoop { vertex: VertexId },
    /// An adjacency list was unsorted or contained duplicates.
    UnsortedAdjacency { vertex: VertexId },
    /// Edge `(u, v)` was present but `(v, u)` was not.
    Asymmetric { u: VertexId, v: VertexId },
}

impl std::fmt::Display for CsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrError::BadOffsets => write!(f, "offsets array malformed"),
            CsrError::NonMonotonicOffsets { vertex } => {
                write!(f, "offsets decrease at vertex {vertex}")
            }
            CsrError::NeighborOutOfRange { vertex, neighbor } => {
                write!(f, "vertex {vertex} has out-of-range neighbor {neighbor}")
            }
            CsrError::SelfLoop { vertex } => write!(f, "vertex {vertex} has a self-loop"),
            CsrError::UnsortedAdjacency { vertex } => {
                write!(
                    f,
                    "adjacency list of vertex {vertex} unsorted or has duplicates"
                )
            }
            CsrError::Asymmetric { u, v } => {
                write!(f, "edge ({u}, {v}) present but ({v}, {u}) missing")
            }
        }
    }
}

impl std::error::Error for CsrError {}

impl Csr {
    /// Builds a CSR from raw arrays, validating every invariant.
    ///
    /// Prefer [`crate::GraphBuilder`] for constructing graphs from edges; this
    /// entry point exists for loaders that already produce CSR data.
    pub fn new(offsets: Vec<u64>, neighbors: Vec<VertexId>) -> Result<Self, CsrError> {
        if offsets.is_empty()
            || *offsets.last().unwrap() != neighbors.len() as u64
            || offsets[0] != 0
        {
            return Err(CsrError::BadOffsets);
        }
        let n = offsets.len() - 1;
        for v in 0..n {
            if offsets[v] > offsets[v + 1] {
                return Err(CsrError::NonMonotonicOffsets {
                    vertex: v as VertexId,
                });
            }
            let list = &neighbors[offsets[v] as usize..offsets[v + 1] as usize];
            for (i, &u) in list.iter().enumerate() {
                if u as usize >= n {
                    return Err(CsrError::NeighborOutOfRange {
                        vertex: v as VertexId,
                        neighbor: u,
                    });
                }
                if u == v as VertexId {
                    return Err(CsrError::SelfLoop {
                        vertex: v as VertexId,
                    });
                }
                if i > 0 && list[i - 1] >= u {
                    return Err(CsrError::UnsortedAdjacency {
                        vertex: v as VertexId,
                    });
                }
            }
        }
        let csr = Csr { offsets, neighbors };
        // Symmetry: every directed arc must have its reverse.
        for v in 0..n as VertexId {
            for &u in csr.neighbors(v) {
                if csr.neighbors(u).binary_search(&v).is_err() {
                    return Err(CsrError::Asymmetric { u: v, v: u });
                }
            }
        }
        Ok(csr)
    }

    /// Builds a CSR from pre-validated arrays without re-checking invariants.
    ///
    /// Used by [`crate::GraphBuilder`], which establishes the invariants by
    /// construction. Debug builds still spot-check.
    pub(crate) fn from_parts_unchecked(offsets: Vec<u64>, neighbors: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len() as u64);
        Csr { offsets, neighbors }
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Csr {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of *undirected* edges (each stored twice in `neighbors`).
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.neighbors.len() as u64 / 2
    }

    /// Number of directed arcs, i.e. `neighbors.len()` — what the GPU moves.
    #[inline]
    pub fn num_arcs(&self) -> u64 {
        self.neighbors.len() as u64
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Adjacency list of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// The raw offsets array (`num_vertices + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw concatenated adjacency array.
    #[inline]
    pub fn neighbor_array(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Degrees of all vertices as a fresh array (the GPU `deg[]` input).
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.num_vertices()).map(|v| self.degree(v)).collect()
    }

    /// Maximum degree, or 0 for an empty graph.
    pub fn max_degree(&self) -> u32 {
        (0..self.num_vertices())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Whether edge `{u, v}` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u != v && self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The induced subgraph on `keep` (given as a boolean mask), with vertex
    /// IDs preserved (dropped vertices become isolated). Used by tests to
    /// verify the k-core property.
    pub fn induced_mask(&self, keep: &[bool]) -> Csr {
        assert_eq!(keep.len(), self.num_vertices() as usize);
        let n = keep.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0u64);
        for v in 0..n as VertexId {
            if keep[v as usize] {
                neighbors.extend(
                    self.neighbors(v)
                        .iter()
                        .copied()
                        .filter(|&u| keep[u as usize]),
                );
            }
            offsets.push(neighbors.len() as u64);
        }
        Csr::from_parts_unchecked(offsets, neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Csr {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.degrees(), vec![2, 2, 2]);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = triangle();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert!(g.neighbors(3).is_empty());
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn validation_rejects_bad_offsets() {
        assert_eq!(Csr::new(vec![], vec![]), Err(CsrError::BadOffsets));
        assert_eq!(Csr::new(vec![0, 3], vec![1]), Err(CsrError::BadOffsets));
        assert_eq!(
            Csr::new(vec![0, 2, 1, 2], vec![1, 2]).unwrap_err(),
            CsrError::NonMonotonicOffsets { vertex: 1 }
        );
    }

    #[test]
    fn validation_rejects_bad_adjacency() {
        // out of range
        assert_eq!(
            Csr::new(vec![0, 1, 2], vec![5, 0]).unwrap_err(),
            CsrError::NeighborOutOfRange {
                vertex: 0,
                neighbor: 5
            }
        );
        // self loop
        assert_eq!(
            Csr::new(vec![0, 1, 1], vec![0]).unwrap_err(),
            CsrError::SelfLoop { vertex: 0 }
        );
        // duplicates
        assert_eq!(
            Csr::new(vec![0, 2, 2, 4], vec![1, 1, 0, 0]).unwrap_err(),
            CsrError::UnsortedAdjacency { vertex: 0 }
        );
        // asymmetric
        assert_eq!(
            Csr::new(vec![0, 1, 1], vec![1]).unwrap_err(),
            CsrError::Asymmetric { u: 0, v: 1 }
        );
    }

    #[test]
    fn validation_accepts_valid() {
        let g = triangle();
        let again = Csr::new(g.offsets().to_vec(), g.neighbor_array().to_vec()).unwrap();
        assert_eq!(again, g);
    }

    #[test]
    fn induced_mask_drops_vertices() {
        let g = triangle();
        let sub = g.induced_mask(&[true, true, false]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.degree(0), 1);
        assert_eq!(sub.neighbors(0), &[1]);
        assert_eq!(sub.degree(2), 0);
    }
}
