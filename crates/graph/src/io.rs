//! Edge-list text I/O in the SNAP dataset format.
//!
//! The public datasets in the paper's Table I are distributed as whitespace-
//! separated edge lists with `#`-prefixed comment lines (SNAP) or similar.
//! [`parse_edge_list`] accepts that format (plus `%` comments used by KONECT)
//! and produces a normalized undirected [`Csr`] via [`GraphBuilder`] and
//! [`Recoder`] — directed inputs are symmetrized exactly as the paper does.
//!
//! Two parsing paths produce identical results:
//!
//! * [`parse_edge_list`] — streaming over any reader with one reused
//!   `read_line` buffer (constant memory, no per-line allocation);
//! * [`parse_edge_list_bytes`] — in-memory: the buffer is split on newline
//!   boundaries into fixed-size chunks tokenized concurrently, then the
//!   per-chunk edge vectors are concatenated in chunk order. Since
//!   concatenation restores file order before the (serial, order-
//!   dependent) ID recoding runs, the resulting graph and recoder are
//!   byte-identical to the streaming path at every rayon pool size.
//!
//! [`load_edge_list`] reads the file into memory and uses the parallel
//! path. On malformed input both paths report the first bad line's 1-based
//! number, like the streaming parser always did.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use crate::recode::Recoder;
use rayon::prelude::*;

/// Input size below which [`parse_edge_list_bytes`] stays serial (chunk
/// fan-out overhead exceeds the tokenization work).
const PAR_PARSE_MIN_BYTES: usize = 1 << 20;

/// Bytes per parallel parse chunk (before extending to the next newline).
/// Fixed so the chunk decomposition never depends on the pool size.
const PARSE_CHUNK_BYTES: usize = 1 << 20;

/// Errors from edge-list loading.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A non-comment line did not contain two integer tokens.
    Parse { line_no: usize, line: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line_no, line } => {
                write!(f, "cannot parse edge at line {line_no}: {line:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses one edge-list line. `Ok(None)` for comments/blank lines,
/// `Ok(Some((u, v)))` for an edge, `Err(())` when the line is malformed
/// (the caller attaches the line number and text).
#[inline]
fn parse_line(t: &str) -> Result<Option<(u64, u64)>, ()> {
    let t = t.trim();
    if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
        return Ok(None);
    }
    let mut it = t.split_whitespace();
    let (Some(a), Some(b)) = (it.next(), it.next()) else {
        return Err(());
    };
    match (a.parse::<u64>(), b.parse::<u64>()) {
        (Ok(u), Ok(v)) => Ok(Some((u, v))),
        _ => Err(()),
    }
}

/// Recodes raw external-ID pairs (in file order, so the recoder assigns
/// dense IDs by first appearance exactly like the streaming parser) and
/// builds the normalized graph.
fn assemble(pairs: Vec<(u64, u64)>) -> (Csr, Recoder) {
    let mut recoder = Recoder::new();
    let mut builder = GraphBuilder::with_capacity(pairs.len());
    for (u, v) in pairs {
        let u = recoder.encode(u);
        let v = recoder.encode(v);
        builder.add_edge(u, v);
    }
    (builder.build(), recoder)
}

/// Parses an edge list from a reader. Returns the graph and the recoder that
/// maps external IDs to the dense internal IDs the graph uses.
///
/// This is the streaming path: one `read_line` buffer is reused for every
/// line, so parsing allocates no per-line `String`s and holds only the
/// edge pairs in memory. For in-memory input prefer
/// [`parse_edge_list_bytes`], which tokenizes chunks in parallel.
pub fn parse_edge_list<R: Read>(reader: R) -> Result<(Csr, Recoder), IoError> {
    let _span = kcore_gpusim::hostprof::global().map(|hp| hp.span("ingest/parse"));
    let mut pairs = Vec::new();
    let mut buf = BufReader::new(reader);
    let mut line = String::new();
    let mut line_no = 0usize;
    loop {
        line.clear();
        if buf.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        match parse_line(&line) {
            Ok(Some(pair)) => pairs.push(pair),
            Ok(None) => {}
            Err(()) => {
                return Err(IoError::Parse {
                    line_no,
                    line: line.trim_end_matches(['\n', '\r']).to_string(),
                })
            }
        }
    }
    Ok(assemble(pairs))
}

/// One tokenized chunk: `Ok((pairs, line_count))`, or `Err((local_line,
/// text))` for a malformed line (0-based index within the chunk).
type ChunkResult = Result<(Vec<(u64, u64)>, usize), (usize, String)>;

/// Tokenizes one chunk of the input. Returns the pairs plus the number of
/// lines the chunk spans; a malformed line is reported by its 0-based
/// index *within the chunk* (the caller rebases to an absolute number).
fn parse_chunk(chunk: &[u8]) -> ChunkResult {
    let text = match std::str::from_utf8(chunk) {
        Ok(t) => t,
        Err(e) => {
            // Report the offending line by counting newlines up to the bad byte.
            let local = chunk[..e.valid_up_to()]
                .iter()
                .filter(|&&b| b == b'\n')
                .count();
            return Err((local, "<invalid utf-8>".into()));
        }
    };
    let mut pairs = Vec::new();
    let mut lines = 0usize;
    for (idx, l) in text.split('\n').enumerate() {
        // `split('\n')` yields one trailing empty fragment for newline-
        // terminated chunks; it parses as a blank line, and the count is
        // corrected by the caller tracking real newlines.
        if idx > 0 {
            lines += 1;
        }
        match parse_line(l) {
            Ok(Some(pair)) => pairs.push(pair),
            Ok(None) => {}
            Err(()) => {
                return Err((idx, l.trim_end_matches('\r').to_string()));
            }
        }
    }
    Ok((pairs, lines))
}

/// Splits `buf` into ~[`PARSE_CHUNK_BYTES`] chunks ending on newline
/// boundaries (the final chunk may lack a trailing newline).
fn newline_chunks(buf: &[u8]) -> Vec<&[u8]> {
    let mut chunks = Vec::new();
    let mut start = 0usize;
    while start < buf.len() {
        let mut end = (start + PARSE_CHUNK_BYTES).min(buf.len());
        while end < buf.len() && buf[end - 1] != b'\n' {
            end += 1;
        }
        chunks.push(&buf[start..end]);
        start = end;
    }
    chunks
}

/// Parses an in-memory edge list, tokenizing newline-bounded chunks in
/// parallel above [`PAR_PARSE_MIN_BYTES`]. Identical output (graph,
/// recoder, and error reporting) to the streaming [`parse_edge_list`] at
/// every rayon pool size — see the module docs.
pub fn parse_edge_list_bytes(buf: &[u8]) -> Result<(Csr, Recoder), IoError> {
    if buf.len() < PAR_PARSE_MIN_BYTES || rayon::current_num_threads() == 1 {
        // Small input, or nothing to fan out to (the streaming path beats
        // the chunked one ~2x on a single-threaded pool).
        return parse_edge_list(buf);
    }
    let _span = kcore_gpusim::hostprof::global().map(|hp| hp.span("ingest/parse"));
    let chunks = newline_chunks(buf);
    let results: Vec<ChunkResult> = chunks.into_par_iter().map(parse_chunk).collect();
    // Rebase the first (file-order) error to an absolute line number: all
    // chunks before it parsed fully, so their line counts are known.
    let mut lines_before = 0usize;
    let mut pairs = Vec::new();
    for r in results {
        match r {
            Ok((mut p, lines)) => {
                pairs.append(&mut p);
                lines_before += lines;
            }
            Err((local, line)) => {
                return Err(IoError::Parse {
                    line_no: lines_before + local + 1,
                    line,
                })
            }
        }
    }
    Ok(assemble(pairs))
}

/// Loads an edge list file from disk (reads it into memory, then parses
/// via [`parse_edge_list_bytes`]).
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<(Csr, Recoder), IoError> {
    let bytes = std::fs::read(path)?;
    parse_edge_list_bytes(&bytes)
}

/// Parses a MatrixMarket coordinate file (the format the paper's LAW
/// crawls are distributed in via sparse.tamu.edu). Supports
/// `pattern`/`real`/`integer` fields and `general`/`symmetric` symmetry;
/// entry values, if present, are ignored (the adjacency structure is what
/// k-core needs). Entries are 1-indexed per the spec.
pub fn parse_matrix_market<R: Read>(reader: R) -> Result<Csr, IoError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines().enumerate();

    // Header line.
    let (_, header) = lines
        .next()
        .ok_or_else(|| IoError::Parse {
            line_no: 1,
            line: "<empty file>".into(),
        })
        .and_then(|(i, l)| l.map(|l| (i, l)).map_err(IoError::Io))?;
    let h = header.to_ascii_lowercase();
    if !h.starts_with("%%matrixmarket matrix coordinate") {
        return Err(IoError::Parse {
            line_no: 1,
            line: header,
        });
    }

    // Dimension line (first non-comment).
    let mut n_rows = 0u64;
    let mut n_cols = 0u64;
    let mut builder = GraphBuilder::new();
    let mut dims_seen = false;
    for (idx, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        if !dims_seen {
            let (Some(r), Some(c)) = (it.next(), it.next()) else {
                return Err(IoError::Parse {
                    line_no: idx + 1,
                    line,
                });
            };
            let (Ok(r), Ok(c)) = (r.parse::<u64>(), c.parse::<u64>()) else {
                return Err(IoError::Parse {
                    line_no: idx + 1,
                    line,
                });
            };
            n_rows = r;
            n_cols = c;
            dims_seen = true;
            continue;
        }
        let (Some(a), Some(b)) = (it.next(), it.next()) else {
            return Err(IoError::Parse {
                line_no: idx + 1,
                line,
            });
        };
        let (Ok(u), Ok(v)) = (a.parse::<u64>(), b.parse::<u64>()) else {
            return Err(IoError::Parse {
                line_no: idx + 1,
                line,
            });
        };
        if u == 0 || v == 0 || u > n_rows || v > n_cols {
            return Err(IoError::Parse {
                line_no: idx + 1,
                line,
            });
        }
        builder.add_edge((u - 1) as u32, (v - 1) as u32);
    }
    if !dims_seen {
        return Err(IoError::Parse {
            line_no: 2,
            line: "<missing dimension line>".into(),
        });
    }
    let mut b = GraphBuilder::with_num_vertices(n_rows.max(n_cols) as u32);
    b.extend_edges(builder.build().edges());
    Ok(b.build())
}

/// Loads a MatrixMarket file from disk.
pub fn load_matrix_market<P: AsRef<Path>>(path: P) -> Result<Csr, IoError> {
    let f = std::fs::File::open(path)?;
    parse_matrix_market(f)
}

/// Writes a graph as a SNAP-style edge list (each undirected edge once,
/// `u < v`, internal IDs).
pub fn write_edge_list<W: Write>(g: &Csr, mut w: W) -> std::io::Result<()> {
    writeln!(
        w,
        "# Undirected graph: {} nodes, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    Ok(())
}

/// Saves a graph to a file in edge-list format.
pub fn save_edge_list<P: AsRef<Path>>(g: &Csr, path: P) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_edge_list(g, std::io::BufWriter::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snap_format() {
        let text = "\
# Directed graph (each unordered pair of nodes is saved once)
# Nodes: 4 Edges: 4
100\t200
200\t300
% konect style comment
300 100
400 100
";
        let (g, rec) = parse_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        let a = rec.lookup(100).unwrap();
        let b = rec.lookup(200).unwrap();
        assert!(g.has_edge(a, b));
    }

    #[test]
    fn symmetrizes_directed_pairs() {
        let (g, _) = parse_edge_list("1 2\n2 1\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn rejects_garbage() {
        let err = parse_edge_list("1 2\nhello world\n".as_bytes()).unwrap_err();
        match err {
            IoError::Parse { line_no, .. } => assert_eq!(line_no, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_single_token_line() {
        let err = parse_edge_list("1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line_no: 1, .. }));
    }

    #[test]
    fn round_trip() {
        let g = crate::fig1_graph();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (g2, rec) = parse_edge_list(&buf[..]).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        // Same structure modulo recoding: degrees multiset must match.
        let mut d1 = g.degrees();
        let mut d2 = g2.degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
        assert_eq!(rec.len() as u32, g.num_vertices());
    }

    #[test]
    fn matrix_market_symmetric_pattern() {
        let text = "\
%%MatrixMarket matrix coordinate pattern symmetric
% a triangle plus an isolated 4th vertex
4 4 3
1 2
2 3
3 1
";
        let g = parse_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn matrix_market_with_values_and_general_symmetry() {
        let text = "\
%%MatrixMarket matrix coordinate real general
3 3 4
1 2 0.5
2 1 0.5
2 3 1.25
3 3 9.0
";
        let g = parse_matrix_market(text.as_bytes()).unwrap();
        // (1,2)+(2,1) dedup to one edge; (3,3) self-loop dropped
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn matrix_market_rejects_bad_input() {
        assert!(parse_matrix_market("not a header\n1 1 0\n".as_bytes()).is_err());
        let bad_idx = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(parse_matrix_market(bad_idx.as_bytes()).is_err());
        let zero_idx = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n";
        assert!(parse_matrix_market(zero_idx.as_bytes()).is_err());
        assert!(parse_matrix_market(
            "%%MatrixMarket matrix coordinate pattern general\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn file_round_trip() {
        let g = crate::fig1_graph();
        let dir = std::env::temp_dir().join("kcore_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.txt");
        save_edge_list(&g, &path).unwrap();
        let (g2, _) = load_edge_list(&path).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        std::fs::remove_file(&path).ok();
    }
}
