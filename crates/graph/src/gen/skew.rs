//! Extremely skewed degree distributions.
//!
//! Stand-in for `trackers` / `wiki-Talk`-style networks, whose defining
//! feature in Table I is a degree standard deviation orders of magnitude
//! above the average (trackers: avg 10.2, std 2 774, d_max 11.57 M). These are
//! produced by a handful of super-hubs (Google Analytics, admin bots)
//! connected to a large fraction of the vertex set, on top of a sparse
//! background.

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sparse background + `hubs` super-hubs.
///
/// * `n` vertices, `m_background` uniform background edges;
/// * vertex `h` (for `h < hubs`) is connected to a `hub_fraction` share of
///   all vertices, so `d_max ≈ hub_fraction * n`.
pub fn power_law_hubs(n: u32, m_background: u64, hubs: u32, hub_fraction: f64, seed: u64) -> Csr {
    assert!(hubs < n);
    assert!((0.0..=1.0).contains(&hub_fraction));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_num_vertices(n);
    for _ in 0..m_background {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            b.add_edge(u, v);
        }
    }
    for h in 0..hubs {
        for v in hubs..n {
            if rng.gen_bool(hub_fraction) {
                b.add_edge(h, v);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn hubs_dominate_max_degree() {
        let g = power_law_hubs(2_000, 3_000, 3, 0.5, 13);
        let s = GraphStats::compute(&g);
        // hubs reach ~1000 degree, background ~3
        assert!(s.max_degree > 800, "d_max={}", s.max_degree);
        assert!(
            s.degree_std > 5.0 * s.avg_degree,
            "std={} avg={}",
            s.degree_std,
            s.avg_degree
        );
        // the max-degree vertex is one of the hubs
        let argmax = (0..g.num_vertices()).max_by_key(|&v| g.degree(v)).unwrap();
        assert!(argmax < 3);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            power_law_hubs(100, 200, 2, 0.3, 4),
            power_law_hubs(100, 200, 2, 0.3, 4)
        );
    }
}
