//! Classic random-graph models: Erdős–Rényi, R-MAT, Barabási–Albert.

use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// G(n, m): `m` edges sampled uniformly among unordered pairs.
///
/// Duplicate samples and self-loops are redrawn, so the result has exactly
/// `m` edges whenever `m <= n(n-1)/2`.
pub fn erdos_renyi_gnm(n: u32, m: u64, seed: u64) -> Csr {
    assert!(n >= 2 || m == 0, "need at least 2 vertices for edges");
    let max_m = n as u64 * (n as u64 - 1) / 2;
    assert!(m <= max_m, "m={m} exceeds max {max_m} for n={n}");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen = rustc_hash::FxHashSet::default();
    seen.reserve(m as usize);
    let mut b = GraphBuilder::with_num_vertices(n);
    while (seen.len() as u64) < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

/// Parameters of the R-MAT recursive edge sampler.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    // d = 1 - a - b - c
}

impl RmatParams {
    /// The Graph500 parameters (a=0.57, b=0.19, c=0.19): heavy skew typical of
    /// social networks and web crawls.
    pub fn graph500() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }

    /// Milder skew (a=0.45), for co-purchasing / citation style networks.
    pub fn mild() -> Self {
        RmatParams {
            a: 0.45,
            b: 0.22,
            c: 0.22,
        }
    }
}

/// Edges per parallel R-MAT work item. Fixed — never derived from the
/// thread count — so the edge stream is byte-identical at any pool size.
const RMAT_CHUNK: u64 = 1 << 16;

/// The SplitMix64 increment of the `rand` shim's `SmallRng`
/// (`state += PHI` per draw), which makes per-chunk seed derivation a
/// closed form: the RNG state after `k` draws from seed `s` is
/// `s + k * PHI`. [`stream_seed`] exploits that to hand each R-MAT chunk
/// the exact stream position the serial sampler would have reached, so the
/// parallel generator is byte-identical to the serial one — not merely
/// pool-size invariant. `gen::tests::rmat_parallel_matches_serial_oracle`
/// pins this; if the shim is ever swapped for upstream `rand` (whose
/// `SmallRng` has no closed-form jump), that test fails loudly and chunk
/// seeding must be re-derived.
const SPLITMIX_PHI: u64 = 0x9e37_79b9_7f4a_7c15;

/// Seed whose `SmallRng` stream continues `seed`'s stream after
/// `draws_consumed` calls to `next_u64` (see [`SPLITMIX_PHI`]).
fn stream_seed(seed: u64, draws_consumed: u64) -> u64 {
    seed.wrapping_add(draws_consumed.wrapping_mul(SPLITMIX_PHI))
}

/// Samples `m` R-MAT edge slots from one RNG stream, skipping self-loops.
/// Exactly `scale` draws are consumed per slot (no rejection), which is
/// what makes the chunk seed derivation in [`rmat`] exact.
fn rmat_sample_edges(
    scale: u32,
    m: u64,
    params: RmatParams,
    chunk_seed: u64,
) -> Vec<(VertexId, VertexId)> {
    let mut rng = SmallRng::seed_from_u64(chunk_seed);
    let mut out = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < params.a {
                (0, 0)
            } else if r < params.a + params.b {
                (0, 1)
            } else if r < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            out.push((u, v));
        }
    }
    out
}

/// R-MAT graph with `2^scale` vertices and ~`m` undirected edges.
///
/// Self-loops and duplicates are dropped during normalization, so the final
/// edge count is slightly below `m` — matching how R-MAT is used in practice.
///
/// Edge sampling fans out over [`RMAT_CHUNK`]-sized chunks, each seeded at
/// its exact position in the serial draw stream (see [`SPLITMIX_PHI`]), so
/// the output is byte-identical to [`rmat_serial`] and to itself at every
/// rayon pool size — golden traces pinned on R-MAT inputs stay valid.
pub fn rmat(scale: u32, m: u64, params: RmatParams, seed: u64) -> Csr {
    assert!((1..=30).contains(&scale), "scale out of range");
    let n: u32 = 1 << scale;
    if rayon::current_num_threads() == 1 {
        // One full-size chunk at draw offset 0 IS the serial stream; skip
        // the fan-out's per-chunk allocations when there is nothing to
        // fan out to.
        let mut b = GraphBuilder::with_num_vertices(n);
        b.extend_edges(rmat_sample_edges(scale, m, params, seed));
        return b.build();
    }
    let starts: Vec<u64> = (0..m).step_by(RMAT_CHUNK as usize).collect();
    let chunks: Vec<Vec<(VertexId, VertexId)>> = starts
        .into_par_iter()
        .map(|start| {
            let len = RMAT_CHUNK.min(m - start);
            let draws_consumed = start.wrapping_mul(scale as u64);
            rmat_sample_edges(scale, len, params, stream_seed(seed, draws_consumed))
        })
        .collect();
    let mut b = GraphBuilder::with_num_vertices(n);
    for c in chunks {
        b.extend_edges(c);
    }
    b.build()
}

/// The original single-stream R-MAT sampler, retained as the differential
/// oracle for the chunked [`rmat`] (and for the `ingest` criterion group).
pub fn rmat_serial(scale: u32, m: u64, params: RmatParams, seed: u64) -> Csr {
    assert!((1..=30).contains(&scale), "scale out of range");
    let n: u32 = 1 << scale;
    let mut b = GraphBuilder::with_num_vertices(n);
    b.extend_edges(rmat_sample_edges(scale, m, params, seed));
    b.build_with(crate::builder::BuildPath::Serial)
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m_per_node` existing vertices chosen proportionally to degree.
///
/// Produces power-law degree tails and `k_max ≈ m_per_node`, the classic
/// model for collaboration and citation networks. Note the minimum degree is
/// `m_per_node`, which empties every k-shell below it; use
/// [`preferential_attachment`] with an attachment-count *range* for
/// realistic low-degree tails.
pub fn barabasi_albert(n: u32, m_per_node: u32, seed: u64) -> Csr {
    preferential_attachment(n, m_per_node..=m_per_node, seed)
}

/// Preferential attachment with a per-vertex attachment count drawn
/// uniformly from `m_range` — degrees then span from `m_range.start()`
/// upward, populating every k-shell like real co-purchase/citation networks
/// do (plain BA leaves all shells below `m` empty, which concentrates the
/// entire peeling into one round).
pub fn preferential_attachment(n: u32, m_range: std::ops::RangeInclusive<u32>, seed: u64) -> Csr {
    let (m_lo, m_hi) = (*m_range.start(), *m_range.end());
    assert!(m_lo >= 1);
    assert!(n > m_hi, "need n > max attachment count");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_num_vertices(n);
    // `endpoints` holds one entry per edge endpoint: sampling uniformly from
    // it is sampling proportional to degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n as usize * m_hi as usize);
    // Seed with a small clique on the first m_hi + 1 vertices.
    let seed_n = m_hi + 1;
    for u in 0..seed_n {
        for v in (u + 1)..seed_n {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in seed_n..n {
        let m = rng.gen_range(m_lo..=m_hi);
        let mut chosen = rustc_hash::FxHashSet::default();
        while (chosen.len() as u32) < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            chosen.insert(t);
        }
        for &t in &chosen {
            b.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count() {
        let g = erdos_renyi_gnm(100, 500, 1);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn gnm_deterministic() {
        assert_eq!(erdos_renyi_gnm(50, 100, 5), erdos_renyi_gnm(50, 100, 5));
        assert_ne!(erdos_renyi_gnm(50, 100, 5), erdos_renyi_gnm(50, 100, 6));
    }

    #[test]
    fn gnm_dense_limit() {
        let g = erdos_renyi_gnm(5, 10, 2);
        assert_eq!(g.num_edges(), 10); // complete K5
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn gnm_rejects_impossible_m() {
        let _ = erdos_renyi_gnm(4, 7, 0);
    }

    #[test]
    fn rmat_shape() {
        let g = rmat(10, 5_000, RmatParams::graph500(), 42);
        assert_eq!(g.num_vertices(), 1024);
        // some loss to dedup/self-loops, but most edges survive
        assert!(g.num_edges() > 3_000, "got {}", g.num_edges());
        // skew: max degree far above average
        let avg = 2.0 * g.num_edges() as f64 / 1024.0;
        assert!(g.max_degree() as f64 > 4.0 * avg);
    }

    #[test]
    fn rmat_deterministic() {
        let p = RmatParams::mild();
        assert_eq!(rmat(8, 1000, p, 9), rmat(8, 1000, p, 9));
    }

    /// The chunked parallel sampler continues the exact serial draw stream
    /// (SplitMix64 jump-ahead), so `rmat` ≡ `rmat_serial` even when `m`
    /// spans several chunks. If this fails, the `rand` shim's `SmallRng`
    /// state recurrence no longer matches [`SPLITMIX_PHI`].
    #[test]
    fn rmat_parallel_matches_serial_oracle() {
        // Run inside a >1-thread pool: on a single-threaded pool `rmat`
        // legitimately short-circuits to the serial stream, which would
        // leave the chunked path untested on 1-core hosts.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        pool.install(|| {
            let p = RmatParams::graph500();
            // single chunk
            assert_eq!(rmat(9, 2_000, p, 7), rmat_serial(9, 2_000, p, 7));
            // several chunks (3 × RMAT_CHUNK worth of edge slots)
            let m = 3 * RMAT_CHUNK + 1_234;
            assert_eq!(rmat(12, m, p, 41), rmat_serial(12, m, p, 41));
        });
    }

    #[test]
    fn rmat_identical_across_pool_sizes() {
        let p = RmatParams::graph500();
        let m = 2 * RMAT_CHUNK + 17;
        let baseline = rmat(11, m, p, 5);
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let g = pool.install(|| rmat(11, m, p, 5));
            assert_eq!(g, baseline, "pool size {threads}");
        }
    }

    #[test]
    fn ba_degrees() {
        let g = barabasi_albert(500, 4, 11);
        assert_eq!(g.num_vertices(), 500);
        // every non-seed vertex has degree >= m_per_node
        for v in 5..500 {
            assert!(g.degree(v) >= 4);
        }
        // hubs exist
        assert!(g.max_degree() > 20);
    }

    #[test]
    fn ba_deterministic() {
        assert_eq!(barabasi_albert(200, 3, 7), barabasi_albert(200, 3, 7));
    }
}
