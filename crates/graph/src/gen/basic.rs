//! Deterministic structured graphs, mainly for tests and sanity checks.

use crate::builder::GraphBuilder;
use crate::csr::Csr;

/// Complete graph `K_n`. `core(v) = n - 1` for every vertex.
pub fn complete(n: u32) -> Csr {
    let mut b = GraphBuilder::with_num_vertices(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Cycle `C_n` (`n >= 3`). `core(v) = 2` everywhere.
pub fn cycle(n: u32) -> Csr {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut b = GraphBuilder::with_num_vertices(n);
    for v in 0..n {
        b.add_edge(v, (v + 1) % n);
    }
    b.build()
}

/// Path `P_n`. `core(v) = 1` everywhere (for `n >= 2`).
pub fn path(n: u32) -> Csr {
    let mut b = GraphBuilder::with_num_vertices(n);
    for v in 1..n {
        b.add_edge(v - 1, v);
    }
    b.build()
}

/// Star with `leaves` leaves; vertex 0 is the center. `core(v) = 1`.
pub fn star(leaves: u32) -> Csr {
    let mut b = GraphBuilder::with_num_vertices(leaves + 1);
    for v in 1..=leaves {
        b.add_edge(0, v);
    }
    b.build()
}

/// `rows × cols` grid. Interior cores are 2.
pub fn grid(rows: u32, cols: u32) -> Csr {
    let id = |r: u32, c: u32| r * cols + c;
    let mut b = GraphBuilder::with_num_vertices(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// Complete bipartite graph `K_{a,b}`; parts are `0..a` and `a..a+b`.
/// `core(v) = min(a, b)` everywhere.
pub fn complete_bipartite(a: u32, b_size: u32) -> Csr {
    let mut b = GraphBuilder::with_num_vertices(a + b_size);
    for u in 0..a {
        for v in a..(a + b_size) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 10);
        for v in 0..5 {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn cycle_graph() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        for v in 0..6 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn path_graph() {
        let g = path(4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn star_graph() {
        let g = star(7);
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.degree(0), 7);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn grid_graph() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // edges: 3*3 horizontal + 2*4 vertical = 17
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior (row 1, col 1)
    }

    #[test]
    fn bipartite_graph() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(4), 2);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
    }
}
