//! Temporal co-authorship network generator — the Fig. 10 case-study
//! substrate.
//!
//! The paper's case study preprocesses an ArnetMiner citation corpus into an
//! *author interaction network*: an edge `(u, v)` exists if a paper
//! (co-)authored by `u` cites a paper (co-)authored by `v`. Two snapshots are
//! taken (papers ≤ 1995 and ≤ 2000) and the `k_max`-cores are compared to see
//! which authors stayed / entered / left the most-active core.
//!
//! This module generates a synthetic corpus with the same mechanics: papers
//! appear year by year, authors are sampled preferentially (senior authors
//! keep publishing, with attrition), and each paper cites earlier papers
//! preferentially. [`Corpus::interaction_snapshot`] builds the author
//! interaction network induced by all papers up to a cutoff year.

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A synthetic paper: publication year, author IDs, cited paper indices.
#[derive(Debug, Clone)]
pub struct Paper {
    /// Publication year.
    pub year: u32,
    /// Author IDs (dense, `0..corpus.num_authors`).
    pub authors: Vec<u32>,
    /// Indices into `Corpus::papers` of cited earlier papers.
    pub citations: Vec<usize>,
}

/// A synthetic citation corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// All papers, in publication order.
    pub papers: Vec<Paper>,
    /// Total number of distinct authors.
    pub num_authors: u32,
}

/// Parameters for [`generate_corpus`].
#[derive(Debug, Clone)]
pub struct CorpusParams {
    /// First publication year.
    pub start_year: u32,
    /// Last publication year (inclusive).
    pub end_year: u32,
    /// Papers published in the first year; grows `growth` per year.
    pub papers_first_year: u32,
    /// Multiplicative yearly growth of the publication rate.
    pub growth: f64,
    /// Authors per paper (inclusive range).
    pub authors_per_paper: std::ops::RangeInclusive<u32>,
    /// Citations per paper (inclusive range, capped by availability).
    pub citations_per_paper: std::ops::RangeInclusive<u32>,
    /// Probability a paper slot goes to a brand-new author instead of a
    /// preferentially sampled veteran.
    pub new_author_rate: f64,
    /// Career length: an author stops publishing this many years after
    /// their first paper. Retirement is what makes the case study's
    /// "fell out of the most-active core" region non-empty — without it,
    /// snapshots only densify and S1 ⊆ S2.
    pub career_years: u32,
}

impl Default for CorpusParams {
    fn default() -> Self {
        CorpusParams {
            start_year: 1986,
            end_year: 2000,
            papers_first_year: 60,
            growth: 1.18,
            authors_per_paper: 1..=4,
            citations_per_paper: 4..=15,
            new_author_rate: 0.25,
            career_years: 8,
        }
    }
}

/// Generates a deterministic synthetic corpus.
pub fn generate_corpus(params: &CorpusParams, seed: u64) -> Corpus {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut papers: Vec<Paper> = Vec::new();
    // Preferential author pool (entries repeat per authorship).
    let mut author_pool: Vec<u32> = Vec::new();
    let mut num_authors: u32 = 0;
    // debut year per author, for retirement
    let mut debut: Vec<u32> = Vec::new();
    // Preferential citation pool (entries repeat per received citation).
    let mut paper_pool: Vec<usize> = Vec::new();

    let mut rate = params.papers_first_year as f64;
    for year in params.start_year..=params.end_year {
        let count = rate.round() as u32;
        rate *= params.growth;
        for _ in 0..count {
            // --- authors ---
            let a_count = rng.gen_range(params.authors_per_paper.clone());
            let mut authors = Vec::with_capacity(a_count as usize);
            for _ in 0..a_count {
                let mut pick_new = author_pool.is_empty() || rng.gen_bool(params.new_author_rate);
                if !pick_new {
                    // veterans retire `career_years` after their debut;
                    // retry a few times before falling back to a new author
                    let mut found = None;
                    for _ in 0..6 {
                        let cand = author_pool[rng.gen_range(0..author_pool.len())];
                        if year.saturating_sub(debut[cand as usize]) <= params.career_years {
                            found = Some(cand);
                            break;
                        }
                    }
                    match found {
                        Some(a) => {
                            if !authors.contains(&a) {
                                authors.push(a);
                            }
                            continue;
                        }
                        None => pick_new = true,
                    }
                }
                if pick_new {
                    let id = num_authors;
                    num_authors += 1;
                    debut.push(year);
                    authors.push(id);
                }
            }
            // --- citations ---
            let c_target = rng.gen_range(params.citations_per_paper.clone()) as usize;
            let mut citations = Vec::with_capacity(c_target);
            let available = papers.len();
            for _ in 0..c_target.min(available) {
                // half preferential, half recent (citations age: most
                // references go to the recent literature, so retired
                // authors' interaction degree stalls and they eventually
                // drop out of the most-active core)
                let p = if !paper_pool.is_empty() && rng.gen_bool(0.5) {
                    paper_pool[rng.gen_range(0..paper_pool.len())]
                } else {
                    let window = (available / 3).max(1);
                    rng.gen_range(available - window..available)
                };
                if !citations.contains(&p) {
                    citations.push(p);
                }
            }
            for &a in &authors {
                author_pool.push(a);
            }
            for &c in &citations {
                paper_pool.push(c);
            }
            papers.push(Paper {
                year,
                authors,
                citations,
            });
        }
    }
    Corpus {
        papers,
        num_authors,
    }
}

impl Corpus {
    /// Builds the author interaction network of all papers with
    /// `year <= cutoff`: an edge `(u, v)` for every author `u` of a citing
    /// paper and author `v` of the cited paper (and co-authorship edges, as
    /// co-authored papers trivially interact).
    pub fn interaction_snapshot(&self, cutoff: u32) -> Csr {
        let mut b = GraphBuilder::with_num_vertices(self.num_authors);
        for p in &self.papers {
            if p.year > cutoff {
                continue;
            }
            // co-authorship clique
            for i in 0..p.authors.len() {
                for j in (i + 1)..p.authors.len() {
                    b.add_edge(p.authors[i], p.authors[j]);
                }
            }
            // citation-induced author interaction
            for &cited in &p.citations {
                let cited = &self.papers[cited];
                debug_assert!(cited.year <= p.year);
                for &u in &p.authors {
                    for &v in &cited.authors {
                        if u != v {
                            b.add_edge(u, v);
                        }
                    }
                }
            }
        }
        b.build()
    }

    /// A synthetic author "name" (for the word-cloud output), e.g. `AuBw0042`.
    pub fn author_name(&self, id: u32) -> String {
        // Deterministic two-letter initials from the ID keep names readable.
        let a = (b'A' + (id % 26) as u8) as char;
        let b = (b'a' + ((id / 26) % 26) as u8) as char;
        format!("{a}{b}_{id:04}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_grows_over_time() {
        let c = generate_corpus(&CorpusParams::default(), 5);
        assert!(c.papers.len() > 500);
        let first_year = c.papers.iter().filter(|p| p.year == 1986).count();
        let last_year = c.papers.iter().filter(|p| p.year == 2000).count();
        assert!(last_year > 2 * first_year);
    }

    #[test]
    fn citations_point_backward() {
        let c = generate_corpus(&CorpusParams::default(), 6);
        for (i, p) in c.papers.iter().enumerate() {
            for &cit in &p.citations {
                assert!(cit < i);
                assert!(c.papers[cit].year <= p.year);
            }
        }
    }

    #[test]
    fn snapshots_are_nested() {
        let c = generate_corpus(&CorpusParams::default(), 7);
        let g1 = c.interaction_snapshot(1995);
        let g2 = c.interaction_snapshot(2000);
        assert!(g2.num_edges() > g1.num_edges());
        // Every edge of g1 exists in g2.
        for (u, v) in g1.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn deterministic() {
        let p = CorpusParams::default();
        let a = generate_corpus(&p, 9).interaction_snapshot(2000);
        let b = generate_corpus(&p, 9).interaction_snapshot(2000);
        assert_eq!(a, b);
    }

    #[test]
    fn author_names_unique_and_stable() {
        let c = generate_corpus(&CorpusParams::default(), 5);
        let n1 = c.author_name(42);
        assert_eq!(n1, c.author_name(42));
        assert_ne!(c.author_name(1), c.author_name(2));
    }
}
