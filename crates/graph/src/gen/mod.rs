//! Synthetic graph generators.
//!
//! The paper evaluates on 20 public datasets (Table I) spanning web crawls,
//! social networks, collaboration networks, a co-purchasing network and an
//! internet topology. Those inputs are multi-gigabyte downloads; this suite
//! substitutes *seeded synthetic stand-ins* whose shape parameters (average
//! degree, degree skew, core-number regime, category-typical structure) mirror
//! each dataset at reduced scale — see DESIGN.md for the substitution table.
//!
//! All generators are deterministic for a fixed seed and produce normalized
//! simple undirected [`Csr`](crate::Csr) graphs.

mod basic;
mod collab;
mod random;
mod skew;
pub mod temporal;
mod web;

pub use basic::{complete, complete_bipartite, cycle, grid, path, star};
pub use collab::overlapping_cliques;
pub use random::{
    barabasi_albert, erdos_renyi_gnm, preferential_attachment, rmat, rmat_serial, RmatParams,
};
pub use skew::power_law_hubs;
pub use web::web_crawl;

/// Version of the generator algorithms' *output* (not their API). Part of
/// every dataset cache key ([`crate::cache`]): bump it whenever any
/// generator's byte output changes for a fixed seed, so stale cached CSRs
/// regenerate instead of silently serving the old graphs.
pub const GEN_VERSION: u32 = 1;

use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Returns `g` with an additional clique planted on `size` random vertices.
///
/// A clique of `size` vertices has core number `size - 1`, so this guarantees
/// `k_max >= size - 1`; it is how dataset stand-ins pin the paper's
/// high-`k_max` regimes (e.g. `indochina-2004`'s nested-crawl core) without
/// materializing billion-edge inputs.
pub fn plant_clique(g: &Csr, size: u32, seed: u64) -> Csr {
    let n = g.num_vertices();
    assert!(size <= n, "clique size {size} exceeds |V|={n}");
    let mut rng = SmallRng::seed_from_u64(seed);
    // Reservoir-sample `size` distinct vertices.
    let mut members: Vec<VertexId> = (0..size).collect();
    for v in size..n {
        let j = rng.gen_range(0..=v as usize);
        if j < size as usize {
            members[j] = v;
        }
    }
    let mut b = GraphBuilder::with_num_vertices(n);
    b.extend_edges(g.edges());
    for i in 0..members.len() {
        for j in (i + 1)..members.len() {
            b.add_edge(members[i], members[j]);
        }
    }
    b.build()
}

/// Relabels vertices with a seeded random permutation.
///
/// Synthetic generators (BA, R-MAT, planted structures) correlate vertex ID
/// with degree — hubs get low IDs — which real datasets do only weakly.
/// Since GPU peeling partitions work by ID stripes (Algorithm 2's
/// grid-stride scan), that artificial correlation would concentrate whole
/// hub neighborhoods into single thread blocks; the dataset registry
/// therefore relabels every stand-in.
pub fn relabel(g: &Csr, seed: u64) -> Csr {
    let n = g.num_vertices();
    let mut rng = SmallRng::seed_from_u64(seed);
    // Fisher–Yates permutation: perm[old] = new
    let mut perm: Vec<VertexId> = (0..n).collect();
    for i in (1..n as usize).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    // `g` is already a normalized simple CSR and `perm` is a bijection, so
    // the relabeled graph's unique normalized form is just
    // `sorted(perm[neighbors(u)])` placed at `perm[u]` — build it directly
    // instead of re-normalizing all `2|E|` endpoints through
    // [`GraphBuilder`]. `relabel_matches_builder` pins bit-equality against
    // the builder path.
    let mut offsets = vec![0u64; n as usize + 1];
    for u in 0..n {
        offsets[perm[u as usize] as usize + 1] = g.degree(u) as u64;
    }
    for i in 0..n as usize {
        offsets[i + 1] += offsets[i];
    }
    let mut neighbors = vec![0u32; g.num_arcs() as usize];
    for u in 0..n {
        let nu = perm[u as usize] as usize;
        let list = &mut neighbors[offsets[nu] as usize..offsets[nu + 1] as usize];
        for (slot, &v) in list.iter_mut().zip(g.neighbors(u)) {
            *slot = perm[v as usize];
        }
        list.sort_unstable();
    }
    Csr::from_parts_unchecked(offsets, neighbors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relabel_preserves_structure() {
        let g = erdos_renyi_gnm(300, 900, 5);
        let r = relabel(&g, 9);
        assert_eq!(r.num_vertices(), g.num_vertices());
        assert_eq!(r.num_edges(), g.num_edges());
        let mut d1 = g.degrees();
        let mut d2 = r.degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
        // deterministic and (overwhelmingly) not identity
        assert_eq!(relabel(&g, 9), r);
        assert_ne!(r, g);
    }

    #[test]
    fn relabel_matches_builder() {
        // The direct CSR construction must be bit-identical to pushing the
        // permuted edge list back through the normalizing builder.
        let g = erdos_renyi_gnm(500, 2000, 5);
        let g = plant_clique(&g, 16, 6);
        let seed = 9u64;
        let direct = relabel(&g, seed);
        // Oracle: re-derive the same permutation and re-normalize.
        let n = g.num_vertices();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut perm: Vec<VertexId> = (0..n).collect();
        for i in (1..n as usize).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let mut b = GraphBuilder::with_num_vertices(n);
        for (u, v) in g.edges() {
            b.add_edge(perm[u as usize], perm[v as usize]);
        }
        assert_eq!(direct, b.build());
    }

    #[test]
    fn plant_clique_guarantees_dense_core() {
        let g = erdos_renyi_gnm(200, 400, 7);
        let g = plant_clique(&g, 12, 8);
        // Count vertices with degree >= 11; at least the 12 members qualify.
        let hot = (0..g.num_vertices()).filter(|&v| g.degree(v) >= 11).count();
        assert!(
            hot >= 12,
            "expected >=12 vertices of degree >=11, got {hot}"
        );
    }

    #[test]
    fn plant_clique_is_deterministic() {
        let g = erdos_renyi_gnm(100, 150, 3);
        let a = plant_clique(&g, 8, 9);
        let b = plant_clique(&g, 8, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn plant_clique_rejects_oversize() {
        let g = erdos_renyi_gnm(10, 9, 1);
        let _ = plant_clique(&g, 11, 2);
    }
}
