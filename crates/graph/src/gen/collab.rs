//! Collaboration-network generator.
//!
//! Stand-in for `hollywood-2009` and `dblp-author`: a collaboration network
//! is the union of cliques — one per movie cast / paper author list. The
//! overlap of many casts sharing prolific actors is what drives
//! `hollywood-2009`'s enormous `k_max` (2 208 in Table I), so the generator
//! samples cast members preferentially toward "prolific" vertices.

use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Union of `groups` cliques over `n` vertices.
///
/// Each group has a size drawn uniformly from `group_size`, and members are
/// drawn with probability proportional to (1 + #previous memberships),
/// concentrating prolific vertices into many overlapping cliques.
pub fn overlapping_cliques(
    n: u32,
    groups: u32,
    group_size: std::ops::RangeInclusive<u32>,
    seed: u64,
) -> Csr {
    assert!(*group_size.end() <= n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_num_vertices(n);
    // Preferential pool: every vertex once, plus one extra entry per
    // membership, so popular collaborators keep being cast.
    let mut pool: Vec<VertexId> = (0..n).collect();
    let mut members: Vec<VertexId> = Vec::new();
    for _ in 0..groups {
        let size = rng.gen_range(group_size.clone());
        members.clear();
        let mut chosen = rustc_hash::FxHashSet::default();
        // Cap attempts so degenerate parameter choices can't loop forever.
        let mut attempts = 0;
        while (chosen.len() as u32) < size && attempts < 50 * size {
            attempts += 1;
            let v = pool[rng.gen_range(0..pool.len())];
            if chosen.insert(v) {
                members.push(v);
            }
        }
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                b.add_edge(members[i], members[j]);
            }
        }
        pool.extend_from_slice(&members);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn produces_dense_overlaps() {
        let g = overlapping_cliques(1_000, 400, 3..=8, 21);
        let s = GraphStats::compute(&g);
        assert!(s.num_edges > 1_000);
        // prolific vertices exist
        assert!(s.max_degree as f64 > 3.0 * s.avg_degree);
    }

    #[test]
    fn min_clique_edges_present() {
        // one group of exactly size 4 -> at least 6 edges
        let g = overlapping_cliques(10, 1, 4..=4, 3);
        assert!(g.num_edges() >= 6);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            overlapping_cliques(200, 50, 2..=6, 17),
            overlapping_cliques(200, 50, 2..=6, 17)
        );
    }
}
