//! Web-crawl-like generator.
//!
//! Stand-in for the Table I web crawls (`web-Google`, `in-2004`, `uk-2002`,
//! `it-2004`, …). Web graphs combine (a) host-local density — pages within a
//! site link to each other heavily, yielding large `k_max` — with (b) a
//! power-law global link structure. The generator plants dense host
//! communities (near-cliques of geometric sizes) and wires them with an
//! R-MAT-style skewed backbone.

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Web-crawl-like graph.
///
/// * `n` vertices, grouped into hosts of geometric mean size `host_size`;
/// * within a host, each pair is linked with probability `intra_p`
///   (dense navigational templates);
/// * `m_backbone` skewed cross-host links.
pub fn web_crawl(n: u32, host_size: u32, intra_p: f64, m_backbone: u64, seed: u64) -> Csr {
    assert!(host_size >= 2 && host_size <= n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_num_vertices(n);

    // Partition 0..n into hosts with sizes geometric around `host_size`.
    let mut start = 0u32;
    while start < n {
        let mut size = 2u32;
        // geometric-ish: keep growing with probability (1 - 1/host_size)
        while size < 4 * host_size && rng.gen_bool(1.0 - 1.0 / host_size as f64) {
            size += 1;
        }
        let end = (start + size).min(n);
        for u in start..end {
            for v in (u + 1)..end {
                if rng.gen_bool(intra_p) {
                    b.add_edge(u, v);
                }
            }
        }
        start = end;
    }

    // Skewed backbone: endpoint preference toward low IDs (popular portals),
    // via a squared-uniform transform.
    for _ in 0..m_backbone {
        let r1: f64 = rng.gen();
        let r2: f64 = rng.gen();
        let u = ((r1 * r1) * n as f64) as u32 % n;
        let v = rng
            .gen_range(0..n)
            .min(((r2 * r2 * r2) * n as f64) as u32 % n);
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn has_local_density_and_skew() {
        let g = web_crawl(5_000, 12, 0.7, 10_000, 31);
        let s = GraphStats::compute(&g);
        assert!(s.avg_degree > 4.0, "avg={}", s.avg_degree);
        assert!(s.max_degree as f64 > 4.0 * s.avg_degree);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            web_crawl(500, 8, 0.5, 500, 2),
            web_crawl(500, 8, 0.5, 500, 2)
        );
        assert_ne!(
            web_crawl(500, 8, 0.5, 500, 2),
            web_crawl(500, 8, 0.5, 500, 3)
        );
    }
}
