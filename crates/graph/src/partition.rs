//! Edge-partitioned sharding of a CSR graph for multi-device decomposition.
//!
//! A [`Partition`] splits the vertex set across `p` shards and gives every
//! shard a **compact local-ID CSR**: the shard's own vertices are recoded to
//! local IDs `0..num_owned`, the border vertices it can reach on other
//! shards (**ghosts**) occupy `num_owned..num_local`, and the shard's
//! adjacency rows are rewritten in local IDs. Ghost rows are empty — a
//! ghost's adjacency lives on its owner — so a shard's device footprint is
//! `O(owned vertices + ghosts + owned arcs)`, not `O(|V|)` per worker.
//!
//! Two strategies:
//!
//! * [`PartitionStrategy::BalancedArcs`] — contiguous vertex ranges cut so
//!   every shard holds ~`(|arcs| + |rows|) / p` of the per-round kernel
//!   work (prefix sums over the global offset array; rows weigh the scan,
//!   arcs weigh the loop). Contiguous ownership keeps border sets small on
//!   graphs with locality (meshes, paths, web crawls after BFS renumber).
//! * [`PartitionStrategy::DegreeAware`] — hubs (degree ≥ 8× average) are
//!   dealt round-robin across shards in ascending ID order, then runs of
//!   consecutive non-hub vertices go greedily to the least-arc-loaded shard
//!   (ties broken by owned-vertex count, then lowest shard ID). This splits
//!   hub-heavy skew that defeats contiguous ranges, at the price of
//!   non-contiguous ownership.
//!
//! Both strategies are pure functions of `(graph, p)` — no RNG, no thread
//! timing — so a partition is bit-identical across runs and rayon pool
//! sizes, which the multi-GPU determinism contract builds on.
//!
//! The shard CSR intentionally relaxes two [`Csr`] invariants (it is built
//! through the unchecked constructor): rows are **not symmetric** (ghost
//! rows are empty while owned rows may point at ghosts) and neighbor lists
//! are sorted by *global* ID, which is not monotone in local IDs once
//! ghosts interleave. Both are documented properties of the shard contract,
//! not bugs: the peel kernels never traverse a ghost row and never rely on
//! sorted adjacency.

use crate::csr::{Csr, VertexId};
use rustc_hash::FxHashMap;
use serde::Serialize;

/// How [`Partition::build`] assigns vertices to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Contiguous vertex ranges with ~equal `arcs + rows` work sums.
    BalancedArcs,
    /// Hub-splitting round-robin + greedy least-loaded runs.
    DegreeAware,
}

impl PartitionStrategy {
    /// Stable lowercase name (bench JSON, env knobs).
    pub fn name(&self) -> &'static str {
        match self {
            PartitionStrategy::BalancedArcs => "balanced",
            PartitionStrategy::DegreeAware => "degree",
        }
    }
}

/// Hub threshold multiplier for [`PartitionStrategy::DegreeAware`]: a vertex
/// is a hub when its degree is at least this many times the average.
const HUB_FACTOR: u64 = 8;

/// Upper bound on the run length of consecutive non-hub vertices assigned
/// as one unit by the degree-aware strategy.
const MAX_RUN: usize = 256;

/// One shard of a [`Partition`]: local-ID compacted CSR plus the recode
/// tables back to global IDs.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Global IDs of owned vertices, ascending; local ID = rank in this list.
    pub owned: Vec<VertexId>,
    /// Global IDs of ghost vertices, ascending; local ID = `num_owned() +
    /// rank`. A ghost is a non-owned vertex adjacent to an owned one.
    pub ghosts: Vec<VertexId>,
    /// Local-ID CSR: rows `0..num_owned()` carry the owned vertices' full
    /// adjacency (owned and ghost neighbors alike, recoded); ghost rows are
    /// empty. See the module docs for the relaxed invariants.
    pub csr: Csr,
    /// Directed arcs whose source is owned here (= `csr.num_arcs()`).
    pub owned_arcs: u64,
}

impl Shard {
    /// Number of owned vertices.
    #[inline]
    pub fn num_owned(&self) -> usize {
        self.owned.len()
    }

    /// Owned + ghost vertices — the shard's device-resident vertex count.
    #[inline]
    pub fn num_local(&self) -> usize {
        self.owned.len() + self.ghosts.len()
    }

    /// Global ID of local vertex `l` (owned or ghost).
    #[inline]
    pub fn global_of(&self, l: usize) -> VertexId {
        if l < self.owned.len() {
            self.owned[l]
        } else {
            self.ghosts[l - self.owned.len()]
        }
    }
}

/// A complete sharding of one graph.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Strategy that produced this partition.
    pub strategy: PartitionStrategy,
    /// `owner[v]` = shard index owning global vertex `v` (O(1) lookup).
    pub owner: Vec<u16>,
    /// `local_id[v]` = local ID of `v` **within its owner shard**.
    pub local_id: Vec<u32>,
    /// The shards, in index order.
    pub shards: Vec<Shard>,
}

impl Partition {
    /// Builds a `p`-way partition of `g`. `p` is clamped to `[1, |V|]`
    /// (each shard must own at least one vertex); an empty graph yields an
    /// empty partition.
    pub fn build(g: &Csr, p: usize, strategy: PartitionStrategy) -> Partition {
        let n = g.num_vertices() as usize;
        if n == 0 {
            return Partition {
                strategy,
                owner: Vec::new(),
                local_id: Vec::new(),
                shards: Vec::new(),
            };
        }
        let p = p.clamp(1, n);
        assert!(p <= u16::MAX as usize, "shard count exceeds u16 owner map");

        let owner = match strategy {
            PartitionStrategy::BalancedArcs => balanced_arcs_owner(g, p),
            PartitionStrategy::DegreeAware => degree_aware_owner(g, p),
        };

        // Owned lists in ascending global order; rank = local ID.
        let mut owned: Vec<Vec<VertexId>> = vec![Vec::new(); p];
        let mut local_id = vec![0u32; n];
        for v in 0..n {
            let s = owner[v] as usize;
            local_id[v] = owned[s].len() as u32;
            owned[s].push(v as VertexId);
        }

        let shards = owned
            .into_iter()
            .map(|owned| build_shard(g, &owner, &local_id, owned))
            .collect();
        Partition {
            strategy,
            owner,
            local_id,
            shards,
        }
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard index owning global vertex `v` — the O(1) lookup the border
    /// exchange routes update packets through.
    #[inline]
    pub fn owner_of(&self, v: VertexId) -> usize {
        self.owner[v as usize] as usize
    }

    /// Border structure rollup for observability: per-shard ghost/border-arc
    /// counts and the per-peer breakdown — who each shard's ghosts belong
    /// to, i.e. the static shape of the exchange traffic the fleet ledger
    /// measures dynamically. Pure derivation; deterministic like the
    /// partition itself.
    pub fn stats(&self) -> PartitionStats {
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                // Per-peer ghost counts: each ghost belongs to exactly one
                // other shard.
                let mut peer_ghosts = vec![0u64; self.num_shards()];
                for &gv in &shard.ghosts {
                    peer_ghosts[self.owner_of(gv)] += 1;
                }
                // Border arcs: owned-row endpoints that are ghosts, counted
                // per owning peer (arc multiplicity, unlike the deduped
                // ghost table).
                let num_owned = shard.num_owned();
                let mut peer_arcs = vec![0u64; self.num_shards()];
                let mut border_arcs = 0u64;
                for l in 0..num_owned {
                    for &lu in shard.csr.neighbors(l as u32) {
                        if lu as usize >= num_owned {
                            let gv = shard.ghosts[lu as usize - num_owned];
                            peer_arcs[self.owner_of(gv)] += 1;
                            border_arcs += 1;
                        }
                    }
                }
                let peers = (0..self.num_shards())
                    .filter(|&p| peer_ghosts[p] > 0)
                    .map(|p| PeerStats {
                        peer: p,
                        ghosts: peer_ghosts[p],
                        border_arcs: peer_arcs[p],
                    })
                    .collect();
                ShardStats {
                    shard: s,
                    owned: shard.num_owned() as u64,
                    ghosts: shard.ghosts.len() as u64,
                    owned_arcs: shard.owned_arcs,
                    border_arcs,
                    peers,
                }
            })
            .collect::<Vec<_>>();
        PartitionStats {
            strategy: self.strategy.name(),
            num_shards: self.num_shards(),
            total_ghosts: shards.iter().map(|s: &ShardStats| s.ghosts).sum(),
            total_border_arcs: shards.iter().map(|s| s.border_arcs).sum(),
            shards,
        }
    }
}

/// Output of [`Partition::stats`]: the static border topology of a
/// partition, the denominator for the fleet exchange ledger.
#[derive(Debug, Clone, Serialize)]
pub struct PartitionStats {
    /// Strategy name (`"balanced"` / `"degree"`).
    pub strategy: &'static str,
    /// Shard count.
    pub num_shards: usize,
    /// Σ per-shard ghost-table sizes.
    pub total_ghosts: u64,
    /// Σ per-shard border arcs (owned→ghost endpoints).
    pub total_border_arcs: u64,
    /// Per-shard breakdowns, index order.
    pub shards: Vec<ShardStats>,
}

/// One shard's border structure.
#[derive(Debug, Clone, Serialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Owned vertices.
    pub owned: u64,
    /// Ghost-table size.
    pub ghosts: u64,
    /// Directed arcs sourced at owned vertices.
    pub owned_arcs: u64,
    /// Owned-row endpoints that land on ghosts.
    pub border_arcs: u64,
    /// Per-peer ghost/border-arc counts, ascending peer index, peers with
    /// at least one ghost only.
    pub peers: Vec<PeerStats>,
}

/// Ghost/border-arc counts against one peer shard.
#[derive(Debug, Clone, Serialize)]
pub struct PeerStats {
    /// Peer shard index (the owner of these ghosts).
    pub peer: usize,
    /// Ghosts of this shard owned by `peer`.
    pub ghosts: u64,
    /// Border arcs from this shard's owned rows into `peer`'s vertices.
    pub border_arcs: u64,
}

/// Builds one shard: ghost discovery + local-ID CSR recode.
fn build_shard(g: &Csr, owner: &[u16], local_id: &[u32], owned: Vec<VertexId>) -> Shard {
    let s = owned.first().map(|&v| owner[v as usize]).unwrap_or(0);
    // Ghosts: every non-owned endpoint of an owned row, deduped, ascending.
    let mut ghosts: Vec<VertexId> = Vec::new();
    for &v in &owned {
        for &u in g.neighbors(v) {
            if owner[u as usize] != s {
                ghosts.push(u);
            }
        }
    }
    ghosts.sort_unstable();
    ghosts.dedup();
    let num_owned = owned.len();
    let ghost_local: FxHashMap<VertexId, u32> = ghosts
        .iter()
        .enumerate()
        .map(|(i, &u)| (u, (num_owned + i) as u32))
        .collect();

    // Local CSR: owned rows recoded, ghost rows empty.
    let num_local = num_owned + ghosts.len();
    let mut offsets = Vec::with_capacity(num_local + 1);
    let mut owned_arcs = 0u64;
    offsets.push(0u64);
    for &v in &owned {
        owned_arcs += g.degree(v) as u64;
        offsets.push(owned_arcs);
    }
    offsets.resize(num_local + 1, owned_arcs);
    let mut neighbors = Vec::with_capacity(owned_arcs as usize);
    for &v in &owned {
        for &u in g.neighbors(v) {
            neighbors.push(if owner[u as usize] == s {
                local_id[u as usize]
            } else {
                ghost_local[&u]
            });
        }
    }
    Shard {
        owned,
        ghosts,
        csr: Csr::from_parts_unchecked(offsets, neighbors),
        owned_arcs,
    }
}

/// Contiguous ranges cut at ~equal prefix sums of `arcs + rows`. The
/// combined weight models a worker's per-round cost: the scan kernel walks
/// every local row while the loop kernel's traffic follows arcs, so cutting
/// on arcs alone leaves the low-degree tail shard with most of the rows and
/// the fleet's scan time pinned at the single-device value. Every shard
/// gets at least one vertex (requires `p <= n`, guaranteed by the caller).
fn balanced_arcs_owner(g: &Csr, p: usize) -> Vec<u16> {
    let n = g.num_vertices() as usize;
    let offsets = g.offsets();
    // weight(i) = arcs before vertex i + rows before vertex i, strictly
    // increasing in i, so a binary search finds each cut.
    let weight = |i: usize| offsets[i] + i as u64;
    let total = weight(n);
    let mut bounds = Vec::with_capacity(p + 1);
    bounds.push(0usize);
    for s in 1..p {
        let target = total * s as u64 / p as u64;
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if weight(mid) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        // Keep every shard non-empty: stay above the previous cut and leave
        // one vertex for each remaining shard.
        bounds.push(lo.clamp(bounds[s - 1] + 1, n - (p - s)));
    }
    bounds.push(n);
    let mut owner = vec![0u16; n];
    for s in 0..p {
        for o in owner.iter_mut().take(bounds[s + 1]).skip(bounds[s]) {
            *o = s as u16;
        }
    }
    owner
}

/// Hub-splitting assignment: hubs round-robin in ascending ID order, then
/// runs of consecutive non-hubs to the least-loaded shard (load = assigned
/// arcs; ties → fewest owned vertices, then lowest shard index).
fn degree_aware_owner(g: &Csr, p: usize) -> Vec<u16> {
    let n = g.num_vertices() as usize;
    let arcs = g.num_arcs();
    let avg = arcs / n as u64;
    let hub_thresh = (HUB_FACTOR * avg.max(1)).max(HUB_FACTOR);
    // Short runs on small graphs so every shard is reachable; capped at
    // MAX_RUN so huge graphs still amortize the per-run argmin.
    let run_len = (n / (8 * p)).clamp(1, MAX_RUN);

    let mut owner = vec![0u16; n];
    let mut load = vec![0u64; p];
    let mut count = vec![0usize; p];
    let mut next_hub = 0usize;
    let mut run: Vec<VertexId> = Vec::with_capacity(run_len);
    let mut run_arcs = 0u64;
    let flush = |run: &mut Vec<VertexId>,
                 run_arcs: &mut u64,
                 owner: &mut Vec<u16>,
                 load: &mut Vec<u64>,
                 count: &mut Vec<usize>| {
        if run.is_empty() {
            return;
        }
        let best = (0..p)
            .min_by_key(|&s| (load[s], count[s], s))
            .expect("p >= 1");
        for &v in run.iter() {
            owner[v as usize] = best as u16;
        }
        load[best] += *run_arcs;
        count[best] += run.len();
        run.clear();
        *run_arcs = 0;
    };
    for v in 0..n as VertexId {
        let d = g.degree(v) as u64;
        if d >= hub_thresh {
            owner[v as usize] = next_hub as u16;
            load[next_hub] += d;
            count[next_hub] += 1;
            next_hub = (next_hub + 1) % p;
        } else {
            run.push(v);
            run_arcs += d;
            if run.len() >= run_len {
                flush(&mut run, &mut run_arcs, &mut owner, &mut load, &mut count);
            }
        }
    }
    flush(&mut run, &mut run_arcs, &mut owner, &mut load, &mut count);
    owner
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    const STRATEGIES: [PartitionStrategy; 2] = [
        PartitionStrategy::BalancedArcs,
        PartitionStrategy::DegreeAware,
    ];

    /// Structural contract every partition must satisfy, regardless of
    /// strategy: owner map ↔ shard membership, recode round-trips, ghost
    /// tables exact, arc conservation, ghost rows empty.
    fn verify(g: &Csr, part: &Partition) {
        let n = g.num_vertices() as usize;
        assert_eq!(part.owner.len(), n);
        assert_eq!(part.local_id.len(), n);
        let mut seen = vec![false; n];
        let mut total_arcs = 0u64;
        for (s, shard) in part.shards.iter().enumerate() {
            assert!(!shard.owned.is_empty(), "shard {s} owns no vertices");
            assert!(shard.owned.windows(2).all(|w| w[0] < w[1]));
            assert!(shard.ghosts.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(shard.csr.num_vertices() as usize, shard.num_local());
            assert_eq!(shard.csr.num_arcs(), shard.owned_arcs);
            total_arcs += shard.owned_arcs;
            for (l, &v) in shard.owned.iter().enumerate() {
                assert!(!seen[v as usize], "vertex {v} owned twice");
                seen[v as usize] = true;
                assert_eq!(part.owner_of(v), s);
                assert_eq!(part.local_id[v as usize] as usize, l);
                // local row mirrors the global row through global_of
                assert_eq!(shard.csr.degree(l as u32), g.degree(v));
                let row: Vec<VertexId> = shard
                    .csr
                    .neighbors(l as u32)
                    .iter()
                    .map(|&lu| shard.global_of(lu as usize))
                    .collect();
                assert_eq!(row, g.neighbors(v));
            }
            for (i, &u) in shard.ghosts.iter().enumerate() {
                assert_ne!(part.owner_of(u), s, "ghost {u} owned by its shard");
                // ghost rows are empty
                assert_eq!(shard.csr.degree((shard.num_owned() + i) as u32), 0);
            }
            // ghost set is exactly the non-owned endpoints of owned rows
            let mut expect: Vec<VertexId> = shard
                .owned
                .iter()
                .flat_map(|&v| g.neighbors(v).iter().copied())
                .filter(|&u| part.owner_of(u) != s)
                .collect();
            expect.sort_unstable();
            expect.dedup();
            assert_eq!(shard.ghosts, expect);
        }
        assert!(seen.iter().all(|&b| b), "vertex owned by no shard");
        assert_eq!(total_arcs, g.num_arcs(), "arcs not conserved");
    }

    #[test]
    fn both_strategies_hold_the_contract() {
        let graphs = [
            gen::erdos_renyi_gnm(500, 2_000, 7),
            gen::power_law_hubs(1_000, 3_000, 3, 0.2, 9),
            gen::path(300),
            gen::complete(25),
            gen::star(200),
        ];
        for g in &graphs {
            for strategy in STRATEGIES {
                for p in [1, 2, 3, 4, 8] {
                    verify(g, &Partition::build(g, p, strategy));
                }
            }
        }
    }

    #[test]
    fn p_clamped_to_vertex_count_and_floor_one() {
        let g = gen::complete(3);
        for strategy in STRATEGIES {
            let part = Partition::build(&g, 16, strategy);
            assert_eq!(part.num_shards(), 3);
            verify(&g, &part);
            let part = Partition::build(&g, 0, strategy);
            assert_eq!(part.num_shards(), 1);
        }
    }

    #[test]
    fn empty_graph_yields_empty_partition() {
        let g = Csr::empty(0);
        for strategy in STRATEGIES {
            assert_eq!(Partition::build(&g, 4, strategy).num_shards(), 0);
        }
    }

    #[test]
    fn single_shard_is_the_identity_recode() {
        let g = gen::erdos_renyi_gnm(200, 800, 3);
        for strategy in STRATEGIES {
            let part = Partition::build(&g, 1, strategy);
            assert_eq!(part.num_shards(), 1);
            let shard = &part.shards[0];
            assert!(shard.ghosts.is_empty());
            assert_eq!(shard.num_owned() as u32, g.num_vertices());
            assert_eq!(shard.csr, g);
        }
    }

    #[test]
    fn balanced_arcs_balances_arcs() {
        let g = gen::erdos_renyi_gnm(2_000, 10_000, 11);
        let part = Partition::build(&g, 4, PartitionStrategy::BalancedArcs);
        let per: Vec<u64> = part.shards.iter().map(|s| s.owned_arcs).collect();
        let ideal = g.num_arcs() / 4;
        for &a in &per {
            // ER degrees are tightly concentrated; cuts land close to ideal
            assert!(
                a as f64 > ideal as f64 * 0.8 && (a as f64) < ideal as f64 * 1.2,
                "arc loads {per:?} far from ideal {ideal}"
            );
        }
        // contiguous ranges: owner is non-decreasing
        assert!(part.owner.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn degree_aware_splits_hubs_across_shards() {
        // 4 hubs dominating a background of low-degree vertices: the
        // contiguous strategy can trap several hubs in one range; the
        // degree-aware one must spread them round-robin.
        let g = gen::power_law_hubs(2_000, 4_000, 4, 0.5, 13);
        let part = Partition::build(&g, 4, PartitionStrategy::DegreeAware);
        verify(&g, &part);
        let mut hub_ids: Vec<VertexId> = (0..g.num_vertices()).collect();
        hub_ids.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
        let top4: Vec<usize> = hub_ids[..4].iter().map(|&v| part.owner_of(v)).collect();
        let mut distinct = top4.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 4, "top-4 hubs not spread: {top4:?}");
        // arc load stays balanced within 2× of ideal despite the skew
        let ideal = g.num_arcs() / 4;
        for s in &part.shards {
            assert!(s.owned_arcs < 2 * ideal.max(1), "skewed load");
        }
    }

    #[test]
    fn degree_aware_ownership_is_non_uniform_but_lookup_exact() {
        // Satellite regression: with non-uniform shard sizes the O(1) owner
        // map must still route every vertex to the shard that owns it (the
        // old range scan assumed uniform contiguous ranges).
        let g = gen::power_law_hubs(1_500, 3_000, 5, 0.3, 17);
        let part = Partition::build(&g, 3, PartitionStrategy::DegreeAware);
        let sizes: Vec<usize> = part.shards.iter().map(|s| s.num_owned()).collect();
        assert!(
            sizes.windows(2).any(|w| w[0] != w[1]),
            "expected non-uniform shard sizes, got {sizes:?}"
        );
        for v in 0..g.num_vertices() {
            let s = part.owner_of(v);
            let l = part.local_id[v as usize] as usize;
            assert_eq!(part.shards[s].owned[l], v);
        }
    }

    #[test]
    fn stats_tile_the_border_structure() {
        let g = gen::power_law_hubs(1_000, 3_000, 3, 0.2, 9);
        for strategy in STRATEGIES {
            let part = Partition::build(&g, 4, strategy);
            let stats = part.stats();
            assert_eq!(stats.num_shards, 4);
            assert_eq!(stats.strategy, strategy.name());
            for (s, shard) in part.shards.iter().enumerate() {
                let st = &stats.shards[s];
                assert_eq!(st.owned, shard.num_owned() as u64);
                assert_eq!(st.ghosts, shard.ghosts.len() as u64);
                assert_eq!(st.owned_arcs, shard.owned_arcs);
                // peer breakdowns tile the shard totals
                assert_eq!(st.peers.iter().map(|p| p.ghosts).sum::<u64>(), st.ghosts);
                assert_eq!(
                    st.peers.iter().map(|p| p.border_arcs).sum::<u64>(),
                    st.border_arcs
                );
                // no shard is its own peer
                assert!(st.peers.iter().all(|p| p.peer != s));
            }
            assert_eq!(
                stats.total_ghosts,
                part.shards.iter().map(|s| s.ghosts.len() as u64).sum()
            );
            // border arcs are symmetric in aggregate: every owned→ghost arc
            // on shard A into B has a mirror owned→ghost arc on B into A
            // (the graph is symmetric), so per-pair counts must match.
            for a in 0..4usize {
                for pa in &stats.shards[a].peers {
                    let mirror = stats.shards[pa.peer]
                        .peers
                        .iter()
                        .find(|p| p.peer == a)
                        .expect("peer relation is symmetric");
                    assert_eq!(mirror.border_arcs, pa.border_arcs);
                }
            }
        }
        // single shard: no borders at all
        let solo = Partition::build(&g, 1, PartitionStrategy::BalancedArcs).stats();
        assert_eq!(solo.total_ghosts, 0);
        assert_eq!(solo.total_border_arcs, 0);
    }

    #[test]
    fn partitions_are_deterministic() {
        let g = gen::rmat(10, 5_000, gen::RmatParams::graph500(), 21);
        for strategy in STRATEGIES {
            let a = Partition::build(&g, 4, strategy);
            let b = Partition::build(&g, 4, strategy);
            assert_eq!(a.owner, b.owner);
            for (x, y) in a.shards.iter().zip(&b.shards) {
                assert_eq!(x.csr, y.csr);
                assert_eq!(x.ghosts, y.ghosts);
            }
        }
    }
}
