//! Normalizing graph builder.
//!
//! Every algorithm in the suite assumes a *simple undirected* graph with
//! densely indexed vertex IDs, exactly like the paper ("Some graphs are
//! directed and we make them undirected by ignoring the edge direction";
//! non-dense IDs go through ID recoding as preprocessing). The builder
//! performs that normalization: it symmetrizes, deduplicates, and drops
//! self-loops.

use crate::csr::{Csr, VertexId};

/// Accumulates edges and produces a normalized [`Csr`].
///
/// The vertex universe is `0..=max_id_seen` unless [`GraphBuilder::with_num_vertices`]
/// pinned it larger (isolated trailing vertices are allowed).
#[derive(Default, Clone, Debug)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    min_vertices: u32,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder that will produce at least `n` vertices even if the
    /// trailing ones are isolated.
    pub fn with_num_vertices(n: u32) -> Self {
        GraphBuilder {
            edges: Vec::new(),
            min_vertices: n,
        }
    }

    /// Pre-allocates for `m` edges.
    pub fn with_capacity(m: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(m),
            min_vertices: 0,
        }
    }

    /// Records the undirected edge `{u, v}`. Self-loops and duplicates are
    /// accepted here and removed at [`GraphBuilder::build`] time.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges.push((u, v));
    }

    /// Records many edges at once.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, it: I) {
        self.edges.extend(it);
    }

    /// Number of raw (pre-normalization) edges recorded so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Builds the normalized CSR: undirected, no self-loops, no duplicate
    /// edges, sorted adjacency lists.
    pub fn build(self) -> Csr {
        let GraphBuilder {
            edges,
            min_vertices,
        } = self;
        let n = edges
            .iter()
            .map(|&(u, v)| u.max(v) + 1)
            .max()
            .unwrap_or(0)
            .max(min_vertices) as usize;

        // Counting-sort style CSR construction: count, prefix, scatter.
        // Both arc directions are materialized; dedup happens per-list after
        // sorting, then offsets are re-compacted.
        let mut count = vec![0u64; n + 1];
        for &(u, v) in &edges {
            if u != v {
                count[u as usize + 1] += 1;
                count[v as usize + 1] += 1;
            }
        }
        for i in 0..n {
            count[i + 1] += count[i];
        }
        let mut cursor = count.clone();
        let total = count[n] as usize;
        let mut adj = vec![0 as VertexId; total];
        for &(u, v) in &edges {
            if u != v {
                adj[cursor[u as usize] as usize] = v;
                cursor[u as usize] += 1;
                adj[cursor[v as usize] as usize] = u;
                cursor[v as usize] += 1;
            }
        }
        drop(edges);

        // Sort + dedup each list, compacting in place.
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut write = 0usize;
        for v in 0..n {
            let (s, e) = (count[v] as usize, count[v + 1] as usize);
            adj[s..e].sort_unstable();
            let mut prev: Option<VertexId> = None;
            for i in s..e {
                let u = adj[i];
                if prev != Some(u) {
                    adj[write] = u;
                    write += 1;
                    prev = Some(u);
                }
            }
            offsets.push(write as u64);
        }
        adj.truncate(write);
        adj.shrink_to_fit();
        Csr::from_parts_unchecked(offsets, adj)
    }
}

/// Convenience: builds a normalized graph directly from an edge slice.
pub fn from_edges(n: u32, edges: &[(VertexId, VertexId)]) -> Csr {
    let mut b = GraphBuilder::with_num_vertices(n);
    b.extend_edges(edges.iter().copied());
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_self_loops_and_duplicates() {
        let g = from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 1), (2, 2), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn symmetrizes_directed_input() {
        let g = from_edges(2, &[(0, 1)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn respects_min_vertices() {
        let g = from_edges(10, &[(0, 1)]);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn adjacency_sorted() {
        let g = from_edges(5, &[(3, 0), (3, 4), (3, 1), (3, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4]);
    }

    #[test]
    fn result_passes_full_validation() {
        let g = from_edges(6, &[(0, 1), (5, 2), (2, 0), (4, 1), (1, 0), (3, 3)]);
        let v = crate::csr::Csr::new(g.offsets().to_vec(), g.neighbor_array().to_vec());
        assert!(v.is_ok());
    }
}
