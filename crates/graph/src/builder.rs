//! Normalizing graph builder.
//!
//! Every algorithm in the suite assumes a *simple undirected* graph with
//! densely indexed vertex IDs, exactly like the paper ("Some graphs are
//! directed and we make them undirected by ignoring the edge direction";
//! non-dense IDs go through ID recoding as preprocessing). The builder
//! performs that normalization: it symmetrizes, deduplicates, and drops
//! self-loops.
//!
//! # Build paths
//!
//! Two construction paths produce **bit-identical** CSRs (offsets and
//! neighbor array) from the same edge set:
//!
//! * [`BuildPath::Serial`] — the original single-threaded counting-sort
//!   construction, retained as the differential oracle (mirroring the
//!   simulator's `ExecPath::Reference`);
//! * [`BuildPath::Parallel`] — a rayon-parallel pipeline: chunked degree
//!   count → prefix sum → parallel scatter (atomic per-vertex cursors) →
//!   per-vertex sort/dedup → parallel compaction. The scatter order within
//!   an adjacency list is thread-timing dependent, but the subsequent
//!   per-list sort + dedup canonicalizes it, so the final CSR does not
//!   depend on the thread count or interleaving.
//!
//! [`GraphBuilder::build`] auto-dispatches ([`BuildPath::Auto`]): parallel
//! above [`PARALLEL_BUILD_MIN_EDGES`] raw edges, serial below (where thread
//! spawn overhead dominates). `tests/parallel_build.rs` pins the
//! equivalence across rayon pool sizes 1/2/8.

use crate::csr::{Csr, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Which CSR construction path [`GraphBuilder::build_with`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildPath {
    /// Pick by input size and pool: parallel at or above
    /// [`PARALLEL_BUILD_MIN_EDGES`] raw edges when the current rayon pool
    /// has more than one thread. On a single-threaded pool the parallel
    /// pipeline's extra passes (atomic histogram, scatter, per-vertex
    /// sort) are pure overhead (~3x measured), so `Auto` stays serial —
    /// output is bit-identical either way, only wall-clock differs.
    #[default]
    Auto,
    /// The original single-threaded construction (differential oracle).
    Serial,
    /// The chunked parallel pipeline (identical output, any pool size).
    Parallel,
}

/// Raw-edge count at which [`BuildPath::Auto`] switches to the parallel
/// pipeline. Below this the per-thread scatter/sort chunks are too small to
/// amortize thread spawns.
pub const PARALLEL_BUILD_MIN_EDGES: usize = 1 << 15;

/// Edges per counting/scatter work item in the parallel pipeline. Fixed
/// (not derived from the pool size) so the chunk decomposition — and with
/// it every atomically-reserved slot set — is the same for every run shape.
const EDGE_CHUNK: usize = 1 << 16;

/// Accumulates edges and produces a normalized [`Csr`].
///
/// The vertex universe is `0..=max_id_seen` unless [`GraphBuilder::with_num_vertices`]
/// pinned it larger (isolated trailing vertices are allowed).
#[derive(Default, Clone, Debug)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    min_vertices: u32,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder that will produce at least `n` vertices even if the
    /// trailing ones are isolated.
    pub fn with_num_vertices(n: u32) -> Self {
        GraphBuilder {
            edges: Vec::new(),
            min_vertices: n,
        }
    }

    /// Pre-allocates for `m` edges.
    pub fn with_capacity(m: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(m),
            min_vertices: 0,
        }
    }

    /// Records the undirected edge `{u, v}`. Self-loops and duplicates are
    /// accepted here and removed at [`GraphBuilder::build`] time.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges.push((u, v));
    }

    /// Records many edges at once.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, it: I) {
        self.edges.extend(it);
    }

    /// Number of raw (pre-normalization) edges recorded so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Builds the normalized CSR: undirected, no self-loops, no duplicate
    /// edges, sorted adjacency lists. Dispatches per [`BuildPath::Auto`].
    pub fn build(self) -> Csr {
        self.build_with(BuildPath::Auto)
    }

    /// Builds the normalized CSR on an explicit path. Both paths produce
    /// bit-identical results; see the module docs.
    pub fn build_with(self, path: BuildPath) -> Csr {
        let _span = kcore_gpusim::hostprof::global().map(|hp| hp.span("ingest/csr_build"));
        let parallel = match path {
            BuildPath::Serial => false,
            BuildPath::Parallel => true,
            BuildPath::Auto => {
                self.edges.len() >= PARALLEL_BUILD_MIN_EDGES && rayon::current_num_threads() > 1
            }
        };
        let GraphBuilder {
            edges,
            min_vertices,
        } = self;
        if parallel {
            build_parallel(edges, min_vertices)
        } else {
            build_serial(edges, min_vertices)
        }
    }
}

/// The original single-threaded counting-sort CSR construction — the
/// differential oracle for [`build_parallel`].
fn build_serial(edges: Vec<(VertexId, VertexId)>, min_vertices: u32) -> Csr {
    let n = edges
        .iter()
        .map(|&(u, v)| u.max(v) + 1)
        .max()
        .unwrap_or(0)
        .max(min_vertices) as usize;

    // Counting-sort style CSR construction: count, prefix, scatter.
    // Both arc directions are materialized; dedup happens per-list after
    // sorting, then offsets are re-compacted.
    let mut count = vec![0u64; n + 1];
    for &(u, v) in &edges {
        if u != v {
            count[u as usize + 1] += 1;
            count[v as usize + 1] += 1;
        }
    }
    for i in 0..n {
        count[i + 1] += count[i];
    }
    let mut cursor = count.clone();
    let total = count[n] as usize;
    let mut adj = vec![0 as VertexId; total];
    for &(u, v) in &edges {
        if u != v {
            adj[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
    }
    drop(edges);

    // Sort + dedup each list, compacting in place.
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u64);
    let mut write = 0usize;
    for v in 0..n {
        let (s, e) = (count[v] as usize, count[v + 1] as usize);
        adj[s..e].sort_unstable();
        let mut prev: Option<VertexId> = None;
        for i in s..e {
            let u = adj[i];
            if prev != Some(u) {
                adj[write] = u;
                write += 1;
                prev = Some(u);
            }
        }
        offsets.push(write as u64);
    }
    adj.truncate(write);
    adj.shrink_to_fit();
    Csr::from_parts_unchecked(offsets, adj)
}

/// Shared write access to disjoint slots of one slice. Every writer
/// reserves its slot through an atomic cursor (scatter) or owns a
/// pre-partitioned range (compaction), so no two threads touch one index.
struct SharedSlice<T>(*mut T);

unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    /// Writes `val` at `i`. Caller guarantees `i` is in bounds and no other
    /// thread reads or writes index `i` during the parallel section.
    #[inline]
    unsafe fn write(&self, i: usize, val: T) {
        *self.0.add(i) = val;
    }
}

/// Rayon-parallel CSR construction (see module docs for the stages). The
/// result is bit-identical to [`build_serial`] because per-vertex sort +
/// dedup canonicalizes whatever scatter order the atomics produced.
fn build_parallel(edges: Vec<(VertexId, VertexId)>, min_vertices: u32) -> Csr {
    if edges.is_empty() {
        return Csr::empty(min_vertices as usize);
    }

    // Stage 1: vertex-universe size, reduced over fixed-size chunks.
    let n = edges
        .chunks(EDGE_CHUNK)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|c| c.iter().map(|&(u, v)| u.max(v) + 1).max().unwrap_or(0))
        .reduce(|| 0, u32::max)
        .max(min_vertices) as usize;

    // Stage 2: degree count (self-loops excluded). Atomic adds commute, so
    // the counts are exact regardless of scheduling.
    let degree: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    edges
        .chunks(EDGE_CHUNK)
        .collect::<Vec<_>>()
        .into_par_iter()
        .for_each(|chunk| {
            for &(u, v) in chunk {
                if u != v {
                    degree[u as usize].fetch_add(1, Ordering::Relaxed);
                    degree[v as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
        });

    // Stage 3: exclusive prefix sum over degrees (serial: O(n) additions
    // are noise next to the O(m) stages).
    let mut count = vec![0u64; n + 1];
    for v in 0..n {
        count[v + 1] = count[v] + degree[v].load(Ordering::Relaxed) as u64;
    }
    let total = count[n] as usize;

    // Stage 4: parallel scatter. Each arc reserves a slot in its vertex's
    // segment via an atomic cursor; slots are disjoint by construction.
    let cursor: Vec<AtomicU64> = count[..n].iter().map(|&c| AtomicU64::new(c)).collect();
    let mut adj = vec![0 as VertexId; total];
    {
        let out = SharedSlice(adj.as_mut_ptr());
        edges
            .chunks(EDGE_CHUNK)
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|chunk| {
                for &(u, v) in chunk {
                    if u != v {
                        let su = cursor[u as usize].fetch_add(1, Ordering::Relaxed) as usize;
                        let sv = cursor[v as usize].fetch_add(1, Ordering::Relaxed) as usize;
                        // SAFETY: fetch_add hands every arc a unique slot
                        // inside its vertex's [count[v], count[v+1]) segment.
                        unsafe {
                            out.write(su, v);
                            out.write(sv, u);
                        }
                    }
                }
            });
    }
    drop(edges);
    drop(cursor);
    drop(degree);

    // Stage 5: per-vertex sort + dedup, parallel over contiguous vertex
    // ranges balanced by arc count. Each range owns a disjoint sub-slice of
    // `adj`; the deduped list is compacted to the front of each vertex's
    // own segment and its new length recorded.
    let ranges = vertex_ranges(&count, rayon::current_num_threads().max(1) * 4);
    let mut range_slices: Vec<(std::ops::Range<usize>, &mut [VertexId])> =
        Vec::with_capacity(ranges.len());
    let mut rest: &mut [VertexId] = &mut adj;
    let mut consumed = 0usize;
    for r in &ranges {
        let end = count[r.end] as usize;
        let (head, tail) = rest.split_at_mut(end - consumed);
        consumed = end;
        range_slices.push((r.clone(), head));
        rest = tail;
    }
    let new_lens: Vec<Vec<u32>> = range_slices
        .into_par_iter()
        .map(|(range, slice)| {
            let base = count[range.start] as usize;
            let mut lens = Vec::with_capacity(range.len());
            for v in range {
                let (s, e) = (count[v] as usize - base, count[v + 1] as usize - base);
                let seg = &mut slice[s..e];
                seg.sort_unstable();
                let mut w = 0usize;
                for i in 0..seg.len() {
                    if i == 0 || seg[i] != seg[w - 1] {
                        seg[w] = seg[i];
                        w += 1;
                    }
                }
                lens.push(w as u32);
            }
            lens
        })
        .collect();
    let new_len: Vec<u32> = new_lens.into_iter().flatten().collect();

    // Stage 6: final offsets (prefix sum over deduped lengths) + parallel
    // compaction into a fresh neighbor array (disjoint per-vertex writes).
    let mut offsets = vec![0u64; n + 1];
    for v in 0..n {
        offsets[v + 1] = offsets[v] + new_len[v] as u64;
    }
    let mut neighbors = vec![0 as VertexId; offsets[n] as usize];
    {
        let out = SharedSlice(neighbors.as_mut_ptr());
        let adj_ref = &adj;
        let offsets_ref = &offsets;
        let count_ref = &count;
        let new_len_ref = &new_len;
        ranges.into_par_iter().for_each(|range| {
            for v in range {
                let src = count_ref[v] as usize;
                let dst = offsets_ref[v] as usize;
                let len = new_len_ref[v] as usize;
                for (i, &x) in adj_ref[src..src + len].iter().enumerate() {
                    // SAFETY: [offsets[v], offsets[v+1]) ranges are disjoint
                    // across vertices and cover `neighbors` exactly.
                    unsafe { out.write(dst + i, x) };
                }
            }
        });
    }
    Csr::from_parts_unchecked(offsets, neighbors)
}

/// Partitions `0..n` into at most `pieces` contiguous vertex ranges of
/// roughly equal arc mass (per the exclusive prefix sums in `count`). The
/// partition only affects scheduling, never the output.
fn vertex_ranges(count: &[u64], pieces: usize) -> Vec<std::ops::Range<usize>> {
    let n = count.len() - 1;
    let total = count[n];
    if n == 0 {
        return Vec::new();
    }
    let target = (total / pieces.max(1) as u64).max(1);
    let mut ranges = Vec::with_capacity(pieces);
    let mut start = 0usize;
    for v in 1..=n {
        if v == n || count[v] - count[start] >= target {
            ranges.push(start..v);
            start = v;
        }
    }
    ranges
}

/// Convenience: builds a normalized graph directly from an edge slice.
pub fn from_edges(n: u32, edges: &[(VertexId, VertexId)]) -> Csr {
    from_edges_with(n, edges, BuildPath::Auto)
}

/// [`from_edges`] with an explicit [`BuildPath`] (differential tests).
pub fn from_edges_with(n: u32, edges: &[(VertexId, VertexId)], path: BuildPath) -> Csr {
    let mut b = GraphBuilder::with_num_vertices(n);
    b.extend_edges(edges.iter().copied());
    b.build_with(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_self_loops_and_duplicates() {
        let g = from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 1), (2, 2), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn symmetrizes_directed_input() {
        let g = from_edges(2, &[(0, 1)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn respects_min_vertices() {
        let g = from_edges(10, &[(0, 1)]);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn adjacency_sorted() {
        let g = from_edges(5, &[(3, 0), (3, 4), (3, 1), (3, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4]);
    }

    #[test]
    fn result_passes_full_validation() {
        let g = from_edges(6, &[(0, 1), (5, 2), (2, 0), (4, 1), (1, 0), (3, 3)]);
        let v = crate::csr::Csr::new(g.offsets().to_vec(), g.neighbor_array().to_vec());
        assert!(v.is_ok());
    }

    #[test]
    fn parallel_path_matches_serial_on_edge_cases() {
        let cases: Vec<Vec<(u32, u32)>> = vec![
            vec![],
            vec![(0, 0)],
            vec![(0, 1), (1, 0), (0, 1), (1, 1), (2, 2), (1, 2)],
            vec![(7, 7), (7, 7)],
            (0..100).map(|i| (i % 10, (i * 7) % 13)).collect(),
        ];
        for edges in cases {
            let a = from_edges_with(16, &edges, BuildPath::Serial);
            let b = from_edges_with(16, &edges, BuildPath::Parallel);
            assert_eq!(a, b, "edges {edges:?}");
        }
    }

    #[test]
    fn parallel_path_passes_full_validation() {
        let edges: Vec<(u32, u32)> = (0..5_000u32).map(|i| (i % 97, (i * 31) % 89)).collect();
        let g = from_edges_with(100, &edges, BuildPath::Parallel);
        let v = crate::csr::Csr::new(g.offsets().to_vec(), g.neighbor_array().to_vec());
        assert!(v.is_ok());
    }
}
