//! Dataset statistics — the columns of the paper's Table I.

use crate::csr::Csr;

/// Summary statistics of a graph: `|V|`, `|E|`, average degree, degree
/// standard deviation, and max degree. (The Table I `k_max` column requires a
/// decomposition and is computed by the bench harness with `kcore-cpu`.)
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: u64,
    /// Number of undirected edges.
    pub num_edges: u64,
    /// Average degree (`2|E| / |V|`).
    pub avg_degree: f64,
    /// Population standard deviation of the degree distribution.
    pub degree_std: f64,
    /// Maximum degree.
    pub max_degree: u32,
}

impl GraphStats {
    /// Computes the statistics of `g` in one pass over the degree array.
    pub fn compute(g: &Csr) -> Self {
        let n = g.num_vertices() as u64;
        let m = g.num_edges();
        if n == 0 {
            return GraphStats {
                num_vertices: 0,
                num_edges: 0,
                avg_degree: 0.0,
                degree_std: 0.0,
                max_degree: 0,
            };
        }
        let mean = 2.0 * m as f64 / n as f64;
        let mut var_acc = 0.0f64;
        let mut dmax = 0u32;
        for v in 0..g.num_vertices() {
            let d = g.degree(v);
            dmax = dmax.max(d);
            let diff = d as f64 - mean;
            var_acc += diff * diff;
        }
        GraphStats {
            num_vertices: n,
            num_edges: m,
            avg_degree: mean,
            degree_std: (var_acc / n as f64).sqrt(),
            max_degree: dmax,
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} d_avg={:.1} std={:.1} d_max={}",
            self.num_vertices, self.num_edges, self.avg_degree, self.degree_std, self.max_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn empty() {
        let s = GraphStats::compute(&Csr::empty(0));
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn star_graph() {
        // star with center 0 and 4 leaves: degrees [4,1,1,1,1]
        let g = from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 4);
        assert!((s.avg_degree - 1.6).abs() < 1e-12);
        assert_eq!(s.max_degree, 4);
        // variance = ((4-1.6)^2 + 4*(1-1.6)^2)/5 = (5.76 + 1.44)/5 = 1.44
        assert!((s.degree_std - 1.2).abs() < 1e-12);
    }

    #[test]
    fn regular_graph_zero_std() {
        // 4-cycle: all degrees 2
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.degree_std, 0.0);
        assert_eq!(s.avg_degree, 2.0);
    }
}
