//! Registry of the paper's 20 evaluation datasets (Table I), each mapped to a
//! deterministic synthetic stand-in at reduced scale.
//!
//! The real inputs are multi-gigabyte public downloads (SNAP / LAW / KONECT).
//! Each [`Dataset`] records the paper's published statistics *and* a seeded
//! generator configuration whose output mirrors the dataset's category-typical
//! structure: degree regime, skew, and core-number regime (pinned with
//! [`crate::gen::plant_clique`] where the paper's `k_max` comes from dense
//! local structure that uniform down-sampling would destroy). Scale factors
//! run from ~1/10 (smallest graphs) to ~1/400 (the billion-edge crawls); see
//! DESIGN.md for why relative algorithm orderings survive the down-scaling.

use crate::csr::Csr;
use crate::gen;

/// The statistics row the paper publishes for a dataset (Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// `|V|` in the paper.
    pub num_vertices: u64,
    /// `|E|` in the paper.
    pub num_edges: u64,
    /// Average degree in the paper.
    pub avg_degree: f64,
    /// Degree standard deviation in the paper.
    pub degree_std: f64,
    /// Max degree in the paper.
    pub max_degree: u64,
    /// `k_max` in the paper.
    pub k_max: u32,
}

/// Generator configuration of a stand-in.
#[derive(Debug, Clone)]
pub enum GenSpec {
    /// Preferential attachment with attachment count drawn from
    /// `m_lo..=m_hi` per vertex (degrees span `m_lo` upward, so every
    /// k-shell is populated like real interaction networks).
    Ba { n: u32, m_lo: u32, m_hi: u32 },
    /// R-MAT with Graph500 skew.
    Rmat { scale: u32, m: u64 },
    /// Super-hub skew (communication / tracker networks).
    Hubs {
        n: u32,
        m_background: u64,
        hubs: u32,
        hub_fraction: f64,
    },
    /// Web-crawl-like (host communities + skewed backbone).
    Web {
        n: u32,
        host_size: u32,
        intra_p: f64,
        m_backbone: u64,
    },
    /// Collaboration (union of overlapping cliques).
    Collab {
        n: u32,
        groups: u32,
        min_size: u32,
        max_size: u32,
    },
}

/// One dataset of Table I: name, category, paper statistics, stand-in config.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// Table I category.
    pub category: &'static str,
    /// The paper's published statistics.
    pub paper: PaperRow,
    /// Stand-in generator.
    pub spec: GenSpec,
    /// Clique planted on top to pin the `k_max` regime (0 = none).
    pub core_boost: u32,
    /// Generator seed.
    pub seed: u64,
}

impl Dataset {
    /// Generates the stand-in graph (deterministic for the registry entry).
    pub fn generate(&self) -> Csr {
        let _span = kcore_gpusim::hostprof::global()
            .map(|hp| hp.span(format!("ingest/generate/{}", self.name)));
        let base = match self.spec {
            GenSpec::Ba { n, m_lo, m_hi } => {
                gen::preferential_attachment(n, m_lo..=m_hi, self.seed)
            }
            GenSpec::Rmat { scale, m } => {
                gen::rmat(scale, m, gen::RmatParams::graph500(), self.seed)
            }
            GenSpec::Hubs {
                n,
                m_background,
                hubs,
                hub_fraction,
            } => gen::power_law_hubs(n, m_background, hubs, hub_fraction, self.seed),
            GenSpec::Web {
                n,
                host_size,
                intra_p,
                m_backbone,
            } => gen::web_crawl(n, host_size, intra_p, m_backbone, self.seed),
            GenSpec::Collab {
                n,
                groups,
                min_size,
                max_size,
            } => gen::overlapping_cliques(n, groups, min_size..=max_size, self.seed),
        };
        let boosted = if self.core_boost >= 2 {
            gen::plant_clique(&base, self.core_boost, self.seed ^ 0x9e37_79b9)
        } else {
            base
        };
        // Break the generators' artificial ID↔degree correlation (see
        // `gen::relabel`): real datasets assign IDs near-arbitrarily.
        gen::relabel(&boosted, self.seed ^ 0x5bd1_e995)
    }

    /// Like [`Dataset::generate`], but served from the `KCORE_CACHE_DIR`
    /// binary cache when enabled (see [`crate::cache`]). The returned graph
    /// is identical either way; only wall-clock changes.
    pub fn generate_cached(&self) -> Csr {
        crate::cache::load_or_generate(self)
    }
}

macro_rules! row {
    ($v:expr, $e:expr, $davg:expr, $std:expr, $dmax:expr, $kmax:expr) => {
        PaperRow {
            num_vertices: $v,
            num_edges: $e,
            avg_degree: $davg,
            degree_std: $std,
            max_degree: $dmax,
            k_max: $kmax,
        }
    };
}

/// The 20 datasets of Table I, in the paper's order (ascending `|E|`).
pub fn registry() -> Vec<Dataset> {
    vec![
        Dataset {
            name: "amazon0601",
            category: "Co-purchasing",
            paper: row!(403_394, 3_387_388, 16.8, 15.0, 2_752, 10),
            spec: GenSpec::Ba {
                n: 40_000,
                m_lo: 1,
                m_hi: 16,
            },
            core_boost: 0, // attachment up to 16 naturally lands k_max ≈ 8-12
            seed: 0xA001,
        },
        Dataset {
            name: "wiki-Talk",
            category: "Communication",
            paper: row!(2_394_385, 5_021_410, 4.2, 103.0, 100_029, 131),
            spec: GenSpec::Hubs {
                n: 120_000,
                m_background: 200_000,
                hubs: 4,
                hub_fraction: 0.04,
            },
            core_boost: 34,
            seed: 0xA002,
        },
        Dataset {
            name: "web-Google",
            category: "Web Graph",
            paper: row!(875_713, 5_105_039, 11.7, 39.0, 6_332, 44),
            spec: GenSpec::Web {
                n: 60_000,
                host_size: 8,
                intra_p: 0.5,
                m_backbone: 150_000,
            },
            core_boost: 24,
            seed: 0xA003,
        },
        Dataset {
            name: "web-BerkStan",
            category: "Web Graph",
            paper: row!(685_230, 7_600_595, 22.2, 285.0, 84_230, 201),
            spec: GenSpec::Web {
                n: 50_000,
                host_size: 14,
                intra_p: 0.6,
                m_backbone: 120_000,
            },
            core_boost: 64,
            seed: 0xA004,
        },
        Dataset {
            name: "as-Skitter",
            category: "Internet Topology",
            paper: row!(1_696_415, 11_095_298, 13.1, 137.0, 35_455, 111),
            spec: GenSpec::Rmat {
                scale: 17,
                m: 450_000,
            },
            core_boost: 40,
            seed: 0xA005,
        },
        Dataset {
            name: "patentcite",
            category: "Citation Network",
            paper: row!(3_774_768, 16_518_948, 8.8, 10.0, 793, 64),
            spec: GenSpec::Ba {
                n: 150_000,
                m_lo: 1,
                m_hi: 10,
            },
            core_boost: 28,
            seed: 0xA006,
        },
        Dataset {
            name: "in-2004",
            category: "Web Graph",
            paper: row!(1_382_908, 16_917_053, 24.5, 147.0, 21_869, 488),
            spec: GenSpec::Web {
                n: 55_000,
                host_size: 16,
                intra_p: 0.7,
                m_backbone: 150_000,
            },
            core_boost: 96,
            seed: 0xA007,
        },
        Dataset {
            name: "dblp-author",
            category: "Collaboration",
            paper: row!(5_624_219, 24_564_102, 8.7, 11.0, 1_389, 14),
            spec: GenSpec::Collab {
                n: 220_000,
                groups: 120_000,
                min_size: 2,
                max_size: 6,
            },
            core_boost: 0, // overlapping small cliques naturally land k_max ≈ 10-16
            seed: 0xA008,
        },
        Dataset {
            name: "wb-edu",
            category: "Web Graph",
            paper: row!(9_845_725, 57_156_537, 11.6, 49.0, 25_781, 448),
            spec: GenSpec::Web {
                n: 200_000,
                host_size: 10,
                intra_p: 0.6,
                m_backbone: 500_000,
            },
            core_boost: 90,
            seed: 0xA009,
        },
        Dataset {
            name: "soc-LiveJournal1",
            category: "Social Network",
            paper: row!(4_847_571, 68_993_773, 28.5, 52.0, 20_333, 372),
            spec: GenSpec::Rmat {
                scale: 17,
                m: 1_400_000,
            },
            core_boost: 76,
            seed: 0xA010,
        },
        Dataset {
            name: "wikipedia-link-de",
            category: "Web Graph",
            paper: row!(3_603_726, 96_865_851, 53.8, 498.0, 434_234, 837),
            spec: GenSpec::Web {
                n: 72_000,
                host_size: 20,
                intra_p: 0.5,
                m_backbone: 1_000_000,
            },
            core_boost: 120,
            seed: 0xA011,
        },
        Dataset {
            name: "hollywood-2009",
            category: "Collaboration",
            paper: row!(1_139_905, 113_891_327, 199.8, 272.0, 11_467, 2_208),
            spec: GenSpec::Collab {
                n: 23_000,
                groups: 4_000,
                min_size: 10,
                max_size: 40,
            },
            core_boost: 220,
            seed: 0xA012,
        },
        Dataset {
            name: "com-Orkut",
            category: "Social Network",
            paper: row!(3_072_441, 117_185_083, 76.3, 155.0, 33_313, 253),
            spec: GenSpec::Rmat {
                scale: 16,
                m: 2_300_000,
            },
            core_boost: 64,
            seed: 0xA013,
        },
        Dataset {
            name: "trackers",
            category: "Web Graph",
            paper: row!(27_665_730, 140_613_762, 10.2, 2_774.0, 11_571_953, 438),
            spec: GenSpec::Hubs {
                n: 280_000,
                m_background: 1_200_000,
                hubs: 3,
                hub_fraction: 0.2,
            },
            core_boost: 60,
            seed: 0xA014,
        },
        Dataset {
            name: "indochina-2004",
            category: "Web Graph",
            paper: row!(7_414_866, 194_109_311, 52.4, 391.0, 256_425, 6_869),
            spec: GenSpec::Web {
                n: 74_000,
                host_size: 26,
                intra_p: 0.75,
                m_backbone: 800_000,
            },
            core_boost: 400,
            seed: 0xA015,
        },
        Dataset {
            name: "uk-2002",
            category: "Web Graph",
            paper: row!(18_520_486, 298_113_762, 32.2, 145.0, 194_955, 943),
            spec: GenSpec::Web {
                n: 92_000,
                host_size: 18,
                intra_p: 0.6,
                m_backbone: 900_000,
            },
            core_boost: 150,
            seed: 0xA016,
        },
        Dataset {
            name: "arabic-2005",
            category: "Web Graph",
            paper: row!(22_744_080, 639_999_458, 56.3, 555.0, 575_628, 3_247),
            spec: GenSpec::Web {
                n: 57_000,
                host_size: 24,
                intra_p: 0.7,
                m_backbone: 900_000,
            },
            core_boost: 280,
            seed: 0xA017,
        },
        Dataset {
            name: "uk-2005",
            category: "Web Graph",
            paper: row!(39_459_925, 936_364_282, 47.5, 1_536.0, 1_776_858, 588),
            spec: GenSpec::Web {
                n: 99_000,
                host_size: 22,
                intra_p: 0.6,
                m_backbone: 1_400_000,
            },
            core_boost: 110,
            seed: 0xA018,
        },
        Dataset {
            name: "webbase-2001",
            category: "Web Graph",
            paper: row!(118_142_155, 1_019_903_190, 17.3, 76.0, 263_176, 1_506),
            spec: GenSpec::Web {
                n: 295_000,
                host_size: 9,
                intra_p: 0.55,
                m_backbone: 1_500_000,
            },
            core_boost: 220,
            seed: 0xA019,
        },
        Dataset {
            name: "it-2004",
            category: "Web Graph",
            paper: row!(41_291_594, 1_150_725_436, 55.7, 883.0, 1_326_744, 3_224),
            spec: GenSpec::Web {
                n: 103_000,
                host_size: 25,
                intra_p: 0.7,
                m_backbone: 1_600_000,
            },
            core_boost: 290,
            seed: 0xA020,
        },
    ]
}

/// Looks up a dataset by its Table I name (case-insensitive).
pub fn by_name(name: &str) -> Option<Dataset> {
    registry()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
}

/// Higher-fidelity variants of three mid-size stand-ins at roughly twice
/// the edge budget, halving their Table I scale factor (the three R-MAT
/// rows had the coarsest mid-size stand-ins: ~1/25 to ~1/50).
///
/// These are **new** rows, not replacements: the original registry entries
/// stay byte-for-byte untouched so every golden trace and recorded bench
/// snapshot keyed to them remains valid. `table1` appends these under an
/// `@2x` suffix to show the improved shape match.
pub fn scaled_up_variants() -> Vec<Dataset> {
    vec![
        Dataset {
            name: "as-Skitter@2x",
            spec: GenSpec::Rmat {
                scale: 18,
                m: 900_000,
            },
            ..by_name("as-Skitter").unwrap()
        },
        Dataset {
            name: "soc-LiveJournal1@2x",
            spec: GenSpec::Rmat {
                scale: 18,
                m: 2_800_000,
            },
            ..by_name("soc-LiveJournal1").unwrap()
        },
        Dataset {
            name: "com-Orkut@2x",
            spec: GenSpec::Rmat {
                scale: 17,
                m: 4_600_000,
            },
            ..by_name("com-Orkut").unwrap()
        },
    ]
}

/// A small fast subset of the registry for smoke tests and examples
/// (`amazon0601`, `web-Google`, `wiki-Talk`), scaled down further.
pub fn smoke_subset() -> Vec<Dataset> {
    let shrink = |mut d: Dataset| {
        d.spec = match d.spec {
            GenSpec::Ba { m_lo, m_hi, .. } => GenSpec::Ba {
                n: 4_000,
                m_lo,
                m_hi,
            },
            GenSpec::Hubs {
                hubs, hub_fraction, ..
            } => GenSpec::Hubs {
                n: 8_000,
                m_background: 15_000,
                hubs,
                hub_fraction,
            },
            GenSpec::Web {
                host_size, intra_p, ..
            } => GenSpec::Web {
                n: 6_000,
                host_size,
                intra_p,
                m_backbone: 15_000,
            },
            other => other,
        };
        d.core_boost = d.core_boost.min(20);
        d
    };
    ["amazon0601", "wiki-Talk", "web-Google"]
        .iter()
        .map(|n| shrink(by_name(n).unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn registry_has_twenty_in_paper_order() {
        let r = registry();
        assert_eq!(r.len(), 20);
        assert_eq!(r[0].name, "amazon0601");
        assert_eq!(r[19].name, "it-2004");
        // ascending |E| in the paper, as in Table I
        for w in r.windows(2) {
            assert!(w[0].paper.num_edges <= w[1].paper.num_edges);
        }
    }

    #[test]
    fn by_name_works() {
        assert!(by_name("Amazon0601").is_some());
        assert!(by_name("trackers").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn smoke_subset_generates_quickly_and_sanely() {
        for d in smoke_subset() {
            let g = d.generate();
            let s = GraphStats::compute(&g);
            assert!(s.num_vertices > 1_000, "{}: too small", d.name);
            assert!(s.num_edges > 1_000, "{}: too sparse", d.name);
        }
    }

    #[test]
    fn scaled_up_variants_are_new_rows() {
        let ups = scaled_up_variants();
        assert_eq!(ups.len(), 3);
        for up in &ups {
            let base_name = up.name.strip_suffix("@2x").unwrap();
            let base = by_name(base_name).unwrap();
            // same paper row and category; a strictly larger edge budget
            assert_eq!(up.paper, base.paper);
            assert_eq!(up.category, base.category);
            let m_of = |d: &Dataset| match d.spec {
                GenSpec::Rmat { m, .. } => m,
                _ => panic!("scaled-up variants are R-MAT rows"),
            };
            assert!(m_of(up) >= 2 * m_of(&base), "{}", up.name);
            // and the registry itself is untouched
            assert!(by_name(up.name).is_none());
        }
    }

    #[test]
    fn tracker_standin_has_extreme_skew() {
        // Generate a shrunken trackers to verify the defining property
        // without paying full-scale generation in unit tests.
        let d = Dataset {
            spec: GenSpec::Hubs {
                n: 20_000,
                m_background: 80_000,
                hubs: 3,
                hub_fraction: 0.2,
            },
            core_boost: 20,
            ..by_name("trackers").unwrap()
        };
        let g = d.generate();
        let s = GraphStats::compute(&g);
        assert!(s.degree_std > 3.0 * s.avg_degree);
    }
}
