//! The GPU peeling algorithm: host program (Algorithm 1), scan kernel
//! (Algorithm 2) and loop kernel (Algorithm 3), with every §IV-C
//! optimization variant.
//!
//! The kernels run on [`kcore_gpusim`]; their *semantics* are the paper's,
//! including the correctness-critical details:
//!
//! * the barrier-snapshot batching of the loop kernel (warps of a block
//!   process `buf[s .. min(s+warps, e)]` per iteration, with `e` snapshotted
//!   at the `__syncthreads()` — Fig. 5);
//! * the atomic decrement-and-recover protocol on `deg[u]` that both avoids
//!   redundant traversal across blocks and converges `deg[v]` to `core(v)`
//!   (Fig. 6, Cases 1–3);
//! * termination via the device counter `gpu_count` read back each round.

use crate::config::{Buffering, Compaction, ExecPath, PeelConfig};
use kcore_gpusim::scan::{
    ballot_scan, ballot_scan_offsets, block_two_stage_scan, block_two_stage_scan_charges,
    block_two_stage_scan_into,
};
use kcore_gpusim::{
    BlockCtx, BufferId, GpuContext, KernelError, SharedArray, SimError, SimOptions, SimReport,
    SizeClass,
};
use kcore_graph::Csr;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering};

/// Result of a GPU decomposition run.
#[derive(Debug, Clone)]
pub struct GpuRun {
    /// Per-vertex core numbers.
    pub core: Vec<u32>,
    /// `max_v core(v)`.
    pub k_max: u32,
    /// Number of peeling rounds executed (`k_max + 1`).
    pub rounds: u32,
    /// Simulated-time / traffic / memory report.
    pub report: SimReport,
}

/// Everything the kernels need, bundled for the launch closures.
struct KParams<'a> {
    n: usize,
    cap: usize,
    d_offsets: BufferId,
    d_neighbors: BufferId,
    d_deg: BufferId,
    d_buf: BufferId,
    d_buf_e: BufferId,
    d_count: BufferId,
    cfg: &'a PeelConfig,
}

/// The peel working set resident on one device: the graph arrays, the
/// per-block frontier buffers, and the `gpu_count` termination counter.
///
/// [`decompose_in`] owns one for the whole graph; the sharded engine
/// (`multi_gpu`) owns one per worker device holding that shard's local-ID
/// CSR. The launch helpers below ([`run_scan_loop`], [`run_loop_only`])
/// drive the same kernels either way.
pub(crate) struct DeviceState {
    pub(crate) n: usize,
    pub(crate) cap: usize,
    pub(crate) d_offsets: BufferId,
    pub(crate) d_neighbors: BufferId,
    pub(crate) d_deg: BufferId,
    pub(crate) d_buf: BufferId,
    pub(crate) d_buf_e: BufferId,
    pub(crate) d_count: BufferId,
}

impl DeviceState {
    fn kparams<'a>(&self, cfg: &'a PeelConfig) -> KParams<'a> {
        KParams {
            n: self.n,
            cap: self.cap,
            d_offsets: self.d_offsets,
            d_neighbors: self.d_neighbors,
            d_deg: self.d_deg,
            d_buf: self.d_buf,
            d_buf_e: self.d_buf_e,
            d_count: self.d_count,
            cfg,
        }
    }
}

/// Algorithm 1, lines 1–4: loads a CSR (already in 32-bit host arrays) plus
/// the working buffers onto `ctx`'s device. Allocation names, order and size
/// classes are part of the golden-trace contract — do not reorder.
pub(crate) fn load_device(
    ctx: &mut GpuContext,
    offsets32: &[u32],
    neighbors: &[u32],
    degrees: &[u32],
    cfg: &PeelConfig,
) -> Result<DeviceState, SimError> {
    let n = offsets32.len() - 1;
    assert!(
        neighbors.len() < u32::MAX as usize,
        "graph exceeds 32-bit arc indexing"
    );
    // Algorithm 1, line 1: load G (offset / neighbors / deg) to the device.
    ctx.set_phase("Setup");
    ctx.set_workload_dims(n as u64, neighbors.len() as u64);
    let d_offsets = ctx.htod_tagged("offset", offsets32, SizeClass::PerVertex)?;
    let d_neighbors = ctx.htod_tagged("neighbors", neighbors, SizeClass::PerArc)?;
    let d_deg = ctx.htod_tagged("deg", degrees, SizeClass::PerVertex)?;
    // Line 4: per-block buffers + the persisted buffer tails + gpu_count.
    // All three are sized by the launch configuration, not the graph, so
    // they extrapolate as `Fixed` (the forecast carries the configured
    // scratch capacity through unscaled).
    let blocks = cfg.launch.blocks as usize;
    let d_buf = ctx.alloc_tagged("buf", blocks * cfg.buf_capacity, SizeClass::Fixed)?;
    let d_buf_e = ctx.alloc_tagged("buf_e", blocks, SizeClass::Fixed)?;
    let d_count = ctx.alloc_tagged("gpu_count", 1, SizeClass::Fixed)?;
    Ok(DeviceState {
        n,
        cap: cfg.buf_capacity,
        d_offsets,
        d_neighbors,
        d_deg,
        d_buf,
        d_buf_e,
        d_count,
    })
}

/// One peel round's device work — the scan launch feeding the stepped loop
/// launch, on whichever [`ExecPath`] `cfg` selects. Bit-identical traces on
/// all three paths (the fused path emits the same two launch records).
pub(crate) fn run_scan_loop(
    ctx: &mut GpuContext,
    k: u32,
    st: &DeviceState,
    cfg: &PeelConfig,
) -> Result<(), SimError> {
    let p = st.kparams(cfg);
    // The loop kernel's blocks interact through `deg[]` while running
    // (cascading k-shell discovery), so it uses the lockstep stepped
    // launch: every wave advances each live block by one barrier-delimited
    // iteration, matching concurrent hardware blocks. The fast path splits
    // each iteration into a parallel plan and a wave-ordered commit; the
    // fused path additionally runs the scan step and the stepped loop
    // inside one engine entry — bit-identical traces all three ways.
    ctx.set_phase("Scan");
    match cfg.exec_path {
        ExecPath::Fused => ctx.launch_fused(
            "scan",
            cfg.launch,
            |blk| scan_kernel_fast(blk, k, &p),
            "Loop",
            "loop",
            |blk| loop_init(blk, &p),
            |blk, st| loop_plan(blk, st, &p),
            |blk, st, plan| loop_commit(blk, st, plan, k, &p),
        )?,
        ExecPath::Fast => {
            ctx.launch("scan", cfg.launch, |blk| scan_kernel_fast(blk, k, &p))?;
            ctx.set_phase("Loop");
            ctx.launch_stepped_phased(
                "loop",
                cfg.launch,
                |blk| loop_init(blk, &p),
                |blk, st| loop_plan(blk, st, &p),
                |blk, st, plan| loop_commit(blk, st, plan, k, &p),
            )?;
        }
        ExecPath::Reference => {
            ctx.launch("scan", cfg.launch, |blk| scan_kernel(blk, k, &p))?;
            ctx.set_phase("Loop");
            ctx.launch_stepped(
                "loop",
                cfg.launch,
                |blk| loop_init(blk, &p),
                |blk, st| loop_step(blk, st, k, &p),
            )?;
        }
    }
    Ok(())
}

/// A loop-only launch: consumes whatever frontier `buf`/`buf_e` already
/// hold, without a fresh scan. The sharded engine uses this for border-seed
/// sub-rounds — re-scanning would re-process the whole shard. With no scan
/// to fuse against, the fused path degenerates to the fast stepped-phased
/// launch (identical records by the fused two-record contract).
pub(crate) fn run_loop_only(
    ctx: &mut GpuContext,
    k: u32,
    st: &DeviceState,
    cfg: &PeelConfig,
) -> Result<(), SimError> {
    let p = st.kparams(cfg);
    ctx.set_phase("Loop");
    match cfg.exec_path {
        ExecPath::Fused | ExecPath::Fast => {
            ctx.launch_stepped_phased(
                "loop",
                cfg.launch,
                |blk| loop_init(blk, &p),
                |blk, st| loop_plan(blk, st, &p),
                |blk, st, plan| loop_commit(blk, st, plan, k, &p),
            )?;
        }
        ExecPath::Reference => {
            ctx.launch_stepped(
                "loop",
                cfg.launch,
                |blk| loop_init(blk, &p),
                |blk, st| loop_step(blk, st, k, &p),
            )?;
        }
    }
    Ok(())
}

/// Frees the working set (device hygiene; peak accounting is unaffected).
/// Free order is part of the golden-trace contract.
pub(crate) fn free_device(ctx: &mut GpuContext, st: &DeviceState) {
    ctx.device.free(st.d_buf);
    ctx.device.free(st.d_buf_e);
    ctx.device.free(st.d_count);
    ctx.device.free(st.d_deg);
    ctx.device.free(st.d_neighbors);
    ctx.device.free(st.d_offsets);
}

/// Runs the full k-core decomposition of `g` under `cfg` on a fresh
/// simulated device described by `opts`.
pub fn decompose(g: &Csr, cfg: &PeelConfig, opts: &SimOptions) -> Result<GpuRun, SimError> {
    let mut ctx = opts.context();
    decompose_in(&mut ctx, g, cfg).map(|(core, rounds)| {
        let k_max = core.iter().copied().max().unwrap_or(0);
        GpuRun {
            core,
            k_max,
            rounds,
            report: ctx.report(),
        }
    })
}

/// Runs the decomposition inside an existing context (the bench harness uses
/// this to share device setup across repetitions). Returns `(core, rounds)`.
pub fn decompose_in(
    ctx: &mut GpuContext,
    g: &Csr,
    cfg: &PeelConfig,
) -> Result<(Vec<u32>, u32), SimError> {
    let n = g.num_vertices() as usize;
    if n == 0 {
        return Ok((Vec::new(), 0));
    }

    // Host-profiling spans (observe-only; None when profiling is off).
    let _run_span = ctx.host_span("peel");
    let setup_span = ctx.host_span("peel/setup");

    let offsets32: Vec<u32> = g.offsets().iter().map(|&o| o as u32).collect();
    let st = load_device(ctx, &offsets32, g.neighbor_array(), &g.degrees(), cfg)?;

    drop(setup_span);
    let rounds_span = ctx.host_span("peel/rounds");
    let mut count = 0u64;
    let mut k = 0u32;
    let mut rounds = 0u32;
    while (count as usize) < n {
        run_scan_loop(ctx, k, &st, cfg)?;
        // Algorithm 1 line 8: the synchronizing gpu_count readback.
        ctx.set_phase("Sync");
        let prev = count;
        count = ctx.dtoh_word(st.d_count, 0) as u64;
        // Observability: this round's k-shell size on the "frontier" counter
        // track (free — sampling charges nothing).
        ctx.sample_counter("frontier", (count - prev) as f64);
        k += 1;
        rounds += 1;
        if k as usize > n + 1 {
            return Err(SimError::Kernel(KernelError::Other(format!(
                "peeling did not converge: k={k} exceeds |V|={n} (count={count})"
            ))));
        }
    }
    drop(rounds_span);
    let _result_span = ctx.host_span("peel/result");
    // Line 10: deg[] has converged to the core numbers.
    ctx.set_phase("Result");
    let core = ctx.dtoh(st.d_deg);
    free_device(ctx, &st);
    Ok((core, rounds))
}

// ---------------------------------------------------------------------------
// Buffer position translation (Fig. 7) and append plumbing
// ---------------------------------------------------------------------------

/// Where a logical frontier position lives.
enum Slot {
    Shared(usize),
    Global(usize),
}

/// Translates logical position `pos` to a physical slot, honoring
/// shared-memory buffering and the ring layout.
fn translate(pos: u64, e_init: u64, n_b: u64, cap: u64, ring: bool) -> Result<Slot, KernelError> {
    let global_at = |gpos: u64| -> Result<Slot, KernelError> {
        if ring {
            // Positions only exceed `cap` once the ring has wrapped, so the
            // common case skips the division.
            Ok(Slot::Global(if gpos < cap {
                gpos as usize
            } else {
                (gpos % cap) as usize
            }))
        } else if gpos < cap {
            Ok(Slot::Global(gpos as usize))
        } else {
            Err(KernelError::BufferOverflow {
                what: format!("position {gpos} beyond capacity {cap} (no ring buffer)"),
            })
        }
    };
    if n_b == 0 || pos < e_init {
        global_at(pos)
    } else if pos < e_init + n_b {
        Ok(Slot::Shared((pos - e_init) as usize))
    } else {
        global_at(pos - n_b)
    }
}

/// Per-block loop state shared by the helpers below.
struct BufCtx {
    se: SharedArray, // [s, e] in shared memory
    sm_buf: Option<SharedArray>,
    e_init: u64,
    cap: u64,
    ring: bool,
}

impl BufCtx {
    fn n_b(&self) -> u64 {
        self.sm_buf.map(|a| a.len() as u64).unwrap_or(0)
    }

    /// Reads the frontier vertex at logical `pos`, charging per the
    /// buffering mode. `prefetched` marks reads covered by warp-0 VP.
    fn read(
        &self,
        blk: &mut BlockCtx<'_>,
        bufb: &[std::sync::atomic::AtomicU32],
        pos: u64,
        prefetched: bool,
    ) -> Result<u32, KernelError> {
        if self.sm_buf.is_some() {
            blk.charge_instr(2); // Fig. 7 position-translation case check
        }
        match translate(pos, self.e_init, self.n_b(), self.cap, self.ring)? {
            Slot::Shared(i) => {
                Ok(blk.sh_read(self.sm_buf.expect("shared slot without SM buffer"), i))
            }
            Slot::Global(i) => {
                if prefetched {
                    // value was staged into pref[] by warp 0; reading shared
                    blk.counters.shared_accesses += 1;
                    Ok(bufb[i].load(Ordering::Relaxed))
                } else {
                    Ok(blk.gread_dependent(&bufb[i]))
                }
            }
        }
    }

    /// Appends `vals` (a warp batch) at positions starting from an
    /// `e`-advance of `vals.len()`, returning the overflow error the paper's
    /// assert would fire. `batched_tx` marks compaction variants where the
    /// global writes are contiguous and charged as coalesced transactions.
    fn append_batch(
        &self,
        blk: &mut BlockCtx<'_>,
        bufb: &[std::sync::atomic::AtomicU32],
        vals: &[u32],
        batched_tx: bool,
    ) -> Result<(), KernelError> {
        if vals.is_empty() {
            return Ok(());
        }
        let m = vals.len() as u32;
        let base = blk.sh_atomic_add(self.se, 1, m) as u64;
        // Ring-buffer safety: outstanding elements must fit the physical
        // capacity (global cap + shared n_b).
        let s_now = blk.sh_read(self.se, 0) as u64;
        let outstanding = base + m as u64 - s_now;
        if outstanding > self.cap + self.n_b() {
            return Err(KernelError::BufferOverflow {
                what: format!(
                    "block {}: {} outstanding frontier entries exceed capacity {}",
                    blk.block_idx,
                    outstanding,
                    self.cap + self.n_b()
                ),
            });
        }
        let mut global_words = 0u64;
        for (j, &v) in vals.iter().enumerate() {
            if self.sm_buf.is_some() {
                blk.charge_instr(2); // translation case check per write
            }
            match translate(
                base + j as u64,
                self.e_init,
                self.n_b(),
                self.cap,
                self.ring,
            )? {
                Slot::Shared(i) => blk.sh_write(self.sm_buf.unwrap(), i, v),
                Slot::Global(i) => {
                    bufb[i].store(v, Ordering::Relaxed);
                    if batched_tx {
                        global_words += 1;
                    } else {
                        blk.charge_sector(1);
                    }
                }
            }
        }
        if batched_tx && global_words > 0 {
            blk.charge_tx(BlockCtx::coalesced_tx(global_words));
        }
        Ok(())
    }

    /// Appends a single vertex with its own `atomicAdd(e, 1)` — the basic
    /// algorithm's per-element path (Algorithm 3, line 23).
    fn append_one(
        &self,
        blk: &mut BlockCtx<'_>,
        bufb: &[std::sync::atomic::AtomicU32],
        v: u32,
    ) -> Result<(), KernelError> {
        self.append_batch(blk, bufb, &[v], false)
    }
}

// ---------------------------------------------------------------------------
// Scan kernel (Algorithm 2)
// ---------------------------------------------------------------------------

fn scan_kernel(blk: &mut BlockCtx<'_>, k: u32, p: &KParams<'_>) -> Result<(), KernelError> {
    let dev = blk.device;
    let deg = dev.buffer(p.d_deg);
    let b = blk.block_idx as usize;
    let bufb = &dev.buffer(p.d_buf)[b * p.cap..(b + 1) * p.cap];

    // Line 1–2: Thread 0 zeroes the shared tail, barrier.
    let e_arr = blk.shared_alloc(1)?;
    blk.sh_write(e_arr, 0, 0);
    blk.sync_threads();

    let blk_dim = blk.cfg.threads_per_block as usize;
    let num_threads = blk.cfg.num_threads() as usize;
    let mut chunk = b * blk_dim;
    while chunk < p.n {
        let lo = chunk;
        let hi = (chunk + blk_dim).min(p.n);
        let words = (hi - lo) as u64;
        // Coalesced read of this block's deg[] stripe + one compare per warp.
        blk.charge_tx(BlockCtx::coalesced_tx(words));
        blk.charge_instr(words.div_ceil(32));

        match p.cfg.compaction {
            Compaction::None => {
                // Line 6–9: each found vertex appended with its own
                // shared-memory atomicAdd.
                for v in lo..hi {
                    if deg[v].load(Ordering::Relaxed) == k {
                        let pos = blk.sh_atomic_add(e_arr, 0, 1) as u64;
                        if pos >= p.cap as u64 {
                            return Err(KernelError::BufferOverflow {
                                what: format!("block {b}: scan filled buffer (capacity {})", p.cap),
                            });
                        }
                        bufb[pos as usize].store(v as u32, Ordering::Relaxed);
                        blk.charge_sector(1);
                    }
                }
            }
            Compaction::Ballot => {
                // Warp-level compaction (Fig. 8): ballot offsets, one atomic
                // per warp, contiguous batch write. Every chunk pays for the
                // Fig. 8(a) per-thread vid/p/a arrays in shared memory.
                for wstart in (lo..hi).step_by(32) {
                    let wend = (wstart + 32).min(hi);
                    blk.counters.shared_accesses += 3 * (wend - wstart) as u64;
                    let flags: Vec<bool> = (wstart..wend)
                        .map(|v| deg[v].load(Ordering::Relaxed) == k)
                        .collect();
                    let (offsets, total) = ballot_scan(blk, &flags);
                    if total == 0 {
                        continue;
                    }
                    let base = blk.sh_atomic_add(e_arr, 0, total) as u64;
                    if base + total as u64 > p.cap as u64 {
                        return Err(KernelError::BufferOverflow {
                            what: format!("block {b}: scan filled buffer (capacity {})", p.cap),
                        });
                    }
                    blk.charge_tx(BlockCtx::coalesced_tx(total as u64));
                    for (i, v) in (wstart..wend).enumerate() {
                        if flags[i] {
                            bufb[(base + offsets[i] as u64) as usize]
                                .store(v as u32, Ordering::Relaxed);
                        }
                    }
                }
            }
            Compaction::Efficient => {
                // Block-level compaction (Fig. 9): two-stage scan over one
                // flag per thread, then a single batch append.
                let mut values = vec![0u32; blk_dim];
                for (i, v) in (lo..hi).enumerate() {
                    values[i] = (deg[v].load(Ordering::Relaxed) == k) as u32;
                }
                // Fig. 8(a) per-thread vid/p/a arrays, materialized in
                // shared memory for the whole block chunk.
                blk.counters.shared_accesses += 3 * (hi - lo) as u64;
                let (offsets, total) = block_two_stage_scan(blk, &values);
                if total > 0 {
                    let base = blk.sh_atomic_add(e_arr, 0, total) as u64;
                    if base + total as u64 > p.cap as u64 {
                        return Err(KernelError::BufferOverflow {
                            what: format!("block {b}: scan filled buffer (capacity {})", p.cap),
                        });
                    }
                    blk.charge_tx(BlockCtx::coalesced_tx(total as u64));
                    for i in 0..(hi - lo) {
                        if values[i] == 1 {
                            bufb[(base + offsets[i] as u64) as usize]
                                .store((lo + i) as u32, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        chunk += num_threads;
    }

    // Back up e to global memory for the loop kernel (end of Algorithm 2).
    blk.sync_threads();
    let e = blk.sh_read(e_arr, 0);
    blk.gwrite(&dev.buffer(p.d_buf_e)[b], e);
    Ok(())
}

/// Warp-vectorized [`scan_kernel`]: identical semantics, counters, and error
/// behavior, with the per-lane plumbing hoisted out of the hot loops — the
/// shared tail lives in a local mirror, ballot predicates stay packed as a
/// mask ([`ballot_scan_offsets`]), and the EC scratch buffers are reused
/// across kernel calls via a worker-local cache
/// ([`block_two_stage_scan_into`]). `tests/fastpath_diff.rs` pins the
/// equivalence against the reference.
fn scan_kernel_fast(blk: &mut BlockCtx<'_>, k: u32, p: &KParams<'_>) -> Result<(), KernelError> {
    let dev = blk.device;
    let deg = dev.buffer(p.d_deg);
    // Plain-word view of `deg` for the probe sweeps: the scan kernel only
    // reads degrees (every block, on every path), so the buffer is
    // immutable for the whole launch and the view is sound — and unlike an
    // `AtomicU32` load the compiler may vectorize it.
    let degs: &[u32] = unsafe { std::slice::from_raw_parts(deg.as_ptr() as *const u32, deg.len()) };
    let b = blk.block_idx as usize;
    let bufb = &dev.buffer(p.d_buf)[b * p.cap..(b + 1) * p.cap];

    let e_arr = blk.shared_alloc(1)?;
    blk.sh_write(e_arr, 0, 0);
    blk.sync_threads();

    let blk_dim = blk.cfg.threads_per_block as usize;
    let num_threads = blk.cfg.num_threads() as usize;
    // Local mirror of the shared tail, poked back before the epilogue read;
    // every shared-atomic charge still lands per append.
    let mut e_local = 0u64;
    // EC scratch, reused across chunks — and across kernel calls via a
    // worker-local cache. Contents need no zeroing on reuse: the hit path
    // rewrites `values[..hi-lo]` and explicitly zero-fills the tail before
    // the scan, the miss path never reads it, and `offs` is fully written
    // before it is read. Only the length matters (the charge helper asserts
    // it equals the block dimension).
    let (mut values, mut offs) = if p.cfg.compaction == Compaction::Efficient {
        EC_SCRATCH.with(|s| {
            let (mut v, mut o) = s.take();
            v.resize(blk_dim, 0);
            o.resize(blk_dim, 0);
            (v, o)
        })
    } else {
        (Vec::new(), Vec::new())
    };
    let overflow = |b: usize| KernelError::BufferOverflow {
        what: format!("block {b}: scan filled buffer (capacity {})", p.cap),
    };
    let mut chunk = b * blk_dim;
    while chunk < p.n {
        let lo = chunk;
        let hi = (chunk + blk_dim).min(p.n);
        let words = (hi - lo) as u64;
        blk.charge_tx(BlockCtx::coalesced_tx(words));
        blk.charge_instr(words.div_ceil(32));

        match p.cfg.compaction {
            Compaction::None => {
                // Probe in sub-chunks with a branch-free any-hit reduction
                // (vectorizable); only a sub-chunk containing a k-shell
                // vertex pays the scalar append pass. Charges are per hit
                // either way, so the sweep shape is charge-invisible.
                let mut v = lo;
                while v < hi {
                    let sub_hi = (v + 64).min(hi);
                    let mut hit = false;
                    for &d in &degs[v..sub_hi] {
                        hit |= d == k;
                    }
                    if hit {
                        for u in v..sub_hi {
                            if degs[u] == k {
                                blk.counters.shared_atomics += 1; // atomicAdd(e, 1)
                                let pos = e_local;
                                e_local += 1;
                                if pos >= p.cap as u64 {
                                    return Err(overflow(b));
                                }
                                bufb[pos as usize].store(u as u32, Ordering::Relaxed);
                                blk.charge_sector(1);
                            }
                        }
                    }
                    v = sub_hi;
                }
            }
            Compaction::Ballot => {
                for wstart in (lo..hi).step_by(32) {
                    let wend = (wstart + 32).min(hi);
                    blk.counters.shared_accesses += 3 * (wend - wstart) as u64;
                    // Branch-free any-hit reduction first (vectorizable);
                    // only a warp containing a k-shell vertex pays the
                    // scalar bit pack. The ballot is charged identically
                    // either way (`ballot_scan_offsets` charges by lane
                    // count, not by mask value).
                    let w = &degs[wstart..wend];
                    let mut hit = false;
                    for &d in w {
                        hit |= d == k;
                    }
                    let mut bits = 0u32;
                    if hit {
                        for (i, &d) in w.iter().enumerate() {
                            bits |= ((d == k) as u32) << i;
                        }
                    }
                    let (offsets, total) = ballot_scan_offsets(blk, bits);
                    if total == 0 {
                        continue;
                    }
                    blk.counters.shared_atomics += 1; // atomicAdd(e, total)
                    let base = e_local;
                    e_local += total as u64;
                    if e_local > p.cap as u64 {
                        return Err(overflow(b));
                    }
                    blk.charge_tx(BlockCtx::coalesced_tx(total as u64));
                    for (i, v) in (wstart..wend).enumerate() {
                        if bits >> i & 1 == 1 {
                            bufb[(base + offsets[i] as u64) as usize]
                                .store(v as u32, Ordering::Relaxed);
                        }
                    }
                }
            }
            Compaction::Efficient => {
                // Any-hit reduction first (vectorizable): a chunk with no
                // k-shell vertex pays the full two-stage-scan cost model —
                // every charge is a pure function of the geometry — but
                // skips the element-wise flag fill and the host-side scan
                // arithmetic.
                let w = &degs[lo..hi];
                let mut hit = false;
                for &d in w {
                    hit |= d == k;
                }
                blk.counters.shared_accesses += 3 * (hi - lo) as u64;
                let total = if hit {
                    for (i, &d) in w.iter().enumerate() {
                        values[i] = (d == k) as u32;
                    }
                    values[(hi - lo)..].fill(0);
                    block_two_stage_scan_into(blk, &values, &mut offs)
                } else {
                    block_two_stage_scan_charges(blk, values.len());
                    0
                };
                if total > 0 {
                    blk.counters.shared_atomics += 1; // atomicAdd(e, total)
                    let base = e_local;
                    e_local += total as u64;
                    if e_local > p.cap as u64 {
                        return Err(overflow(b));
                    }
                    blk.charge_tx(BlockCtx::coalesced_tx(total as u64));
                    for i in 0..(hi - lo) {
                        if values[i] == 1 {
                            bufb[(base + offs[i] as u64) as usize]
                                .store((lo + i) as u32, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        chunk += num_threads;
    }

    blk.sh_poke(e_arr, 0, e_local as u32);
    blk.sync_threads();
    let e = blk.sh_read(e_arr, 0);
    blk.gwrite(&dev.buffer(p.d_buf_e)[b], e);
    if p.cfg.compaction == Compaction::Efficient {
        EC_SCRATCH.with(|s| *s.borrow_mut() = (values, offs));
    }
    Ok(())
}

thread_local! {
    /// Worker-local EC scratch for [`scan_kernel_fast`] (a `(values, offs)`
    /// pair), so the two block-dimension-sized vectors are not
    /// allocated and freed on every kernel call. Error returns drop the
    /// cache for that worker; the next call simply reallocates.
    static EC_SCRATCH: RefCell<(Vec<u32>, Vec<u32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

// ---------------------------------------------------------------------------
// Loop kernel (Algorithm 3)
// ---------------------------------------------------------------------------

/// Per-block persistent state of the loop kernel across waves.
struct LoopState {
    bc: BufCtx,
    prefetch: bool,
    warp_compact: bool,
    warps: u64,
    compute_warps: u64,
    /// Fast-path plan scratch, reused across waves: this wave's frontier
    /// entries as `(v, pos_s, pos_e)`.
    planned: Vec<(u32, u32, u32)>,
}

/// Lines 1–2 of Algorithm 3: per-block setup (shared s/e, optional SM
/// buffer, optional VP pref array).
fn loop_init<'a>(blk: &mut BlockCtx<'a>, p: &KParams<'_>) -> Result<LoopState, KernelError> {
    let dev = blk.device;
    let b = blk.block_idx as usize;

    let se = blk.shared_alloc(2)?;
    let e0 = blk.gread(&dev.buffer(p.d_buf_e)[b]);
    blk.sh_write(se, 0, 0);
    blk.sh_write(se, 1, e0);

    let sm_buf = match p.cfg.buffering {
        Buffering::SharedMem => Some(blk.shared_alloc(p.cfg.shared_buf_capacity)?),
        _ => None,
    };
    // VP keeps a 31-slot pref[] in shared memory (capacity accounting).
    let _pref = match p.cfg.buffering {
        Buffering::Prefetch => Some(blk.shared_alloc(31)?),
        _ => None,
    };
    let bc = BufCtx {
        se,
        sm_buf,
        e_init: e0 as u64,
        cap: p.cap as u64,
        ring: p.cfg.ring_buffer,
    };

    let warps = blk.num_warps() as u64;
    // VP sacrifices warp 0 to prefetching — unless the block only has one
    // warp, which must keep computing.
    let compute_warps = if p.cfg.buffering == Buffering::Prefetch {
        (warps - 1).max(1)
    } else {
        warps
    };
    Ok(LoopState {
        bc,
        prefetch: p.cfg.buffering == Buffering::Prefetch,
        warp_compact: p.cfg.compaction != Compaction::None,
        warps,
        compute_warps,
        planned: Vec::new(),
    })
}

/// One barrier-delimited iteration of Algorithm 3's outer loop (lines 3–25),
/// plus the line-26 `gpu_count` update when the buffer drains. Returns
/// `false` when the block retires.
fn loop_step(
    blk: &mut BlockCtx<'_>,
    st: &mut LoopState,
    k: u32,
    p: &KParams<'_>,
) -> Result<bool, KernelError> {
    let dev = blk.device;
    let deg = dev.buffer(p.d_deg);
    let offsets = dev.buffer(p.d_offsets);
    let neighbors = dev.buffer(p.d_neighbors);
    let b = blk.block_idx as usize;
    let bufb = &dev.buffer(p.d_buf)[b * p.cap..(b + 1) * p.cap];
    let se = st.bc.se;

    // Line 4: __syncthreads, consistent view of s and e.
    blk.sync_threads();
    let s = blk.sh_read(se, 0) as u64;
    let e = blk.sh_read(se, 1) as u64;
    if s == e {
        // Line 5 break + line 26: thread 0 adds this round's count.
        blk.sync_threads();
        let e_final = blk.sh_read(se, 1);
        blk.atomic_add(&dev.buffer(p.d_count)[0], e_final);
        return Ok(false);
    }
    let e_snap = e; // line 6: e' backed up per warp
    let batch = st.compute_warps.min(e_snap - s);
    // Line 7: barrier before the batch is claimed.
    blk.sync_threads();
    blk.charge_instr(st.warps); // per-warp control flow for this iteration

    if st.prefetch {
        // Warp 0 coalesced-fetches the batch into pref[] while the
        // other warps compute (overlapped — no dependent latency), at the
        // cost of the warp-0 coordination instructions (§IV-C: lane-0
        // advances s, __syncwarp, then the 31 fetch lanes).
        blk.charge_tx(BlockCtx::coalesced_tx(batch));
        blk.counters.shared_accesses += batch;
        blk.charge_instr(3);
        blk.sync_warp();
    }

    for w in 0..batch {
        let pos = s + w;
        // Line 12: v ← buf[i][s'] (translated; prefetched under VP).
        let v = st.bc.read(blk, bufb, pos, st.prefetch)?;
        process_vertex(
            blk,
            &st.bc,
            bufb,
            deg,
            offsets,
            neighbors,
            v,
            k,
            st.warp_compact,
        )?;
    }
    // Lines 9–10: thread 0 (or warp 0 under VP) advances s — at the *end*
    // of the iteration, so the ring-buffer outstanding check inside
    // `append_batch` measures from the floor of the batch still being
    // consumed. (Advancing s up front would let a same-iteration append
    // recycle a slot whose entry this iteration has not read yet; the
    // charge is one shared write either way.)
    blk.sh_write(se, 0, (s + batch) as u32);
    Ok(true)
}

/// Lines 13–24 of Algorithm 3: one warp walks `v`'s adjacency list in
/// 32-neighbor chunks, decrementing `deg[u]` and appending newly degree-`k`
/// neighbors.
#[allow(clippy::too_many_arguments)]
fn process_vertex(
    blk: &mut BlockCtx<'_>,
    bc: &BufCtx,
    bufb: &[std::sync::atomic::AtomicU32],
    deg: &[std::sync::atomic::AtomicU32],
    offsets: &[std::sync::atomic::AtomicU32],
    neighbors: &[std::sync::atomic::AtomicU32],
    v: u32,
    k: u32,
    warp_compact: bool,
) -> Result<(), KernelError> {
    // Line 13: pos_s, pos_e — adjacent words, one sector.
    blk.charge_sector(1);
    let ps = offsets[v as usize].load(Ordering::Relaxed) as usize;
    let pe = offsets[v as usize + 1].load(Ordering::Relaxed) as usize;

    let mut chunk = ps;
    while chunk < pe {
        let cend = (chunk + 32).min(pe);
        let cnt = (cend - chunk) as u64;
        blk.sync_warp(); // line 15
                         // Line 19: coalesced read of up to 32 neighbor IDs.
        blk.charge_tx(BlockCtx::coalesced_tx(cnt));
        blk.charge_instr(2); // lines 16-18 bounds/index math (full warp)

        let mut flags = [false; 32];
        let mut vals = [0u32; 32];
        let mut any = false;
        for (lane, idx) in (chunk..cend).enumerate() {
            let u = neighbors[idx].load(Ordering::Relaxed) as usize;
            // Line 20: random-access probe of deg[u].
            blk.charge_sector(1);
            if deg[u].load(Ordering::Relaxed) > k {
                // Line 21: atomicSub returns the pre-decrement value.
                let old = blk.atomic_sub(&deg[u], 1);
                if old == k + 1 {
                    // Line 22-23: u just became part of the k-shell.
                    flags[lane] = true;
                    vals[lane] = u as u32;
                    any = true;
                } else if old <= k {
                    // Line 24: raced below the floor — recover.
                    blk.atomic_add(&deg[u], 1);
                }
            }
        }
        if warp_compact {
            // BC/EC loop-phase: every chunk materializes the Fig. 8(a)
            // per-thread arrays (vid / p / a) in shared memory and runs the
            // ballot scan — whether or not anything gets appended; that
            // unconditional overhead is exactly why §VI finds compaction
            // slower than plain atomicAdd.
            blk.counters.shared_accesses += 3 * cnt;
            let (offs, total) = ballot_scan(blk, &flags[..(cend - chunk)]);
            if total > 0 {
                let mut batch = Vec::with_capacity(total as usize);
                for (lane, &f) in flags[..(cend - chunk)].iter().enumerate() {
                    if f {
                        debug_assert_eq!(offs[lane] as usize, batch.len());
                        batch.push(vals[lane]);
                    }
                }
                bc.append_batch(blk, bufb, &batch, true)?;
            }
        } else if any {
            for (lane, &f) in flags[..(cend - chunk)].iter().enumerate() {
                if f {
                    bc.append_one(blk, bufb, vals[lane])?;
                }
            }
        }
        chunk = cend;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Fast path: the loop kernel split into a parallel plan + wave-ordered commit
// ---------------------------------------------------------------------------
//
// `launch_stepped_phased` runs every live block's *plan* on the rayon pool,
// then *commits* serially in the exact xorshift wave order. The split obeys
// the determinism contract (DESIGN.md "Fast-path cost accounting"):
//
// * plan touches only launch-immutable device buffers (`offset`), the
//   block's own private buffer region (`buf[b]` positions below this wave's
//   floor `s`, written by earlier waves), and the block's own shared state;
// * every access to device memory mutated during the launch (`deg`,
//   appends into `buf[b]`, `gpu_count`) happens in commit, in wave order —
//   so the cross-block interleaving, and with it every counter and result,
//   is identical to the serial reference wave loop.

/// The per-wave handoff from [`loop_plan`] to [`loop_commit`]. The planned
/// frontier entries themselves ride in `LoopState::planned`.
enum LoopPlan {
    /// The buffer drained: commit adds `e_final` to `gpu_count` and retires.
    Retire { e_final: u32 },
    /// Consume `batch` entries starting at floor `s`.
    Batch { s: u64, batch: u64 },
}

/// Plan phase of one loop-kernel iteration: lines 3–12 of Algorithm 3 minus
/// any mutable-device access — reads this wave's frontier slice and each
/// vertex's adjacency range, charging exactly what the reference charges for
/// the same lines.
fn loop_plan(
    blk: &mut BlockCtx<'_>,
    st: &mut LoopState,
    p: &KParams<'_>,
) -> Result<LoopPlan, KernelError> {
    let dev = blk.device;
    let offsets = dev.buffer(p.d_offsets);
    // Plain-word view for the adjacency-range reads: `offset` is
    // launch-immutable (the plan-side contract above), so the view is sound
    // and the loads are plain `mov`s the compiler can reorder.
    let offs: &[u32] =
        unsafe { std::slice::from_raw_parts(offsets.as_ptr() as *const u32, offsets.len()) };
    let b = blk.block_idx as usize;
    let bufb = &dev.buffer(p.d_buf)[b * p.cap..(b + 1) * p.cap];
    let se = st.bc.se;

    // Line 4: __syncthreads, consistent view of s and e.
    blk.sync_threads();
    let s = blk.sh_read(se, 0) as u64;
    let e = blk.sh_read(se, 1) as u64;
    if s == e {
        // Line 5 break; the line-26 gpu_count add is commit's.
        blk.sync_threads();
        let e_final = blk.sh_read(se, 1);
        return Ok(LoopPlan::Retire { e_final });
    }
    let batch = st.compute_warps.min(e - s);
    // Line 7 barrier.
    blk.sync_threads();
    blk.charge_instr(st.warps); // per-warp control flow for this iteration

    if st.prefetch {
        blk.charge_tx(BlockCtx::coalesced_tx(batch));
        blk.counters.shared_accesses += batch;
        blk.charge_instr(3);
        blk.sync_warp();
    }

    st.planned.clear();
    for w in 0..batch {
        // Line 12: v ← buf[i][s'] — positions below the floor, written by
        // earlier (already committed) waves.
        let v = st.bc.read(blk, bufb, s + w, st.prefetch)?;
        // Line 13: pos_s, pos_e — adjacent words of the immutable offset
        // array, one sector.
        blk.charge_sector(1);
        let ps = offs[v as usize];
        let pe = offs[v as usize + 1];
        st.planned.push((v, ps, pe));
    }
    Ok(LoopPlan::Batch { s, batch })
}

/// Commit phase: lines 13–26 of Algorithm 3 — all `deg[]` traffic, all
/// appends, the retirement `gpu_count` add, and the end-of-iteration
/// s-advance. Runs serially in wave order on the exclusive lane.
fn loop_commit(
    blk: &mut BlockCtx<'_>,
    st: &mut LoopState,
    plan: LoopPlan,
    k: u32,
    p: &KParams<'_>,
) -> Result<bool, KernelError> {
    let dev = blk.device;
    let deg = dev.buffer(p.d_deg);
    let neighbors = dev.buffer(p.d_neighbors);
    // Plain-word view for the warp-contiguous neighbor reads: the loop
    // kernel never writes `neighbors`, so the buffer is launch-immutable
    // and the view is sound (same pattern as the scan kernel's `degs`).
    let nbrs: &[u32] =
        unsafe { std::slice::from_raw_parts(neighbors.as_ptr() as *const u32, neighbors.len()) };
    let b = blk.block_idx as usize;
    let bufb = &dev.buffer(p.d_buf)[b * p.cap..(b + 1) * p.cap];
    let se = st.bc.se;

    let (s, batch) = match plan {
        LoopPlan::Retire { e_final } => {
            blk.atomic_add(&dev.buffer(p.d_count)[0], e_final);
            return Ok(false);
        }
        LoopPlan::Batch { s, batch } => (s, batch),
    };

    // Local mirror of the shared e tail: appends advance it here and the
    // epilogue pokes it back; the per-append shared-atomic charges land in
    // `append_fast`.
    let mut ap = Appender {
        e: blk.sh_peek(se, 1) as u64,
        s_floor: s,
    };
    for i in 0..st.planned.len() {
        let (_, ps, pe) = st.planned[i];
        process_vertex_fast(
            blk,
            &st.bc,
            st.warp_compact,
            &mut ap,
            bufb,
            deg,
            nbrs,
            ps as usize,
            pe as usize,
            k,
        )?;
    }
    blk.sh_poke(se, 1, ap.e as u32);
    // Lines 9–10, at the iteration end (see loop_step for why).
    blk.sh_write(se, 0, (s + batch) as u32);
    Ok(true)
}

/// Commit-side mirror of the shared `[s, e]` buffer tail, so the hot append
/// path skips the shared-memory plumbing while charging exactly what
/// [`BufCtx::append_batch`] charges.
struct Appender {
    e: u64,
    s_floor: u64,
}

/// Fast-path twin of [`BufCtx::append_batch`]: identical charges, identical
/// overflow error, with `s`/`e` kept in [`Appender`] locals.
fn append_fast(
    bc: &BufCtx,
    ap: &mut Appender,
    blk: &mut BlockCtx<'_>,
    bufb: &[AtomicU32],
    vals: &[u32],
    batched_tx: bool,
) -> Result<(), KernelError> {
    if vals.is_empty() {
        return Ok(());
    }
    let m = vals.len() as u64;
    blk.counters.shared_atomics += 1; // the warp's atomicAdd(e, m)
    let base = ap.e;
    ap.e += m;
    blk.counters.shared_accesses += 1; // the outstanding-check read of s
    let outstanding = ap.e - ap.s_floor;
    if outstanding > bc.cap + bc.n_b() {
        return Err(KernelError::BufferOverflow {
            what: format!(
                "block {}: {} outstanding frontier entries exceed capacity {}",
                blk.block_idx,
                outstanding,
                bc.cap + bc.n_b()
            ),
        });
    }
    let mut global_words = 0u64;
    for (j, &v) in vals.iter().enumerate() {
        if bc.sm_buf.is_some() {
            blk.charge_instr(2); // translation case check per write
        }
        match translate(base + j as u64, bc.e_init, bc.n_b(), bc.cap, bc.ring)? {
            Slot::Shared(i) => blk.sh_write(bc.sm_buf.unwrap(), i, v),
            Slot::Global(i) => {
                bufb[i].store(v, Ordering::Relaxed);
                if batched_tx {
                    global_words += 1;
                } else {
                    blk.charge_sector(1);
                }
            }
        }
    }
    if batched_tx && global_words > 0 {
        blk.charge_tx(BlockCtx::coalesced_tx(global_words));
    }
    Ok(())
}

/// Commit-side twin of [`process_vertex`]: per-lane probes and decrements
/// become one pass with bulk counter updates; ballot predicates stay packed
/// as a mask. The recover branch (line 24) cannot fire on the exclusive
/// commit lane — `deg[u]` cannot change between the probe and the decrement
/// — matching the reference wave loop, where it also never executes.
#[allow(clippy::too_many_arguments)]
fn process_vertex_fast(
    blk: &mut BlockCtx<'_>,
    bc: &BufCtx,
    warp_compact: bool,
    ap: &mut Appender,
    bufb: &[AtomicU32],
    deg: &[AtomicU32],
    nbrs: &[u32],
    ps: usize,
    pe: usize,
    k: u32,
) -> Result<(), KernelError> {
    // Hoisted out of the chunk loop; slots are stale across chunks but a
    // lane is only read when its `bits` flag was set this chunk, and the
    // write always precedes the flag.
    let mut vals = [0u32; 32];
    let mut chunk = ps;
    while chunk < pe {
        let cend = (chunk + 32).min(pe);
        let cnt = (cend - chunk) as u64;
        blk.sync_warp(); // line 15
        blk.charge_tx(BlockCtx::coalesced_tx(cnt)); // line 19 neighbor read
        blk.charge_instr(2); // lines 16-18 bounds/index math (full warp)

        // Line 20's random-access deg probes, charged once per chunk; the
        // line-21 decrements counted and added in one update. The probes
        // are independent loads off a contiguous id slice, so the core's
        // out-of-order window already overlaps their misses.
        blk.charge_sector(cnt);
        let ids = &nbrs[chunk..cend];
        let mut bits = 0u32;
        let mut decs = 0u64;
        for (lane, &u) in ids.iter().enumerate() {
            let u = u as usize;
            let old = deg[u].load(Ordering::Relaxed);
            if old > k {
                deg[u].store(old - 1, Ordering::Relaxed);
                decs += 1;
                if old == k + 1 {
                    bits |= 1 << lane;
                    vals[lane] = u as u32;
                }
            }
        }
        blk.counters.global_atomics += decs;

        if warp_compact {
            blk.counters.shared_accesses += 3 * cnt;
            let (offs, total) = ballot_scan_offsets(blk, bits);
            if total > 0 {
                let mut batch = [0u32; 32];
                let mut m = 0usize;
                for lane in 0..(cend - chunk) {
                    if bits >> lane & 1 == 1 {
                        debug_assert_eq!(offs[lane] as usize, m);
                        batch[m] = vals[lane];
                        m += 1;
                    }
                }
                append_fast(bc, ap, blk, bufb, &batch[..m], true)?;
            }
        } else if bits != 0 {
            for lane in 0..(cend - chunk) {
                if bits >> lane & 1 == 1 {
                    append_fast(bc, ap, blk, bufb, &[vals[lane]], false)?;
                }
            }
        }
        chunk = cend;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_cpu::{bz, CoreAlgorithm};
    use kcore_gpusim::LaunchConfig;
    use kcore_graph::{fig1_core_numbers, fig1_graph, gen};

    fn small_cfg() -> PeelConfig {
        // small geometry so tests exercise multi-iteration paths
        PeelConfig {
            launch: LaunchConfig {
                blocks: 4,
                threads_per_block: 128,
            },
            buf_capacity: 4_096,
            shared_buf_capacity: 64,
            ..PeelConfig::default()
        }
    }

    fn check(g: &kcore_graph::Csr, cfg: &PeelConfig) {
        let run = decompose(g, cfg, &SimOptions::default()).expect("decompose");
        let expect = bz::Bz.run(g);
        assert_eq!(run.core, expect, "variant {}", cfg.variant_name());
        assert_eq!(run.k_max, expect.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn fig1_basic() {
        let g = fig1_graph();
        let run = decompose(&g, &small_cfg(), &SimOptions::default()).unwrap();
        assert_eq!(run.core, fig1_core_numbers());
        assert_eq!(run.k_max, 3);
        assert_eq!(run.rounds, 4); // k = 0..3
    }

    #[test]
    fn all_variants_agree_on_fig1() {
        let g = fig1_graph();
        for cfg in small_cfg().all_variants() {
            check(&g, &cfg);
        }
    }

    #[test]
    fn all_variants_agree_on_random_graph() {
        let g = gen::erdos_renyi_gnm(800, 3_200, 42);
        for cfg in small_cfg().all_variants() {
            check(&g, &cfg);
        }
    }

    #[test]
    fn basic_agrees_on_structured_graphs() {
        let cfg = small_cfg();
        check(&gen::complete(40), &cfg);
        check(&gen::cycle(100), &cfg);
        check(&gen::star(200), &cfg);
        check(&gen::complete_bipartite(5, 50), &cfg);
        check(&gen::grid(17, 13), &cfg);
    }

    #[test]
    fn skewed_and_planted_graphs() {
        let cfg = small_cfg();
        check(&gen::power_law_hubs(3_000, 6_000, 3, 0.2, 7), &cfg);
        check(
            &gen::plant_clique(&gen::erdos_renyi_gnm(1_000, 2_000, 3), 25, 4),
            &cfg,
        );
    }

    #[test]
    fn empty_and_edgeless() {
        let cfg = small_cfg();
        let run = decompose(&kcore_graph::Csr::empty(0), &cfg, &SimOptions::default()).unwrap();
        assert!(run.core.is_empty());
        assert_eq!(run.rounds, 0);
        let run = decompose(&kcore_graph::Csr::empty(9), &cfg, &SimOptions::default()).unwrap();
        assert_eq!(run.core, vec![0; 9]);
        assert_eq!(run.rounds, 1); // everything removed in round k=0
    }

    #[test]
    fn fig6_redundancy_scenario() {
        // The Fig. 6 stress: vertex 0 adjacent to four degree-2 vertices
        // that are all peeled in the same round; deg[0] must converge to 2,
        // not be driven to 0.
        let mut b = kcore_graph::GraphBuilder::new();
        // hub 0 with neighbors 1..4; each neighbor i also linked to i%2+5
        // aides so they have degree 2; plus 5-6 form the rest.
        for i in 1..=4u32 {
            b.add_edge(0, i);
            b.add_edge(i, 5 + (i % 2));
        }
        b.add_edge(5, 6);
        let g = b.build();
        let cfg = small_cfg();
        check(&g, &cfg);
    }

    #[test]
    fn single_block_single_warp_geometry() {
        let g = gen::erdos_renyi_gnm(300, 900, 5);
        let cfg = PeelConfig {
            launch: LaunchConfig {
                blocks: 1,
                threads_per_block: 32,
            },
            buf_capacity: 512,
            ..PeelConfig::default()
        };
        check(&g, &cfg);
        // VP on a one-warp block must not deadlock (warp 0 keeps computing)
        check(&g, &cfg.with_buffering(Buffering::Prefetch));
    }

    #[test]
    fn buffer_overflow_detected_without_ring() {
        // tiny buffer, no ring: the dense graph's round-0..k shells overflow
        let g = gen::complete(64); // one 63-shell of 64 vertices
        let cfg = PeelConfig {
            launch: LaunchConfig {
                blocks: 1,
                threads_per_block: 32,
            },
            buf_capacity: 16,
            ring_buffer: false,
            ..PeelConfig::default()
        };
        let err = decompose(&g, &cfg, &SimOptions::default()).unwrap_err();
        assert!(
            matches!(err, SimError::Kernel(KernelError::BufferOverflow { .. })),
            "{err}"
        );
    }

    #[test]
    fn ring_buffer_recycles_slots() {
        // A long path peels in one round with a cascading frontier much
        // longer than the buffer; the ring makes it fit (outstanding stays
        // small) while the non-ring variant overflows.
        let g = gen::path(3_000);
        let base = PeelConfig {
            launch: LaunchConfig {
                blocks: 1,
                threads_per_block: 32,
            },
            buf_capacity: 3_200, // > initial scan (2 endpoints) but < 2*n appends... n appends total
            ..PeelConfig::default()
        };
        // with ring: works
        let ring = PeelConfig {
            ring_buffer: true,
            buf_capacity: 64,
            ..base
        };
        let run = decompose(&g, &ring, &SimOptions::default()).unwrap();
        assert_eq!(run.core, vec![1; 3_000]);
        // without ring: the same tiny buffer overflows
        let no_ring = PeelConfig {
            ring_buffer: false,
            buf_capacity: 64,
            ..base
        };
        let err = decompose(&g, &no_ring, &SimOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            SimError::Kernel(KernelError::BufferOverflow { .. })
        ));
    }

    #[test]
    fn device_oom_on_tiny_device() {
        let g = gen::erdos_renyi_gnm(1_000, 5_000, 1);
        let cfg = small_cfg();
        let opts = SimOptions {
            device_capacity_bytes: 1024,
            ..SimOptions::default()
        };
        let err = decompose(&g, &cfg, &opts).unwrap_err();
        assert!(matches!(err, SimError::Oom(_)));
    }

    #[test]
    fn time_limit_reports_timeout() {
        let g = gen::erdos_renyi_gnm(2_000, 10_000, 2);
        let cfg = small_cfg();
        let opts = SimOptions {
            time_limit_ms: Some(1e-7),
            ..SimOptions::default()
        };
        let err = decompose(&g, &cfg, &opts).unwrap_err();
        assert!(matches!(err, SimError::TimeLimit { .. }));
    }

    #[test]
    fn report_is_populated() {
        let g = gen::erdos_renyi_gnm(500, 2_000, 3);
        let run = decompose(&g, &small_cfg(), &SimOptions::default()).unwrap();
        assert!(run.report.total_ms > 0.0);
        assert_eq!(run.report.launches as u32, 2 * run.rounds);
        assert!(run.report.peak_mem_bytes > 0);
        assert!(run.report.counters.global_atomics > 0);
    }

    #[test]
    fn rounds_equal_kmax_plus_one_when_all_shells_nonempty() {
        // cycle: only shell 2 is non-empty, but rounds still run k=0,1,2
        let run = decompose(&gen::cycle(50), &small_cfg(), &SimOptions::default()).unwrap();
        assert_eq!(run.k_max, 2);
        assert_eq!(run.rounds, 3);
    }
}
