//! Batched dynamic k-core maintenance on the simulated GPU.
//!
//! Where [`crate::peel`] recomputes every core number from scratch, this
//! module *maintains* them under a stream of [`EdgeUpdate`] batches, using
//! the locality theorems of the incremental k-core literature (see
//! DESIGN.md, "Dynamic maintenance: locality theorems and the batch
//! contract"):
//!
//! * after inserting or deleting one edge `{u, v}` with
//!   `K = min(core(u), core(v))`, only vertices with core number exactly
//!   `K` that are reachable from the affected endpoints through core-`K`
//!   vertices (the *K-subcore*) can change, and by at most 1;
//! * a deleted core-`K` vertex `v` keeps its core iff it retains at least
//!   `K` neighbors of (new) core `>= K` — its MCD;
//! * an insertion can only raise cores if some root endpoint `w` has
//!   `PCD(w) > K`, which gives a one-kernel prune that retires most
//!   insertions without any traversal.
//!
//! Batches are *net-effect* processed: cores are a function of the final
//! graph only, so cancelling insert/delete pairs are elided, duplicates and
//! self-loops rejected, and the surviving updates grouped (deletes first,
//! then inserts) and walked with per-edge theorem-backed traversals. The
//! per-edge traversals are kernelized on [`kcore_gpusim`] with the same
//! block-granularity frontier buffers, ballot compaction and
//! plan/commit wave discipline as the peel kernels — traces are
//! bit-identical at any rayon pool size. Past [`DynamicConfig::crossover`]
//! net updates the engine falls back to a from-scratch
//! [`peel::decompose_in`], which is cheaper than massed traversals.
//!
//! MCD counters are maintained device-side: structural kernels apply the
//! endpoint deltas and every op that changes cores refreshes the counters
//! of the changed vertices and their neighbors with a list-mode kernel, so
//! the next op's prune/seed reads exact values.

use crate::config::PeelConfig;
use crate::peel;
use kcore_gpusim::scan::ballot_scan_offsets;
use kcore_gpusim::{
    BlockCtx, BufferId, Coalescing, GpuContext, KernelError, LaunchConfig, SharedArray, SimError,
    SimOptions, SizeClass,
};
use kcore_graph::{Csr, EdgeUpdate};
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::Ordering;

/// Tuning knobs of the dynamic engine.
#[derive(Debug, Clone)]
pub struct DynamicConfig {
    /// Kernel launch geometry for the traversal/counter kernels.
    pub launch: LaunchConfig,
    /// Per-block frontier buffer capacity in words; `0` = auto (`n.max(64)`,
    /// which can never overflow because subcore frontiers are deduplicated).
    pub buf_capacity: usize,
    /// Device staging capacity in *updates* per structural H2D copy; larger
    /// batches are processed in chunks of this many net updates.
    pub batch_capacity: usize,
    /// Net-update count at and above which the engine abandons maintenance
    /// and re-peels from scratch.
    pub crossover: usize,
    /// Spare adjacency slots per vertex in the device CSR; exhausting a
    /// vertex's slots triggers a full rebuild (counted in the report).
    pub slack: u32,
    /// Configuration for the embedded from-scratch peel (initialisation and
    /// the crossover fallback).
    pub peel: PeelConfig,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            launch: LaunchConfig {
                blocks: 8,
                threads_per_block: 128,
            },
            buf_capacity: 0,
            batch_capacity: 1024,
            crossover: 4096,
            slack: 8,
            peel: PeelConfig::default(),
        }
    }
}

impl DynamicConfig {
    /// Derives the maintenance/re-peel crossover from measured costs: the
    /// smallest net-update count at which one from-scratch peel
    /// (`repeel_ms`) is no more expensive than per-edge maintenance at
    /// `per_update_ms` each — i.e. `ceil(repeel_ms / per_update_ms)`.
    ///
    /// Degenerate inputs keep the engine on a sane path: a non-positive
    /// `per_update_ms` (maintenance is free or unmeasured) disables the
    /// fallback (`usize::MAX`), a non-positive `repeel_ms` makes every
    /// non-empty batch re-peel (`1`).
    pub fn auto_crossover(repeel_ms: f64, per_update_ms: f64) -> usize {
        if per_update_ms <= 0.0 || !per_update_ms.is_finite() {
            return usize::MAX;
        }
        if repeel_ms <= 0.0 || !repeel_ms.is_finite() {
            return 1;
        }
        let ratio = (repeel_ms / per_update_ms).ceil();
        if ratio >= usize::MAX as f64 {
            usize::MAX
        } else {
            (ratio as usize).max(1)
        }
    }

    /// [`Self::auto_crossover`] applied in place.
    pub fn with_auto_crossover(mut self, repeel_ms: f64, per_update_ms: f64) -> Self {
        self.crossover = Self::auto_crossover(repeel_ms, per_update_ms);
        self
    }
}

/// Which path [`DynamicCore::apply_batch`] took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPath {
    /// Every accepted update cancelled out (or none were accepted).
    Noop,
    /// Theorem-backed per-edge maintenance traversals.
    Maintained,
    /// Net updates reached [`DynamicConfig::crossover`]: from-scratch peel.
    Repeeled,
}

/// Per-batch outcome and work accounting.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Insertions accepted during classification (edge absent at that point
    /// of the batch sequence).
    pub accepted_inserts: usize,
    /// Deletions accepted during classification.
    pub accepted_deletes: usize,
    /// Updates rejected: self-loops, out-of-range endpoints, duplicate
    /// inserts, deletes of absent edges.
    pub rejected: usize,
    /// Insertions surviving net-effect cancellation.
    pub net_inserts: usize,
    /// Deletions surviving net-effect cancellation.
    pub net_deletes: usize,
    /// The processing path taken.
    pub path: BatchPath,
    /// Net updates grouped by `K = min(core(u), core(v))` at batch start,
    /// ascending — the superior-edge groups of the classification phase.
    pub groups: Vec<(u32, usize)>,
    /// Total subcore candidates collected across the batch's traversals.
    pub candidates: u64,
    /// Total vertices whose core number changed.
    pub changed: u64,
    /// Insertions retired by the PCD prune without any traversal.
    pub pruned_inserts: usize,
    /// Lifetime adjacency rebuilds (slack exhaustion) so far.
    pub rebuilds: u64,
    /// Simulated milliseconds this batch cost.
    pub sim_ms: f64,
}

/// Copyable bundle of everything the kernels need.
#[derive(Clone, Copy)]
struct DynParams {
    bufcap: usize,
    d_off: BufferId,
    d_len: BufferId,
    d_adj: BufferId,
    d_core: BufferId,
    d_mcd: BufferId,
    d_flag: BufferId,
    d_evic: BufferId,
    d_sup: BufferId,
    d_cand: BufferId,
    d_chg: BufferId,
    d_meta: BufferId,
    d_buf: BufferId,
    d_batch: BufferId,
}

/// GPU-resident dynamically-maintained k-core decomposition.
///
/// Owns a [`GpuContext`]; the graph lives on the device as a slack-padded
/// CSR (`dyn.offset` / `dyn.len` / `dyn.adj`) beside the core numbers
/// (`dyn.core`) and MCD counters (`dyn.mcd`). A host adjacency mirror
/// validates updates and rebuilds the padding when slack runs out.
pub struct DynamicCore {
    ctx: GpuContext,
    cfg: DynamicConfig,
    n: usize,
    /// Host mirror: sorted adjacency lists, kept exactly in sync with the
    /// device CSR (up to within-list order, which the device's swap-remove
    /// deletes permute).
    adj: Vec<Vec<u32>>,
    core_host: Vec<u32>,
    /// Per-vertex device slot capacity (degree + slack at last build).
    cap: Vec<u32>,
    arcs: u64,
    rebuilds: u64,
    p: DynParams,
}

impl DynamicCore {
    /// Builds the engine over `g`: runs a full on-device peel for the
    /// initial core numbers, uploads the padded CSR and derives the MCD
    /// counters with a device kernel.
    pub fn from_csr(opts: &SimOptions, g: &Csr, cfg: DynamicConfig) -> Result<Self, SimError> {
        let n = g.num_vertices() as usize;
        let mut ctx = opts.context();
        let (core_host, _rounds) = peel::decompose_in(&mut ctx, g, &cfg.peel)?;
        let adj: Vec<Vec<u32>> = (0..n as u32).map(|v| g.neighbors(v).to_vec()).collect();

        ctx.set_phase("DynInit");
        ctx.set_workload_dims(n as u64, g.num_arcs());
        let (d_off, d_len, d_adj, cap) = build_device_csr(&mut ctx, &adj, cfg.slack.max(1))?;
        let pad = n.max(1);
        let core_padded: Vec<u32> = if n == 0 { vec![0] } else { core_host.clone() };
        let d_core = ctx.htod_tagged("dyn.core", &core_padded, SizeClass::PerVertex)?;
        let d_mcd = ctx.alloc_tagged("dyn.mcd", pad, SizeClass::PerVertex)?;
        let d_flag = ctx.alloc_tagged("dyn.flag", pad, SizeClass::PerVertex)?;
        let d_evic = ctx.alloc_tagged("dyn.evic", pad, SizeClass::PerVertex)?;
        let d_sup = ctx.alloc_tagged("dyn.sup", pad, SizeClass::PerVertex)?;
        let d_cand = ctx.alloc_tagged("dyn.cand", pad, SizeClass::PerVertex)?;
        let d_chg = ctx.alloc_tagged("dyn.changed", pad, SizeClass::PerVertex)?;
        let d_meta = ctx.alloc_tagged("dyn.meta", 4, SizeClass::Fixed)?;
        let bufcap = if cfg.buf_capacity == 0 {
            n.max(64)
        } else {
            cfg.buf_capacity
        };
        let d_buf = ctx.alloc_tagged(
            "dyn.buf",
            cfg.launch.blocks as usize * bufcap,
            SizeClass::Fixed,
        )?;
        let d_batch =
            ctx.alloc_tagged("dyn.batch", 2 * cfg.batch_capacity.max(1), SizeClass::Batch)?;

        let p = DynParams {
            bufcap,
            d_off,
            d_len,
            d_adj,
            d_core,
            d_mcd,
            d_flag,
            d_evic,
            d_sup,
            d_cand,
            d_chg,
            d_meta,
            d_buf,
            d_batch,
        };
        let mut this = DynamicCore {
            ctx,
            cfg,
            n,
            adj,
            core_host,
            cap,
            arcs: g.num_arcs(),
            rebuilds: 0,
            p,
        };
        if n > 0 {
            this.ctx.set_phase("DynMcd");
            this.run_mcd_full()?;
        }
        Ok(this)
    }

    /// An engine over `n` isolated vertices (the streaming-from-nothing
    /// entry point).
    pub fn new(opts: &SimOptions, n: usize, cfg: DynamicConfig) -> Result<Self, SimError> {
        Self::from_csr(opts, &Csr::empty(n), cfg)
    }

    /// Applies one batch of updates and returns what happened.
    ///
    /// Classification is host-side and sequential: each update is validated
    /// against the state the *prefix* of the batch leaves behind (so
    /// `Insert(a,b), Delete(a,b)` both count as accepted and then cancel).
    /// Surviving net updates are staged to the device in
    /// [`DynamicConfig::batch_capacity`]-sized chunks and processed deletes
    /// first, each with its own theorem-backed traversal — or, past
    /// [`DynamicConfig::crossover`], by one from-scratch peel.
    pub fn apply_batch(&mut self, updates: &[EdgeUpdate]) -> Result<BatchReport, SimError> {
        let _batch_span = self.ctx.host_span("dynamic/batch");
        let t0 = self.ctx.elapsed_ms();
        let mut rep = BatchReport {
            accepted_inserts: 0,
            accepted_deletes: 0,
            rejected: 0,
            net_inserts: 0,
            net_deletes: 0,
            path: BatchPath::Noop,
            groups: Vec::new(),
            candidates: 0,
            changed: 0,
            pruned_inserts: 0,
            rebuilds: self.rebuilds,
            sim_ms: 0.0,
        };
        let classify_span = self.ctx.host_span("dynamic/classify");
        self.ctx.set_phase("DynClassify");
        let n = self.n as u32;
        // Presence of each touched edge after the batch prefix seen so far.
        let mut pending: BTreeMap<(u32, u32), bool> = BTreeMap::new();
        for up in updates {
            let (x, y) = up.endpoints();
            if x == y || x >= n || y >= n {
                rep.rejected += 1;
                continue;
            }
            let key = up.key();
            let present = pending
                .get(&key)
                .copied()
                .unwrap_or_else(|| has_adj(&self.adj, key.0, key.1));
            if up.is_insert() {
                if present {
                    rep.rejected += 1;
                } else {
                    pending.insert(key, true);
                    rep.accepted_inserts += 1;
                }
            } else if present {
                pending.insert(key, false);
                rep.accepted_deletes += 1;
            } else {
                rep.rejected += 1;
            }
        }
        let mut net_del: Vec<(u32, u32)> = Vec::new();
        let mut net_ins: Vec<(u32, u32)> = Vec::new();
        for (&(u, v), &fin) in &pending {
            if fin == has_adj(&self.adj, u, v) {
                continue; // cancelled out
            }
            if fin {
                net_ins.push((u, v));
            } else {
                net_del.push((u, v));
            }
        }
        rep.net_inserts = net_ins.len();
        rep.net_deletes = net_del.len();
        let mut groups: BTreeMap<u32, usize> = BTreeMap::new();
        for &(u, v) in net_del.iter().chain(net_ins.iter()) {
            let k = self.core_host[u as usize].min(self.core_host[v as usize]);
            *groups.entry(k).or_insert(0) += 1;
        }
        rep.groups = groups.into_iter().collect();

        drop(classify_span);
        let net = net_del.len() + net_ins.len();
        if net == 0 {
            rep.path = BatchPath::Noop;
        } else if net >= self.cfg.crossover {
            rep.path = BatchPath::Repeeled;
            let _repeel_span = self.ctx.host_span("dynamic/repeel");
            self.repeel(&net_del, &net_ins)?;
        } else {
            rep.path = BatchPath::Maintained;
            let _maintain_span = self.ctx.host_span("dynamic/maintain");
            let chunk_cap = self.cfg.batch_capacity.max(1);
            let all: Vec<(bool, u32, u32)> = net_del
                .iter()
                .map(|&(u, v)| (false, u, v))
                .chain(net_ins.iter().map(|&(u, v)| (true, u, v)))
                .collect();
            for chunk in all.chunks(chunk_cap) {
                self.ctx.set_phase("DynStruct");
                let words: Vec<u32> = chunk.iter().flat_map(|&(_, u, v)| [u, v]).collect();
                self.ctx.htod_into(self.p.d_batch, 0, &words)?;
                for (i, &(ins, u, v)) in chunk.iter().enumerate() {
                    if ins {
                        self.process_insert(i, u, v, &mut rep)?;
                    } else {
                        self.process_delete(i, u, v, &mut rep)?;
                    }
                }
            }
        }
        self.ctx.set_phase("DynSync");
        self.ctx.set_workload_dims(self.n as u64, self.arcs);
        rep.rebuilds = self.rebuilds;
        rep.sim_ms = self.ctx.elapsed_ms() - t0;
        Ok(rep)
    }

    // -- accessors ----------------------------------------------------------

    /// Current core numbers (host mirror; equal to the device array).
    pub fn cores(&self) -> &[u32] {
        &self.core_host
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of directed arcs currently stored.
    pub fn num_arcs(&self) -> u64 {
        self.arcs
    }

    /// Lifetime adjacency rebuild count (slack exhaustion).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// The owned simulation context (trace/report access).
    pub fn ctx(&self) -> &GpuContext {
        &self.ctx
    }

    /// Mutable context access (phase labelling around the engine).
    pub fn ctx_mut(&mut self) -> &mut GpuContext {
        &mut self.ctx
    }

    /// The engine's configuration.
    pub fn config(&self) -> &DynamicConfig {
        &self.cfg
    }

    /// Copies the device core array back (charged D2H). Differential tests
    /// use this to pin host mirror ≡ device state.
    pub fn device_cores(&mut self) -> Vec<u32> {
        if self.n == 0 {
            return Vec::new();
        }
        self.ctx.dtoh_range(self.p.d_core, 0, self.n)
    }

    /// Copies the device MCD array back (charged D2H).
    pub fn device_mcd(&mut self) -> Vec<u32> {
        if self.n == 0 {
            return Vec::new();
        }
        self.ctx.dtoh_range(self.p.d_mcd, 0, self.n)
    }

    // -- per-update processing ---------------------------------------------

    /// One net deletion: structural kernel, subcore search seeded with MCD,
    /// eviction cascade at threshold `k`, commit, MCD refresh.
    fn process_delete(
        &mut self,
        i: usize,
        a: u32,
        b: u32,
        rep: &mut BatchReport,
    ) -> Result<(), SimError> {
        let k = self.core_host[a as usize].min(self.core_host[b as usize]);
        del_adj(&mut self.adj[a as usize], b);
        del_adj(&mut self.adj[b as usize], a);
        self.arcs -= 2;

        self.ctx.set_phase("DynStruct");
        let p = self.p;
        let one = LaunchConfig {
            blocks: 1,
            threads_per_block: self.cfg.launch.threads_per_block,
        };
        self.ctx
            .launch("dyn_edge_del", one, |blk| k_edge(blk, &p, i, false))?;
        if k == 0 {
            // Core numbers of 0 cannot drop; the theorem confines all other
            // vertices (core > K = 0) to no change.
            return Ok(());
        }
        let mut roots: Vec<u32> = Vec::new();
        if self.core_host[a as usize] == k {
            roots.push(a);
        }
        if self.core_host[b as usize] == k {
            roots.push(b);
        }
        self.ctx.set_phase("DynSubcore");
        self.launch_subcore(&roots, k, true)?;
        let cand_n = self.ctx.dtoh_word(self.p.d_meta, 0) as usize;
        self.ctx.set_phase("DynCascade");
        self.launch_cascade(k, Some(k - 1))?;
        let chg_n = self.ctx.dtoh_word(self.p.d_meta, 1) as usize;
        let dropped = self.ctx.dtoh_range(self.p.d_chg, 0, chg_n);
        self.ctx.set_phase("DynCommit");
        self.launch_commit(k, false, cand_n)?;
        for &w in &dropped {
            self.core_host[w as usize] = k - 1;
        }
        rep.candidates += cand_n as u64;
        rep.changed += chg_n as u64;
        if !dropped.is_empty() {
            let dirty = self.dirty_closure(&dropped);
            self.refresh_mcd(&dirty)?;
        }
        Ok(())
    }

    /// One net insertion: structural kernel, PCD prune, then (if the prune
    /// cannot retire it) subcore search, support kernel, eviction cascade at
    /// threshold `k + 1`, commit, MCD refresh.
    fn process_insert(
        &mut self,
        i: usize,
        a: u32,
        b: u32,
        rep: &mut BatchReport,
    ) -> Result<(), SimError> {
        if self.adj[a as usize].len() as u32 == self.cap[a as usize]
            || self.adj[b as usize].len() as u32 == self.cap[b as usize]
        {
            self.rebuilds += 1;
            self.rebuild_adjacency()?;
        }
        let k = self.core_host[a as usize].min(self.core_host[b as usize]);
        add_adj(&mut self.adj[a as usize], b);
        add_adj(&mut self.adj[b as usize], a);
        self.arcs += 2;

        self.ctx.set_phase("DynStruct");
        let p = self.p;
        let one = LaunchConfig {
            blocks: 1,
            threads_per_block: self.cfg.launch.threads_per_block,
        };
        self.ctx
            .launch("dyn_edge_ins", one, |blk| k_edge(blk, &p, i, true))?;

        let mut roots: Vec<u32> = Vec::new();
        if self.core_host[a as usize] == k {
            roots.push(a);
        }
        if self.core_host[b as usize] == k {
            roots.push(b);
        }
        self.ctx.set_phase("DynPrune");
        let pr = roots.clone();
        self.ctx
            .launch("dyn_prune", one, move |blk| k_prune(blk, &p, &pr, k))?;
        if self.ctx.dtoh_word(self.p.d_meta, 2) == 0 {
            rep.pruned_inserts += 1;
            return Ok(());
        }
        self.ctx.set_phase("DynSubcore");
        self.launch_subcore(&roots, k, false)?;
        let cand_n = self.ctx.dtoh_word(self.p.d_meta, 0) as usize;
        self.ctx.set_phase("DynSupport");
        self.ctx
            .launch("dyn_support", self.cfg.launch, move |blk| {
                k_support(blk, &p, k, cand_n)
            })?;
        self.ctx.set_phase("DynCascade");
        self.launch_cascade(k + 1, None)?;
        let evic_n = self.ctx.dtoh_word(self.p.d_meta, 1) as usize;
        let cand = self.ctx.dtoh_range(self.p.d_cand, 0, cand_n);
        let evicted = self.ctx.dtoh_range(self.p.d_chg, 0, evic_n);
        self.ctx.set_phase("DynCommit");
        self.launch_commit(k, true, cand_n)?;
        let evs: HashSet<u32> = evicted.into_iter().collect();
        let survivors: Vec<u32> = cand.into_iter().filter(|v| !evs.contains(v)).collect();
        for &w in &survivors {
            self.core_host[w as usize] = k + 1;
        }
        rep.candidates += cand_n as u64;
        rep.changed += survivors.len() as u64;
        if !survivors.is_empty() {
            let dirty = self.dirty_closure(&survivors);
            self.refresh_mcd(&dirty)?;
        }
        Ok(())
    }

    /// Crossover fallback: apply the net updates to the mirror, re-peel the
    /// whole graph on-device, rebuild the padded CSR and refresh every MCD.
    fn repeel(&mut self, net_del: &[(u32, u32)], net_ins: &[(u32, u32)]) -> Result<(), SimError> {
        for &(u, v) in net_del {
            del_adj(&mut self.adj[u as usize], v);
            del_adj(&mut self.adj[v as usize], u);
            self.arcs -= 2;
        }
        for &(u, v) in net_ins {
            add_adj(&mut self.adj[u as usize], v);
            add_adj(&mut self.adj[v as usize], u);
            self.arcs += 2;
        }
        self.ctx.set_phase("DynRepeel");
        let csr = self.mirror_csr();
        let (core, _rounds) = peel::decompose_in(&mut self.ctx, &csr, &self.cfg.peel)?;
        self.core_host = core;
        self.ctx.set_phase("DynRepeel");
        self.rebuild_adjacency()?;
        if self.n > 0 {
            self.ctx.htod_into(self.p.d_core, 0, &self.core_host)?;
            self.ctx.set_phase("DynMcd");
            self.run_mcd_full()?;
        }
        Ok(())
    }

    // -- launch wrappers ----------------------------------------------------

    fn launch_subcore(&mut self, roots: &[u32], k: u32, seed_mcd: bool) -> Result<(), SimError> {
        let p = self.p;
        let roots = roots.to_vec();
        self.ctx.launch_stepped_phased(
            "dyn_subcore",
            self.cfg.launch,
            |blk| bfs_init(blk, &p, &roots, seed_mcd),
            |blk, st| bfs_plan(blk, st, &p, k),
            |blk, st, plan| bfs_commit(blk, st, plan, &p, seed_mcd),
        )
    }

    fn launch_cascade(&mut self, thresh: u32, drop_to: Option<u32>) -> Result<(), SimError> {
        let p = self.p;
        self.ctx.launch_stepped_phased(
            "dyn_cascade",
            self.cfg.launch,
            |blk| casc_init(blk, &p, thresh, drop_to),
            |blk, st| casc_plan(blk, st, &p),
            |blk, st, plan| casc_commit(blk, st, plan, &p, thresh, drop_to),
        )
    }

    fn launch_commit(&mut self, k: u32, rise: bool, cand_n: usize) -> Result<(), SimError> {
        let p = self.p;
        self.ctx.launch("dyn_commit", self.cfg.launch, move |blk| {
            k_commit(blk, &p, k, rise, cand_n)
        })
    }

    fn run_mcd_full(&mut self) -> Result<(), SimError> {
        let p = self.p;
        let count = self.n;
        self.ctx.launch("dyn_mcd", self.cfg.launch, move |blk| {
            k_mcd(blk, &p, count, false)
        })
    }

    /// Recomputes MCD for `dirty` (sorted, deduplicated) with the list-mode
    /// counter kernel, staging the list through `dyn.cand`.
    fn refresh_mcd(&mut self, dirty: &[u32]) -> Result<(), SimError> {
        self.ctx.set_phase("DynMcd");
        self.ctx.htod_into(self.p.d_cand, 0, dirty)?;
        let p = self.p;
        let count = dirty.len();
        self.ctx.launch("dyn_mcd", self.cfg.launch, move |blk| {
            k_mcd(blk, &p, count, true)
        })
    }

    /// `seed ∪ N(seed)` from the (post-op) mirror, sorted and deduplicated —
    /// exactly the vertices whose MCD a set of core changes can disturb.
    fn dirty_closure(&self, seed: &[u32]) -> Vec<u32> {
        let mut dirty: Vec<u32> = seed.to_vec();
        for &v in seed {
            dirty.extend_from_slice(&self.adj[v as usize]);
        }
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }

    /// Frees and re-uploads the padded device CSR from the mirror with fresh
    /// slack. Core/MCD/flag buffers are untouched.
    fn rebuild_adjacency(&mut self) -> Result<(), SimError> {
        self.ctx.device.free(self.p.d_adj);
        self.ctx.device.free(self.p.d_len);
        self.ctx.device.free(self.p.d_off);
        let (d_off, d_len, d_adj, cap) =
            build_device_csr(&mut self.ctx, &self.adj, self.cfg.slack.max(1))?;
        self.p.d_off = d_off;
        self.p.d_len = d_len;
        self.p.d_adj = d_adj;
        self.cap = cap;
        Ok(())
    }

    /// The mirror as a validated [`Csr`] (repeel input, test oracle).
    fn mirror_csr(&self) -> Csr {
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut neighbors: Vec<u32> = Vec::with_capacity(self.arcs as usize);
        let mut cur = 0u64;
        offsets.push(0u64);
        for l in &self.adj {
            neighbors.extend_from_slice(l);
            cur += l.len() as u64;
            offsets.push(cur);
        }
        Csr::new(offsets, neighbors).expect("dynamic mirror is a valid simple graph")
    }
}

// ---------------------------------------------------------------------------
// Host-side adjacency mirror helpers
// ---------------------------------------------------------------------------

fn has_adj(adj: &[Vec<u32>], u: u32, v: u32) -> bool {
    adj[u as usize].binary_search(&v).is_ok()
}

fn add_adj(list: &mut Vec<u32>, v: u32) {
    if let Err(i) = list.binary_search(&v) {
        list.insert(i, v);
    }
}

fn del_adj(list: &mut Vec<u32>, v: u32) {
    if let Ok(i) = list.binary_search(&v) {
        list.remove(i);
    }
}

/// Builds the slack-padded device CSR from the mirror: per-vertex capacity
/// `deg + slack`, live length in `dyn.len`, unused pad slots zeroed.
/// Returns the three buffers plus the capacity vector.
fn build_device_csr(
    ctx: &mut GpuContext,
    adj: &[Vec<u32>],
    slack: u32,
) -> Result<(BufferId, BufferId, BufferId, Vec<u32>), SimError> {
    let n = adj.len();
    let mut off: Vec<u32> = Vec::with_capacity(n + 1);
    let mut len: Vec<u32> = Vec::with_capacity(n.max(1));
    let mut cap: Vec<u32> = Vec::with_capacity(n);
    let mut cur = 0u64;
    off.push(0);
    for l in adj {
        let c = l.len() as u32 + slack;
        cap.push(c);
        len.push(l.len() as u32);
        cur += c as u64;
        assert!(
            cur < u32::MAX as u64,
            "padded adjacency exceeds 32-bit indexing"
        );
        off.push(cur as u32);
    }
    let mut flat = vec![0u32; (cur as usize).max(1)];
    for (v, l) in adj.iter().enumerate() {
        let o = off[v] as usize;
        flat[o..o + l.len()].copy_from_slice(l);
    }
    if len.is_empty() {
        len.push(0);
    }
    let d_off = ctx.htod_tagged("dyn.offset", &off, SizeClass::PerVertex)?;
    let d_len = ctx.htod_tagged("dyn.len", &len, SizeClass::PerVertex)?;
    let d_adj = ctx.htod_tagged("dyn.adj", &flat, SizeClass::PerArc)?;
    Ok((d_off, d_len, d_adj, cap))
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------
//
// Determinism discipline (DESIGN.md "Fast-path cost accounting" contract):
//
// * plain `launch` kernels (`k_mcd`, `k_support`, `k_commit`, and the
//   one-block `k_edge` / `k_prune`) only perform block-disjoint writes —
//   no shared atomic cursors across concurrent blocks;
// * list compaction (candidate / changed cursors in `dyn.meta`) happens
//   only on serial lanes: the stepped launches' init (block order) and
//   commit (wave order) phases;
// * stepped plan phases read only launch-immutable buffers (offset / len /
//   adj / core / mcd / flag as applicable), the block's own frontier below
//   this wave's floor, and the block's own shared state.

/// MCD counter kernel. Full mode (`list == false`): vertex `i` striped over
/// blocks. List mode: vertex `dyn.cand[i]`. `mcd(v) = |{u ∈ N(v) :
/// core(u) >= core(v)}|`.
fn k_mcd(
    blk: &mut BlockCtx<'_>,
    p: &DynParams,
    count: usize,
    list: bool,
) -> Result<(), KernelError> {
    let dev = blk.device;
    let off = dev.buffer(p.d_off);
    let lenb = dev.buffer(p.d_len);
    let adjb = dev.buffer(p.d_adj);
    let core = dev.buffer(p.d_core);
    let mcd = dev.buffer(p.d_mcd);
    let cand = dev.buffer(p.d_cand);
    let blocks = blk.cfg.blocks as usize;
    let mut i = blk.block_idx as usize;
    while i < count {
        let v = if list {
            blk.gread(&cand[i]) as usize
        } else {
            i
        };
        blk.charge_sector(2); // off[v] + len[v] (distinct arrays)
        let o = off[v].load(Ordering::Relaxed) as usize;
        let l = lenb[v].load(Ordering::Relaxed) as usize;
        let cv = blk.gread(&core[v]);
        let mut m = 0u32;
        let mut chunk = o;
        let oe = o + l;
        while chunk < oe {
            let cend = (chunk + 32).min(oe);
            let cnt = cend - chunk;
            blk.sync_warp();
            blk.charge_tx(BlockCtx::coalesced_tx(cnt as u64));
            let idxs: Vec<usize> = (chunk..cend)
                .map(|j| adjb[j].load(Ordering::Relaxed) as usize)
                .collect();
            let mut cs = [0u32; 32];
            blk.gather(core, &idxs, &mut cs, Coalescing::Classified);
            for t in 0..cnt {
                if cs[t] >= cv {
                    m += 1;
                }
            }
            blk.charge_instr(1);
            chunk = cend;
        }
        blk.gwrite(&mcd[v], m);
        i += blocks;
    }
    Ok(())
}

/// Structural edge kernel (one block): reads op `i`'s `[u, v]` from the
/// staging buffer, splices both adjacency directions (append for insert,
/// swap-remove for delete) and applies the endpoint MCD deltas against the
/// current cores.
fn k_edge(
    blk: &mut BlockCtx<'_>,
    p: &DynParams,
    i: usize,
    insert: bool,
) -> Result<(), KernelError> {
    let dev = blk.device;
    let batch = dev.buffer(p.d_batch);
    let off = dev.buffer(p.d_off);
    let lenb = dev.buffer(p.d_len);
    let adjb = dev.buffer(p.d_adj);
    let core = dev.buffer(p.d_core);
    let mcd = dev.buffer(p.d_mcd);
    blk.charge_sector(1); // the op's adjacent [u, v] pair
    let u = batch[2 * i].load(Ordering::Relaxed);
    let v = batch[2 * i + 1].load(Ordering::Relaxed);
    let cu = blk.gread(&core[u as usize]);
    let cv = blk.gread(&core[v as usize]);
    for &(a, b, ca, cb) in &[(u, v, cu, cv), (v, u, cv, cu)] {
        let a = a as usize;
        blk.charge_sector(2); // off[a] + len[a]
        let o = off[a].load(Ordering::Relaxed) as usize;
        let l = lenb[a].load(Ordering::Relaxed) as usize;
        if insert {
            blk.gwrite(&adjb[o + l], b);
            blk.gwrite(&lenb[a], l as u32 + 1);
        } else {
            // Linear probe for `b`, 32-lane chunks, early exit per chunk.
            let mut found = usize::MAX;
            let mut chunk = o;
            let oe = o + l;
            while chunk < oe {
                let cend = (chunk + 32).min(oe);
                blk.sync_warp();
                blk.charge_tx(BlockCtx::coalesced_tx((cend - chunk) as u64));
                blk.charge_instr(1);
                for j in chunk..cend {
                    if adjb[j].load(Ordering::Relaxed) == b {
                        found = j;
                    }
                }
                if found != usize::MAX {
                    break;
                }
                chunk = cend;
            }
            assert!(found != usize::MAX, "delete of edge absent on device");
            let last = o + l - 1;
            if found != last {
                let w = blk.gread(&adjb[last]);
                blk.gwrite(&adjb[found], w);
            }
            blk.gwrite(&lenb[a], l as u32 - 1);
        }
        // Endpoint MCD delta: b (dis)appears in N(a) and counts iff
        // core(b) >= core(a).
        if cb >= ca {
            if insert {
                blk.atomic_add(&mcd[a], 1);
            } else {
                blk.atomic_sub(&mcd[a], 1);
            }
        }
    }
    Ok(())
}

/// PCD prune kernel (one block): for each insertion root `r`, computes
/// `pcd(r) = |{x ∈ N(r) : core(x) > k ∨ (core(x) == k ∧ mcd(x) > k)}|`
/// against the post-insert structure and raises `meta[2]` if any root has
/// `pcd > k`. If no root does, no core number can rise and the insertion
/// retires without a traversal.
fn k_prune(
    blk: &mut BlockCtx<'_>,
    p: &DynParams,
    roots: &[u32],
    k: u32,
) -> Result<(), KernelError> {
    let dev = blk.device;
    let off = dev.buffer(p.d_off);
    let lenb = dev.buffer(p.d_len);
    let adjb = dev.buffer(p.d_adj);
    let core = dev.buffer(p.d_core);
    let mcd = dev.buffer(p.d_mcd);
    let meta = dev.buffer(p.d_meta);
    blk.gwrite(&meta[2], 0);
    for &r in roots {
        let r = r as usize;
        blk.charge_sector(2);
        let o = off[r].load(Ordering::Relaxed) as usize;
        let l = lenb[r].load(Ordering::Relaxed) as usize;
        let mut pcd = 0u32;
        let mut chunk = o;
        let oe = o + l;
        while chunk < oe {
            let cend = (chunk + 32).min(oe);
            let cnt = cend - chunk;
            blk.sync_warp();
            blk.charge_tx(BlockCtx::coalesced_tx(cnt as u64));
            let idxs: Vec<usize> = (chunk..cend)
                .map(|j| adjb[j].load(Ordering::Relaxed) as usize)
                .collect();
            let mut cs = [0u32; 32];
            let mut ms = [0u32; 32];
            blk.gather(core, &idxs, &mut cs, Coalescing::Classified);
            blk.gather(mcd, &idxs, &mut ms, Coalescing::Classified);
            for t in 0..cnt {
                if cs[t] > k || (cs[t] == k && ms[t] > k) {
                    pcd += 1;
                }
            }
            blk.charge_instr(1);
            chunk = cend;
        }
        if pcd > k {
            blk.gwrite(&meta[2], 1);
        }
    }
    Ok(())
}

/// Per-block state of the stepped traversal kernels: shared `[s, e]` and
/// the wave's planned appendees.
struct TravState {
    se: SharedArray,
    planned: Vec<u32>,
}

/// The plan→commit handoff: `None` retires the block, `Some((s, batch))`
/// consumes `batch` frontier entries from floor `s`.
type TravPlan = Option<(u64, u64)>;

fn overflow(b: u32, what: &str, cap: usize) -> KernelError {
    KernelError::BufferOverflow {
        what: format!("block {b}: {what} frontier exceeds capacity {cap}"),
    }
}

/// Subcore search, init phase (serial, block order): stripes the roots over
/// blocks, test-sets their visited flag, appends them to the candidate list
/// (cursor `meta[0]`) and this block's frontier. For deletions
/// (`seed_mcd`), seeds `sup[r] = mcd[r]` — for a core-`k` vertex MCD *is*
/// the deletion-cascade support.
fn bfs_init(
    blk: &mut BlockCtx<'_>,
    p: &DynParams,
    roots: &[u32],
    seed_mcd: bool,
) -> Result<TravState, KernelError> {
    let dev = blk.device;
    let b = blk.block_idx as usize;
    let blocks = blk.cfg.blocks as usize;
    let bufb = &dev.buffer(p.d_buf)[b * p.bufcap..(b + 1) * p.bufcap];
    let flag = dev.buffer(p.d_flag);
    let cand = dev.buffer(p.d_cand);
    let sup = dev.buffer(p.d_sup);
    let mcd = dev.buffer(p.d_mcd);
    let meta = dev.buffer(p.d_meta);
    let se = blk.shared_alloc(2)?;
    let mut e = 0u32;
    for (idx, &r) in roots.iter().enumerate() {
        if idx % blocks != b {
            continue;
        }
        let old = blk.atomic_add(&flag[r as usize], 1);
        if old == 0 {
            let slot = blk.atomic_add(&meta[0], 1) as usize;
            blk.gwrite(&cand[slot], r);
            if seed_mcd {
                let m = blk.gread(&mcd[r as usize]);
                blk.gwrite(&sup[r as usize], m);
            }
            if e as usize >= p.bufcap {
                return Err(overflow(blk.block_idx, "subcore", p.bufcap));
            }
            blk.gwrite(&bufb[e as usize], r);
            e += 1;
        }
    }
    blk.sh_write(se, 0, 0);
    blk.sh_write(se, 1, e);
    Ok(TravState {
        se,
        planned: Vec::new(),
    })
}

/// Subcore search, plan phase (parallel): reads this wave's frontier slice
/// and walks each vertex's adjacency, ballot-compacting the core-`k`
/// neighbors. Touches only launch-immutable buffers (offset / len / adj /
/// core) — the visited flags are commit's.
fn bfs_plan(
    blk: &mut BlockCtx<'_>,
    st: &mut TravState,
    p: &DynParams,
    k: u32,
) -> Result<TravPlan, KernelError> {
    let dev = blk.device;
    let b = blk.block_idx as usize;
    let bufb = &dev.buffer(p.d_buf)[b * p.bufcap..(b + 1) * p.bufcap];
    let off = dev.buffer(p.d_off);
    let lenb = dev.buffer(p.d_len);
    let adjb = dev.buffer(p.d_adj);
    let core = dev.buffer(p.d_core);

    blk.sync_threads();
    let s = blk.sh_read(st.se, 0) as u64;
    let e = blk.sh_read(st.se, 1) as u64;
    if s == e {
        blk.sync_threads();
        return Ok(None);
    }
    let warps = blk.num_warps() as u64;
    let batch = warps.min(e - s);
    blk.sync_threads();
    blk.charge_instr(warps);
    st.planned.clear();
    for w in 0..batch {
        let v = blk.gread_dependent(&bufb[(s + w) as usize]) as usize;
        blk.charge_sector(2);
        let o = off[v].load(Ordering::Relaxed) as usize;
        let l = lenb[v].load(Ordering::Relaxed) as usize;
        let mut chunk = o;
        let oe = o + l;
        while chunk < oe {
            let cend = (chunk + 32).min(oe);
            let cnt = cend - chunk;
            blk.sync_warp();
            blk.charge_tx(BlockCtx::coalesced_tx(cnt as u64));
            let idxs: Vec<usize> = (chunk..cend)
                .map(|j| adjb[j].load(Ordering::Relaxed) as usize)
                .collect();
            let mut cs = [0u32; 32];
            blk.gather(core, &idxs, &mut cs, Coalescing::Classified);
            let mut bits = 0u32;
            for t in 0..cnt {
                if cs[t] == k {
                    bits |= 1 << t;
                }
            }
            let (_offs, total) = ballot_scan_offsets(blk, bits);
            if total > 0 {
                for t in 0..cnt {
                    if bits >> t & 1 == 1 {
                        st.planned.push(idxs[t] as u32);
                    }
                }
            }
            chunk = cend;
        }
    }
    Ok(Some((s, batch)))
}

/// Subcore search, commit phase (serial, wave order): test-sets each
/// planned neighbor's flag; first visit appends it to the candidate list
/// and this block's frontier, seeding support from MCD for deletions.
fn bfs_commit(
    blk: &mut BlockCtx<'_>,
    st: &mut TravState,
    plan: TravPlan,
    p: &DynParams,
    seed_mcd: bool,
) -> Result<bool, KernelError> {
    let Some((s, batch)) = plan else {
        return Ok(false);
    };
    let dev = blk.device;
    let b = blk.block_idx as usize;
    let bufb = &dev.buffer(p.d_buf)[b * p.bufcap..(b + 1) * p.bufcap];
    let flag = dev.buffer(p.d_flag);
    let cand = dev.buffer(p.d_cand);
    let sup = dev.buffer(p.d_sup);
    let mcd = dev.buffer(p.d_mcd);
    let meta = dev.buffer(p.d_meta);
    let mut e = blk.sh_peek(st.se, 1) as u64;
    for idx in 0..st.planned.len() {
        let x = st.planned[idx] as usize;
        let old = blk.atomic_add(&flag[x], 1);
        if old == 0 {
            let slot = blk.atomic_add(&meta[0], 1) as usize;
            blk.gwrite(&cand[slot], x as u32);
            if seed_mcd {
                let m = blk.gread(&mcd[x]);
                blk.gwrite(&sup[x], m);
            }
            if e as usize >= p.bufcap {
                return Err(overflow(blk.block_idx, "subcore", p.bufcap));
            }
            blk.gwrite(&bufb[e as usize], x as u32);
            e += 1;
        }
    }
    blk.sh_poke(st.se, 1, e as u32);
    blk.sh_write(st.se, 0, (s + batch) as u32);
    Ok(true)
}

/// Support kernel (insertions): for each candidate `v`,
/// `sup[v] = |{x ∈ N(v) : core(x) > k ∨ flag(x)}|` — supporters either
/// already above `k` or fellow candidates. Plain launch: `flag` is
/// immutable here, writes are block-disjoint.
fn k_support(
    blk: &mut BlockCtx<'_>,
    p: &DynParams,
    k: u32,
    cand_n: usize,
) -> Result<(), KernelError> {
    let dev = blk.device;
    let off = dev.buffer(p.d_off);
    let lenb = dev.buffer(p.d_len);
    let adjb = dev.buffer(p.d_adj);
    let core = dev.buffer(p.d_core);
    let flag = dev.buffer(p.d_flag);
    let sup = dev.buffer(p.d_sup);
    let cand = dev.buffer(p.d_cand);
    let blocks = blk.cfg.blocks as usize;
    let mut i = blk.block_idx as usize;
    while i < cand_n {
        let v = blk.gread(&cand[i]) as usize;
        blk.charge_sector(2);
        let o = off[v].load(Ordering::Relaxed) as usize;
        let l = lenb[v].load(Ordering::Relaxed) as usize;
        let mut m = 0u32;
        let mut chunk = o;
        let oe = o + l;
        while chunk < oe {
            let cend = (chunk + 32).min(oe);
            let cnt = cend - chunk;
            blk.sync_warp();
            blk.charge_tx(BlockCtx::coalesced_tx(cnt as u64));
            let idxs: Vec<usize> = (chunk..cend)
                .map(|j| adjb[j].load(Ordering::Relaxed) as usize)
                .collect();
            let mut cs = [0u32; 32];
            let mut fs = [0u32; 32];
            blk.gather(core, &idxs, &mut cs, Coalescing::Classified);
            blk.gather(flag, &idxs, &mut fs, Coalescing::Classified);
            for t in 0..cnt {
                if cs[t] > k || fs[t] != 0 {
                    m += 1;
                }
            }
            blk.charge_instr(1);
            chunk = cend;
        }
        blk.gwrite(&sup[v], m);
        i += blocks;
    }
    Ok(())
}

/// Eviction cascade, init phase (serial, block order): stripes the
/// candidate list over blocks and immediately evicts every candidate whose
/// support is already below `thresh` — writing `evic`, the changed list
/// (cursor `meta[1]`), optionally the dropped core value, and this block's
/// frontier.
fn casc_init(
    blk: &mut BlockCtx<'_>,
    p: &DynParams,
    thresh: u32,
    drop_to: Option<u32>,
) -> Result<TravState, KernelError> {
    let dev = blk.device;
    let b = blk.block_idx as usize;
    let blocks = blk.cfg.blocks as usize;
    let bufb = &dev.buffer(p.d_buf)[b * p.bufcap..(b + 1) * p.bufcap];
    let cand = dev.buffer(p.d_cand);
    let sup = dev.buffer(p.d_sup);
    let evic = dev.buffer(p.d_evic);
    let core = dev.buffer(p.d_core);
    let chg = dev.buffer(p.d_chg);
    let meta = dev.buffer(p.d_meta);
    let se = blk.shared_alloc(2)?;
    let cand_n = blk.gread(&meta[0]) as usize;
    let mut e = 0u32;
    let mut i = b;
    while i < cand_n {
        let v = blk.gread(&cand[i]) as usize;
        let sv = blk.gread(&sup[v]);
        if sv < thresh {
            blk.gwrite(&evic[v], 1);
            if let Some(c) = drop_to {
                blk.gwrite(&core[v], c);
            }
            let slot = blk.atomic_add(&meta[1], 1) as usize;
            blk.gwrite(&chg[slot], v as u32);
            if e as usize >= p.bufcap {
                return Err(overflow(blk.block_idx, "cascade", p.bufcap));
            }
            blk.gwrite(&bufb[e as usize], v as u32);
            e += 1;
        }
        i += blocks;
    }
    blk.sh_write(se, 0, 0);
    blk.sh_write(se, 1, e);
    Ok(TravState {
        se,
        planned: Vec::new(),
    })
}

/// Eviction cascade, plan phase (parallel): walks each evicted vertex's
/// adjacency and ballot-compacts the neighbors inside the candidate set
/// (`flag`, immutable during the cascade). Support, eviction marks and
/// cores are commit's.
fn casc_plan(
    blk: &mut BlockCtx<'_>,
    st: &mut TravState,
    p: &DynParams,
) -> Result<TravPlan, KernelError> {
    let dev = blk.device;
    let b = blk.block_idx as usize;
    let bufb = &dev.buffer(p.d_buf)[b * p.bufcap..(b + 1) * p.bufcap];
    let off = dev.buffer(p.d_off);
    let lenb = dev.buffer(p.d_len);
    let adjb = dev.buffer(p.d_adj);
    let flag = dev.buffer(p.d_flag);

    blk.sync_threads();
    let s = blk.sh_read(st.se, 0) as u64;
    let e = blk.sh_read(st.se, 1) as u64;
    if s == e {
        blk.sync_threads();
        return Ok(None);
    }
    let warps = blk.num_warps() as u64;
    let batch = warps.min(e - s);
    blk.sync_threads();
    blk.charge_instr(warps);
    st.planned.clear();
    for w in 0..batch {
        let v = blk.gread_dependent(&bufb[(s + w) as usize]) as usize;
        blk.charge_sector(2);
        let o = off[v].load(Ordering::Relaxed) as usize;
        let l = lenb[v].load(Ordering::Relaxed) as usize;
        let mut chunk = o;
        let oe = o + l;
        while chunk < oe {
            let cend = (chunk + 32).min(oe);
            let cnt = cend - chunk;
            blk.sync_warp();
            blk.charge_tx(BlockCtx::coalesced_tx(cnt as u64));
            let idxs: Vec<usize> = (chunk..cend)
                .map(|j| adjb[j].load(Ordering::Relaxed) as usize)
                .collect();
            let mut fs = [0u32; 32];
            blk.gather(flag, &idxs, &mut fs, Coalescing::Classified);
            let mut bits = 0u32;
            for t in 0..cnt {
                if fs[t] != 0 {
                    bits |= 1 << t;
                }
            }
            let (_offs, total) = ballot_scan_offsets(blk, bits);
            if total > 0 {
                for t in 0..cnt {
                    if bits >> t & 1 == 1 {
                        st.planned.push(idxs[t] as u32);
                    }
                }
            }
            chunk = cend;
        }
    }
    Ok(Some((s, batch)))
}

/// Eviction cascade, commit phase (serial, wave order): decrements each
/// planned candidate's support; a decrement from exactly `thresh` evicts —
/// mark, changed-list append, optional core drop, frontier append. An
/// un-evicted candidate always has `sup >= thresh >= 1`, so the decrement
/// cannot underflow.
fn casc_commit(
    blk: &mut BlockCtx<'_>,
    st: &mut TravState,
    plan: TravPlan,
    p: &DynParams,
    thresh: u32,
    drop_to: Option<u32>,
) -> Result<bool, KernelError> {
    let Some((s, batch)) = plan else {
        return Ok(false);
    };
    let dev = blk.device;
    let b = blk.block_idx as usize;
    let bufb = &dev.buffer(p.d_buf)[b * p.bufcap..(b + 1) * p.bufcap];
    let sup = dev.buffer(p.d_sup);
    let evic = dev.buffer(p.d_evic);
    let core = dev.buffer(p.d_core);
    let chg = dev.buffer(p.d_chg);
    let meta = dev.buffer(p.d_meta);
    let mut e = blk.sh_peek(st.se, 1) as u64;
    for idx in 0..st.planned.len() {
        let x = st.planned[idx] as usize;
        if blk.gread(&evic[x]) != 0 {
            continue;
        }
        let old = blk.atomic_sub(&sup[x], 1);
        debug_assert!(old >= thresh, "support underflow on un-evicted candidate");
        if old == thresh {
            blk.gwrite(&evic[x], 1);
            if let Some(c) = drop_to {
                blk.gwrite(&core[x], c);
            }
            let slot = blk.atomic_add(&meta[1], 1) as usize;
            blk.gwrite(&chg[slot], x as u32);
            if e as usize >= p.bufcap {
                return Err(overflow(blk.block_idx, "cascade", p.bufcap));
            }
            blk.gwrite(&bufb[e as usize], x as u32);
            e += 1;
        }
    }
    blk.sh_poke(st.se, 1, e as u32);
    blk.sh_write(st.se, 0, (s + batch) as u32);
    Ok(true)
}

/// Commit/cleanup kernel: for insertions (`rise`), survivors (un-evicted
/// candidates) get core `k + 1`; then every candidate's flag / eviction
/// mark / support is zeroed for the next op and block 0 resets the list
/// cursors. Plain launch: stripes are block-disjoint, `meta` is block 0's.
fn k_commit(
    blk: &mut BlockCtx<'_>,
    p: &DynParams,
    k: u32,
    rise: bool,
    cand_n: usize,
) -> Result<(), KernelError> {
    let dev = blk.device;
    let cand = dev.buffer(p.d_cand);
    let flag = dev.buffer(p.d_flag);
    let evic = dev.buffer(p.d_evic);
    let sup = dev.buffer(p.d_sup);
    let core = dev.buffer(p.d_core);
    let meta = dev.buffer(p.d_meta);
    let blocks = blk.cfg.blocks as usize;
    let b = blk.block_idx as usize;
    if b == 0 {
        blk.gwrite(&meta[0], 0);
        blk.gwrite(&meta[1], 0);
        blk.gwrite(&meta[2], 0);
    }
    let mut i = b;
    while i < cand_n {
        let v = blk.gread(&cand[i]) as usize;
        if rise && blk.gread(&evic[v]) == 0 {
            blk.gwrite(&core[v], k + 1);
        }
        blk.gwrite(&flag[v], 0);
        blk.gwrite(&evic[v], 0);
        blk.gwrite(&sup[v], 0);
        i += blocks;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_cpu::{bz, CoreAlgorithm};
    use kcore_graph::{fig1_graph, gen};

    fn small_cfg() -> DynamicConfig {
        DynamicConfig {
            launch: LaunchConfig {
                blocks: 4,
                threads_per_block: 64,
            },
            ..DynamicConfig::default()
        }
    }

    /// Re-peels the mirror from scratch with the CPU oracle and checks the
    /// host cores, the device cores and the device MCD all agree with it.
    fn assert_consistent(dc: &mut DynamicCore) {
        let g = dc.mirror_csr();
        let expect = bz::Bz.run(&g);
        assert_eq!(dc.cores(), &expect[..], "host cores diverge from oracle");
        assert_eq!(dc.device_cores(), expect, "device cores diverge from host");
        let mcd_expect: Vec<u32> = (0..g.num_vertices())
            .map(|v| {
                g.neighbors(v)
                    .iter()
                    .filter(|&&u| expect[u as usize] >= expect[v as usize])
                    .count() as u32
            })
            .collect();
        assert_eq!(dc.device_mcd(), mcd_expect, "device MCD diverges");
    }

    #[test]
    fn auto_crossover_is_pinned_between_measured_bounds() {
        // The derived crossover c is the break-even point: maintaining
        // c-1 updates is strictly cheaper than a re-peel, maintaining c
        // is not.
        for &(repeel_ms, per_update_ms) in &[
            (12.0, 3.0),
            (12.5, 3.0),
            (0.4, 3.0),
            (5000.0, 0.07),
            (1.0, 1.0),
        ] {
            let c = DynamicConfig::auto_crossover(repeel_ms, per_update_ms);
            assert!(c >= 1);
            assert!(
                per_update_ms * c as f64 >= repeel_ms,
                "re-peel must pay off at the crossover: {per_update_ms} * {c} < {repeel_ms}"
            );
            assert!(
                per_update_ms * ((c - 1) as f64) < repeel_ms,
                "crossover is not minimal: {per_update_ms} * {} >= {repeel_ms}",
                c - 1
            );
        }
    }

    #[test]
    fn auto_crossover_degenerate_inputs() {
        assert_eq!(DynamicConfig::auto_crossover(10.0, 0.0), usize::MAX);
        assert_eq!(DynamicConfig::auto_crossover(10.0, -1.0), usize::MAX);
        assert_eq!(DynamicConfig::auto_crossover(10.0, f64::NAN), usize::MAX);
        assert_eq!(DynamicConfig::auto_crossover(0.0, 1.0), 1);
        assert_eq!(DynamicConfig::auto_crossover(-3.0, 1.0), 1);
        assert_eq!(DynamicConfig::auto_crossover(f64::INFINITY, 1.0), 1);
        let cfg = DynamicConfig::default().with_auto_crossover(12.0, 3.0);
        assert_eq!(cfg.crossover, 4);
    }

    #[test]
    fn insert_and_delete_round_trip_on_fig1() {
        let mut dc =
            DynamicCore::from_csr(&SimOptions::default(), &fig1_graph(), small_cfg()).unwrap();
        assert_eq!(dc.cores(), &kcore_graph::fig1_core_numbers()[..]);
        assert_consistent(&mut dc);

        // Pendants 9 (on the 3-clique side) and 10 (on the ring) both have
        // core 1; the new edge gives each a second core->=2 neighbor, so
        // both rise to 2.
        let rep = dc
            .apply_batch(&[EdgeUpdate::Insert(9, 10)])
            .expect("insert");
        assert_eq!(rep.path, BatchPath::Maintained);
        assert_eq!((rep.net_inserts, rep.net_deletes, rep.rejected), (1, 0, 0));
        assert_eq!(dc.cores()[9], 2);
        assert_eq!(dc.cores()[10], 2);
        assert_consistent(&mut dc);

        // Deleting it restores the original decomposition.
        let rep = dc
            .apply_batch(&[EdgeUpdate::Delete(10, 9)])
            .expect("delete");
        assert_eq!(rep.path, BatchPath::Maintained);
        assert_eq!(rep.changed, 2);
        assert_eq!(dc.cores(), &kcore_graph::fig1_core_numbers()[..]);
        assert_consistent(&mut dc);
    }

    #[test]
    fn rejected_updates_and_noop_batches() {
        let mut dc =
            DynamicCore::from_csr(&SimOptions::default(), &fig1_graph(), small_cfg()).unwrap();
        // self-loop, out-of-range, duplicate insert, absent delete
        let rep = dc
            .apply_batch(&[
                EdgeUpdate::Insert(3, 3),
                EdgeUpdate::Insert(0, 99),
                EdgeUpdate::Insert(0, 1),
                EdgeUpdate::Delete(9, 10),
            ])
            .unwrap();
        assert_eq!(rep.path, BatchPath::Noop);
        assert_eq!(rep.rejected, 4);
        assert_eq!(rep.accepted_inserts + rep.accepted_deletes, 0);
        assert_eq!(dc.cores(), &kcore_graph::fig1_core_numbers()[..]);

        // Accepted but net-cancelling: insert then delete the same edge.
        let rep = dc
            .apply_batch(&[EdgeUpdate::Insert(9, 10), EdgeUpdate::Delete(9, 10)])
            .unwrap();
        assert_eq!(rep.path, BatchPath::Noop);
        assert_eq!((rep.accepted_inserts, rep.accepted_deletes), (1, 1));
        assert_eq!(rep.net_inserts + rep.net_deletes, 0);
        assert_consistent(&mut dc);
    }

    #[test]
    fn insert_between_isolated_vertices_from_empty() {
        let mut dc = DynamicCore::new(&SimOptions::default(), 6, small_cfg()).unwrap();
        assert_eq!(dc.cores(), &[0; 6]);
        let rep = dc.apply_batch(&[EdgeUpdate::Insert(0, 1)]).unwrap();
        assert_eq!(rep.path, BatchPath::Maintained);
        assert_eq!(dc.cores()[..2], [1, 1]);
        assert_consistent(&mut dc);
        // Build a triangle: third edge raises all three to core 2.
        dc.apply_batch(&[EdgeUpdate::Insert(1, 2), EdgeUpdate::Insert(2, 0)])
            .unwrap();
        assert_eq!(dc.cores()[..3], [2, 2, 2]);
        assert_consistent(&mut dc);
    }

    #[test]
    fn pcd_prune_retires_rise_free_insertions() {
        // Two disjoint edges 0-1 and 2-3 (all cores 1). Joining them into a
        // path with {1, 2} changes nothing: every vertex keeps core 1, and
        // both roots have PCD <= 1 (each endpoint's only fellow core-1
        // neighbor with mcd > 1 is the other root), so the prune retires
        // the insertion without any traversal.
        let mut b = kcore_graph::GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        let g = b.build();
        let mut dc = DynamicCore::from_csr(&SimOptions::default(), &g, small_cfg()).unwrap();
        let rep = dc.apply_batch(&[EdgeUpdate::Insert(1, 2)]).unwrap();
        assert_eq!(rep.path, BatchPath::Maintained);
        assert_eq!(rep.changed, 0);
        assert_eq!(rep.candidates, 0, "prune must fire before any traversal");
        assert_eq!(rep.pruned_inserts, 1, "PCD prune should retire this");
        assert_eq!(dc.cores(), &[1, 1, 1, 1]);
        assert_consistent(&mut dc);

        // Pendant-to-pendant in fig1 *does* rise (each gains a second
        // core->=2 neighbor) — the prune must let it through.
        let mut dc =
            DynamicCore::from_csr(&SimOptions::default(), &fig1_graph(), small_cfg()).unwrap();
        let rep = dc.apply_batch(&[EdgeUpdate::Insert(9, 11)]).unwrap();
        assert_eq!(rep.pruned_inserts, 0);
        assert_eq!(rep.changed, 2);
        assert_consistent(&mut dc);
    }

    #[test]
    fn crossover_forces_repeel() {
        let cfg = DynamicConfig {
            crossover: 1,
            ..small_cfg()
        };
        let mut dc = DynamicCore::from_csr(&SimOptions::default(), &fig1_graph(), cfg).unwrap();
        let rep = dc.apply_batch(&[EdgeUpdate::Insert(9, 10)]).unwrap();
        assert_eq!(rep.path, BatchPath::Repeeled);
        assert_eq!(dc.cores()[9], 2);
        assert_consistent(&mut dc);
    }

    #[test]
    fn slack_exhaustion_triggers_rebuild() {
        let cfg = DynamicConfig {
            slack: 1,
            ..small_cfg()
        };
        let mut dc = DynamicCore::new(&SimOptions::default(), 12, cfg).unwrap();
        // Grow a star around vertex 0: each insert raises deg(0) by one,
        // exhausting the 1-slot slack repeatedly.
        for v in 1..12u32 {
            dc.apply_batch(&[EdgeUpdate::Insert(0, v)]).unwrap();
        }
        assert!(dc.rebuilds() > 0, "slack 1 must force rebuilds");
        assert_eq!(dc.cores(), &[1; 12]);
        assert_consistent(&mut dc);
    }

    #[test]
    fn mixed_churn_matches_oracle_on_random_graph() {
        let g = gen::erdos_renyi_gnm(60, 140, 11);
        let mut dc = DynamicCore::from_csr(&SimOptions::default(), &g, small_cfg()).unwrap();
        assert_consistent(&mut dc);
        // Deterministic xorshift edge churn, applied in small mixed batches.
        let mut state = 0x2545_f491u32;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        for round in 0..12 {
            let mut batch = Vec::new();
            for _ in 0..9 {
                let u = rng() % 60;
                let v = rng() % 60;
                if rng() % 2 == 0 {
                    batch.push(EdgeUpdate::Insert(u, v));
                } else {
                    batch.push(EdgeUpdate::Delete(u, v));
                }
            }
            let rep = dc.apply_batch(&batch).expect("batch");
            assert_eq!(
                rep.accepted_inserts + rep.accepted_deletes + rep.rejected,
                batch.len(),
                "round {round}: classification must account for every update"
            );
            assert_consistent(&mut dc);
        }
    }

    #[test]
    fn batch_equals_singles_equals_repeel() {
        // One batch, the same updates one-at-a-time, and a crossover=0
        // repeel must all land in the identical final state.
        let g = gen::erdos_renyi_gnm(40, 80, 3);
        let updates = [
            EdgeUpdate::Insert(0, 1),
            EdgeUpdate::Insert(1, 2),
            EdgeUpdate::Insert(2, 0),
            EdgeUpdate::Delete(3, 4),
            EdgeUpdate::Insert(5, 6),
            EdgeUpdate::Delete(0, 1),
        ];
        let run = |batched: bool, crossover: usize| -> Vec<u32> {
            let cfg = DynamicConfig {
                crossover,
                ..small_cfg()
            };
            let mut dc = DynamicCore::from_csr(&SimOptions::default(), &g, cfg).unwrap();
            if batched {
                dc.apply_batch(&updates).unwrap();
            } else {
                for u in updates {
                    dc.apply_batch(std::slice::from_ref(&u)).unwrap();
                }
            }
            assert_consistent(&mut dc);
            dc.cores().to_vec()
        };
        let a = run(true, usize::MAX);
        let b = run(false, usize::MAX);
        let c = run(true, 1);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn empty_engine_rejects_everything() {
        let mut dc = DynamicCore::new(&SimOptions::default(), 0, small_cfg()).unwrap();
        let rep = dc
            .apply_batch(&[EdgeUpdate::Insert(0, 1), EdgeUpdate::Delete(2, 3)])
            .unwrap();
        assert_eq!(rep.path, BatchPath::Noop);
        assert_eq!(rep.rejected, 2);
        assert!(dc.cores().is_empty());
        assert!(dc.device_cores().is_empty());
    }
}
