//! Multi-GPU k-core decomposition — the paper's §VII future work, built out
//! as real edge-partitioned sharding.
//!
//! > "we can partition a graph among worker GPUs running our kernels, but
//! > degree updates of border vertices would be aggregated afterwards, which
//! > can be computed at a master GPU. Moreover, the updates may cause new
//! > border vertices to be in k-shell, so more than one round may be needed
//! > to compute a k-shell."
//!
//! Design implemented here (see DESIGN.md "Sharded decomposition"):
//!
//! * the graph is split by a [`Partition`] (balanced-arcs ranges or the
//!   degree-aware hub-splitting strategy) into per-shard **local-ID
//!   compacted CSRs**: each worker device holds only its owned rows, its
//!   ghost table, and its share of the arcs — O(owned + ghosts) residency,
//!   not the old O(|V|)-per-worker replicated arrays;
//! * every worker runs the **real scan/loop peel kernels** from [`peel`]
//!   over its shard, on whichever [`ExecPath`] the config selects, executed
//!   concurrently on the rayon pool;
//! * ghost vertices use the **sentinel-accumulator protocol**: their `deg`
//!   slots are pinned at [`GHOST_BASE`], so the unmodified loop kernel's
//!   decrement-and-recover arithmetic simply counts border decrements in
//!   the slot (a ghost can never scan-match `k`, never crosses `k + 1`, and
//!   never dips below the recover floor). After the local loops drain, the
//!   host reads each slot's delta, resets it, and ships `(vertex, delta)`
//!   packets through the master to the owners;
//! * owners apply aggregated border decrements with a floor at `k`; a
//!   vertex landing exactly on `k` is seeded into the owner's next
//!   sub-round (the paper's "new border vertices in the k-shell") via a
//!   seed launch that rebuilds the per-block frontier, followed by a
//!   loop-only launch — never a re-scan;
//! * sub-rounds repeat until the exchange produces no seeds; wall time per
//!   phase is the *max* over workers (they run concurrently) plus the
//!   link cost of each exchange.
//!
//! **Determinism.** The merge order is fixed: ghost drains happen in shard
//! index order, updates are aggregated by ascending global vertex ID, and
//! owner lookup is the O(1) partition map. Worker kernels run on private
//! contexts whose engine is pool-size-independent, so traces, counters,
//! `total_ms` and `exchanged_bytes` are bit-identical at any rayon pool
//! size — `tests/multi_shard.rs` pins this.

use crate::config::{ExecPath, PeelConfig};
use crate::peel;
use kcore_gpusim::{
    BlockCtx, BufferId, ExchangeTrace, FleetMemStats, FleetTrace, FlowEdge, GpuContext,
    KernelError, RoundTrace, SimError, SimOptions, SizeClass, SubRoundSlice, Timeline, Trace,
};
use kcore_graph::{Csr, Partition, PartitionStrategy};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

/// Sentinel base value for ghost `deg` slots. Large enough that a ghost can
/// never equal the round's `k` (scan), cross `k + 1` (frontier append), or
/// fall to the recover floor: a slot absorbs at most one decrement per
/// incident arc per run, and `|V| < 2^30` is asserted up front.
const GHOST_BASE: u32 = 0x7FFF_FFFF;

/// Configuration of a multi-GPU run.
#[derive(Debug, Clone, Copy)]
pub struct MultiGpuConfig {
    /// Number of worker GPUs (each gets its own simulated device).
    pub num_gpus: usize,
    /// Kernel configuration used by every worker (including the
    /// [`ExecPath`] — workers honor `KCORE_EXEC_PATH` whenever the caller
    /// parsed it into `peel.exec_path`, as the bench harness does).
    pub peel: PeelConfig,
    /// Vertex-to-shard assignment strategy.
    pub partition: PartitionStrategy,
    /// Inter-GPU link bandwidth, bytes/s (PCIe peer-to-peer ≈ 10 GB/s on
    /// the paper-era platform; NVLink would be ~40 GB/s).
    pub link_bandwidth: f64,
    /// Fixed per-exchange latency, seconds.
    pub link_latency_s: f64,
}

impl Default for MultiGpuConfig {
    fn default() -> Self {
        MultiGpuConfig {
            num_gpus: 4,
            peel: PeelConfig::default(),
            partition: PartitionStrategy::BalancedArcs,
            link_bandwidth: 10e9,
            link_latency_s: 10e-6,
        }
    }
}

/// Result of a multi-GPU decomposition.
#[derive(Debug, Clone)]
pub struct MultiGpuRun {
    /// Per-vertex core numbers.
    pub core: Vec<u32>,
    /// `max_v core(v)`.
    pub k_max: u32,
    /// Peeling rounds (`k_max + 1`).
    pub rounds: u32,
    /// Total sub-rounds across all rounds (> rounds when k-shells span
    /// partition borders).
    pub sub_rounds: u32,
    /// Execution path the worker kernels ran on.
    pub exec_path: ExecPath,
    /// Simulated wall time (max-over-workers per phase + exchanges), ms.
    pub total_ms: f64,
    /// Sum of worker device peaks, bytes.
    pub total_peak_mem_bytes: u64,
    /// Each worker device's peak, bytes, in shard order.
    pub per_device_peak_bytes: Vec<u64>,
    /// Each worker trace's counters fingerprint, in shard order.
    pub worker_fingerprints: Vec<u64>,
    /// Bytes exchanged between devices over the whole run.
    pub exchanged_bytes: u64,
    /// Exchanges that actually carried border packets (informational
    /// observability rollup — never feeds the cost model).
    pub exchange_rounds: u64,
    /// Total worker→master border packets over the run (informational).
    pub border_packets: u64,
}

/// A traced fleet run: the result plus every observability artifact the
/// fleet layer derives — per-device traces/timelines and the
/// [`FleetTrace`] ledger. Everything here observes the same run; none of it
/// perturbs `total_ms`, fingerprints, or `exchanged_bytes`.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// The decomposition result, bit-identical to [`decompose_multi`].
    pub run: MultiGpuRun,
    /// Per-worker traces, shard order (same as [`decompose_multi_traced`]).
    pub traces: Vec<Trace>,
    /// Per-worker SM timelines, shard order — feed
    /// [`FleetTrace::merged_chrome_json`].
    pub timelines: Vec<Timeline>,
    /// The fleet ledger: exchange flows, sub-round slices, critical path.
    pub fleet: FleetTrace,
}

/// One worker: a device context holding its shard's peel working set.
struct Worker {
    ctx: GpuContext,
    st: peel::DeviceState,
    n_owned: usize,
    /// Exchange staging buffer (ledger residency for update packets).
    d_xfer: Option<BufferId>,
    /// Cumulative `gpu_count` readback = owned vertices removed so far.
    count: u64,
    /// Border seeds (local IDs, ascending) for the next sub-round.
    seeds: Vec<u32>,
}

/// Runs the distributed decomposition. `opts.device_capacity_bytes` is the
/// capacity of *each* worker device.
pub fn decompose_multi(
    g: &Csr,
    cfg: &MultiGpuConfig,
    opts: &SimOptions,
) -> Result<MultiGpuRun, SimError> {
    decompose_multi_traced(g, cfg, opts).map(|(run, _)| run)
}

/// [`decompose_multi`], also returning each worker's [`Trace`] (in shard
/// order) for golden pinning and per-device memstats inspection.
pub fn decompose_multi_traced(
    g: &Csr,
    cfg: &MultiGpuConfig,
    opts: &SimOptions,
) -> Result<(MultiGpuRun, Vec<Trace>), SimError> {
    decompose_multi_impl(g, cfg, opts, None).map(|(run, traces, _, _)| (run, traces))
}

/// [`decompose_multi`] with the full fleet observability layer: the run,
/// the per-worker traces and timelines, and the [`FleetTrace`] ledger
/// (exchange flows, sub-round slices, per-round critical path). The run
/// itself — `total_ms`, fingerprints, `exchanged_bytes`, traces — is
/// bit-identical to [`decompose_multi_traced`]; the fleet layer only
/// observes.
pub fn decompose_multi_fleet(
    g: &Csr,
    cfg: &MultiGpuConfig,
    opts: &SimOptions,
    label: impl Into<String>,
) -> Result<FleetRun, SimError> {
    let (run, traces, rounds, timelines) = decompose_multi_impl(g, cfg, opts, Some(label.into()))?;
    let (label, timelines, setup_ms, result_ms) = timelines.expect("fleet capture requested");
    let fleet = FleetTrace::new(
        label,
        setup_ms,
        result_ms,
        run.total_ms,
        run.exchanged_bytes,
        rounds,
        traces.clone(),
    );
    Ok(FleetRun {
        run,
        traces,
        timelines,
        fleet,
    })
}

/// Fleet-capture payload threaded out of the impl when a label is given:
/// `(label, per-worker timelines, setup_ms, result_ms)`.
type FleetCapture = (String, Vec<Timeline>, f64, f64);

/// Everything `decompose_multi_impl` produces: the run, per-worker traces,
/// the per-round ledger, and the optional fleet capture.
type MultiImplOutput = (
    MultiGpuRun,
    Vec<Trace>,
    Vec<RoundTrace>,
    Option<FleetCapture>,
);

fn decompose_multi_impl(
    g: &Csr,
    cfg: &MultiGpuConfig,
    opts: &SimOptions,
    fleet_label: Option<String>,
) -> Result<MultiImplOutput, SimError> {
    assert!(cfg.num_gpus >= 1);
    let n = g.num_vertices() as usize;
    if n == 0 {
        return Ok((
            MultiGpuRun {
                core: Vec::new(),
                k_max: 0,
                rounds: 0,
                sub_rounds: 0,
                exec_path: cfg.peel.exec_path,
                total_ms: 0.0,
                total_peak_mem_bytes: 0,
                per_device_peak_bytes: Vec::new(),
                worker_fingerprints: Vec::new(),
                exchanged_bytes: 0,
                exchange_rounds: 0,
                border_packets: 0,
            },
            Vec::new(),
            Vec::new(),
            fleet_label.map(|label| (label, Vec::new(), 0.0, 0.0)),
        ));
    }
    assert!(n < (1 << 30), "ghost sentinel headroom requires |V| < 2^30");
    // Orchestration runs on the host across worker contexts, so its spans
    // land on the process-global profiler rather than any one context's.
    let prof = kcore_gpusim::hostprof::global();
    let _run_span = prof.map(|hp| hp.span("multi_gpu/decompose"));

    // ---- partition & load shards ----------------------------------------
    let partition_span = prof.map(|hp| hp.span("multi_gpu/partition"));
    let part = Partition::build(g, cfg.num_gpus, cfg.partition);
    let mut workers = build_workers(&part, cfg, opts)?;
    let mut total_ms = max_f64(workers.iter().map(|w| w.ctx.elapsed_ms()));
    let setup_ms = total_ms;
    drop(partition_span);

    let mut exchanged_bytes = 0u64;
    let mut sub_rounds = 0u32;
    let mut rounds = 0u32;
    let mut k = 0u32;
    let mut removed = 0u64;
    // Update scratch, reused across exchanges.
    let mut updates: Vec<(u32, u32)> = Vec::new();
    // Fleet ledger: one entry per peel round. Observability only — every
    // charged_ms below is recorded *from* the addend folded into total_ms,
    // never the other way around.
    let mut round_log: Vec<RoundTrace> = Vec::new();

    let rounds_span = prof.map(|hp| hp.span("multi_gpu/rounds"));
    while removed < n as u64 {
        rounds += 1;
        let mut slices: Vec<SubRoundSlice> = Vec::new();
        let mut exchanges: Vec<ExchangeTrace> = Vec::new();
        // Sub-round 0: every worker scans its shard for the k-shell and
        // drains the resulting cascade — the real kernels, concurrently.
        sub_rounds += 1;
        let slice = run_workers(&mut workers, 0, |w| {
            peel::run_scan_loop(&mut w.ctx, k, &w.st, &cfg.peel)?;
            sync_worker(w)
        })?;
        total_ms += slice.charged_ms;
        slices.push(slice);

        // Border sub-rounds: exchange ghost decrements, seed owners, run
        // loop-only launches, until an exchange produces no seeds.
        loop {
            let (any_seeds, exchange_ms, ledger) = exchange(
                &mut workers,
                &part,
                k,
                cfg,
                &mut updates,
                &mut exchanged_bytes,
                slices.len() as u32 - 1,
            )?;
            total_ms += exchange_ms;
            exchanges.push(ledger);
            if !any_seeds {
                break;
            }
            sub_rounds += 1;
            let slice = run_workers(&mut workers, slices.len() as u32, |w| {
                if w.seeds.is_empty() {
                    return Ok(0.0);
                }
                let seeds = std::mem::take(&mut w.seeds);
                seed_frontier(&mut w.ctx, &w.st, &cfg.peel, &seeds)?;
                peel::run_loop_only(&mut w.ctx, k, &w.st, &cfg.peel)?;
                sync_worker(w)
            })?;
            total_ms += slice.charged_ms;
            slices.push(slice);
        }

        round_log.push(RoundTrace {
            k,
            sub_rounds: slices.len() as u32,
            slices,
            exchanges,
        });
        removed = workers.iter().map(|w| w.count).sum();
        k += 1;
        if k as usize > n + 1 {
            return Err(SimError::Kernel(KernelError::Other(format!(
                "sharded peeling did not converge: k={k} exceeds |V|={n} (removed={removed})"
            ))));
        }
    }
    drop(rounds_span);

    // ---- gather results ---------------------------------------------------
    // Owned deg ranges have converged to the core numbers, exactly as in
    // the single-device run; ghost slots still hold the sentinel.
    let mut core = vec![0u32; n];
    let mut result_ms = 0.0f64;
    for (wi, w) in workers.iter_mut().enumerate() {
        let before = w.ctx.elapsed_ms();
        w.ctx.set_phase("Result");
        let owned_core = w.ctx.dtoh_range(w.st.d_deg, 0, w.n_owned);
        for (l, &v) in part.shards[wi].owned.iter().enumerate() {
            core[v as usize] = owned_core[l];
        }
        peel::free_device(&mut w.ctx, &w.st);
        if let Some(x) = w.d_xfer {
            w.ctx.device.free(x);
        }
        result_ms = result_ms.max(w.ctx.elapsed_ms() - before);
    }
    total_ms += result_ms;

    // Timelines are captured before `trace()` only when the fleet layer
    // asked; both are pure derivations, so the traced path is unchanged.
    let fleet_capture = fleet_label.map(|label| {
        let timelines: Vec<Timeline> = workers
            .iter()
            .enumerate()
            .map(|(wi, w)| w.ctx.timeline(format!("worker{wi}")))
            .collect();
        (label, timelines, setup_ms, result_ms)
    });
    let traces: Vec<Trace> = workers
        .iter_mut()
        .enumerate()
        .map(|(wi, w)| w.ctx.trace(format!("worker{wi}")))
        .collect();
    let per_device_peak_bytes: Vec<u64> =
        workers.iter().map(|w| w.ctx.device.peak_bytes()).collect();
    let k_max = core.iter().copied().max().unwrap_or(0);
    let exchange_rounds = round_log
        .iter()
        .flat_map(|r| &r.exchanges)
        .filter(|e| e.packets_out > 0)
        .count() as u64;
    let border_packets = round_log
        .iter()
        .flat_map(|r| &r.exchanges)
        .map(|e| e.packets_out)
        .sum();
    Ok((
        MultiGpuRun {
            core,
            k_max,
            rounds,
            sub_rounds,
            exec_path: cfg.peel.exec_path,
            total_ms,
            total_peak_mem_bytes: per_device_peak_bytes.iter().sum(),
            worker_fingerprints: traces.iter().map(|t| t.counters_fingerprint()).collect(),
            per_device_peak_bytes,
            exchanged_bytes,
            exchange_rounds,
            border_packets,
        },
        traces,
        round_log,
        fleet_capture,
    ))
}

/// Loads every shard onto its own device: the local-ID CSR through
/// [`peel::load_device`] (ghost `deg` slots pinned at [`GHOST_BASE`]) plus
/// the exchange staging buffer. Allocation names and order per worker match
/// the single-device run — memstats on a worker context shows only
/// shard-local sizes.
fn build_workers(
    part: &Partition,
    cfg: &MultiGpuConfig,
    opts: &SimOptions,
) -> Result<Vec<Worker>, SimError> {
    let mut workers = Vec::with_capacity(part.num_shards());
    for shard in &part.shards {
        let mut ctx = opts.context();
        let offsets32: Vec<u32> = shard.csr.offsets().iter().map(|&o| o as u32).collect();
        let mut deg = shard.csr.degrees();
        for d in deg[shard.num_owned()..].iter_mut() {
            *d = GHOST_BASE;
        }
        let st = peel::load_device(
            &mut ctx,
            &offsets32,
            shard.csr.neighbor_array(),
            &deg,
            &cfg.peel,
        )?;
        // Staging room for one exchange's worth of (vertex, delta) packets:
        // at most one per ghost. Batch-class: packet volume is a border
        // property, not a |V|/|E|-linear one.
        let d_xfer = if shard.ghosts.is_empty() {
            None
        } else {
            Some(ctx.alloc_tagged("mgpu.xfer", 2 * shard.ghosts.len(), SizeClass::Batch)?)
        };
        workers.push(Worker {
            ctx,
            st,
            n_owned: shard.num_owned(),
            d_xfer,
            count: 0,
            seeds: Vec::new(),
        });
    }
    Ok(workers)
}

/// Runs `f` on every worker concurrently (order-preserving rayon map) and
/// records the barrier sub-round as a [`SubRoundSlice`]: `charged_ms` is the
/// max over the workers' returns — the exact addend the caller folds into
/// `total_ms`, unchanged from the pre-ledger engine (f64 max over
/// non-negative values is associative, so the sequential fold below is
/// bit-identical to the old rayon reduce) — and `device_start_ms` /
/// `device_ms` are each device's local clock at entry and its delta over
/// the sub-round. Each worker only ever touches its own context, so every
/// field is bit-identical at any pool size.
/// Per-worker observation: `(charged_ms, device_start_ms, device_delta_ms)`.
type WorkerObs = Result<(f64, f64, f64), SimError>;

fn run_workers(
    workers: &mut [Worker],
    sub_round: u32,
    f: impl Fn(&mut Worker) -> Result<f64, SimError> + Sync,
) -> Result<SubRoundSlice, SimError> {
    let mut observed: Vec<(usize, WorkerObs)> = workers
        .par_iter_mut()
        .enumerate()
        .map(|(i, w)| {
            let start = w.ctx.elapsed_ms();
            let r = f(w).map(|charged| (charged, start, w.ctx.elapsed_ms() - start));
            vec![(i, r)]
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    // Reduction order is unspecified; shard order is restored by index so
    // every ledger field is pool-size-independent.
    observed.sort_by_key(|&(i, _)| i);
    let mut slice = SubRoundSlice {
        sub_round,
        charged_ms: 0.0,
        device_start_ms: Vec::with_capacity(workers.len()),
        device_ms: Vec::with_capacity(workers.len()),
        bounding_device: 0,
    };
    for (d, r) in observed {
        let (charged, start, delta) = r?;
        if charged > slice.charged_ms {
            slice.charged_ms = charged;
            slice.bounding_device = d;
        }
        slice.device_start_ms.push(start);
        slice.device_ms.push(delta);
    }
    Ok(slice)
}

/// The synchronizing `gpu_count` readback (Algorithm 1 line 8) on one
/// worker, plus the frontier observability sample. Returns the worker's
/// simulated-time delta for this sub-round.
fn sync_worker(w: &mut Worker) -> Result<f64, SimError> {
    let before_sync = w.count;
    w.ctx.set_phase("Sync");
    w.count = w.ctx.dtoh_word(w.st.d_count, 0) as u64;
    w.ctx
        .sample_counter("frontier", (w.count - before_sync) as f64);
    Ok(w.ctx.elapsed_ms())
}

/// One border exchange: drain every worker's ghost accumulator slots, ship
/// the packets worker → master → owner, apply them with the floor-at-`k`
/// rule, and seed owners whose vertices crossed into the k-shell. Returns
/// `(any seeds produced, simulated exchange wall time, ledger)` — the
/// [`ExchangeTrace`] records the shard-pair flows and the
/// latency-vs-bandwidth split of both hops without touching a single
/// charged value: `charged_ms` in the ledger *is* the returned wall time.
#[allow(clippy::too_many_arguments)]
fn exchange(
    workers: &mut [Worker],
    part: &Partition,
    k: u32,
    cfg: &MultiGpuConfig,
    updates: &mut Vec<(u32, u32)>,
    exchanged_bytes: &mut u64,
    after_sub_round: u32,
) -> Result<(bool, f64, ExchangeTrace), SimError> {
    let num = workers.len();
    let mut ledger = ExchangeTrace {
        after_sub_round,
        charged_ms: 0.0,
        pack_ms: 0.0,
        hop1_ms: 0.0,
        hop2_ms: 0.0,
        apply_ms: 0.0,
        pack_bounding_device: 0,
        apply_bounding_device: 0,
        packets_out: 0,
        packets_aggregated: 0,
        bytes: 0,
        seeds: 0,
        seeds_per_device: vec![0; num],
        flows: Vec::new(),
    };
    let mut ms = 0.0f64;
    // Shard-pair packet counts for the flow ledger, keyed (from, to) — a
    // BTreeMap so the flow order is deterministic.
    let mut pair_packets: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    // Per-device launch-record indices backing the flow edges.
    let mut pack_seq: Vec<Option<usize>> = vec![None; num];
    let mut apply_seq: Vec<Option<usize>> = vec![None; num];
    // ---- drain + pack, shard index order ---------------------------------
    updates.clear();
    let mut packets_out = 0u64;
    for (wi, w) in workers.iter_mut().enumerate() {
        let shard = &part.shards[wi];
        if shard.ghosts.is_empty() {
            continue;
        }
        let before = w.ctx.elapsed_ms();
        let mut touched = 0u64;
        {
            // Host peek of the device ghost slots (free, like any host
            // inspection of simulator memory): delta = GHOST_BASE − slot,
            // then the slot resets to the sentinel for the next sub-round.
            let deg = w.ctx.device.buffer(w.st.d_deg);
            for (gi, &gv) in shard.ghosts.iter().enumerate() {
                let slot = &deg[w.n_owned + gi];
                let val = slot.load(Ordering::Relaxed);
                if val != GHOST_BASE {
                    updates.push((gv, GHOST_BASE - val));
                    slot.store(GHOST_BASE, Ordering::Relaxed);
                    touched += 1;
                    *pair_packets.entry((wi, part.owner_of(gv))).or_insert(0) += 1;
                }
            }
        }
        if touched > 0 {
            packets_out += touched;
            // Pack kernel: gather the touched (vertex, delta) pairs into
            // the xfer staging buffer — sparse slot reads, coalesced
            // packet writes.
            w.ctx.set_phase("Exchange");
            w.ctx.launch("mgpu_pack", cfg.peel.launch, move |blk| {
                let share = touched / blk.cfg.blocks as u64 + 1;
                blk.charge_sector(share);
                blk.charge_tx(BlockCtx::coalesced_tx(2 * share));
                Ok(())
            })?;
            pack_seq[wi] = Some(w.ctx.launches().len() - 1);
            let delta = w.ctx.elapsed_ms() - before;
            if delta > ms {
                ms = delta;
                ledger.pack_bounding_device = wi;
            }
        }
    }
    if updates.is_empty() {
        return Ok((false, ms, ledger));
    }
    ledger.pack_ms = ms;

    // ---- master aggregation, ascending global ID -------------------------
    updates.sort_unstable();
    let mut aggregated: Vec<(u32, u32)> = Vec::with_capacity(updates.len());
    for &(v, d) in updates.iter() {
        match aggregated.last_mut() {
            Some((lv, ld)) if *lv == v => *ld += d,
            _ => aggregated.push((v, d)),
        }
    }
    // Each packet is (vertex, delta): 8 bytes, shipped worker → master →
    // owner (two hops, as the paper sketches); the master dedups, so the
    // second hop carries the aggregated packets.
    let bytes = (packets_out + aggregated.len() as u64) * 8;
    *exchanged_bytes += bytes;
    ms += (cfg.link_latency_s * 2.0 + bytes as f64 / cfg.link_bandwidth) * 1e3;
    // Informational hop split (latency + that hop's bandwidth term); the
    // charged link cost above stays the single fused expression so
    // `total_ms` is bit-identical to the pre-ledger engine.
    ledger.hop1_ms = (cfg.link_latency_s + packets_out as f64 * 8.0 / cfg.link_bandwidth) * 1e3;
    ledger.hop2_ms =
        (cfg.link_latency_s + aggregated.len() as f64 * 8.0 / cfg.link_bandwidth) * 1e3;
    ledger.packets_out = packets_out;
    ledger.packets_aggregated = aggregated.len() as u64;
    ledger.bytes = bytes;

    // ---- owner-side apply, shard index order -----------------------------
    // O(1) owner lookup through the partition map (the old prototype did a
    // linear scan over worker ranges per update).
    let mut any_seeds = false;
    let mut apply_ms = 0.0f64;
    let mut start = 0usize;
    while start < aggregated.len() {
        let owner = part.owner_of(aggregated[start].0);
        let mut end = start + 1;
        while end < aggregated.len() && part.owner_of(aggregated[end].0) == owner {
            end += 1;
        }
        let bucket = &aggregated[start..end];
        let w = &mut workers[owner];
        let before = w.ctx.elapsed_ms();
        // Apply kernel: coalesced packet reads, random-access deg probes,
        // one atomic per applied decrement.
        let m = bucket.len() as u64;
        w.ctx.set_phase("Exchange");
        w.ctx.launch("mgpu_apply", cfg.peel.launch, move |blk| {
            let share = m / blk.cfg.blocks as u64 + 1;
            blk.charge_tx(BlockCtx::coalesced_tx(2 * share));
            blk.charge_sector(share);
            blk.counters.global_atomics += share;
            Ok(())
        })?;
        apply_seq[owner] = Some(w.ctx.launches().len() - 1);
        {
            let deg = w.ctx.device.buffer(w.st.d_deg);
            for &(gv, cnt) in bucket {
                let lv = part.local_id[gv as usize] as usize;
                let cur = deg[lv].load(Ordering::Relaxed);
                // Floor at k (Fig. 6 Case-1 recovery, host side): removed
                // vertices sit at their core (≤ k) and are untouched.
                let applicable = cur.saturating_sub(k).min(cnt);
                if applicable > 0 {
                    deg[lv].store(cur - applicable, Ordering::Relaxed);
                    // Seed only on the crossing itself, so a vertex already
                    // waiting in a seed list is not re-seeded later.
                    if cur - applicable == k {
                        w.seeds.push(lv as u32);
                        any_seeds = true;
                        ledger.seeds += 1;
                        ledger.seeds_per_device[owner] += 1;
                    }
                }
            }
        }
        let delta = w.ctx.elapsed_ms() - before;
        if delta > apply_ms {
            apply_ms = delta;
            ledger.apply_bounding_device = owner;
        }
        start = end;
    }
    // Flow edges: every pair that shipped packets has a pack launch on the
    // shipper and — because the master forwards every aggregated vertex to
    // its owner — an apply launch on the receiver.
    ledger.flows = pair_packets
        .into_iter()
        .map(|((from, to), packets)| FlowEdge {
            from_device: from,
            to_device: to,
            packets,
            bytes: packets * 8,
            pack_launch_seq: pack_seq[from].expect("shipper ran a pack launch"),
            apply_launch_seq: apply_seq[to].expect("owner ran an apply launch"),
        })
        .collect();
    ledger.apply_ms = apply_ms;
    ledger.charged_ms = ms + apply_ms;
    Ok((any_seeds, ms + apply_ms, ledger))
}

/// Injects border seeds (local IDs) into the per-block frontier buffers for
/// a loop-only launch: each block takes the seeds its scan would have
/// found (`(v / blk_dim) mod blocks`), and **every** block rewrites its
/// `buf_e` tail — a block with no seeds must clear the stale tail left by
/// the previous launch, or the loop kernel would re-consume garbage.
fn seed_frontier(
    ctx: &mut GpuContext,
    st: &peel::DeviceState,
    cfg: &PeelConfig,
    seeds: &[u32],
) -> Result<(), SimError> {
    ctx.set_phase("Seed");
    let cap = st.cap;
    let d_buf = st.d_buf;
    let d_buf_e = st.d_buf_e;
    ctx.launch("mgpu_seed", cfg.launch, |blk| {
        let dev = blk.device;
        let b = blk.block_idx as usize;
        let blocks = blk.cfg.blocks as usize;
        let blk_dim = blk.cfg.threads_per_block as usize;
        let bufb = &dev.buffer(d_buf)[b * cap..(b + 1) * cap];
        // Broadcast read of the seed list (coalesced).
        blk.charge_tx(BlockCtx::coalesced_tx(seeds.len() as u64));
        let mut e = 0usize;
        for &v in seeds {
            if (v as usize / blk_dim) % blocks == b {
                if e >= cap {
                    return Err(KernelError::BufferOverflow {
                        what: format!("block {b}: seed injection filled buffer (capacity {cap})"),
                    });
                }
                bufb[e].store(v, Ordering::Relaxed);
                e += 1;
            }
        }
        if e > 0 {
            blk.charge_tx(BlockCtx::coalesced_tx(e as u64));
        }
        blk.gwrite(&dev.buffer(d_buf_e)[b], e as u32);
        Ok(())
    })?;
    Ok(())
}

fn max_f64(it: impl Iterator<Item = f64>) -> f64 {
    it.fold(0.0f64, f64::max)
}

/// Per-shard memory snapshots of the setup state (graph arrays + scratch +
/// exchange staging), without running the decomposition — the fit-table
/// path of the `table_scale` bench. Each device's [`kcore_gpusim::MemStats`]
/// carries its shard-local workload dims for per-shard extrapolation.
pub fn shard_memstats(
    g: &Csr,
    cfg: &MultiGpuConfig,
    opts: &SimOptions,
) -> Result<FleetMemStats, SimError> {
    let part = Partition::build(g, cfg.num_gpus, cfg.partition);
    let workers = build_workers(&part, cfg, opts)?;
    Ok(FleetMemStats::new(
        workers.iter().map(|w| w.ctx.memstats()).collect(),
    ))
}

/// Convenience: single-device reference via [`peel::decompose`] for
/// comparing against the distributed run.
pub fn single_gpu_ms(g: &Csr, cfg: &PeelConfig, opts: &SimOptions) -> Result<f64, SimError> {
    Ok(peel::decompose(g, cfg, opts)?.report.total_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_cpu::CoreAlgorithm;
    use kcore_gpusim::LaunchConfig;
    use kcore_graph::gen;

    fn cfg(p: usize) -> MultiGpuConfig {
        MultiGpuConfig {
            num_gpus: p,
            peel: PeelConfig {
                launch: LaunchConfig {
                    blocks: 8,
                    threads_per_block: 128,
                },
                buf_capacity: 8_192,
                ..PeelConfig::default()
            },
            ..MultiGpuConfig::default()
        }
    }

    fn check(g: &Csr, p: usize) {
        let run = decompose_multi(g, &cfg(p), &SimOptions::default()).unwrap();
        let expect = kcore_cpu::bz::Bz.run(g);
        assert_eq!(run.core, expect, "{p} GPUs");
        assert_eq!(run.k_max, expect.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn fig1_on_various_gpu_counts() {
        let g = kcore_graph::fig1_graph();
        for p in [1, 2, 3, 4, 8] {
            check(&g, p);
        }
    }

    #[test]
    fn random_graphs() {
        for seed in 0..3 {
            let g = gen::erdos_renyi_gnm(400, 1_600, seed);
            check(&g, 4);
        }
    }

    #[test]
    fn skewed_and_structured() {
        check(&gen::power_law_hubs(1_000, 2_000, 2, 0.2, 6), 4);
        check(&gen::complete(30), 3);
        check(&gen::path(200), 5);
    }

    #[test]
    fn border_shells_need_extra_sub_rounds() {
        // A path crosses every partition border, so its single 1-shell
        // cascade must bounce between workers: sub_rounds > rounds.
        let g = gen::path(400);
        let run = decompose_multi(&g, &cfg(4), &SimOptions::default()).unwrap();
        assert_eq!(run.core, vec![1; 400]);
        assert!(
            run.sub_rounds > run.rounds,
            "{} !> {}",
            run.sub_rounds,
            run.rounds
        );
        assert!(run.exchanged_bytes > 0);
    }

    #[test]
    fn one_gpu_needs_no_exchange() {
        let g = gen::erdos_renyi_gnm(300, 900, 1);
        let run = decompose_multi(&g, &cfg(1), &SimOptions::default()).unwrap();
        assert_eq!(run.exchanged_bytes, 0);
        assert_eq!(run.sub_rounds, run.rounds);
    }

    #[test]
    fn more_gpus_than_vertices() {
        let g = gen::complete(3);
        let run = decompose_multi(&g, &cfg(16), &SimOptions::default()).unwrap();
        assert_eq!(run.core, vec![2, 2, 2]);
        // shard count clamps to |V|
        assert_eq!(run.per_device_peak_bytes.len(), 3);
    }

    #[test]
    fn empty_graph() {
        let run = decompose_multi(&Csr::empty(0), &cfg(2), &SimOptions::default()).unwrap();
        assert!(run.core.is_empty());
        assert!(run.worker_fingerprints.is_empty());
    }

    #[test]
    fn degree_aware_partition_with_non_uniform_shards() {
        // Satellite regression: hub-splitting produces non-uniform,
        // non-contiguous shards; border seeds must still land on the right
        // owner through the O(1) partition map.
        let g = gen::power_law_hubs(1_500, 3_000, 5, 0.3, 17);
        let part = Partition::build(&g, 3, PartitionStrategy::DegreeAware);
        let sizes: Vec<usize> = part.shards.iter().map(|s| s.num_owned()).collect();
        assert!(sizes.windows(2).any(|w| w[0] != w[1]), "sizes {sizes:?}");
        let c = MultiGpuConfig {
            partition: PartitionStrategy::DegreeAware,
            num_gpus: 3,
            ..cfg(3)
        };
        let run = decompose_multi(&g, &c, &SimOptions::default()).unwrap();
        assert_eq!(run.core, kcore_cpu::bz::Bz.run(&g));
    }

    #[test]
    fn worker_residency_is_shard_local() {
        // Tentpole memory contract: each worker's ledger holds only
        // shard-local allocations — no full-|V| arrays on any device.
        let g = gen::erdos_renyi_gnm(1_200, 6_000, 9);
        let (run, traces) = decompose_multi_traced(&g, &cfg(4), &SimOptions::default()).unwrap();
        assert_eq!(run.core, kcore_cpu::bz::Bz.run(&g));
        let part = Partition::build(&g, 4, PartitionStrategy::BalancedArcs);
        assert_eq!(traces.len(), 4);
        for (t, shard) in traces.iter().zip(&part.shards) {
            let deg = t
                .memstats
                .allocations
                .iter()
                .find(|a| a.name == "deg")
                .expect("worker has a deg allocation");
            assert_eq!(
                deg.elems as usize,
                shard.num_local(),
                "deg must be shard-sized"
            );
            assert!(shard.num_local() < g.num_vertices() as usize);
            let nbrs = t
                .memstats
                .allocations
                .iter()
                .find(|a| a.name == "neighbors")
                .unwrap();
            assert_eq!(nbrs.elems, shard.owned_arcs);
        }
        // per-device peaks sum to the reported fleet total
        assert_eq!(
            run.per_device_peak_bytes.iter().sum::<u64>(),
            run.total_peak_mem_bytes
        );
    }

    #[test]
    fn exec_paths_agree_on_sharded_run() {
        let g = gen::web_crawl(1_000, 8, 0.5, 2_000, 3);
        let base = cfg(2);
        let runs: Vec<MultiGpuRun> = [ExecPath::Fused, ExecPath::Fast, ExecPath::Reference]
            .iter()
            .map(|&ep| {
                let c = MultiGpuConfig {
                    peel: base.peel.with_exec_path(ep),
                    ..base
                };
                decompose_multi(&g, &c, &SimOptions::default()).unwrap()
            })
            .collect();
        assert_eq!(runs[0].core, runs[1].core);
        assert_eq!(runs[1].core, runs[2].core);
        assert_eq!(runs[0].exchanged_bytes, runs[1].exchanged_bytes);
        assert_eq!(runs[0].sub_rounds, runs[1].sub_rounds);
        // Fused ≡ Fast to the bit (the fused engine's record contract);
        // Reference differs only in kernel-internal counter attribution.
        assert_eq!(runs[0].worker_fingerprints, runs[1].worker_fingerprints);
        assert_eq!(runs[0].total_ms.to_bits(), runs[1].total_ms.to_bits());
    }

    #[test]
    fn fleet_capture_observes_and_never_charges() {
        // The fleet path must return the *same run* — total_ms to the bit,
        // identical fingerprints and exchange volume — while its ledger
        // replays the charged addends exactly (check_well_formed).
        let g = gen::path(400);
        let (base, base_traces) =
            decompose_multi_traced(&g, &cfg(4), &SimOptions::default()).unwrap();
        let fr = decompose_multi_fleet(&g, &cfg(4), &SimOptions::default(), "path400").unwrap();
        assert_eq!(fr.run.total_ms.to_bits(), base.total_ms.to_bits());
        assert_eq!(fr.run.worker_fingerprints, base.worker_fingerprints);
        assert_eq!(fr.run.exchanged_bytes, base.exchanged_bytes);
        assert_eq!(fr.traces.len(), base_traces.len());
        for (a, b) in fr.traces.iter().zip(&base_traces) {
            assert_eq!(a.counters_fingerprint(), b.counters_fingerprint());
        }
        fr.fleet.check_well_formed().unwrap();
        assert_eq!(fr.fleet.rounds.len(), fr.run.rounds as usize);
        // path(400) over 4 shards bounces its 1-shell across borders
        assert!(fr.run.border_packets > 0);
        assert!(fr.run.exchange_rounds > 0);
        let ledger_bytes: u64 = fr
            .fleet
            .rounds
            .iter()
            .flat_map(|r| &r.exchanges)
            .map(|e| e.bytes)
            .sum();
        assert_eq!(ledger_bytes, fr.run.exchanged_bytes);
        // every round has a named bounding resource
        for c in &fr.fleet.critical_path {
            assert_ne!(c.bound, "idle");
            assert!(c.bounding_resource.starts_with("device") || c.bounding_resource == "link");
        }
        // the merged perfetto export renders and carries link flow events
        let json = fr.fleet.merged_chrome_json(&fr.timelines);
        assert!(json.contains("Fleet links"));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("border cascades"));
    }

    #[test]
    fn one_gpu_fleet_has_no_flows() {
        let g = gen::erdos_renyi_gnm(300, 900, 1);
        let fr = decompose_multi_fleet(&g, &cfg(1), &SimOptions::default(), "er").unwrap();
        fr.fleet.check_well_formed().unwrap();
        assert_eq!(fr.run.border_packets, 0);
        assert_eq!(fr.run.exchange_rounds, 0);
        assert!(fr
            .fleet
            .rounds
            .iter()
            .all(|r| r.exchanges.iter().all(|e| e.flows.is_empty())));
    }

    #[test]
    fn pool_sizes_are_bit_identical() {
        let g = gen::path(400);
        let base = decompose_multi(&g, &cfg(4), &SimOptions::default()).unwrap();
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let run =
                pool.install(|| decompose_multi(&g, &cfg(4), &SimOptions::default()).unwrap());
            assert_eq!(run.core, base.core, "pool {threads}");
            assert_eq!(run.worker_fingerprints, base.worker_fingerprints);
            assert_eq!(run.exchanged_bytes, base.exchanged_bytes);
            assert_eq!(run.sub_rounds, base.sub_rounds);
            assert_eq!(run.total_ms.to_bits(), base.total_ms.to_bits());
        }
    }
}
