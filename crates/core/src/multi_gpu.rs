//! Multi-GPU k-core decomposition — the paper's §VII future work, built out.
//!
//! > "we can partition a graph among worker GPUs running our kernels, but
//! > degree updates of border vertices would be aggregated afterwards, which
//! > can be computed at a master GPU. Moreover, the updates may cause new
//! > border vertices to be in k-shell, so more than one round may be needed
//! > to compute a k-shell."
//!
//! Design implemented here:
//!
//! * vertices are range-partitioned across `num_gpus` simulated devices;
//!   each worker holds the CSR rows of its own vertices (edges to ghosts
//!   included) plus a full-length degree array that is *authoritative only
//!   for its own range*;
//! * each peeling round `k` runs **sub-rounds**: every worker executes the
//!   scan/loop kernels against its local vertices, applying the
//!   decrement-and-recover protocol to local neighbors and *accumulating*
//!   decrements destined for ghost vertices in a per-worker update buffer;
//! * after the local loops drain, border updates are shipped to the owners
//!   (master-aggregated, as the paper sketches): an owner applies the
//!   aggregate decrements with a floor at `k` — a vertex that lands exactly
//!   on `k` is seeded into the owner's next sub-round (the paper's "new
//!   border vertices in the k-shell");
//! * sub-rounds repeat until no worker produced border updates or seeds;
//!   wall time per phase is the *max* over workers (they run concurrently)
//!   plus the inter-GPU transfer cost of the update exchange.

use crate::config::PeelConfig;
use crate::peel;
use kcore_gpusim::{GpuContext, SimError, SimOptions, SizeClass};
use kcore_graph::{Csr, GraphBuilder};

/// Configuration of a multi-GPU run.
#[derive(Debug, Clone, Copy)]
pub struct MultiGpuConfig {
    /// Number of worker GPUs (each gets its own simulated device).
    pub num_gpus: usize,
    /// Kernel configuration used by every worker.
    pub peel: PeelConfig,
    /// Inter-GPU link bandwidth, bytes/s (PCIe peer-to-peer ≈ 10 GB/s on
    /// the paper-era platform; NVLink would be ~40 GB/s).
    pub link_bandwidth: f64,
    /// Fixed per-exchange latency, seconds.
    pub link_latency_s: f64,
}

impl Default for MultiGpuConfig {
    fn default() -> Self {
        MultiGpuConfig {
            num_gpus: 4,
            peel: PeelConfig::default(),
            link_bandwidth: 10e9,
            link_latency_s: 10e-6,
        }
    }
}

/// Result of a multi-GPU decomposition.
#[derive(Debug, Clone)]
pub struct MultiGpuRun {
    /// Per-vertex core numbers.
    pub core: Vec<u32>,
    /// `max_v core(v)`.
    pub k_max: u32,
    /// Peeling rounds (`k_max + 1`).
    pub rounds: u32,
    /// Total sub-rounds across all rounds (> rounds when k-shells span
    /// partition borders).
    pub sub_rounds: u32,
    /// Simulated wall time (max-over-workers per phase + exchanges), ms.
    pub total_ms: f64,
    /// Sum of worker device peaks, bytes.
    pub total_peak_mem_bytes: u64,
    /// Bytes exchanged between devices over the whole run.
    pub exchanged_bytes: u64,
}

/// One worker's sub-round outcome (host-visible).
struct WorkerState {
    ctx: GpuContext,
    /// This worker's vertex range in the global ID space.
    lo: u32,
    hi: u32,
    /// Local subgraph: rows for `lo..hi` plus ghost stubs (ghosts have empty
    /// adjacency; their degrees are tracked by their owners).
    local: Csr,
    /// Authoritative degrees for `lo..hi` (host mirror of the device state;
    /// the simulated kernels operate on the device copy).
    seeds: Vec<u32>,
}

/// Runs the distributed decomposition. `opts.device_capacity_bytes` is the
/// capacity of *each* worker device.
pub fn decompose_multi(
    g: &Csr,
    cfg: &MultiGpuConfig,
    opts: &SimOptions,
) -> Result<MultiGpuRun, SimError> {
    assert!(cfg.num_gpus >= 1);
    let n = g.num_vertices() as usize;
    if n == 0 {
        return Ok(MultiGpuRun {
            core: Vec::new(),
            k_max: 0,
            rounds: 0,
            sub_rounds: 0,
            total_ms: 0.0,
            total_peak_mem_bytes: 0,
            exchanged_bytes: 0,
        });
    }
    let p = cfg.num_gpus.min(n);
    // Orchestration runs on the host across worker contexts, so its spans
    // land on the process-global profiler rather than any one context's.
    let prof = kcore_gpusim::hostprof::global();
    let _run_span = prof.map(|hp| hp.span("multi_gpu/decompose"));

    // ---- partition & build local subgraphs -------------------------------
    let partition_span = prof.map(|hp| hp.span("multi_gpu/partition"));
    let mut workers: Vec<WorkerState> = Vec::with_capacity(p);
    for w in 0..p {
        let lo = (w * n / p) as u32;
        let hi = ((w + 1) * n / p) as u32;
        // Local subgraph keeps global IDs; rows outside [lo, hi) are empty.
        let mut b = GraphBuilder::with_num_vertices(n as u32);
        for v in lo..hi {
            for &u in g.neighbors(v) {
                b.add_edge(v, u);
            }
        }
        let local = b.build();
        // Each worker's resident set, held for the whole run: its local CSR
        // rows, a full-length degree array (authoritative for [lo, hi)), and
        // the peel scratch buffer. Real ledger allocations — `memstats()` on
        // a worker context sees them — and allocs charge no simulated time,
        // so per-phase kernel timing is untouched.
        let mut ctx = opts.context();
        ctx.set_phase("Setup");
        ctx.set_workload_dims(n as u64, local.num_arcs());
        ctx.alloc_tagged(
            "mgpu.local_arcs",
            local.num_arcs() as usize,
            SizeClass::PerArc,
        )?;
        ctx.alloc_tagged("mgpu.deg", n, SizeClass::PerVertex)?;
        ctx.alloc_tagged("mgpu.buf", cfg.peel.buf_capacity, SizeClass::Fixed)?;
        workers.push(WorkerState {
            ctx,
            lo,
            hi,
            local,
            seeds: Vec::new(),
        });
    }

    // Degrees: authoritative per owner; ghost degrees replicated read-only.
    // Host-orchestrated state (the master's view).
    let mut deg: Vec<u32> = g.degrees();
    let mut core: Vec<u32> = vec![0; n];
    let mut removed: Vec<bool> = vec![false; n];

    let mut total_ms = 0.0f64;
    let mut exchanged_bytes = 0u64;
    let mut sub_rounds = 0u32;
    let mut remaining = n;
    let mut k = 0u32;
    let mut rounds = 0u32;

    // Ghost decrement accumulator, hoisted across sub-rounds (arena-style:
    // a fresh `vec![0; n]` per sub-round dominated the host loop's
    // allocation churn on cascade-heavy graphs). `ghost_touched` records the
    // nonzero entries so each exchange resets in O(touched), not O(n).
    let mut ghost_cnt: Vec<u32> = vec![0; n];
    let mut ghost_touched: Vec<u32> = Vec::new();
    let mut updates: Vec<(u32, u32)> = Vec::new();

    drop(partition_span);
    let _rounds_span = prof.map(|hp| hp.span("multi_gpu/rounds"));
    while remaining > 0 {
        rounds += 1;
        // Seed each worker with its own degree-k vertices (the scan phase).
        for w in workers.iter_mut() {
            w.seeds.clear();
            for v in w.lo..w.hi {
                if !removed[v as usize] && deg[v as usize] == k {
                    w.seeds.push(v);
                }
            }
        }
        // Charge each worker a scan kernel over its range (the scan cost of
        // Algorithm 2, per worker, concurrent => max).
        let mut scan_ms = 0.0f64;
        for w in workers.iter_mut() {
            let before = w.ctx.elapsed_ms();
            let range = (w.hi - w.lo) as u64;
            w.ctx.set_phase("Scan");
            w.ctx.launch("mgpu_scan", cfg.peel.launch, |blk| {
                let share = range / blk.cfg.blocks as u64 + 1;
                blk.charge_tx(kcore_gpusim::BlockCtx::coalesced_tx(share));
                blk.charge_instr(share.div_ceil(32));
                Ok(())
            })?;
            scan_ms = scan_ms.max(w.ctx.elapsed_ms() - before);
        }
        total_ms += scan_ms;

        // Sub-rounds: local loop phases + border exchange.
        loop {
            sub_rounds += 1;
            let mut any_seeds = false;
            let mut loop_ms = 0.0f64;

            for w in workers.iter_mut() {
                if w.seeds.is_empty() {
                    continue;
                }
                any_seeds = true;
                let before = w.ctx.elapsed_ms();
                // Local BFS loop (host-orchestrated mirror of Algorithm 3,
                // charged as a loop kernel on the worker's device).
                let mut queue = std::mem::take(&mut w.seeds);
                let mut qi = 0usize;
                let mut arcs_walked = 0u64;
                while qi < queue.len() {
                    let v = queue[qi];
                    qi += 1;
                    removed[v as usize] = true;
                    core[v as usize] = k;
                    arcs_walked += w.local.degree(v) as u64;
                    for &u in w.local.neighbors(v) {
                        if u >= w.lo && u < w.hi {
                            // local neighbor: standard decrement
                            if !removed[u as usize] && deg[u as usize] > k {
                                deg[u as usize] -= 1;
                                if deg[u as usize] == k {
                                    queue.push(u);
                                }
                            }
                        } else {
                            // ghost: defer to the owner via the master
                            if ghost_cnt[u as usize] == 0 {
                                ghost_touched.push(u);
                            }
                            ghost_cnt[u as usize] += 1;
                        }
                    }
                }
                remaining -= queue.len();
                // Charge the worker's loop kernel: frontier reads + arc walk.
                let q = queue.len() as u64;
                w.ctx.set_phase("Loop");
                w.ctx.launch("mgpu_loop", cfg.peel.launch, |blk| {
                    let blocks = blk.cfg.blocks as u64;
                    blk.charge_sector(q / blocks + 1); // frontier fetches
                    blk.counters.dependent_reads += q / blocks + 1;
                    blk.charge_tx(kcore_gpusim::BlockCtx::coalesced_tx(
                        arcs_walked / blocks + 1,
                    ));
                    blk.charge_sector(arcs_walked / blocks + 1); // deg probes
                    blk.counters.global_atomics += arcs_walked / blocks + 1;
                    Ok(())
                })?;
                // Observability: this worker's sub-round frontier on its own
                // device's "frontier" track (free — charges nothing).
                w.ctx.sample_counter("frontier", q as f64);
                loop_ms = loop_ms.max(w.ctx.elapsed_ms() - before);
            }
            total_ms += loop_ms;
            if !any_seeds {
                break;
            }

            // ---- border exchange through the master -----------------------
            // Drain the accumulator into `updates` (sorted, matching the
            // former full-array sweep) and re-zero only the touched slots.
            ghost_touched.sort_unstable();
            updates.clear();
            for &v in &ghost_touched {
                updates.push((v, ghost_cnt[v as usize]));
                ghost_cnt[v as usize] = 0;
            }
            ghost_touched.clear();
            if !updates.is_empty() {
                // each update is (vertex, count): 8 bytes, shipped worker →
                // master → owner (two hops, as the paper sketches).
                let bytes = updates.len() as u64 * 8 * 2;
                exchanged_bytes += bytes;
                total_ms += (cfg.link_latency_s * 2.0 + bytes as f64 / cfg.link_bandwidth) * 1e3;
                for &(v, cnt) in &updates {
                    if removed[v as usize] {
                        continue;
                    }
                    // apply with a floor at k (Fig. 6 Case-1 recovery)
                    let dv = &mut deg[v as usize];
                    let applicable = (*dv).saturating_sub(k).min(cnt);
                    *dv -= applicable;
                    // seed only on the crossing itself (applicable > 0), so
                    // a vertex already waiting in a seed list is not
                    // re-seeded by a later exchange
                    if applicable > 0 && *dv == k {
                        // new border k-shell vertex: seed its owner
                        let owner = workers
                            .iter_mut()
                            .find(|w| v >= w.lo && v < w.hi)
                            .expect("vertex has an owner");
                        owner.seeds.push(v);
                    }
                }
            }
            // continue sub-rounds while seeds remain
            if workers.iter().all(|w| w.seeds.is_empty()) {
                break;
            }
        }
        k += 1;
        if k as usize > n + 1 {
            return Err(SimError::Kernel(kcore_gpusim::KernelError::Other(
                "multi-GPU peeling did not converge".into(),
            )));
        }
    }

    let k_max = core.iter().copied().max().unwrap_or(0);
    // The resident set is allocated through the ledger at worker setup, so
    // the device peak alone is the footprint.
    let total_peak_mem_bytes = workers.iter().map(|w| w.ctx.device.peak_bytes()).sum();
    Ok(MultiGpuRun {
        core,
        k_max,
        rounds,
        sub_rounds,
        total_ms,
        total_peak_mem_bytes,
        exchanged_bytes,
    })
}

/// Convenience: single-device reference via [`peel::decompose`] for
/// comparing against the distributed run.
pub fn single_gpu_ms(g: &Csr, cfg: &PeelConfig, opts: &SimOptions) -> Result<f64, SimError> {
    Ok(peel::decompose(g, cfg, opts)?.report.total_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_cpu::CoreAlgorithm;
    use kcore_gpusim::LaunchConfig;
    use kcore_graph::gen;

    fn cfg(p: usize) -> MultiGpuConfig {
        MultiGpuConfig {
            num_gpus: p,
            peel: PeelConfig {
                launch: LaunchConfig {
                    blocks: 8,
                    threads_per_block: 128,
                },
                buf_capacity: 8_192,
                ..PeelConfig::default()
            },
            ..MultiGpuConfig::default()
        }
    }

    fn check(g: &Csr, p: usize) {
        let run = decompose_multi(g, &cfg(p), &SimOptions::default()).unwrap();
        let expect = kcore_cpu::bz::Bz.run(g);
        assert_eq!(run.core, expect, "{p} GPUs");
        assert_eq!(run.k_max, expect.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn fig1_on_various_gpu_counts() {
        let g = kcore_graph::fig1_graph();
        for p in [1, 2, 3, 4, 8] {
            check(&g, p);
        }
    }

    #[test]
    fn random_graphs() {
        for seed in 0..3 {
            let g = gen::erdos_renyi_gnm(400, 1_600, seed);
            check(&g, 4);
        }
    }

    #[test]
    fn skewed_and_structured() {
        check(&gen::power_law_hubs(1_000, 2_000, 2, 0.2, 6), 4);
        check(&gen::complete(30), 3);
        check(&gen::path(200), 5);
    }

    #[test]
    fn border_shells_need_extra_sub_rounds() {
        // A path crosses every partition border, so its single 1-shell
        // cascade must bounce between workers: sub_rounds > rounds.
        let g = gen::path(400);
        let run = decompose_multi(&g, &cfg(4), &SimOptions::default()).unwrap();
        assert_eq!(run.core, vec![1; 400]);
        assert!(
            run.sub_rounds > run.rounds,
            "{} !> {}",
            run.sub_rounds,
            run.rounds
        );
        assert!(run.exchanged_bytes > 0);
    }

    #[test]
    fn one_gpu_needs_no_exchange() {
        let g = gen::erdos_renyi_gnm(300, 900, 1);
        let run = decompose_multi(&g, &cfg(1), &SimOptions::default()).unwrap();
        assert_eq!(run.exchanged_bytes, 0);
    }

    #[test]
    fn more_gpus_than_vertices() {
        let g = gen::complete(3);
        let run = decompose_multi(&g, &cfg(16), &SimOptions::default()).unwrap();
        assert_eq!(run.core, vec![2, 2, 2]);
    }

    #[test]
    fn empty_graph() {
        let run = decompose_multi(&Csr::empty(0), &cfg(2), &SimOptions::default()).unwrap();
        assert!(run.core.is_empty());
    }
}
