//! Direct GPU implementation of the MPM h-index algorithm.
//!
//! The paper's introduction motivates studying *both* peeling and MPM-style
//! algorithms "for execution directly on a GPU": MPM's minimal dependency
//! (every vertex refines independently) is exactly the massive-parallelism
//! shape a GPU likes, even though its total workload exceeds peeling's.
//! §V only evaluates MPM through Medusa; this module provides the
//! tailor-made CUDA-style counterpart, so the framework tax is measurable:
//! a warp per vertex gathers neighbor estimates with coalesced reads and
//! computes the bounded h-index in registers/shared memory — no message
//! materialization, no reverse index, no per-superstep host round trips
//! beyond the convergence flag.

use kcore_gpusim::warp::WARP_SIZE;
use kcore_gpusim::{BlockCtx, Coalescing, GpuContext, SimError, SimOptions, SimReport, SizeClass};
use kcore_graph::Csr;
use std::sync::atomic::Ordering;

/// Result of a direct GPU-MPM run.
#[derive(Debug, Clone)]
pub struct GpuMpmRun {
    /// Per-vertex core numbers.
    pub core: Vec<u32>,
    /// Jacobi sweeps until convergence.
    pub sweeps: u32,
    /// Simulated-time / traffic / memory report.
    pub report: SimReport,
}

/// Runs Jacobi h-index refinement on the simulated GPU until convergence.
pub fn decompose_mpm(g: &Csr, opts: &SimOptions) -> Result<GpuMpmRun, SimError> {
    let mut ctx = opts.context();
    let (core, sweeps) = decompose_mpm_in(&mut ctx, g)?;
    Ok(GpuMpmRun {
        core,
        sweeps,
        report: ctx.report(),
    })
}

/// [`decompose_mpm`] against a caller-owned context.
pub fn decompose_mpm_in(ctx: &mut GpuContext, g: &Csr) -> Result<(Vec<u32>, u32), SimError> {
    let n = g.num_vertices() as usize;
    if n == 0 {
        return Ok((Vec::new(), 0));
    }
    ctx.set_phase("Setup");
    ctx.set_workload_dims(n as u64, g.num_arcs());
    let offsets32: Vec<u32> = g.offsets().iter().map(|&o| o as u32).collect();
    let d_offsets = ctx.htod_tagged("gpumpm.offset", &offsets32, SizeClass::PerVertex)?;
    let d_neighbors = ctx.htod_tagged("gpumpm.neighbors", g.neighbor_array(), SizeClass::PerArc)?;
    let d_a = ctx.htod_tagged("gpumpm.a", &g.degrees(), SizeClass::PerVertex)?;
    let d_a_new = ctx.alloc_tagged("gpumpm.a_new", n, SizeClass::PerVertex)?;
    let d_flag = ctx.alloc_tagged("gpumpm.flag", 1, SizeClass::Fixed)?;
    let launch = kcore_gpusim::LaunchConfig::paper();

    let mut bufs = [d_a, d_a_new];
    let mut sweeps = 0u32;
    loop {
        sweeps += 1;
        ctx.device.fill(d_flag, 0);
        let (cur, next) = (bufs[0], bufs[1]);
        ctx.set_phase("Sweep");
        ctx.launch("gpumpm_sweep", launch, |blk| {
            let d = blk.device;
            let offsets = d.buffer(d_offsets);
            let neighbors = d.buffer(d_neighbors);
            let a = d.buffer(cur);
            let a_out = d.buffer(next);
            let flag = &d.buffer(d_flag)[0];
            let blocks = blk.cfg.blocks as usize;
            let b = blk.block_idx as usize;
            let (lo, hi) = (b * n / blocks, (b + 1) * n / blocks);
            // one warp per vertex: coalesced adjacency + estimate gathers
            let mut scratch: Vec<u32> = Vec::new();
            for v in lo..hi {
                let (s, e) = (
                    offsets[v].load(Ordering::Relaxed) as usize,
                    offsets[v + 1].load(Ordering::Relaxed) as usize,
                );
                let deg = (e - s) as u64;
                let cur_a = a[v].load(Ordering::Relaxed);
                blk.charge_sector(1); // offsets pair
                blk.charge_tx(BlockCtx::coalesced_tx(deg)); // neighbor IDs
                                                            // warp-level bounded h-index: bucket counts in shared memory,
                                                            // one pass + top-down scan
                blk.counters.shared_accesses += deg + cur_a.min(deg as u32) as u64;
                blk.charge_instr(deg.div_ceil(32).max(1) * 3);
                // Warp-vectorized estimate gather: one scattered warp access
                // per 32 neighbors (charge-identical to the former per-vertex
                // `charge_sector(deg)`), bucket counts filled straight from
                // the gathered lanes.
                let b = cur_a as usize;
                scratch.clear();
                scratch.resize(b + 1, 0);
                let mut j = s;
                while j < e {
                    let cnt = (e - j).min(WARP_SIZE);
                    let mut idxs = [0usize; WARP_SIZE];
                    for (l, slot) in idxs[..cnt].iter_mut().enumerate() {
                        *slot = neighbors[j + l].load(Ordering::Relaxed) as usize;
                    }
                    let mut vals = [0u32; WARP_SIZE];
                    blk.gather(a, &idxs[..cnt], &mut vals[..cnt], Coalescing::Scattered);
                    for &x in &vals[..cnt] {
                        scratch[(x as usize).min(b)] += 1;
                    }
                    j += cnt;
                }
                let h = h_from_buckets(&scratch, cur_a);
                a_out[v].store(h, Ordering::Relaxed);
                blk.charge_sector(1);
                if h != cur_a {
                    blk.atomic_add(flag, 1);
                }
            }
            Ok(())
        })?;
        ctx.set_phase("Sync");
        let changed = ctx.dtoh_word(d_flag, 0);
        // Observability: vertices whose estimate moved this sweep, on the
        // "changed" counter track (free — sampling charges nothing).
        ctx.sample_counter("changed", changed as f64);
        bufs.swap(0, 1);
        if changed == 0 {
            break;
        }
        if sweeps as usize > 2 * n + 2 {
            return Err(SimError::Kernel(kcore_gpusim::KernelError::Other(
                "GPU MPM did not converge".into(),
            )));
        }
    }
    ctx.set_phase("Result");
    let core = ctx.dtoh(bufs[0]);
    Ok((core, sweeps))
}

/// Top-down scan over bucket counts (values clamped to `bound`): the
/// largest `i` with at least `i` values `>= i`.
fn h_from_buckets(buckets: &[u32], bound: u32) -> u32 {
    let mut at_least = 0u32;
    for i in (1..=bound as usize).rev() {
        at_least += buckets[i];
        if at_least as usize >= i {
            return i as u32;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcore_cpu::CoreAlgorithm;
    use kcore_graph::{fig1_core_numbers, fig1_graph, gen};

    #[test]
    fn fig1() {
        let run = decompose_mpm(&fig1_graph(), &SimOptions::default()).unwrap();
        assert_eq!(run.core, fig1_core_numbers());
        assert!(run.sweeps >= 2);
    }

    #[test]
    fn agrees_with_bz_on_random_graphs() {
        for seed in 0..3 {
            let g = gen::erdos_renyi_gnm(500, 2_000, seed);
            let run = decompose_mpm(&g, &SimOptions::default()).unwrap();
            assert_eq!(run.core, kcore_cpu::bz::Bz.run(&g), "seed {seed}");
        }
    }

    #[test]
    fn cheaper_than_medusa_mpm() {
        // the point of the tailor-made kernel: no message materialization,
        // no reverse index — less traffic and time than the Medusa version
        let g = gen::rmat(12, 30_000, gen::RmatParams::graph500(), 3);
        let direct = decompose_mpm(&g, &SimOptions::default()).unwrap();
        let medusa = kcore_systems::medusa::mpm(
            &g,
            &SimOptions::default(),
            &kcore_systems::FrameworkCosts::default(),
        )
        .unwrap();
        assert_eq!(direct.core, medusa.core);
        assert!(
            direct.report.total_ms < medusa.report.total_ms,
            "direct {} !< medusa {}",
            direct.report.total_ms,
            medusa.report.total_ms
        );
        assert!(direct.report.peak_mem_bytes < medusa.report.peak_mem_bytes);
    }

    #[test]
    fn empty_graph() {
        let run = decompose_mpm(&kcore_graph::Csr::empty(3), &SimOptions::default()).unwrap();
        assert_eq!(run.core, vec![0; 3]);
    }

    #[test]
    fn sweeps_track_structure() {
        let path = decompose_mpm(&gen::path(64), &SimOptions::default()).unwrap();
        let clique = decompose_mpm(&gen::complete(64), &SimOptions::default()).unwrap();
        assert!(path.sweeps > clique.sweeps);
    }
}
