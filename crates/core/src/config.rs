//! Configuration of the GPU peeling algorithm and its optimization variants.
//!
//! Table II ablates nine versions: {basic, BC, EC} × {no buffering, SM, VP}.
//! [`PeelConfig`] encodes that matrix plus the grid geometry and buffer
//! capacities of §VI ("BLK_NUM = 108 blocks, each with BLK_DIM = 1024
//! threads", per-block global buffer of 1 M vertex IDs, shared buffer of
//! 10 000 IDs).

use kcore_gpusim::LaunchConfig;

/// How new k-shell vertices are appended to the block buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compaction {
    /// One `atomicAdd(e, 1)` per appended vertex — the basic algorithm
    /// ("Ours"). The §VI finding is that this simplest scheme wins.
    None,
    /// **BC** — warp-level ballot compaction (Fig. 8(c)) in both kernels:
    /// offsets via `__ballot_sync` + `__popc`, one `atomicAdd` per warp batch.
    Ballot,
    /// **EC** — "efficient" compaction: block-level two-stage scan (Fig. 9)
    /// in the scan kernel, warp-level ballot in the loop kernel.
    Efficient,
}

/// How the loop kernel reads/writes frontier vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Buffering {
    /// Directly against the global-memory block buffer.
    Global,
    /// **SM** — shared-memory buffering (Fig. 7): the first
    /// `shared_buf_capacity` appended vertices live in block shared memory;
    /// every buffered access pays the position-translation case check.
    SharedMem,
    /// **VP** — vertex frontier prefetching: warp 0 prefetches the next
    /// batch of frontier vertices into shared memory while the other 31
    /// warps compute, hiding the dependent-read latency at the price of one
    /// compute warp.
    Prefetch,
}

/// Which host-side execution strategy runs the kernels. All paths produce
/// **bit-identical** results, counters, and golden fingerprints — the fast
/// and fused paths change how costs are computed, never what they sum to
/// (the invariant is pinned by `tests/fastpath_diff.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPath {
    /// The fast-path kernels on the fused persistent-style round engine
    /// ([`kcore_gpusim::GpuContext::launch_fused`]): one engine entry per
    /// peel round runs the scan step and the stepped loop, paying dispatch
    /// and arena setup once and carrying block scratch across the step
    /// boundary. The default.
    #[default]
    Fused,
    /// Warp-vectorized kernels: bulk per-warp charging, allocation-free
    /// scan/ballot primitives, and the two-phase parallel wave scheduler
    /// ([`kcore_gpusim::GpuContext::launch_stepped_phased`]) for the loop
    /// kernel, dispatched as two launches per round. Kept as the
    /// two-launch oracle for the fused engine.
    Fast,
    /// The retained per-lane reference kernels: per-access charging and the
    /// serial lockstep wave loop. Kept as the differential-testing oracle.
    Reference,
}

/// Full configuration of a peeling run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeelConfig {
    /// Grid geometry.
    pub launch: LaunchConfig,
    /// Per-block global buffer capacity, in vertex IDs.
    pub buf_capacity: usize,
    /// Shared-memory buffer capacity in vertex IDs (used by
    /// [`Buffering::SharedMem`]).
    pub shared_buf_capacity: usize,
    /// Append strategy.
    pub compaction: Compaction,
    /// Frontier buffering strategy.
    pub buffering: Buffering,
    /// Organize block buffers as ring buffers (§IV-C) so consumed slots are
    /// recycled; disabling reverts to the plain fixed array that overflows
    /// once `e` reaches capacity.
    pub ring_buffer: bool,
    /// Host execution strategy (cost-model-neutral; see [`ExecPath`]).
    pub exec_path: ExecPath,
}

impl Default for PeelConfig {
    fn default() -> Self {
        PeelConfig {
            launch: LaunchConfig::paper(),
            buf_capacity: 1_000_000,
            shared_buf_capacity: 10_000,
            compaction: Compaction::None,
            buffering: Buffering::Global,
            ring_buffer: true,
            exec_path: ExecPath::Fused,
        }
    }
}

impl PeelConfig {
    /// The basic algorithm — the paper's "Ours".
    pub fn ours() -> Self {
        Self::default()
    }

    /// Shared-memory buffering variant.
    pub fn sm() -> Self {
        PeelConfig {
            buffering: Buffering::SharedMem,
            ..Self::default()
        }
    }

    /// Vertex-prefetching variant.
    pub fn vp() -> Self {
        PeelConfig {
            buffering: Buffering::Prefetch,
            ..Self::default()
        }
    }

    /// Ballot-compaction variant.
    pub fn bc() -> Self {
        PeelConfig {
            compaction: Compaction::Ballot,
            ..Self::default()
        }
    }

    /// Efficient (block-level) compaction variant.
    pub fn ec() -> Self {
        PeelConfig {
            compaction: Compaction::Efficient,
            ..Self::default()
        }
    }

    /// Applies a buffering strategy on top of `self` (builder style).
    pub fn with_buffering(mut self, b: Buffering) -> Self {
        self.buffering = b;
        self
    }

    /// Applies an append strategy on top of `self` (builder style).
    pub fn with_compaction(mut self, c: Compaction) -> Self {
        self.compaction = c;
        self
    }

    /// Overrides buffer capacity (IDs per block).
    pub fn with_buf_capacity(mut self, cap: usize) -> Self {
        self.buf_capacity = cap;
        self
    }

    /// Overrides grid geometry.
    pub fn with_launch(mut self, launch: LaunchConfig) -> Self {
        self.launch = launch;
        self
    }

    /// Selects the host execution strategy (builder style).
    pub fn with_exec_path(mut self, path: ExecPath) -> Self {
        self.exec_path = path;
        self
    }

    /// The Table II column name of this variant.
    pub fn variant_name(&self) -> &'static str {
        match (self.compaction, self.buffering) {
            (Compaction::None, Buffering::Global) => "Ours",
            (Compaction::None, Buffering::SharedMem) => "SM",
            (Compaction::None, Buffering::Prefetch) => "VP",
            (Compaction::Ballot, Buffering::Global) => "BC",
            (Compaction::Ballot, Buffering::SharedMem) => "BC+SM",
            (Compaction::Ballot, Buffering::Prefetch) => "BC+VP",
            (Compaction::Efficient, Buffering::Global) => "EC",
            (Compaction::Efficient, Buffering::SharedMem) => "EC+SM",
            (Compaction::Efficient, Buffering::Prefetch) => "EC+VP",
        }
    }

    /// All nine Table II variants, in the table's column order, derived from
    /// `self`'s geometry/capacities.
    pub fn all_variants(&self) -> Vec<PeelConfig> {
        let mut out = Vec::with_capacity(9);
        for c in [Compaction::None, Compaction::Ballot, Compaction::Efficient] {
            for b in [Buffering::Global, Buffering::SharedMem, Buffering::Prefetch] {
                out.push(PeelConfig {
                    compaction: c,
                    buffering: b,
                    ..*self
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = PeelConfig::default();
        assert_eq!(c.launch.blocks, 108);
        assert_eq!(c.launch.threads_per_block, 1024);
        assert_eq!(c.buf_capacity, 1_000_000);
        assert_eq!(c.shared_buf_capacity, 10_000);
        assert!(c.ring_buffer);
    }

    #[test]
    fn variant_names() {
        assert_eq!(PeelConfig::ours().variant_name(), "Ours");
        assert_eq!(PeelConfig::sm().variant_name(), "SM");
        assert_eq!(PeelConfig::vp().variant_name(), "VP");
        assert_eq!(PeelConfig::bc().variant_name(), "BC");
        assert_eq!(PeelConfig::ec().variant_name(), "EC");
        assert_eq!(
            PeelConfig::bc()
                .with_buffering(Buffering::SharedMem)
                .variant_name(),
            "BC+SM"
        );
        assert_eq!(
            PeelConfig::ec()
                .with_buffering(Buffering::Prefetch)
                .variant_name(),
            "EC+VP"
        );
    }

    #[test]
    fn all_variants_covers_table2() {
        let names: Vec<_> = PeelConfig::default()
            .all_variants()
            .iter()
            .map(|v| v.variant_name())
            .collect();
        assert_eq!(
            names,
            vec!["Ours", "SM", "VP", "BC", "BC+SM", "BC+VP", "EC", "EC+SM", "EC+VP"]
        );
    }
}
