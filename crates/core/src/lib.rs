//! `kcore-gpu` — the paper's primary contribution: a highly optimized
//! peeling algorithm for k-core decomposition on a GPU.
//!
//! The algorithm follows PKC's two-phase structure, re-engineered for the
//! SIMT execution model (§IV):
//!
//! * **block-granularity buffers** — the global memory outside the graph is
//!   partitioned into one frontier buffer per thread block (challenge 1);
//! * **scan kernel** per round `k` collects degree-`k` vertices into each
//!   block's buffer (Algorithm 2);
//! * **loop kernel** runs the intra-block BFS over the k-shell: each warp
//!   takes one frontier vertex and its 32 lanes walk the adjacency list with
//!   coalesced accesses, decrementing neighbor degrees atomically
//!   (Algorithm 3);
//! * the **decrement-and-recover** protocol resolves cross-block races so
//!   each k-shell vertex is collected exactly once and `deg[v]` converges to
//!   `core(v)` (challenge 2, Fig. 6);
//! * **shared-memory head/tail** (`s`, `e`) with barrier-snapshot batching
//!   makes the buffer thread-safe within a block (challenge 3, Fig. 5).
//!
//! The §IV-C optimizations — ring buffers, shared-memory buffering (SM),
//! vertex frontier prefetching (VP), ballot compaction (BC) and block-level
//! efficient compaction (EC) — are all implemented and selectable through
//! [`PeelConfig`], reproducing the Table II ablation matrix.
//!
//! Everything runs on the [`kcore_gpusim`] simulator; see DESIGN.md for the
//! hardware-substitution rationale.
//!
//! # Example
//!
//! ```
//! use kcore_gpu::{decompose, PeelConfig, SimOptions};
//!
//! let g = kcore_graph::fig1_graph();
//! let run = decompose(&g, &PeelConfig::ours(), &SimOptions::default()).unwrap();
//! assert_eq!(run.core, kcore_graph::fig1_core_numbers());
//! assert_eq!(run.k_max, 3);
//! println!("simulated time: {:.3} ms", run.report.total_ms);
//! ```

// Kernel-style code indexes several parallel device arrays with one
// explicit loop variable, mirroring the CUDA idiom it simulates; iterator
// rewrites would obscure that correspondence.
#![allow(clippy::needless_range_loop)]

pub mod config;
pub mod dynamic;
pub mod mpm_gpu;
pub mod multi_gpu;
pub mod peel;

pub use config::{Buffering, Compaction, ExecPath, PeelConfig};
pub use dynamic::{BatchPath, BatchReport, DynamicConfig, DynamicCore};
pub use kcore_gpusim::SimOptions;
pub use multi_gpu::{
    decompose_multi, decompose_multi_fleet, decompose_multi_traced, shard_memstats, single_gpu_ms,
    FleetRun, MultiGpuConfig, MultiGpuRun,
};
pub use peel::{decompose, decompose_in, GpuRun};
