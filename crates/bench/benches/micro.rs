//! Criterion micro-benchmarks backing the §VI ablation discussion:
//!
//! * warp-scan algorithms (HS vs Blelloch vs Ballot) — the Fig. 8 choice;
//! * atomic-append vs compaction in the scan kernel — the "Occam's razor"
//!   finding that plain `atomicAdd` wins on modern GPUs;
//! * the h-index operator — MPM's inner loop;
//! * CPU algorithms on a mid-size graph — Table IV in miniature;
//! * GPU peel variants end-to-end on a small graph — Table II in miniature.
//!
//! Simulator benches measure *host* time of the simulation (useful for
//! regression tracking); simulated-time comparisons live in the table
//! binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcore_cpu::CoreAlgorithm;
use kcore_gpu::{decompose, ExecPath, PeelConfig, SimOptions};
use kcore_gpusim::scan::{
    ballot_scan, ballot_scan_offsets, blelloch_exclusive_scan, hs_inclusive_scan,
};
use kcore_gpusim::warp::WARP_SIZE;
use kcore_gpusim::{Coalescing, CostParams, GpuContext, LaunchConfig};
use kcore_graph::gen;
use std::hint::black_box;
use std::sync::atomic::Ordering;

fn bench_warp_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("warp_scan");
    group.bench_function("hillis_steele", |b| {
        let mut ctx = GpuContext::new(CostParams::p100(), 1 << 16);
        b.iter(|| {
            ctx.launch(
                "hs",
                LaunchConfig {
                    blocks: 1,
                    threads_per_block: 32,
                },
                |blk| {
                    let mut lanes = [1u32; 32];
                    hs_inclusive_scan(blk, black_box(&mut lanes));
                    black_box(lanes[31]);
                    Ok(())
                },
            )
            .unwrap();
        })
    });
    group.bench_function("blelloch", |b| {
        let mut ctx = GpuContext::new(CostParams::p100(), 1 << 16);
        b.iter(|| {
            ctx.launch(
                "bl",
                LaunchConfig {
                    blocks: 1,
                    threads_per_block: 32,
                },
                |blk| {
                    let mut lanes = [1u32; 32];
                    blelloch_exclusive_scan(blk, black_box(&mut lanes));
                    black_box(lanes[31]);
                    Ok(())
                },
            )
            .unwrap();
        })
    });
    group.bench_function("ballot", |b| {
        let mut ctx = GpuContext::new(CostParams::p100(), 1 << 16);
        b.iter(|| {
            ctx.launch(
                "ba",
                LaunchConfig {
                    blocks: 1,
                    threads_per_block: 32,
                },
                |blk| {
                    let flags = [true; 32];
                    let (off, total) = ballot_scan(blk, black_box(&flags));
                    black_box((off, total));
                    Ok(())
                },
            )
            .unwrap();
        })
    });
    group.bench_function("ballot_offsets", |b| {
        let mut ctx = GpuContext::new(CostParams::p100(), 1 << 16);
        b.iter(|| {
            ctx.launch(
                "bo",
                LaunchConfig {
                    blocks: 1,
                    threads_per_block: 32,
                },
                |blk| {
                    let (off, total) = ballot_scan_offsets(blk, black_box(u32::MAX));
                    black_box((off, total));
                    Ok(())
                },
            )
            .unwrap();
        })
    });
    group.finish();
}

/// Per-lane charged loads vs the warp-granularity [`kcore_gpusim::BlockCtx`]
/// helpers — the tentpole fast-path primitive, measured in isolation.
fn bench_warp_memops(c: &mut Criterion) {
    const N: usize = 4_096;
    let data: Vec<u32> = (0..N as u32).collect();
    let idxs: Vec<usize> = (0..N).map(|i| (i * 37) % N).collect();
    let mut group = c.benchmark_group("warp_memops");
    group.bench_function("per_lane_gather", |b| {
        let mut ctx = GpuContext::new(CostParams::p100(), 1 << 16);
        let d_buf = ctx.htod("bench.buf", &data).unwrap();
        b.iter(|| {
            ctx.launch(
                "pl",
                LaunchConfig {
                    blocks: 1,
                    threads_per_block: 32,
                },
                |blk| {
                    let buf = blk.device.buffer(d_buf);
                    let mut sum = 0u64;
                    for &i in black_box(&idxs) {
                        blk.charge_sector(1);
                        sum += buf[i].load(Ordering::Relaxed) as u64;
                    }
                    black_box(sum);
                    Ok(())
                },
            )
            .unwrap();
        })
    });
    for (name, mode) in [
        ("warp_gather_scattered", Coalescing::Scattered),
        ("warp_gather_classified", Coalescing::Classified),
    ] {
        group.bench_function(name, |b| {
            let mut ctx = GpuContext::new(CostParams::p100(), 1 << 16);
            let d_buf = ctx.htod("bench.buf", &data).unwrap();
            b.iter(|| {
                ctx.launch(
                    "wg",
                    LaunchConfig {
                        blocks: 1,
                        threads_per_block: 32,
                    },
                    |blk| {
                        let buf = blk.device.buffer(d_buf);
                        let mut sum = 0u64;
                        let mut vals = [0u32; WARP_SIZE];
                        for chunk in black_box(&idxs).chunks(WARP_SIZE) {
                            blk.gather(buf, chunk, &mut vals[..chunk.len()], mode);
                            sum += vals[..chunk.len()].iter().map(|&v| v as u64).sum::<u64>();
                        }
                        black_box(sum);
                        Ok(())
                    },
                )
                .unwrap();
            })
        });
    }
    group.finish();
}

/// Pure kernel-dispatch overhead of [`GpuContext::launch`] (no body work):
/// the serial fast path at pool size 1, the rayon path otherwise.
fn bench_launch_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("launch_dispatch");
    for blocks in [1u32, 16, 108] {
        group.bench_with_input(
            BenchmarkId::from_parameter(blocks),
            &blocks,
            |b, &blocks| {
                let mut ctx = GpuContext::new(CostParams::p100(), 1 << 16);
                b.iter(|| {
                    ctx.launch(
                        "noop",
                        LaunchConfig {
                            blocks,
                            threads_per_block: 128,
                        },
                        |blk| {
                            black_box(blk.block_idx);
                            Ok(())
                        },
                    )
                    .unwrap();
                })
            },
        );
    }
    group.finish();
}

/// End-to-end host time of the three execution paths on one graph: the
/// fused single-entry round engine (`launch_fused`, the default), the
/// two-launch warp-vectorized fast path (two-phase scheduler), and the
/// retained per-lane reference — all bit-identical in output, differing
/// only in host-side execution strategy.
fn bench_exec_paths(c: &mut Criterion) {
    let g = gen::rmat(12, 20_000, gen::RmatParams::graph500(), 7);
    let base = PeelConfig {
        launch: LaunchConfig {
            blocks: 16,
            threads_per_block: 256,
        },
        buf_capacity: 16_384,
        shared_buf_capacity: 512,
        ..PeelConfig::default()
    };
    let mut group = c.benchmark_group("exec_path_rmat12");
    group.sample_size(10);
    for (name, path) in [
        ("fused", ExecPath::Fused),
        ("fast", ExecPath::Fast),
        ("reference", ExecPath::Reference),
    ] {
        let cfg = base.with_exec_path(path);
        group.bench_function(name, |b| {
            b.iter(|| black_box(decompose(&g, &cfg, &SimOptions::default()).unwrap()))
        });
    }
    group.finish();
}

fn bench_hindex(c: &mut Criterion) {
    let mut group = c.benchmark_group("h_index");
    for size in [8usize, 64, 512] {
        let values: Vec<u32> = (0..size as u32).map(|i| (i * 37) % 97).collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &values, |b, vals| {
            let mut scratch = Vec::new();
            b.iter(|| {
                kcore_cpu::hindex::h_index_bounded(
                    black_box(vals.iter().copied()),
                    vals.len() as u32,
                    &mut scratch,
                )
            })
        });
    }
    group.finish();
}

fn bench_cpu_algorithms(c: &mut Criterion) {
    let g = gen::rmat(14, 100_000, gen::RmatParams::graph500(), 99);
    let mut group = c.benchmark_group("cpu_decomposition_rmat14");
    group.sample_size(10);
    let algs: Vec<Box<dyn CoreAlgorithm>> = vec![
        Box::new(kcore_cpu::bz::Bz),
        Box::new(kcore_cpu::park::SerialPark),
        Box::new(kcore_cpu::park::ParallelPark::default()),
        Box::new(kcore_cpu::pkc::SerialPkc),
        Box::new(kcore_cpu::pkc::ParallelPkc::default()),
        Box::new(kcore_cpu::pkc::ParallelPkcO::default()),
        Box::new(kcore_cpu::mpm::SerialMpm),
        Box::new(kcore_cpu::mpm::ParallelMpm),
    ];
    for alg in &algs {
        group.bench_function(alg.name(), |b| b.iter(|| black_box(alg.run(&g))));
    }
    group.finish();
}

fn bench_gpu_variants(c: &mut Criterion) {
    let g = gen::rmat(12, 20_000, gen::RmatParams::graph500(), 7);
    let base = PeelConfig {
        launch: LaunchConfig {
            blocks: 16,
            threads_per_block: 256,
        },
        buf_capacity: 16_384,
        shared_buf_capacity: 512,
        ..PeelConfig::default()
    };
    let mut group = c.benchmark_group("gpu_peel_variants_rmat12");
    group.sample_size(10);
    for cfg in base.all_variants() {
        group.bench_function(cfg.variant_name(), |b| {
            b.iter(|| black_box(decompose(&g, &cfg, &SimOptions::default()).unwrap()))
        });
    }
    group.finish();
}

fn bench_graph_builder(c: &mut Criterion) {
    let edges: Vec<(u32, u32)> = {
        let g = gen::rmat(13, 50_000, gen::RmatParams::mild(), 3);
        g.edges().collect()
    };
    c.bench_function("csr_build_50k_edges", |b| {
        b.iter(|| black_box(kcore_graph::builder::from_edges(1 << 13, black_box(&edges))))
    });
}

/// The ingestion pipeline end to end: R-MAT sampling (serial single-stream
/// vs chunked parallel), the CSR build paths over the same edge list, and
/// the two edge-list text parsers over the same buffer. Each pair is a
/// differential micro-benchmark of byte-identical implementations, so any
/// gap is pure pipeline overhead/win.
fn bench_ingest(c: &mut Criterion) {
    use kcore_graph::builder::{from_edges_with, BuildPath};

    let mut group = c.benchmark_group("ingest");
    let (scale, m, seed) = (14u32, 200_000u64, 11u64);
    // The parallel paths short-circuit to their serial twins on a
    // single-threaded pool, so pin a >=2-thread pool: on multi-core hosts
    // this measures the real speedup, on a 1-core host the (oversubscribed)
    // fan-out overhead — either way the parallel machinery runs.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    group.bench_function("rmat_serial_200k", |b| {
        b.iter(|| {
            black_box(gen::rmat_serial(
                scale,
                m,
                gen::RmatParams::graph500(),
                seed,
            ))
        })
    });
    group.bench_function("rmat_parallel_200k", |b| {
        b.iter(|| {
            pool.install(|| black_box(gen::rmat(scale, m, gen::RmatParams::graph500(), seed)))
        })
    });

    let edges: Vec<(u32, u32)> = gen::rmat(scale, m, gen::RmatParams::graph500(), seed)
        .edges()
        .collect();
    let n = 1u32 << scale;
    group.bench_function("csr_build_serial", |b| {
        b.iter(|| black_box(from_edges_with(n, black_box(&edges), BuildPath::Serial)))
    });
    group.bench_function("csr_build_parallel", |b| {
        b.iter(|| {
            pool.install(|| black_box(from_edges_with(n, black_box(&edges), BuildPath::Parallel)))
        })
    });

    let text = {
        let mut s = String::new();
        for &(u, v) in &edges {
            s.push_str(&format!("{u}\t{v}\n"));
        }
        s
    };
    group.bench_function("parse_streaming", |b| {
        b.iter(|| black_box(kcore_graph::io::parse_edge_list(black_box(text.as_bytes())).unwrap()))
    });
    group.bench_function("parse_bytes_parallel", |b| {
        b.iter(|| {
            pool.install(|| {
                black_box(
                    kcore_graph::io::parse_edge_list_bytes(black_box(text.as_bytes())).unwrap(),
                )
            })
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_warp_scans,
    bench_warp_memops,
    bench_launch_dispatch,
    bench_exec_paths,
    bench_hindex,
    bench_cpu_algorithms,
    bench_gpu_variants,
    bench_graph_builder,
    bench_ingest
);
criterion_main!(benches);
