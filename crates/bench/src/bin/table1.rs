//! Regenerates **Table I** (datasets): |V|, |E|, d_avg, std, d_max, k_max and
//! category for each of the 20 stand-ins, next to the paper's published
//! values so the shape match is visible at a glance.

use kcore_bench::{prepare, prepare_all, print_table, save_json};
use kcore_graph::datasets;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    category: String,
    num_vertices: u64,
    num_edges: u64,
    avg_degree: f64,
    degree_std: f64,
    max_degree: u32,
    k_max: u32,
    scale: f64,
    paper_vertices: u64,
    paper_edges: u64,
    paper_k_max: u32,
}

fn main() {
    let mut envs = prepare_all();
    // Higher-fidelity @2x rows for the coarsest mid-size stand-ins (new
    // rows — the base entries above are unchanged). Skipped in smoke mode
    // and under an explicit dataset filter.
    if std::env::var_os("KCORE_SMOKE").is_none() && std::env::var_os("KCORE_DATASETS").is_none() {
        envs.extend(datasets::scaled_up_variants().into_iter().map(prepare));
    }
    let headers: Vec<String> = [
        "Dataset",
        "|V|",
        "|E|",
        "davg",
        "std",
        "dmax",
        "kmax",
        "Category",
        "scale",
        "paper|V|",
        "paper|E|",
        "paper kmax",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for e in &envs {
        rows.push(vec![
            e.dataset.name.to_string(),
            e.stats.num_vertices.to_string(),
            e.stats.num_edges.to_string(),
            format!("{:.1}", e.stats.avg_degree),
            format!("{:.0}", e.stats.degree_std),
            e.stats.max_degree.to_string(),
            e.k_max.to_string(),
            e.dataset.category.to_string(),
            format!("1/{:.0}", e.scale),
            e.dataset.paper.num_vertices.to_string(),
            e.dataset.paper.num_edges.to_string(),
            e.dataset.paper.k_max.to_string(),
        ]);
        json.push(Row {
            dataset: e.dataset.name.to_string(),
            category: e.dataset.category.to_string(),
            num_vertices: e.stats.num_vertices,
            num_edges: e.stats.num_edges,
            avg_degree: e.stats.avg_degree,
            degree_std: e.stats.degree_std,
            max_degree: e.stats.max_degree,
            k_max: e.k_max,
            scale: e.scale,
            paper_vertices: e.dataset.paper.num_vertices,
            paper_edges: e.dataset.paper.num_edges,
            paper_k_max: e.dataset.paper.k_max,
        });
    }
    println!("TABLE I — DATASETS (synthetic stand-ins at 1/scale of the paper's graphs)\n");
    print_table(&headers, &rows);
    save_json("table1", &json);
}
