//! Extension experiments beyond the paper's tables:
//!
//! 1. **Multi-GPU scaling** (§VII future work): simulated time, sub-rounds
//!    and inter-GPU traffic for 1/2/4/8 workers on three representative
//!    datasets.
//! 2. **Ring-buffer ablation** (§IV-C): the smallest per-block buffer that
//!    completes each dataset, with and without the ring layout — the ring's
//!    slot recycling is what keeps the frontier footprint bounded.
//! 3. **Direct GPU-MPM vs peeling vs Medusa-MPM**: the total-workload
//!    trade-off the introduction discusses, measured.

use kcore_bench::{prepare, print_table, save_json};
use kcore_gpu::{decompose, decompose_multi, mpm_gpu, MultiGpuConfig, PeelConfig};
use kcore_gpusim::{KernelError, SimError};
use kcore_systems::{medusa, FrameworkCosts};
use serde::Serialize;

#[derive(Serialize, Default)]
struct Results {
    multi_gpu: Vec<(String, usize, f64, u32, u64)>, // dataset, gpus, ms, sub_rounds, bytes
    ring_ablation: Vec<(String, usize, usize)>,     // dataset, min cap ring, min cap no-ring
    mpm_vs_peel: Vec<(String, f64, f64, f64)>,      // dataset, peel ms, gpu-mpm ms, medusa ms
}

fn min_buf_capacity(e: &kcore_bench::Env, ring: bool) -> usize {
    // exponential + binary search for the smallest capacity that completes
    let ok = |cap: usize| {
        let cfg = PeelConfig {
            buf_capacity: cap,
            ring_buffer: ring,
            ..e.peel_cfg
        };
        match decompose(&e.graph, &cfg, &e.sim) {
            Ok(run) => {
                assert_eq!(run.core, e.truth);
                true
            }
            Err(SimError::Kernel(KernelError::BufferOverflow { .. })) => false,
            Err(err) => panic!("unexpected failure: {err}"),
        }
    };
    let mut hi = 64usize;
    while !ok(hi) {
        hi *= 2;
        assert!(hi <= 1 << 26, "runaway capacity search");
    }
    let mut lo = hi / 2;
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if ok(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

fn main() {
    let names = ["amazon0601", "web-BerkStan", "soc-LiveJournal1"];
    let mut out = Results::default();

    println!("EXTENSION 1 — MULTI-GPU SCALING (§VII future work)\n");
    let mut rows = Vec::new();
    for name in names {
        let e = prepare(kcore_graph::datasets::by_name(name).unwrap());
        for gpus in [1usize, 2, 4, 8] {
            let cfg = MultiGpuConfig {
                num_gpus: gpus,
                peel: e.peel_cfg,
                ..MultiGpuConfig::default()
            };
            let run = decompose_multi(&e.graph, &cfg, &e.sim).expect("multi-gpu");
            assert_eq!(run.core, e.truth, "{name} x{gpus}");
            rows.push(vec![
                name.to_string(),
                gpus.to_string(),
                format!("{:.2}", run.total_ms),
                run.sub_rounds.to_string(),
                format!("{:.1}", run.exchanged_bytes as f64 / 1024.0),
            ]);
            out.multi_gpu.push((
                name.into(),
                gpus,
                run.total_ms,
                run.sub_rounds,
                run.exchanged_bytes,
            ));
        }
    }
    print_table(
        &["Dataset", "GPUs", "sim-ms", "sub-rounds", "exchanged-KB"].map(String::from),
        &rows,
    );

    println!(
        "\nEXTENSION 2 — RING-BUFFER ABLATION (§IV-C): smallest per-block buffer that completes\n"
    );
    let mut rows = Vec::new();
    for name in names {
        let e = prepare(kcore_graph::datasets::by_name(name).unwrap());
        let ring = min_buf_capacity(&e, true);
        let flat = min_buf_capacity(&e, false);
        rows.push(vec![
            name.to_string(),
            ring.to_string(),
            flat.to_string(),
            format!("{:.1}x", flat as f64 / ring as f64),
        ]);
        out.ring_ablation.push((name.into(), ring, flat));
    }
    print_table(
        &["Dataset", "ring buffer", "flat buffer", "ring advantage"].map(String::from),
        &rows,
    );

    println!(
        "\nEXTENSION 3 — PEELING vs DIRECT GPU-MPM vs MEDUSA-MPM (total-workload trade-off)\n"
    );
    let mut rows = Vec::new();
    for name in names {
        let e = prepare(kcore_graph::datasets::by_name(name).unwrap());
        let peel_ms = decompose(&e.graph, &e.peel_cfg, &e.sim)
            .unwrap()
            .report
            .total_ms;
        let gpu_mpm = mpm_gpu::decompose_mpm(&e.graph, &e.sim).unwrap();
        assert_eq!(gpu_mpm.core, e.truth);
        let costs = FrameworkCosts::default().scaled(e.scale);
        let med = medusa::mpm(&e.graph, &e.sim, &costs)
            .map(|r| r.report.total_ms)
            .unwrap_or(f64::NAN);
        rows.push(vec![
            name.to_string(),
            format!("{:.2}", peel_ms),
            format!("{:.2} ({} sweeps)", gpu_mpm.report.total_ms, gpu_mpm.sweeps),
            format!("{med:.2}"),
        ]);
        out.mpm_vs_peel
            .push((name.into(), peel_ms, gpu_mpm.report.total_ms, med));
    }
    print_table(
        &["Dataset", "Peel (Ours)", "GPU-MPM (direct)", "Medusa-MPM"].map(String::from),
        &rows,
    );
    println!(
        "\nThe direct MPM kernel removes Medusa's framework tax but still pays MPM's higher\n\
         total workload — the §I trade-off: massive parallelism cannot fully offset\n\
         recomputing every vertex until convergence."
    );
    save_json("extensions", &out);
}
