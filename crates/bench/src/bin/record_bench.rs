//! Bench-regression recorder: measures every implementation on the selected
//! datasets and appends a schema-versioned snapshot (`BENCH_<n>.json`) to the
//! results directory, diffing against the previous snapshot on the way.
//!
//! ```bash
//! cargo run --release -p kcore-bench --bin record_bench           # record
//! cargo run --release -p kcore-bench --bin record_bench -- --check # diff only
//! ```
//!
//! `--check` measures and diffs but records nothing — the CI mode used by
//! `scripts/check_regression.sh`. The process exits non-zero when any
//! implementation's simulated time regressed by more than
//! [`regress::REGRESSION_THRESHOLD`] against the latest recorded snapshot.
//!
//! Dataset selection honors `KCORE_SMOKE` / `KCORE_DATASETS` like every
//! other bench binary; snapshots remember which registry they measured and
//! refuse to diff across modes.

use kcore_bench::regress::{self, Entry, HotspotSummary, Snapshot};
use kcore_bench::{prepare_all, results_dir, PAPER_HOUR_MS};
use kcore_gpusim::{GpuContext, SimError};
use kcore_systems::{gswitch, gunrock, medusa, vetga, FrameworkCosts};

fn status_of(res: &Result<Vec<u32>, SimError>, truth: &[u32]) -> &'static str {
    match res {
        Ok(core) if core == truth => "ok",
        Ok(_) => "wrong",
        Err(SimError::TimeLimit { .. }) => "timeout",
        Err(SimError::Oom(_)) => "oom",
        Err(_) => "error",
    }
}

/// Arms `ctx` with a wall-clock host profiler so the snapshot's
/// informational host-time fields are populated. Host profiling observes
/// only — simulated times, counters and fingerprints are unaffected.
fn arm(mut ctx: GpuContext) -> GpuContext {
    ctx.set_host_profiler(Some(kcore_gpusim::HostProfiler::wall()));
    ctx
}

fn entry(
    ctx: &mut GpuContext,
    dataset: &str,
    impl_name: &str,
    res: Result<Vec<u32>, SimError>,
    truth: &[u32],
) -> Entry {
    let host = ctx.host_profile(&format!("{impl_name} on {dataset}"));
    let (host_ms, host_attributed_ms) = host
        .map(|p| (p.total_s * 1e3, p.attributed_s() * 1e3))
        .unwrap_or((0.0, 0.0));
    let trace = ctx.trace(format!("{impl_name} on {dataset} (record_bench)"));
    Entry {
        dataset: dataset.into(),
        impl_name: impl_name.into(),
        status: status_of(&res, truth).into(),
        sim_ms: trace.totals.time_ms,
        launches: trace.totals.launches,
        counters_fingerprint: trace.counters_fingerprint(),
        host_ms,
        host_attributed_ms,
        exchange_rounds: 0,
        border_packets: 0,
        hotspots: trace
            .hotspots
            .iter()
            .map(|h| {
                let (dominant, dominant_ms) = h.dominant_bucket();
                HotspotSummary {
                    kernel: h.kernel.into(),
                    launches: h.launches,
                    total_ms: h.total_ms,
                    dominant: dominant.into(),
                    dominant_ms,
                }
            })
            .collect(),
    }
}

fn main() {
    let check_only = std::env::args().any(|a| a == "--check");
    let mode = if std::env::var_os("KCORE_SMOKE").is_some() {
        "smoke"
    } else {
        "full"
    };
    let envs = prepare_all();
    let mut entries = Vec::new();
    for e in &envs {
        eprintln!("[record_bench] {}", e.dataset.name);
        let costs = FrameworkCosts::default().scaled(e.scale);
        let name = e.dataset.name;
        {
            let mut ctx = arm(e.sim.context());
            let res =
                kcore_gpu::decompose_in(&mut ctx, &e.graph, &e.peel_cfg).map(|(core, _)| core);
            entries.push(entry(&mut ctx, name, "Ours", res, &e.truth));
        }
        // VETGA loads via a slow edge-list path; past the (scaled) hour the
        // paper reports "LD > 1hr" without running, and so do we.
        if vetga::load_time_ms(&e.graph, &costs) > PAPER_HOUR_MS / e.scale {
            entries.push(Entry {
                dataset: name.into(),
                impl_name: "VETGA".into(),
                status: "load_timeout".into(),
                sim_ms: 0.0,
                launches: 0,
                counters_fingerprint: 0,
                host_ms: 0.0,
                host_attributed_ms: 0.0,
                exchange_rounds: 0,
                border_packets: 0,
                hotspots: Vec::new(),
            });
        } else {
            let mut ctx = arm(e.sim.context());
            let res = vetga::peel_in(&mut ctx, &e.graph, &costs).map(|(core, _)| core);
            entries.push(entry(&mut ctx, name, "VETGA", res, &e.truth));
        }
        {
            let mut ctx = arm(e.sim.context());
            let res = medusa::mpm_in(&mut ctx, &e.graph, &costs).map(|(core, _)| core);
            entries.push(entry(&mut ctx, name, "Medusa-MPM", res, &e.truth));
        }
        {
            let mut ctx = arm(e.sim.context());
            let res = medusa::peel_in(&mut ctx, &e.graph, &costs).map(|(core, _)| core);
            entries.push(entry(&mut ctx, name, "Medusa-Peel", res, &e.truth));
        }
        {
            let mut ctx = arm(e.sim.context());
            let res = gunrock::peel_in(&mut ctx, &e.graph, &costs).map(|(core, _)| core);
            entries.push(entry(&mut ctx, name, "Gunrock", res, &e.truth));
        }
        {
            let mut ctx = arm(e.sim.context());
            let res = gswitch::peel_in(&mut ctx, &e.graph, e.k_max, &costs).map(|(core, _)| core);
            entries.push(entry(&mut ctx, name, "GSwitch", res, &e.truth));
        }
        // Sharded fleet cell: the only entry whose informational exchange
        // fields are non-zero. Its fingerprint digests the per-worker
        // fingerprints in shard order (same workload ⇒ same digest).
        {
            let cfg = kcore_gpu::MultiGpuConfig {
                num_gpus: 4,
                peel: e.peel_cfg,
                ..kcore_gpu::MultiGpuConfig::default()
            };
            match kcore_gpu::decompose_multi_traced(&e.graph, &cfg, &e.sim) {
                Ok((run, traces)) => {
                    let mut fp_bytes = Vec::with_capacity(8 * run.worker_fingerprints.len());
                    for fp in &run.worker_fingerprints {
                        fp_bytes.extend_from_slice(&fp.to_le_bytes());
                    }
                    entries.push(Entry {
                        dataset: name.into(),
                        impl_name: "Sharded p=4".into(),
                        status: if run.core == e.truth { "ok" } else { "wrong" }.into(),
                        sim_ms: run.total_ms,
                        launches: traces.iter().map(|t| t.totals.launches).sum(),
                        counters_fingerprint: kcore_gpusim::fnv1a_bytes(&fp_bytes),
                        host_ms: 0.0,
                        host_attributed_ms: 0.0,
                        exchange_rounds: run.exchange_rounds,
                        border_packets: run.border_packets,
                        hotspots: Vec::new(),
                    });
                }
                Err(err) => entries.push(Entry {
                    dataset: name.into(),
                    impl_name: "Sharded p=4".into(),
                    status: match err {
                        SimError::Oom(_) => "oom",
                        SimError::TimeLimit { .. } => "timeout",
                        _ => "error",
                    }
                    .into(),
                    sim_ms: 0.0,
                    launches: 0,
                    counters_fingerprint: 0,
                    host_ms: 0.0,
                    host_attributed_ms: 0.0,
                    exchange_rounds: 0,
                    border_packets: 0,
                    hotspots: Vec::new(),
                }),
            }
        }
    }

    let dir = results_dir();
    let prev = regress::latest_snapshot(&dir);
    let seq = prev.as_ref().map(|(s, _)| s + 1).unwrap_or(0);
    let snap = Snapshot {
        schema_version: regress::BENCH_SCHEMA_VERSION,
        trace_schema_version: kcore_gpusim::TRACE_SCHEMA_VERSION,
        seq,
        mode: mode.into(),
        entries,
    };

    let mut failed = false;
    match &prev {
        None => println!(
            "\nno previous BENCH_*.json in {} — baseline run",
            dir.display()
        ),
        Some((prev_seq, prev_val)) => {
            let rep = regress::diff(prev_val, &snap);
            println!("\ndiff vs BENCH_{prev_seq}.json:");
            if let Some(why) = &rep.skipped {
                println!("  skipped: {why}");
            }
            for line in &rep.lines {
                println!("{line}");
            }
            if rep.failed() {
                println!("\nREGRESSIONS:");
                for r in &rep.regressions {
                    println!("  {r}");
                }
                failed = true;
            }
        }
    }

    if check_only {
        println!("(--check: snapshot not recorded)");
    } else {
        let path = regress::write_snapshot(&dir, &snap);
        println!("recorded {}", path.display());
    }
    if failed {
        std::process::exit(1);
    }
}
