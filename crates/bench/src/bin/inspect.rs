//! Diagnostic tool: breaks down where simulated time goes for each
//! implementation on one graph. Not part of the paper's tables — used to
//! understand/calibrate the cost model.
//!
//! ```bash
//! cargo run --release -p kcore-bench --bin inspect [dataset-name]
//! ```
//!
//! Besides the console breakdown, every implementation's full kernel trace
//! (per-launch counters, roofline decomposition, per-phase rollups — see
//! DESIGN.md "Profiling & traces") is dumped to
//! `results/traces/<dataset>_<impl>.json`. Set `KCORE_TRACE_BLOCKS=1` to
//! also record per-block counters for each launch (large output). Set
//! `KCORE_TIMELINE=1` to additionally export each implementation's SM
//! timeline as Chrome trace-event JSON
//! (`results/traces/<dataset>_<impl>.perfetto.json`, open in
//! <https://ui.perfetto.dev>) and print the per-kernel hotspot attribution.
//! Set `KCORE_HOSTPROF=1` to also capture each implementation's host-side
//! wall-clock profile (`results/traces/<dataset>_<impl>.hostprof.json`);
//! combined with `KCORE_TIMELINE=1` the Perfetto export grows a "Host
//! (wall clock)" process with per-thread span tracks beside the simulated
//! SM tracks. Set `KCORE_FLEET_TIMELINE=1` to additionally run the sharded
//! p=4 decomposition and dump its fleet ledger + merged multi-device
//! Perfetto file (`results/traces/<dataset>_fleet_p4.fleet{,.perfetto}.json`)
//! plus a per-round critical-path breakdown on the console.

use kcore_bench::{
    fleet_timeline_enabled, prepare, save_fleet, save_hostprof, save_timeline, save_trace,
};
use kcore_gpusim::{Counters, GpuContext, HOTSPOT_TOP_K};
use kcore_systems::{gswitch, gunrock, medusa, vetga, FrameworkCosts};

fn show(label: &str, ms: f64, iters: u64, c: &Counters, peak: u64) {
    println!(
        "{label:<14} {ms:>10.3} ms  iters={iters:<6} tx={:<9} sect={:<9} dep={:<8} atom={:<9} sh={:<9} instr={:<10} barr={:<7} peak={}MB",
        c.global_tx,
        c.global_sectors,
        c.dependent_reads,
        c.global_atomics,
        c.shared_accesses + c.shared_atomics,
        c.warp_instrs,
        c.barriers,
        peak / (1 << 20),
    );
}

fn dump(ctx: &mut GpuContext, dataset: &str, label: &str) {
    let slug: String = label
        .to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    save_trace(
        &format!("{dataset}_{slug}"),
        &ctx.trace(format!("{label} on {dataset}")),
    );
    // Contexts arm themselves from KCORE_HOSTPROF=1; when armed, dump the
    // host profile beside the trace and print the host-side summary.
    let host = ctx.host_profile(&format!("{label} on {dataset}"));
    if let Some(host) = &host {
        save_hostprof(&format!("{dataset}_{slug}"), host);
        println!(
            "    host: {:.1} ms wall, {:.1} ms attributed over {} phases, {} spans",
            host.total_s * 1e3,
            host.attributed_s() * 1e3,
            host.phases.len(),
            host.threads.iter().map(|t| t.spans.len()).sum::<usize>()
        );
    }
    if std::env::var_os("KCORE_TIMELINE").is_some() {
        let timeline = ctx.timeline(format!("{label} on {dataset}"));
        if let Some(host) = &host {
            // Host tracks ride along in the same Chrome trace file.
            let dir = kcore_bench::results_dir().join("traces");
            std::fs::create_dir_all(&dir).expect("create traces dir");
            let path = dir.join(format!("{dataset}_{slug}.perfetto.json"));
            std::fs::write(&path, timeline.to_chrome_json_with_host(Some(host)))
                .expect("write timeline");
            eprintln!("[saved {} (with host tracks)]", path.display());
        } else {
            save_timeline(&format!("{dataset}_{slug}"), &timeline);
        }
        for h in ctx.hotspots(HOTSPOT_TOP_K) {
            let (bucket, ms) = h.dominant_bucket();
            println!(
                "    hotspot {:<16} {:>9.3} ms over {} launches  dominant: {bucket} ({ms:.3} ms)",
                h.kernel, h.total_ms, h.launches
            );
        }
    }
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "soc-LiveJournal1".into());
    let d = kcore_graph::datasets::by_name(&name).expect("unknown dataset");
    let e = prepare(d);
    let profile_blocks = std::env::var("KCORE_TRACE_BLOCKS").is_ok();
    println!(
        "{}: |V|={} |E|={} k_max={} scale=1/{:.0}\n",
        e.dataset.name, e.stats.num_vertices, e.stats.num_edges, e.k_max, e.scale
    );
    let costs = FrameworkCosts::default().scaled(e.scale);

    // Ours with per-kernel breakdown.
    {
        let mut ctx = e.sim.context();
        ctx.set_block_profiling(profile_blocks);
        let res = kcore_gpu::decompose_in(&mut ctx, &e.graph, &e.peel_cfg);
        let rep = ctx.report();
        match res {
            Ok(_) => show(
                "Ours",
                rep.total_ms,
                rep.launches,
                &rep.counters,
                rep.peak_mem_bytes,
            ),
            Err(err) => println!("Ours: {err}"),
        }
        // aggregate per kernel name
        let mut per: std::collections::BTreeMap<&str, (f64, u64)> = Default::default();
        for l in ctx.launches() {
            let e = per.entry(l.name).or_default();
            e.0 += l.time_s * 1e3;
            e.1 += 1;
        }
        for (k, (ms, n)) in per {
            println!("    kernel {k:<10} {ms:>9.3} ms over {n} launches");
        }
        for l in ctx.launches().iter().filter(|l| l.name == "loop") {
            println!(
                "      loop launch: {:>9.1} us, max-block {:>10.0} cyc, mean-block {:>10.0} cyc",
                l.time_s * 1e6,
                l.max_block_cycles,
                l.sum_block_cycles / l.blocks() as f64
            );
        }
        dump(&mut ctx, e.dataset.name, "Ours");
    }
    for cfgv in e.peel_cfg.all_variants() {
        if cfgv.variant_name() == "Ours" {
            continue;
        }
        let mut ctx = e.sim.context();
        match kcore_gpu::decompose_in(&mut ctx, &e.graph, &cfgv) {
            Ok(_) => {
                let r = ctx.report();
                show(
                    cfgv.variant_name(),
                    r.total_ms,
                    r.launches,
                    &r.counters,
                    r.peak_mem_bytes,
                );
            }
            Err(err) => println!("{}: {err}", cfgv.variant_name()),
        }
        dump(&mut ctx, e.dataset.name, cfgv.variant_name());
    }
    {
        let mut ctx = e.sim.context();
        match gswitch::peel_in(&mut ctx, &e.graph, e.k_max, &costs) {
            Ok((_, it)) => {
                let r = ctx.report();
                show("GSwitch", r.total_ms, it, &r.counters, r.peak_mem_bytes);
            }
            Err(err) => println!("GSwitch: {err}"),
        }
        dump(&mut ctx, e.dataset.name, "GSwitch");
    }
    {
        let mut ctx = e.sim.context();
        match gunrock::peel_in(&mut ctx, &e.graph, &costs) {
            Ok((_, it)) => {
                let r = ctx.report();
                show("Gunrock", r.total_ms, it, &r.counters, r.peak_mem_bytes);
            }
            Err(err) => println!("Gunrock: {err}"),
        }
        dump(&mut ctx, e.dataset.name, "Gunrock");
    }
    {
        let mut ctx = e.sim.context();
        match vetga::peel_in(&mut ctx, &e.graph, &costs) {
            Ok((_, it)) => {
                let r = ctx.report();
                show("VETGA", r.total_ms, it, &r.counters, r.peak_mem_bytes);
            }
            Err(err) => println!("VETGA: {err}"),
        }
        dump(&mut ctx, e.dataset.name, "VETGA");
    }
    {
        let mut ctx = e.sim.context();
        match medusa::peel_in(&mut ctx, &e.graph, &costs) {
            Ok((_, it)) => {
                let r = ctx.report();
                show("Medusa-Peel", r.total_ms, it, &r.counters, r.peak_mem_bytes);
            }
            Err(err) => println!("Medusa-Peel: {err}"),
        }
        dump(&mut ctx, e.dataset.name, "Medusa-Peel");
    }
    {
        let mut ctx = e.sim.context();
        match medusa::mpm_in(&mut ctx, &e.graph, &costs) {
            Ok((_, it)) => {
                let r = ctx.report();
                show("Medusa-MPM", r.total_ms, it, &r.counters, r.peak_mem_bytes);
            }
            Err(err) => println!("Medusa-MPM: {err}"),
        }
        dump(&mut ctx, e.dataset.name, "Medusa-MPM");
    }

    // Fleet view: the sharded p=4 run with the exchange ledger, merged
    // multi-device Perfetto export, and per-round critical path.
    if fleet_timeline_enabled() {
        let cfg = kcore_gpu::MultiGpuConfig {
            num_gpus: 4,
            peel: e.peel_cfg,
            ..kcore_gpu::MultiGpuConfig::default()
        };
        let label = format!("{} p=4 fleet", e.dataset.name);
        match kcore_gpu::decompose_multi_fleet(&e.graph, &cfg, &e.sim, label) {
            Ok(fr) => {
                fr.fleet
                    .check_well_formed()
                    .expect("fleet ledger must replay the run");
                println!(
                    "\nFleet p=4      {:>10.3} ms  {} rounds, {} exchange rounds, {} border packets, {} B exchanged",
                    fr.run.total_ms,
                    fr.fleet.rounds.len(),
                    fr.run.exchange_rounds,
                    fr.run.border_packets,
                    fr.run.exchanged_bytes,
                );
                for c in &fr.fleet.critical_path {
                    println!(
                        "    k={:<4} {:>9.3} ms  compute {:>5.1}% cascade {:>5.1}% exchange {:>5.1}% link {:>5.1}%  bound: {} ({})",
                        c.k,
                        c.charged_ms,
                        100.0 * c.compute_share,
                        100.0 * c.cascade_share,
                        100.0 * c.exchange_share,
                        100.0 * c.link_share,
                        c.bound,
                        c.bounding_resource,
                    );
                }
                for r in &fr.fleet.device_rollups {
                    let (bucket, ms) = r.dominant();
                    println!(
                        "    device {} rollup: {:.3} ms kernels, dominant {bucket} ({ms:.3} ms)",
                        r.device, r.kernel_ms
                    );
                }
                let slug = format!("{}_fleet_p4", e.dataset.name.replace(['-', '.'], "_"));
                save_fleet(&slug, &fr);
            }
            Err(err) => println!("Fleet p=4: {err}"),
        }
    }
}
