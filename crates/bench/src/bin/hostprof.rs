//! Host-side profiling report: where *wall-clock* time goes while the
//! simulator runs Table II's nine peeling variants — as opposed to every
//! other table, which reports *simulated* device time. The split matters:
//! simulated time is the paper's claim, host time is what a contributor
//! actually waits for, and a host-side regression (say, an accidental
//! allocation storm in the wave scheduler) is invisible to every simulated
//! metric.
//!
//! ```bash
//! cargo run --release -p kcore-bench --bin hostprof            # report
//! cargo run --release -p kcore-bench --bin hostprof -- --check # CI smoke
//! ```
//!
//! Each (dataset, variant) run gets a wall-clock [`HostProfiler`] wrapped
//! in a `run` span; the per-launch buckets (dispatch, parallel plan,
//! serial commit, arena, scheduler wait, transfers) accumulated by the
//! execution engine are rolled up per phase and printed host-vs-sim.
//! Output lands in `results/table_host.json` and `results/table_host.txt`,
//! the latter naming the top host overhead buckets across the whole sweep.
//!
//! `--check` is the CI smoke: it additionally asserts that every profile
//! round-trips through the JSON parser under the current schema, that
//! bucket time never exceeds the run span that contains it, and that the
//! buckets attribute at least [`COVERAGE_FLOOR`] of the run span's wall
//! time — the engine's instrumentation is considered broken below that.

use kcore_bench::regress::{self, parse_json};
use kcore_bench::{prepare_all, print_table, results_dir, save_json};
use kcore_gpusim::{HostBucket, HostProfile, HostProfiler, HOSTPROF_SCHEMA_VERSION};
use serde::Serialize;

/// Minimum fraction of the `run` span the named buckets must explain in
/// `--check` mode.
pub const COVERAGE_FLOOR: f64 = 0.95;

#[derive(Serialize)]
struct Row {
    dataset: String,
    variant: String,
    /// Simulated device milliseconds (what the tables report).
    sim_ms: f64,
    /// Wall-clock milliseconds of the whole run span.
    host_ms: f64,
    /// Wall-clock milliseconds explained by named buckets.
    attributed_ms: f64,
    /// `attributed_ms / host_ms`.
    coverage: f64,
    /// Per-bucket wall-clock milliseconds, [`HostBucket::ALL`] order.
    buckets_ms: Vec<(String, f64)>,
}

/// Sums a profile's bucket seconds across phases, in [`HostBucket::ALL`]
/// order.
fn bucket_totals(p: &HostProfile) -> Vec<(String, f64)> {
    HostBucket::ALL
        .iter()
        .map(|b| {
            let s: f64 = p.phases.iter().map(|ph| ph.bucket_s(*b)).sum();
            (b.label().to_string(), s * 1e3)
        })
        .collect()
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let envs = prepare_all();
    let variants = kcore_gpu::PeelConfig::default().all_variants();

    // Warm-up: the process's first run pays one-time costs (first-touch
    // pages, thread spawn-up, allocator growth) that would land in — and
    // distort — whichever (dataset, variant) happens to go first. Run one
    // unprofiled throwaway first so every measured run starts warm.
    if let Some(e) = envs.first() {
        let mut ctx = e.sim.context();
        let _ = kcore_gpu::decompose_in(&mut ctx, &e.graph, &e.peel_cfg);
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for e in &envs {
        eprintln!("[hostprof] {}", e.dataset.name);
        for base in &variants {
            let cfg = kcore_gpu::PeelConfig {
                compaction: base.compaction,
                buffering: base.buffering,
                ..e.peel_cfg
            };
            let mut ctx = e.sim.context();
            // Wall-clock profiler, injected explicitly: this binary measures
            // host time by design, no env opt-in needed.
            ctx.set_host_profiler(Some(HostProfiler::wall()));
            let span = ctx.host_span("run");
            let res = kcore_gpu::decompose_in(&mut ctx, &e.graph, &cfg);
            drop(span);
            let label = format!("{} on {}", cfg.variant_name(), e.dataset.name);
            let profile = ctx.host_profile(&label).expect("profiler was attached");
            if let Err(err) = res {
                // OOM / time-limit runs still profile cleanly; note and keep.
                eprintln!("  {label}: {err} (profiled anyway)");
            }
            let host_ms = profile.root_span_s() * 1e3;
            let attributed_ms = profile.attributed_s() * 1e3;
            let coverage = if host_ms > 0.0 {
                attributed_ms / host_ms
            } else {
                0.0
            };
            if check {
                check_profile(&profile, host_ms, attributed_ms, coverage, &mut failures);
            }
            rows.push(Row {
                dataset: e.dataset.name.to_string(),
                variant: cfg.variant_name().to_string(),
                sim_ms: ctx.elapsed_ms(),
                host_ms,
                attributed_ms,
                coverage,
                buckets_ms: bucket_totals(&profile),
            });
        }
    }

    // Top host overheads across the sweep: total ms per bucket, descending.
    let mut totals: Vec<(String, f64)> = HostBucket::ALL
        .iter()
        .map(|b| (b.label().to_string(), 0.0))
        .collect();
    for r in &rows {
        for (i, (_, ms)) in r.buckets_ms.iter().enumerate() {
            totals[i].1 += ms;
        }
    }
    totals.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    let headers: Vec<String> = [
        "Dataset", "Variant", "sim ms", "host ms", "attr ms", "cover",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.variant.clone(),
                format!("{:.3}", r.sim_ms),
                format!("{:.1}", r.host_ms),
                format!("{:.1}", r.attributed_ms),
                format!("{:.1}%", r.coverage * 100.0),
            ]
        })
        .collect();
    println!("\nTABLE HOST — wall-clock attribution of the ablation sweep\n");
    print_table(&headers, &table);
    println!("\ntop host overheads across the sweep:");
    let mut txt = String::new();
    txt.push_str("TABLE HOST — wall-clock attribution of the ablation sweep\n\n");
    txt.push_str(&headers.join("  "));
    txt.push('\n');
    for r in &table {
        txt.push_str(&r.join("  "));
        txt.push('\n');
    }
    txt.push_str("\ntop host overheads across the sweep:\n");
    for (i, (name, ms)) in totals.iter().take(3).enumerate() {
        let line = format!("  {}. {name}: {ms:.1} ms", i + 1);
        println!("{line}");
        txt.push_str(&line);
        txt.push('\n');
    }
    save_json("table_host", &rows);
    let txt_path = results_dir().join("table_host.txt");
    std::fs::write(&txt_path, txt).expect("write table_host.txt");
    eprintln!("[saved {}]", txt_path.display());

    if check {
        // The JSON artifact itself must read back through the same parser
        // the regression tooling uses.
        let json_path = results_dir().join("table_host.json");
        let text = std::fs::read_to_string(&json_path).expect("read table_host.json back");
        match parse_json(&text) {
            Ok(v) => {
                let arr = regress::as_array(&v).map(Vec::len).unwrap_or(0);
                if arr != rows.len() {
                    failures.push(format!(
                        "table_host.json round-trip: {arr} rows parsed, {} written",
                        rows.len()
                    ));
                }
            }
            Err(e) => failures.push(format!("table_host.json does not re-parse: {e}")),
        }
        if failures.is_empty() {
            println!("\nhostprof --check: all profiles well-formed");
        } else {
            println!("\nhostprof --check FAILURES:");
            for f in &failures {
                println!("  {f}");
            }
            std::process::exit(1);
        }
    }
}

/// `--check` assertions for one profile.
fn check_profile(
    profile: &HostProfile,
    host_ms: f64,
    attributed_ms: f64,
    coverage: f64,
    failures: &mut Vec<String>,
) {
    let label = &profile.label;
    // (1) the profile's own JSON parses under the current schema
    match parse_json(&profile.to_json()) {
        Ok(v) => {
            let schema = regress::get(&v, "schema_version").and_then(regress::as_u64);
            if schema != Some(HOSTPROF_SCHEMA_VERSION as u64) {
                failures.push(format!(
                    "{label}: schema_version {schema:?} != {HOSTPROF_SCHEMA_VERSION}"
                ));
            }
        }
        Err(e) => failures.push(format!("{label}: profile JSON does not parse: {e}")),
    }
    if let Err(e) = profile.check_well_formed() {
        failures.push(format!("{label}: malformed span tree: {e}"));
    }
    // (2) buckets can never exceed the span that contains them (1% slack
    // for clock-read granularity at microsecond-scale runs)
    if attributed_ms > host_ms * 1.01 + 0.1 {
        failures.push(format!(
            "{label}: attributed {attributed_ms:.2} ms exceeds run span {host_ms:.2} ms"
        ));
    }
    // (3) the instrumentation must explain the run
    if coverage < COVERAGE_FLOOR {
        failures.push(format!(
            "{label}: buckets cover {:.1}% of the run span (< {:.0}%)",
            coverage * 100.0,
            COVERAGE_FLOOR * 100.0
        ));
    }
}
