//! The billion-edge scaling table: edge-partitioned sharded decomposition
//! across 1/2/4/8 worker devices and both partitioners (DESIGN.md "Sharded
//! decomposition").
//!
//! Two sections:
//!
//! * **Scaling curve** — on the `@2x` high-fidelity stand-ins, simulated
//!   wall time, speedup over the 1-device run, exchange volume, sub-rounds,
//!   and max per-device peak memory, for every (devices × partitioner)
//!   point. Worker phases overlap (time is max-over-workers per phase), so
//!   the curve shows real scaling, while the exchange column shows what it
//!   costs at the borders.
//! * **Full-scale fit** — per-shard [`kcore_gpusim::MemStats::extrapolate`]
//!   forecasts for uk-2005 at paper scale (39.5 M vertices, 936 M edges)
//!   against 16 GB P100 devices: the max predicted per-device peak for each
//!   pool size, proving where the billion-edge rows fit.
//!
//! Env knobs: `KCORE_PARTITION=balanced|degree` restricts the partitioner
//! column; `KCORE_EXEC_PATH` selects the worker kernel path as everywhere
//! else (inherited via the harness peel config).
//!
//! With `--check` (used by `scripts/ci.sh`), runs the smoke datasets
//! instead and asserts the sharded contract: cores equal BZ at every pool
//! size, zero exchange at one device, shard-local worker residency, max
//! per-device peak strictly decreasing 1 → 2 → 4 devices, and the uk-2005
//! @1x forecast fitting on ≤ 8 devices.

use kcore_bench::{
    fleet_timeline_enabled, prepare, prepare_all, print_table, save_fleet, save_json,
};
use kcore_gpu::{decompose_multi_fleet, decompose_multi_traced, shard_memstats, MultiGpuConfig};
use kcore_gpusim::{FleetTrace, P100_DEVICE_BYTES};
use kcore_graph::datasets;
use kcore_graph::PartitionStrategy;
use serde::Serialize;

const DEVICE_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[derive(Serialize)]
struct ScaleRow {
    dataset: String,
    partitioner: &'static str,
    devices: usize,
    exec_path: String,
    total_ms: f64,
    speedup: f64,
    sub_rounds: u32,
    exchanged_bytes: u64,
    max_device_peak_bytes: u64,
    total_peak_bytes: u64,
    exchange_rounds: u64,
    border_packets: u64,
    /// Whole-run aggregate of the per-round critical-path components.
    critical: CriticalAgg,
}

/// Per-round critical-path components summed over a run, with the count of
/// rounds each resource bounded — the `Critical path` table column.
#[derive(Serialize, Clone)]
struct CriticalAgg {
    compute_ms: f64,
    cascade_ms: f64,
    exchange_ms: f64,
    link_ms: f64,
    compute_bound_rounds: u32,
    cascade_bound_rounds: u32,
    exchange_bound_rounds: u32,
    link_bound_rounds: u32,
    /// Total peel rounds in the run (the denominator of the bound counts).
    rounds: usize,
    /// The resource bounding the most rounds.
    dominant: String,
}

impl CriticalAgg {
    fn from_fleet(fleet: &FleetTrace) -> CriticalAgg {
        let mut a = CriticalAgg {
            compute_ms: 0.0,
            cascade_ms: 0.0,
            exchange_ms: 0.0,
            link_ms: 0.0,
            compute_bound_rounds: 0,
            cascade_bound_rounds: 0,
            exchange_bound_rounds: 0,
            link_bound_rounds: 0,
            rounds: fleet.critical_path.len(),
            dominant: "compute".into(),
        };
        for c in &fleet.critical_path {
            a.compute_ms += c.compute_ms;
            a.cascade_ms += c.cascade_ms;
            a.exchange_ms += c.exchange_kernel_ms;
            a.link_ms += c.link_ms;
            match c.bound {
                "compute" => a.compute_bound_rounds += 1,
                "cascade" => a.cascade_bound_rounds += 1,
                "exchange" => a.exchange_bound_rounds += 1,
                "link" => a.link_bound_rounds += 1,
                _ => {}
            }
        }
        let counts = [
            ("compute", a.compute_bound_rounds),
            ("cascade", a.cascade_bound_rounds),
            ("exchange", a.exchange_bound_rounds),
            ("link", a.link_bound_rounds),
        ];
        a.dominant = counts.iter().max_by_key(|(_, n)| *n).unwrap().0.into();
        a
    }

    /// Component shares of the aggregate, `(compute, cascade, exchange,
    /// link)`, as percentages.
    fn shares(&self) -> (f64, f64, f64, f64) {
        let sum = self.compute_ms + self.cascade_ms + self.exchange_ms + self.link_ms;
        if sum <= 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            100.0 * self.compute_ms / sum,
            100.0 * self.cascade_ms / sum,
            100.0 * self.exchange_ms / sum,
            100.0 * self.link_ms / sum,
        )
    }

    /// Compact table cell: component share percentages plus the modal
    /// bounding resource.
    fn cell(&self) -> String {
        let (c, ca, x, l) = self.shares();
        let n = match self.dominant.as_str() {
            "compute" => self.compute_bound_rounds,
            "cascade" => self.cascade_bound_rounds,
            "exchange" => self.exchange_bound_rounds,
            _ => self.link_bound_rounds,
        };
        format!(
            "c{c:.0}/s{ca:.0}/x{x:.0}/l{l:.0}% {}@{n}/{}r",
            self.dominant, self.rounds
        )
    }
}

#[derive(Serialize)]
struct FitRow {
    dataset: String,
    partitioner: &'static str,
    devices: usize,
    full_vertices: u64,
    full_arcs: u64,
    /// Max over shards of the per-device full-scale prediction.
    max_predicted_peak_bytes: u64,
    device_capacity_bytes: u64,
    fits: bool,
}

#[derive(Serialize)]
struct TableScale {
    scaling: Vec<ScaleRow>,
    fit: Vec<FitRow>,
}

fn partition_from_env() -> Vec<PartitionStrategy> {
    match std::env::var("KCORE_PARTITION")
        .unwrap_or_default()
        .to_ascii_lowercase()
        .as_str()
    {
        "" => vec![
            PartitionStrategy::BalancedArcs,
            PartitionStrategy::DegreeAware,
        ],
        "balanced" => vec![PartitionStrategy::BalancedArcs],
        "degree" => vec![PartitionStrategy::DegreeAware],
        other => panic!("KCORE_PARTITION must be balanced or degree (got {other:?})"),
    }
}

fn mb(b: u64) -> f64 {
    b as f64 / (1024.0 * 1024.0)
}

/// The scaling sweep over one prepared dataset environment. The fleet trace
/// of the soc-LiveJournal1 balanced-arcs p=2 point (the scaling dip under
/// investigation) is handed back through `dip` when that point is swept.
fn sweep(
    e: &kcore_bench::Env,
    strategies: &[PartitionStrategy],
    check: bool,
    dip: &mut Option<FleetTrace>,
) -> Vec<ScaleRow> {
    let mut rows = Vec::new();
    for &strategy in strategies {
        let mut base_ms = None;
        let mut prev_peak = u64::MAX;
        for &p in &DEVICE_COUNTS {
            let cfg = MultiGpuConfig {
                num_gpus: p,
                peel: e.peel_cfg,
                partition: strategy,
                ..MultiGpuConfig::default()
            };
            let label = format!("{} p={p} {}", e.dataset.name, strategy.name());
            let fr = decompose_multi_fleet(&e.graph, &cfg, &e.sim, label).unwrap();
            fr.fleet
                .check_well_formed()
                .expect("fleet ledger must replay the run");
            let run = &fr.run;
            assert_eq!(
                run.core,
                e.truth,
                "{} p={p} {}",
                e.dataset.name,
                strategy.name()
            );
            if fleet_timeline_enabled() {
                let slug = format!(
                    "{}_p{p}_{}",
                    e.dataset.name.replace(['-', '.'], "_"),
                    strategy.name()
                );
                save_fleet(&slug, &fr);
            }
            if e.dataset.name.starts_with("soc-LiveJournal1")
                && p == 2
                && strategy == PartitionStrategy::BalancedArcs
            {
                *dip = Some(fr.fleet.clone());
            }
            let base = *base_ms.get_or_insert(run.total_ms);
            let max_peak = run.per_device_peak_bytes.iter().copied().max().unwrap_or(0);
            if check {
                if p == 1 {
                    assert_eq!(run.exchanged_bytes, 0, "one device must not exchange");
                } else {
                    assert!(
                        max_peak < prev_peak,
                        "{} {}: per-device peak must shrink with the pool \
                         ({max_peak} B at p={p} !< {prev_peak} B)",
                        e.dataset.name,
                        strategy.name()
                    );
                }
            }
            prev_peak = max_peak;
            rows.push(ScaleRow {
                dataset: e.dataset.name.to_string(),
                partitioner: strategy.name(),
                devices: p,
                exec_path: format!("{:?}", run.exec_path).to_ascii_lowercase(),
                total_ms: run.total_ms,
                speedup: base / run.total_ms,
                sub_rounds: run.sub_rounds,
                exchanged_bytes: run.exchanged_bytes,
                max_device_peak_bytes: max_peak,
                total_peak_bytes: run.total_peak_mem_bytes,
                exchange_rounds: run.exchange_rounds,
                border_packets: run.border_packets,
                critical: CriticalAgg::from_fleet(&fr.fleet),
            });
        }
    }
    rows
}

/// Per-shard full-scale forecast: each worker's memstats extrapolated to
/// its share of the paper-scale dimensions (shard-local dims × the
/// stand-in's vertex/arc ratios).
fn fit_rows(e: &kcore_bench::Env, strategies: &[PartitionStrategy]) -> Vec<FitRow> {
    let full_v = e.dataset.paper.num_vertices;
    let full_a = 2 * e.dataset.paper.num_edges;
    let vratio = full_v as f64 / e.stats.num_vertices.max(1) as f64;
    let aratio = full_a as f64 / (2 * e.stats.num_edges.max(1)) as f64;
    let mut rows = Vec::new();
    for &strategy in strategies {
        for &p in &DEVICE_COUNTS {
            let cfg = MultiGpuConfig {
                num_gpus: p,
                peel: e.peel_cfg,
                partition: strategy,
                ..MultiGpuConfig::default()
            };
            let fleet = shard_memstats(&e.graph, &cfg, &e.sim).unwrap();
            let mut max_peak = 0u64;
            let mut all_fit = true;
            for stats in &fleet.devices {
                let shard_full_v = (stats.sim_vertices as f64 * vratio) as u64;
                let shard_full_a = (stats.sim_arcs as f64 * aratio) as u64;
                let f = stats.extrapolate(shard_full_v, shard_full_a);
                max_peak = max_peak.max(f.predicted_peak_bytes);
                all_fit &= f.fits;
            }
            rows.push(FitRow {
                dataset: e.dataset.name.to_string(),
                partitioner: strategy.name(),
                devices: p,
                full_vertices: full_v,
                full_arcs: full_a,
                max_predicted_peak_bytes: max_peak,
                device_capacity_bytes: P100_DEVICE_BYTES,
                fits: all_fit,
            });
        }
    }
    rows
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let strategies = partition_from_env();

    // --check exercises the contract on the fast smoke stand-ins; the real
    // table runs the @2x high-fidelity rows.
    let envs: Vec<kcore_bench::Env> = if check {
        prepare_all()
    } else {
        datasets::scaled_up_variants()
            .into_iter()
            .map(prepare)
            .collect()
    };

    let mut scaling = Vec::new();
    let mut dip_fleet: Option<FleetTrace> = None;
    for e in &envs {
        eprintln!("[table_scale] {}", e.dataset.name);
        scaling.extend(sweep(e, &strategies, check, &mut dip_fleet));
    }

    // Residency spot check: every worker ledger is shard-local (the
    // partition contract memstats sees), on the first dataset at 4 devices.
    if check {
        let e = &envs[0];
        let cfg = MultiGpuConfig {
            num_gpus: 4,
            peel: e.peel_cfg,
            ..MultiGpuConfig::default()
        };
        let (_, traces) = decompose_multi_traced(&e.graph, &cfg, &e.sim).unwrap();
        let n = e.graph.num_vertices() as u64;
        for (wi, t) in traces.iter().enumerate() {
            let deg = t
                .memstats
                .allocations
                .iter()
                .find(|a| a.name == "deg")
                .expect("worker must ledger a deg allocation");
            assert!(
                deg.elems < n,
                "worker {wi} deg has {} elems — not shard-local (|V| = {n})",
                deg.elems
            );
            assert_eq!(
                deg.elems, t.memstats.sim_vertices,
                "ledger vs workload dims"
            );
        }
        eprintln!("[table_scale] residency OK: worker ledgers are shard-local");
    }

    // Full-scale fit forecast for the paper's billion-edge web row.
    let uk = prepare(datasets::by_name("uk-2005").expect("registry has uk-2005"));
    let fit = fit_rows(&uk, &strategies);
    if check {
        let fits_at_8 = fit.iter().any(|r| r.devices == 8 && r.fits);
        assert!(fits_at_8, "uk-2005 @1x must fit on 8 x 16 GB devices");
    }

    let headers: Vec<String> = [
        "Dataset",
        "Partitioner",
        "Devices",
        "ms",
        "Speedup",
        "Exch MB",
        "Max dev MB",
        "Sub-rounds",
        "Critical path",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = scaling
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.partitioner.to_string(),
                r.devices.to_string(),
                format!("{:.2}", r.total_ms),
                format!("{:.2}x", r.speedup),
                format!("{:.2}", mb(r.exchanged_bytes)),
                format!("{:.1}", mb(r.max_device_peak_bytes)),
                r.sub_rounds.to_string(),
                r.critical.cell(),
            ]
        })
        .collect();
    println!(
        "\nSHARDED SCALING ({} path)\n",
        scaling
            .first()
            .map(|r| r.exec_path.as_str())
            .unwrap_or("fused")
    );
    print_table(&headers, &rows);
    println!(
        "\nCritical path column: per-round aggregate shares of \
         compute(c)/cascade(s)/exchange-kernel(x)/link(l), then the resource \
         bounding the most rounds (bound@rounds/total)."
    );

    // The p=2 dip attribution: name what the critical path says bounds the
    // soc-LiveJournal1 two-device run. This is the observability question
    // ROADMAP item 3 left open ("border cascades serialize").
    if let Some(fleet) = &dip_fleet {
        let agg = CriticalAgg::from_fleet(fleet);
        let (c, ca, x, l) = agg.shares();
        let cascade_sub_rounds: u32 = fleet
            .rounds
            .iter()
            .map(|r| r.sub_rounds.saturating_sub(1))
            .sum();
        println!(
            "\nDIP ATTRIBUTION — {} ({:.2} ms, {} rounds, {} exchange rounds, \
             {} border packets):\n\
             compute {c:.1}% | cascade sub-rounds {ca:.1}% | exchange kernels \
             {x:.1}% | link {l:.1}%\n\
             {} of {} rounds are {}-bound; the run serializes {} border-cascade \
             sub-rounds, each charged at the slower device's cumulative clock, \
             so two near-equal shards pay the full cascade tail twice without \
             halving per-round work.",
            fleet.label,
            fleet.total_ms,
            agg.rounds,
            fleet.exchange_rounds,
            fleet.border_packets,
            match agg.dominant.as_str() {
                "compute" => agg.compute_bound_rounds,
                "cascade" => agg.cascade_bound_rounds,
                "exchange" => agg.exchange_bound_rounds,
                _ => agg.link_bound_rounds,
            },
            agg.rounds,
            agg.dominant,
            cascade_sub_rounds,
        );
    }

    let fit_headers: Vec<String> = [
        "Dataset",
        "Partitioner",
        "Devices",
        "Max dev GB @1x",
        "Fits 16 GB",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let fit_rows_txt: Vec<Vec<String>> = fit
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.partitioner.to_string(),
                r.devices.to_string(),
                format!(
                    "{:.2}",
                    r.max_predicted_peak_bytes as f64 / (1 << 30) as f64
                ),
                if r.fits { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!("\nFULL-SCALE FIT FORECAST (per-device predicted peak vs 16 GB P100)\n");
    print_table(&fit_headers, &fit_rows_txt);

    save_json("table_scale", &TableScale { scaling, fit });
    if check {
        eprintln!("[table_scale] check OK: sharded contract holds on smoke datasets");
    }
}
