//! Fleet observability report: runs the sharded decomposition with the
//! exchange ledger armed and rolls the per-device / per-round story up into
//! `results/table_fleet.{json,txt}` — partition border structure, exchange
//! traffic, per-shard hotspot rollups, and the per-round critical path
//! naming the device or link hop that bounds each round.
//!
//! ```bash
//! cargo run --release -p kcore-bench --bin fleetreport            # report
//! cargo run --release -p kcore-bench --bin fleetreport -- --check # validate
//! ```
//!
//! `--check` additionally round-trips every fleet trace through
//! `regress::parse_json` and asserts the ledger contract: schema versions
//! survive the round trip, per-round critical-path shares sum to 1.0, and
//! every exchange flow references a real pack/apply launch record on the
//! shipping/owning device (via [`FleetTrace::check_well_formed`]).
//! Everything here observes — the runs it measures are bit-identical to
//! `decompose_multi`.
//!
//! Dataset selection honors `KCORE_SMOKE` / `KCORE_DATASETS`; set
//! `KCORE_FLEET_TIMELINE=1` to also dump each run's fleet trace and merged
//! multi-device Perfetto document under `results/traces/`.

use kcore_bench::regress::{self, as_array, as_f64, as_str, as_u64, get};
use kcore_bench::{fleet_timeline_enabled, prepare_all, results_dir, save_fleet, save_json};
use kcore_gpu::{decompose_multi_fleet, MultiGpuConfig};
use kcore_gpusim::{FleetTrace, FLEET_SCHEMA_VERSION};
use kcore_graph::Partition;
use serde::Serialize;

const DEVICE_COUNTS: [usize; 2] = [2, 4];

#[derive(Serialize)]
struct FleetRow {
    dataset: String,
    devices: usize,
    total_ms: f64,
    rounds: usize,
    exchange_rounds: u64,
    border_packets: u64,
    exchanged_bytes: u64,
    /// Partition border structure (ghosts / border arcs per shard pair).
    partition: kcore_graph::PartitionStats,
    /// Whole-run critical-path component totals, ms.
    compute_ms: f64,
    cascade_ms: f64,
    exchange_kernel_ms: f64,
    link_ms: f64,
    /// Rounds bounded by each resource.
    bound_counts: BoundCounts,
    /// Per-device rollups: kernel time and its dominant roofline bucket.
    devices_rollup: Vec<RollupRow>,
}

#[derive(Serialize)]
struct BoundCounts {
    compute: u32,
    cascade: u32,
    exchange: u32,
    link: u32,
    idle: u32,
}

#[derive(Serialize)]
struct RollupRow {
    device: usize,
    total_ms: f64,
    kernel_ms: f64,
    launches: u64,
    dominant_bucket: String,
    dominant_ms: f64,
}

fn summarize(fleet: &FleetTrace, partition: kcore_graph::PartitionStats) -> FleetRow {
    let mut row = FleetRow {
        dataset: String::new(),
        devices: fleet.num_devices,
        total_ms: fleet.total_ms,
        rounds: fleet.rounds.len(),
        exchange_rounds: fleet.exchange_rounds,
        border_packets: fleet.border_packets,
        exchanged_bytes: fleet.exchanged_bytes,
        partition,
        compute_ms: 0.0,
        cascade_ms: 0.0,
        exchange_kernel_ms: 0.0,
        link_ms: 0.0,
        bound_counts: BoundCounts {
            compute: 0,
            cascade: 0,
            exchange: 0,
            link: 0,
            idle: 0,
        },
        devices_rollup: fleet
            .device_rollups
            .iter()
            .map(|r| {
                let (bucket, ms) = r.dominant();
                RollupRow {
                    device: r.device,
                    total_ms: r.total_ms,
                    kernel_ms: r.kernel_ms,
                    launches: r.launches,
                    dominant_bucket: bucket.to_string(),
                    dominant_ms: ms,
                }
            })
            .collect(),
    };
    for c in &fleet.critical_path {
        row.compute_ms += c.compute_ms;
        row.cascade_ms += c.cascade_ms;
        row.exchange_kernel_ms += c.exchange_kernel_ms;
        row.link_ms += c.link_ms;
        match c.bound {
            "compute" => row.bound_counts.compute += 1,
            "cascade" => row.bound_counts.cascade += 1,
            "exchange" => row.bound_counts.exchange += 1,
            "link" => row.bound_counts.link += 1,
            _ => row.bound_counts.idle += 1,
        }
    }
    row
}

/// `--check`: the schema must survive a round trip through the same parser
/// the regression harness reads snapshots with.
fn check_round_trip(fleet: &FleetTrace) {
    let v = regress::parse_json(&fleet.to_json()).expect("fleet JSON must parse");
    assert_eq!(
        get(&v, "schema_version").and_then(as_u64),
        Some(FLEET_SCHEMA_VERSION as u64),
        "schema_version must round-trip"
    );
    assert_eq!(
        get(&v, "label").and_then(as_str),
        Some(fleet.label.as_str())
    );
    assert_eq!(
        get(&v, "num_devices").and_then(as_u64),
        Some(fleet.num_devices as u64)
    );
    let total = get(&v, "total_ms").and_then(as_f64).expect("total_ms");
    assert!(
        (total - fleet.total_ms).abs() <= 1e-9 * fleet.total_ms.max(1.0),
        "total_ms must survive the round trip ({total} vs {})",
        fleet.total_ms
    );
    let rounds = get(&v, "rounds").and_then(as_array).expect("rounds array");
    assert_eq!(rounds.len(), fleet.rounds.len());
    let crit = get(&v, "critical_path")
        .and_then(as_array)
        .expect("critical_path array");
    assert_eq!(crit.len(), fleet.critical_path.len());
    for c in crit {
        let share: f64 = [
            "compute_share",
            "cascade_share",
            "exchange_share",
            "link_share",
        ]
        .iter()
        .map(|k| get(c, k).and_then(as_f64).expect("share field"))
        .sum();
        assert!(
            share == 0.0 || (share - 1.0).abs() < 1e-9,
            "critical-path shares must sum to 1.0 (got {share})"
        );
    }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let envs = prepare_all();
    let mut rows = Vec::new();
    for e in &envs {
        eprintln!("[fleetreport] {}", e.dataset.name);
        for &p in &DEVICE_COUNTS {
            let cfg = MultiGpuConfig {
                num_gpus: p,
                peel: e.peel_cfg,
                ..MultiGpuConfig::default()
            };
            let label = format!("{} p={p} fleet", e.dataset.name);
            let fr = decompose_multi_fleet(&e.graph, &cfg, &e.sim, label).unwrap();
            assert_eq!(fr.run.core, e.truth, "{} p={p}", e.dataset.name);
            // The ledger contract: bit-exact replay, flow↔launch references,
            // share sums — always enforced, not only under --check.
            fr.fleet
                .check_well_formed()
                .expect("fleet ledger must replay the run");
            if check {
                check_round_trip(&fr.fleet);
            }
            if fleet_timeline_enabled() {
                let slug = format!("{}_fleet_p{p}", e.dataset.name.replace(['-', '.'], "_"));
                save_fleet(&slug, &fr);
            }
            let part = Partition::build(&e.graph, p, cfg.partition);
            let mut row = summarize(&fr.fleet, part.stats());
            row.dataset = e.dataset.name.to_string();
            rows.push(row);
        }
    }

    let headers = [
        "Dataset",
        "Devices",
        "ms",
        "Rounds",
        "Xch rounds",
        "Packets",
        "Ghosts",
        "Border arcs",
        "Bound (c/s/x/l)",
        "Dominant rollup",
    ];
    let mut table = vec![headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()];
    for r in &rows {
        let dominant = r
            .devices_rollup
            .iter()
            .max_by(|a, b| a.kernel_ms.partial_cmp(&b.kernel_ms).unwrap())
            .map(|d| format!("d{} {}", d.device, d.dominant_bucket))
            .unwrap_or_else(|| "-".into());
        table.push(vec![
            r.dataset.clone(),
            r.devices.to_string(),
            format!("{:.2}", r.total_ms),
            r.rounds.to_string(),
            r.exchange_rounds.to_string(),
            r.border_packets.to_string(),
            r.partition.total_ghosts.to_string(),
            r.partition.total_border_arcs.to_string(),
            format!(
                "{}/{}/{}/{}",
                r.bound_counts.compute,
                r.bound_counts.cascade,
                r.bound_counts.exchange,
                r.bound_counts.link
            ),
            dominant,
        ]);
    }
    let widths: Vec<usize> = (0..headers.len())
        .map(|i| table.iter().map(|row| row[i].len()).max().unwrap())
        .collect();
    let mut txt = String::from("FLEET OBSERVABILITY REPORT\n\n");
    for (ri, row) in table.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                txt.push_str("  ");
            }
            txt.push_str(&format!("{cell:>w$}", w = widths[i]));
        }
        txt.push('\n');
        if ri == 0 {
            txt.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (headers.len() - 1)));
            txt.push('\n');
        }
    }
    txt.push_str(
        "\nBound (c/s/x/l): rounds whose critical path is bounded by compute /\n\
         cascade sub-rounds / exchange kernels / link transfer. Dominant rollup:\n\
         the busiest device and its dominant roofline bucket.\n",
    );
    print!("{txt}");
    let path = results_dir().join("table_fleet.txt");
    std::fs::write(&path, &txt).expect("write table_fleet.txt");
    eprintln!("[saved {}]", path.display());
    save_json("table_fleet", &rows);
    if check {
        eprintln!("[fleetreport] check OK: ledgers replay, parse, and tile");
    }
}
