//! Regenerates the **dynamic maintenance table** (ROADMAP item 1, the
//! paper's §VI motivation): sustained updates/sec of the batched GPU
//! maintenance engine on R-MAT edge churn, against the only strategy the
//! paper's systems offer an evolving graph — a full from-scratch re-peel
//! after every update.
//!
//! For each batch size the whole churn stream is replayed through a fresh
//! [`DynamicCore`] and the *simulated* milliseconds are summed; the
//! baseline is the average simulated cost of a full peel sampled at evenly
//! spaced points of the same stream (graph size barely moves, so the
//! sample mean is representative). The measured maintenance/re-peel
//! **crossover** — the net batch size at which one re-peel becomes cheaper
//! than per-edge maintenance — is derived from the largest-batch run and
//! reported next to the engine's configured fallback threshold.
//!
//! `--check` additionally verifies the final core numbers of every run
//! against a from-scratch BZ peel of the final graph (and, at full scale,
//! asserts the ≥ 10x acceptance bar); `KCORE_SMOKE=1` shrinks the workload
//! to CI size.

use kcore_bench::{print_table, save_json};
use kcore_cpu::{bz, incremental::DynamicGraph, CoreAlgorithm};
use kcore_gpu::{BatchPath, DynamicConfig, DynamicCore, PeelConfig};
use kcore_gpusim::{LaunchConfig, SimOptions};
use kcore_graph::{gen, EdgeUpdate};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    batch_size: usize,
    sim_ms: f64,
    updates_per_sec: f64,
    speedup_vs_repeel: f64,
    batches: usize,
    repeeled_batches: usize,
    pruned_inserts: usize,
    candidates: u64,
    changed: u64,
}

#[derive(Serialize)]
struct Table {
    scale: u32,
    num_vertices: u32,
    num_edges: u64,
    updates: usize,
    repeel_avg_ms: f64,
    baseline_updates_per_sec: f64,
    /// Measured: net updates at which one full re-peel costs less than
    /// per-edge maintenance (derived from the largest-batch run).
    crossover_updates: u64,
    /// [`DynamicConfig::auto_crossover`] on the same measurements — what the
    /// engine would pick as its fallback threshold if tuned from this run.
    auto_crossover: usize,
    /// Configured: net-update count at which the engine falls back.
    configured_crossover: usize,
    rows: Vec<Row>,
}

/// Deterministic xorshift32 churn over in-range endpoints; duplicate
/// inserts and absent deletes occur naturally and are rejected identically
/// by engine and oracle.
fn churn_ops(n: u32, count: usize, mut state: u32) -> Vec<EdgeUpdate> {
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        state
    };
    (0..count)
        .map(|_| {
            let u = rng() % n;
            let v = rng() % n;
            if rng() % 2 == 0 {
                EdgeUpdate::Insert(u, v)
            } else {
                EdgeUpdate::Delete(u, v)
            }
        })
        .collect()
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let smoke = std::env::var_os("KCORE_SMOKE").is_some();
    // Smoke: a CI-sized graph; full: the acceptance workload (rmat-16).
    let (scale, m, updates, samples) = if smoke {
        (9u32, 2_000u64, 256usize, 4usize)
    } else {
        (16u32, 262_144u64, 4_096usize, 6usize)
    };
    let launch = LaunchConfig {
        blocks: 16,
        threads_per_block: 128,
    };
    let peel_cfg = PeelConfig::default().with_launch(launch);
    let dyn_cfg = DynamicConfig {
        launch,
        peel: peel_cfg,
        ..DynamicConfig::default()
    };

    eprintln!("[table_dynamic] generating rmat-{scale} ({m} edge samples)");
    let g = gen::rmat(scale, m, gen::RmatParams::graph500(), 7);
    let n = g.num_vertices();
    let ops = churn_ops(n, updates, 0x1234_5678);

    // Oracle replay: snapshots for the sampled re-peel baseline and the
    // ground truth for --check.
    let mut oracle = DynamicGraph::from_csr(&g);
    let stride = (updates / samples).max(1);
    let mut repeel_ms = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        oracle.apply_batch(std::slice::from_ref(op));
        if i % stride == stride - 1 {
            let snap = oracle.to_csr();
            let run = kcore_gpu::decompose(&snap, &peel_cfg, &SimOptions::default())
                .expect("baseline peel");
            eprintln!(
                "[table_dynamic] re-peel sample at update {}: {:.3} ms",
                i + 1,
                run.report.total_ms
            );
            repeel_ms.push(run.report.total_ms);
        }
    }
    let repeel_avg_ms = repeel_ms.iter().sum::<f64>() / repeel_ms.len() as f64;
    let baseline_ups = 1_000.0 / repeel_avg_ms;
    let truth = bz::Bz.run(&oracle.to_csr());

    let batch_sizes = [1usize, 16, 64, 256, 1024];
    let mut rows = Vec::new();
    for &bs in &batch_sizes {
        let mut dc = DynamicCore::from_csr(&SimOptions::default(), &g, dyn_cfg.clone())
            .expect("engine init");
        let mut sim_ms = 0.0;
        let mut batches = 0usize;
        let mut repeeled = 0usize;
        let mut pruned = 0usize;
        let mut candidates = 0u64;
        let mut changed = 0u64;
        for batch in ops.chunks(bs) {
            let rep = dc.apply_batch(batch).expect("apply_batch");
            sim_ms += rep.sim_ms;
            batches += 1;
            repeeled += usize::from(rep.path == BatchPath::Repeeled);
            pruned += rep.pruned_inserts;
            candidates += rep.candidates;
            changed += rep.changed;
        }
        let ups = updates as f64 * 1_000.0 / sim_ms;
        eprintln!(
            "[table_dynamic] batch {bs}: {sim_ms:.3} ms, {ups:.0} upd/s ({:.1}x)",
            ups / baseline_ups
        );
        if check {
            assert_eq!(
                dc.cores(),
                &truth[..],
                "batch size {bs}: maintained cores diverge from from-scratch BZ"
            );
        }
        rows.push(Row {
            batch_size: bs,
            sim_ms,
            updates_per_sec: ups,
            speedup_vs_repeel: ups / baseline_ups,
            batches,
            repeeled_batches: repeeled,
            pruned_inserts: pruned,
            candidates,
            changed,
        });
    }

    // Measured crossover: per-update maintenance cost from the
    // largest-batch run (best amortization) vs one full re-peel.
    let per_update_ms = rows.last().unwrap().sim_ms / updates as f64;
    let crossover_updates = (repeel_avg_ms / per_update_ms).ceil() as u64;
    // The engine-side derivation of the same break-even point.
    let auto_crossover = DynamicConfig::auto_crossover(repeel_avg_ms, per_update_ms);

    let headers: Vec<String> = [
        "Batch", "sim ms", "upd/s", "vs peel", "repeels", "pruned", "cand", "changed",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut txt: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.batch_size.to_string(),
                format!("{:.2}", r.sim_ms),
                format!("{:.0}", r.updates_per_sec),
                format!("{:.1}x", r.speedup_vs_repeel),
                r.repeeled_batches.to_string(),
                r.pruned_inserts.to_string(),
                r.candidates.to_string(),
                r.changed.to_string(),
            ]
        })
        .collect();
    txt.push(vec![
        "re-peel".into(),
        format!("{repeel_avg_ms:.2}"),
        format!("{baseline_ups:.0}"),
        "1.0x".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    println!(
        "\nDYNAMIC MAINTENANCE — rmat-{scale} ({} vertices, {} edges), {} updates\n",
        n,
        oracle.to_csr().num_edges(),
        updates
    );
    print_table(&headers, &txt);
    println!(
        "\nbaseline: full re-peel avg {repeel_avg_ms:.2} ms over {} samples",
        repeel_ms.len()
    );
    println!(
        "crossover: one re-peel ≈ {crossover_updates} maintained updates \
         (auto_crossover would set {auto_crossover}; engine falls back at \
         {} net updates/batch)",
        dyn_cfg.crossover
    );

    let best = rows
        .iter()
        .map(|r| r.speedup_vs_repeel)
        .fold(0.0f64, f64::max);
    save_json(
        "table_dynamic",
        &Table {
            scale,
            num_vertices: n,
            num_edges: oracle.to_csr().num_edges(),
            updates,
            repeel_avg_ms,
            baseline_updates_per_sec: baseline_ups,
            crossover_updates,
            auto_crossover,
            configured_crossover: dyn_cfg.crossover,
            rows,
        },
    );

    if check {
        // The derived fallback threshold must sit exactly at the measured
        // break-even point: re-peel pays off at `auto_crossover` updates
        // and not one sooner.
        assert!(
            per_update_ms * auto_crossover as f64 >= repeel_avg_ms,
            "auto_crossover {auto_crossover} below break-even \
             (per-update {per_update_ms:.4} ms, re-peel {repeel_avg_ms:.4} ms)"
        );
        assert!(
            per_update_ms * ((auto_crossover - 1) as f64) < repeel_avg_ms,
            "auto_crossover {auto_crossover} is not minimal \
             (per-update {per_update_ms:.4} ms, re-peel {repeel_avg_ms:.4} ms)"
        );
        assert_eq!(
            auto_crossover as u64, crossover_updates,
            "engine-derived crossover diverges from the table's measured one"
        );
        // The ci.sh dynamic smoke proper: one pure-insert batch followed by
        // one pure-delete batch of the same edges, oracle-checked after each.
        let mut dc = DynamicCore::from_csr(&SimOptions::default(), &g, dyn_cfg.clone())
            .expect("smoke engine init");
        let mut orc = DynamicGraph::from_csr(&g);
        let pairs: Vec<(u32, u32)> = (0..32u32).map(|i| (i, i + n / 2)).collect();
        for mk in [
            EdgeUpdate::Insert as fn(u32, u32) -> EdgeUpdate,
            EdgeUpdate::Delete as fn(u32, u32) -> EdgeUpdate,
        ] {
            let batch: Vec<EdgeUpdate> = pairs.iter().map(|&(u, v)| mk(u, v)).collect();
            dc.apply_batch(&batch).expect("smoke batch");
            orc.apply_batch(&batch);
            assert_eq!(dc.cores(), orc.cores(), "smoke batch diverges from oracle");
            assert_eq!(
                dc.cores(),
                &bz::Bz.run(&orc.to_csr())[..],
                "smoke batch diverges from from-scratch BZ"
            );
        }
        if smoke {
            eprintln!("[table_dynamic] check OK (smoke scale; best speedup {best:.1}x)");
        } else {
            assert!(
                best >= 10.0,
                "acceptance: batched maintenance must sustain ≥ 10x updates/sec over \
                 per-update re-peel at batch ≤ 1024 (best {best:.1}x)"
            );
            eprintln!("[table_dynamic] check OK (best speedup {best:.1}x ≥ 10x)");
        }
    }
}
