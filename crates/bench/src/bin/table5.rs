//! Regenerates **Table V** (peak global-memory usage): the peak simulated
//! device footprint of Ours / SM / VP / EC / BC and the GPU baselines, in
//! scaled MB, with OOM cells as "N/A" (the paper's notation).
//!
//! Peaks are observable even when a run exceeds the time budget, because
//! every implementation performs its allocations up front (`cudaMalloc`
//! before the kernel loop) — the harness reads the device's peak after
//! success *or* timeout, and reports N/A only on OOM.

use kcore_bench::{prepare_all, print_table, save_json};
use kcore_gpu::{Buffering, Compaction, PeelConfig};
use kcore_gpusim::{GpuContext, SimError};
use kcore_systems::{gswitch, gunrock, medusa, vetga, FrameworkCosts};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    cells: Vec<(String, Option<u64>)>, // peak bytes, None = OOM
}

/// Runs `f` and returns the device peak in bytes unless the device OOMed.
fn peak_of(ctx: &mut GpuContext, res: Result<(), SimError>) -> Option<u64> {
    match res {
        Ok(()) | Err(SimError::TimeLimit { .. }) => Some(ctx.device.peak_bytes()),
        Err(SimError::Oom(_)) => None,
        Err(e) => panic!("unexpected failure: {e}"),
    }
}

fn render(peak: Option<u64>) -> String {
    match peak {
        Some(bytes) => format!("{:.1}", bytes as f64 / (1024.0 * 1024.0)),
        None => "N/A".into(),
    }
}

fn main() {
    let mut envs = prepare_all();
    // Footprints are fixed at allocation time, so cap the simulated run
    // shortly after setup: implementations that would run for (scaled)
    // minutes stop after a few supersteps with their peak already reached,
    // which keeps regenerating this table cheap.
    for e in &mut envs {
        let cap = e.sim.time_limit_ms.unwrap_or(f64::MAX);
        e.sim.time_limit_ms = Some(cap.min(60.0));
    }
    let columns = [
        "Ours",
        "SM",
        "VP",
        "EC",
        "BC",
        "VETGA",
        "Medusa-MPM",
        "Medusa-Peel",
        "Gunrock",
        "GSwitch",
    ];
    let mut headers = vec!["Dataset".to_string()];
    headers.extend(columns.iter().map(|s| s.to_string()));

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for e in &envs {
        eprintln!("[table5] {}", e.dataset.name);
        let costs = FrameworkCosts::default().scaled(e.scale);
        let mut peaks: Vec<Option<u64>> = Vec::new();

        // Peeling variants (allocations are identical across variants by
        // construction — shared-memory buffers are not device memory — but
        // each is run for completeness, as in the paper's columns).
        for (c, b) in [
            (Compaction::None, Buffering::Global),
            (Compaction::None, Buffering::SharedMem),
            (Compaction::None, Buffering::Prefetch),
            (Compaction::Efficient, Buffering::Global),
            (Compaction::Ballot, Buffering::Global),
        ] {
            let cfg = PeelConfig {
                compaction: c,
                buffering: b,
                ..e.peel_cfg
            };
            let mut ctx = e.sim.context();
            let res = kcore_gpu::decompose_in(&mut ctx, &e.graph, &cfg).map(|_| ());
            peaks.push(peak_of(&mut ctx, res));
        }
        // Baselines.
        {
            let mut ctx = e.sim.context();
            let res = vetga::peel_in(&mut ctx, &e.graph, &costs).map(|_| ());
            peaks.push(peak_of(&mut ctx, res));
        }
        {
            let mut ctx = e.sim.context();
            let res = medusa::mpm_in(&mut ctx, &e.graph, &costs).map(|_| ());
            peaks.push(peak_of(&mut ctx, res));
        }
        {
            let mut ctx = e.sim.context();
            let res = medusa::peel_in(&mut ctx, &e.graph, &costs).map(|_| ());
            peaks.push(peak_of(&mut ctx, res));
        }
        {
            let mut ctx = e.sim.context();
            let res = gunrock::peel_in(&mut ctx, &e.graph, &costs).map(|_| ());
            peaks.push(peak_of(&mut ctx, res));
        }
        {
            let mut ctx = e.sim.context();
            let res = gswitch::peel_in(&mut ctx, &e.graph, e.k_max, &costs).map(|_| ());
            peaks.push(peak_of(&mut ctx, res));
        }

        // Star the smallest footprint, as the paper does.
        let mut txt: Vec<String> = peaks.iter().map(|p| render(*p)).collect();
        if let Some((best, _)) = peaks
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (i, p)))
            .min_by_key(|&(_, p)| p)
        {
            txt[best] = format!("{}*", txt[best]);
        }
        let mut row = vec![e.dataset.name.to_string()];
        row.extend(txt);
        rows.push(row);
        json.push(Row {
            dataset: e.dataset.name.to_string(),
            cells: columns.iter().map(|s| s.to_string()).zip(peaks).collect(),
        });
    }
    println!("\nTABLE V — PEAK GLOBAL MEMORY USAGE (MB at dataset scale; N/A = OOM)\n");
    print_table(&headers, &rows);
    save_json("table5", &json);
}
