//! Regenerates the **Fig. 10 case study**: temporal co-citation network
//! analysis. Builds two author-interaction snapshots G1 (papers ≤ 1995) and
//! G2 (≤ 2000) from a synthetic citation corpus, extracts each snapshot's
//! k_max-core (S1, S2) with the GPU peeling algorithm, and prints the
//! word-cloud partition: S1∩S2 (authors most active in both periods),
//! S2−S1 (newly most-active), S1−S2 (dropped out of the most-active core).

use kcore_bench::save_json;
use kcore_gpu::{decompose, PeelConfig, SimOptions};
use kcore_graph::gen::temporal::{generate_corpus, CorpusParams};
use serde::Serialize;
use std::collections::BTreeSet;

#[derive(Serialize)]
struct CaseStudy {
    g1_year: u32,
    g2_year: u32,
    g1_vertices: u32,
    g1_edges: u64,
    g2_vertices: u32,
    g2_edges: u64,
    k_max_1: u32,
    k_max_2: u32,
    s1_size: usize,
    s2_size: usize,
    both: Vec<String>,
    entered: Vec<String>,
    left: Vec<String>,
    gpu_ms_g1: f64,
    gpu_ms_g2: f64,
}

fn kmax_core(core: &[u32]) -> (u32, BTreeSet<u32>) {
    let km = core.iter().copied().max().unwrap_or(0);
    let s = core
        .iter()
        .enumerate()
        .filter_map(|(v, &c)| (c == km && km > 0).then_some(v as u32))
        .collect();
    (km, s)
}

/// Renders a word-cloud-ish block: names sized by rank (bigger names first,
/// in upper case; later names lower case), wrapped.
fn cloud(names: &[String]) -> String {
    let mut out = String::new();
    let mut line = String::new();
    for (i, n) in names.iter().enumerate() {
        let word = if i < 6 { n.to_uppercase() } else { n.clone() };
        if line.len() + word.len() + 2 > 78 {
            out.push_str(&line);
            out.push('\n');
            line.clear();
        }
        if !line.is_empty() {
            line.push_str("  ");
        }
        line.push_str(&word);
    }
    out.push_str(&line);
    out
}

fn main() {
    let corpus = generate_corpus(&CorpusParams::default(), 2023);
    let (y1, y2) = (1995u32, 2000u32);
    let g1 = corpus.interaction_snapshot(y1);
    let g2 = corpus.interaction_snapshot(y2);

    let cfg = PeelConfig {
        buf_capacity: 65_536,
        ..PeelConfig::default()
    };
    let opts = SimOptions::default();
    let r1 = decompose(&g1, &cfg, &opts).expect("G1 decomposition");
    let r2 = decompose(&g2, &cfg, &opts).expect("G2 decomposition");

    let (k1, s1) = kmax_core(&r1.core);
    let (k2, s2) = kmax_core(&r2.core);

    // Order authors inside each region by their activity (degree in the
    // later snapshot) so the "cloud" leads with the most active.
    let by_activity = |set: &BTreeSet<u32>, g: &kcore_graph::Csr| -> Vec<String> {
        let mut v: Vec<u32> = set.iter().copied().collect();
        v.sort_by_key(|&a| std::cmp::Reverse(g.degree(a)));
        v.into_iter().map(|a| corpus.author_name(a)).collect()
    };
    let both: BTreeSet<u32> = s1.intersection(&s2).copied().collect();
    let entered: BTreeSet<u32> = s2.difference(&s1).copied().collect();
    let left: BTreeSet<u32> = s1.difference(&s2).copied().collect();
    let both_names = by_activity(&both, &g2);
    let entered_names = by_activity(&entered, &g2);
    let left_names = by_activity(&left, &g1);

    println!("FIG. 10 — CASE STUDY: CO-CITATION NETWORK ANALYSIS (synthetic corpus)\n");
    println!(
        "G1 (≤{y1}): |V|={} |E|={} k_max={k1}, |S1|={}   (GPU: {:.2} ms simulated)",
        g1.num_vertices(),
        g1.num_edges(),
        s1.len(),
        r1.report.total_ms
    );
    println!(
        "G2 (≤{y2}): |V|={} |E|={} k_max={k2}, |S2|={}   (GPU: {:.2} ms simulated)\n",
        g2.num_vertices(),
        g2.num_edges(),
        s2.len(),
        r2.report.total_ms
    );
    println!(
        "── S1 ∩ S2 — most active in BOTH periods ({} authors) ──",
        both_names.len()
    );
    println!("{}\n", cloud(&both_names));
    println!(
        "── S2 − S1 — became most active by {y2} ({} authors) ──",
        entered_names.len()
    );
    println!("{}\n", cloud(&entered_names));
    println!(
        "── S1 − S2 — fell out of the most-active core ({} authors) ──",
        left_names.len()
    );
    println!("{}", cloud(&left_names));

    save_json(
        "fig10_case_study",
        &CaseStudy {
            g1_year: y1,
            g2_year: y2,
            g1_vertices: g1.num_vertices(),
            g1_edges: g1.num_edges(),
            g2_vertices: g2.num_vertices(),
            g2_edges: g2.num_edges(),
            k_max_1: k1,
            k_max_2: k2,
            s1_size: s1.len(),
            s2_size: s2.len(),
            both: both_names,
            entered: entered_names,
            left: left_names,
            gpu_ms_g1: r1.report.total_ms,
            gpu_ms_g2: r2.report.total_ms,
        },
    );
}
