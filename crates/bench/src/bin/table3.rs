//! Regenerates **Table III** (GPU programs): Ours vs VETGA, Medusa-MPM,
//! Medusa-Peel, Gunrock and GSwitch, with the paper's "> 1hr", "LD > 1hr"
//! and "OOM" cells reproduced through the scaled time budget and scaled
//! device capacity.
//!
//! Set `KCORE_TRACE=1` to also dump every system's kernel trace (per-launch
//! counters + roofline, per-phase rollups) to
//! `results/traces/table3_<dataset>_<system>.json`.

use kcore_bench::{
    mark_best, prepare_all, print_table, save_json, save_trace, Cell, PAPER_HOUR_MS,
};
use kcore_gpusim::GpuContext;
use kcore_systems::{gswitch, gunrock, medusa, vetga, FrameworkCosts};
use serde::Serialize;

fn dump(ctx: &mut GpuContext, dataset: &str, system: &str) {
    if std::env::var("KCORE_TRACE").is_err() {
        return;
    }
    let slug: String = system
        .to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    save_trace(
        &format!("table3_{dataset}_{slug}"),
        &ctx.trace(format!("{system} on {dataset} (Table III)")),
    );
}

#[derive(Serialize)]
struct Row {
    dataset: String,
    cells: Vec<(String, Cell)>,
}

fn main() {
    let envs = prepare_all();
    let systems = [
        "Ours",
        "VETGA",
        "Medusa-MPM",
        "Medusa-Peel",
        "Gunrock",
        "GSwitch",
    ];
    let mut headers = vec!["Dataset".to_string()];
    headers.extend(systems.iter().map(|s| s.to_string()));

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for e in &envs {
        eprintln!("[table3] {}", e.dataset.name);
        // framework fixed-time constants scale with the dataset, like the
        // launch/PCIe overheads in `prepare`
        let costs = FrameworkCosts::default().scaled(e.scale);
        let mut cells = Vec::new();

        // Ours
        {
            let mut ctx = e.sim.context();
            cells.push(Cell::from_result(
                kcore_gpu::decompose_in(&mut ctx, &e.graph, &e.peel_cfg)
                    .map(|(core, _)| (core, ctx.elapsed_ms())),
                &e.truth,
            ));
            dump(&mut ctx, e.dataset.name, "Ours");
        }
        // VETGA: loading is checked against the (scaled) hour first.
        let load_ms = vetga::load_time_ms(&e.graph, &costs);
        if load_ms > PAPER_HOUR_MS / e.scale {
            cells.push(Cell::LoadOverHour);
        } else {
            let mut ctx = e.sim.context();
            cells.push(Cell::from_result(
                vetga::peel_in(&mut ctx, &e.graph, &costs)
                    .map(|(core, _)| (core, ctx.elapsed_ms())),
                &e.truth,
            ));
            dump(&mut ctx, e.dataset.name, "VETGA");
        }
        // Medusa-MPM
        {
            let mut ctx = e.sim.context();
            cells.push(Cell::from_result(
                medusa::mpm_in(&mut ctx, &e.graph, &costs)
                    .map(|(core, _)| (core, ctx.elapsed_ms())),
                &e.truth,
            ));
            dump(&mut ctx, e.dataset.name, "Medusa-MPM");
        }
        // Medusa-Peel
        {
            let mut ctx = e.sim.context();
            cells.push(Cell::from_result(
                medusa::peel_in(&mut ctx, &e.graph, &costs)
                    .map(|(core, _)| (core, ctx.elapsed_ms())),
                &e.truth,
            ));
            dump(&mut ctx, e.dataset.name, "Medusa-Peel");
        }
        // Gunrock
        {
            let mut ctx = e.sim.context();
            cells.push(Cell::from_result(
                gunrock::peel_in(&mut ctx, &e.graph, &costs)
                    .map(|(core, _)| (core, ctx.elapsed_ms())),
                &e.truth,
            ));
            dump(&mut ctx, e.dataset.name, "Gunrock");
        }
        // GSwitch (round count hardcoded from the known k_max, as in §V)
        {
            let mut ctx = e.sim.context();
            cells.push(Cell::from_result(
                gswitch::peel_in(&mut ctx, &e.graph, e.k_max, &costs)
                    .map(|(core, _)| (core, ctx.elapsed_ms())),
                &e.truth,
            ));
            dump(&mut ctx, e.dataset.name, "GSwitch");
        }

        let times: Vec<Option<f64>> = cells.iter().map(Cell::avg_ms).collect();
        let mut txt = vec![e.dataset.name.to_string()];
        txt.extend(cells.iter().map(|c| c.render(false)));
        mark_best(&mut txt[1..], &times);
        rows.push(txt);
        json.push(Row {
            dataset: e.dataset.name.to_string(),
            cells: systems.iter().map(|s| s.to_string()).zip(cells).collect(),
        });
    }
    println!("\nTABLE III — COMPUTATION TIME OF GPU PROGRAMS (simulated ms at dataset scale)\n");
    print_table(&headers, &rows);
    save_json("table3", &json);
}
