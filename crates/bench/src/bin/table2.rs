//! Regenerates **Table II** (ablation study): simulated time of the nine
//! peeling variants — Ours, SM, VP, BC, BC+SM, BC+VP, EC, EC+SM, EC+VP —
//! on every dataset, avg ± std over `KCORE_RUNS` repetitions, best per row
//! starred.
//!
//! Repetition variance is real: blocks race for k-shell vertices through
//! `deg[]` atomics, so per-block work (and hence the SM makespan) differs
//! across runs — the same effect that made the paper's GPU timings vary by
//! up to 30%.

use kcore_bench::{mark_best, prepare_all, print_table, runs, save_json, Cell};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    cells: Vec<(String, Cell)>,
}

fn main() {
    let envs = prepare_all();
    let reps = runs();
    let variants = kcore_gpu::PeelConfig::default().all_variants();
    let names: Vec<&'static str> = variants.iter().map(|v| v.variant_name()).collect();

    let mut headers = vec!["Dataset".to_string()];
    headers.extend(names.iter().map(|n| n.to_string()));

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for e in &envs {
        eprintln!(
            "[table2] {} (|E|={}, {} runs)",
            e.dataset.name, e.stats.num_edges, reps
        );
        let mut cells_txt = vec![e.dataset.name.to_string()];
        let mut times = Vec::new();
        let mut cells_json = Vec::new();
        for base in &variants {
            let cfg = kcore_gpu::PeelConfig {
                compaction: base.compaction,
                buffering: base.buffering,
                ..e.peel_cfg
            };
            let mut ok_times = Vec::new();
            let mut failure: Option<Cell> = None;
            for rep in 0..reps {
                // vary the hardware-scheduling seed per repetition — the
                // source of the paper's observed run-to-run variance
                let mut ctx = e.sim.context();
                ctx.set_schedule_seed(rep as u64 + 1);
                match kcore_gpu::decompose_in(&mut ctx, &e.graph, &cfg)
                    .map(|(core, _)| (core, ctx.elapsed_ms()))
                {
                    Ok((core, ms)) => {
                        assert_eq!(
                            core,
                            e.truth,
                            "{} variant {}",
                            e.dataset.name,
                            cfg.variant_name()
                        );
                        ok_times.push(ms);
                    }
                    Err(kcore_gpusim::SimError::TimeLimit { .. }) => {
                        failure = Some(Cell::OverHour);
                        break;
                    }
                    Err(kcore_gpusim::SimError::Oom(_)) => {
                        failure = Some(Cell::Oom);
                        break;
                    }
                    Err(err) => panic!("{}: {err}", e.dataset.name),
                }
            }
            let cell = failure.unwrap_or_else(|| Cell::from_times(&ok_times));
            times.push(cell.avg_ms());
            cells_txt.push(cell.render(true));
            cells_json.push((cfg.variant_name().to_string(), cell));
        }
        mark_best(&mut cells_txt[1..], &times);
        rows.push(cells_txt);
        json.push(Row {
            dataset: e.dataset.name.to_string(),
            cells: cells_json,
        });
    }
    println!(
        "\nTABLE II — ABLATION STUDY (simulated ms at dataset scale; avg±std over {reps} runs)\n"
    );
    print_table(&headers, &rows);
    save_json("table2", &json);
}
