//! Regenerates **Table IV** (CPU programs): Ours (simulated GPU) against the
//! measured wall-clock of NetworkX-profile, BZ, serial/parallel ParK,
//! serial/parallel PKC-o, MPM and serial/parallel PKC on this machine.
//!
//! GPU-vs-CPU comparability caveat: the Ours column is simulated
//! (P100-calibrated) while CPU columns are real wall-clock on the host —
//! EXPERIMENTS.md discusses how to read the comparison.

use kcore_bench::{mark_best, prepare_all, print_table, save_json, Cell};
use kcore_cpu::{bz, mpm, naive, park, pkc, CoreAlgorithm};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    dataset: String,
    cells: Vec<(String, Cell)>,
}

fn measure(alg: &dyn CoreAlgorithm, g: &kcore_graph::Csr, truth: &[u32]) -> Cell {
    let t0 = Instant::now();
    let core = alg.run(g);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    if core == truth {
        Cell::Time {
            avg_ms: ms,
            std_ms: 0.0,
        }
    } else {
        Cell::Wrong
    }
}

fn main() {
    let envs = prepare_all();
    // Table IV column order.
    let algs: Vec<Box<dyn CoreAlgorithm>> = vec![
        Box::new(naive::Naive),
        Box::new(bz::Bz),
        Box::new(park::SerialPark),
        Box::new(park::ParallelPark::default()),
        Box::new(pkc::SerialPkcO),
        Box::new(pkc::ParallelPkcO::default()),
        Box::new(mpm::ParallelMpm),
        Box::new(pkc::SerialPkc),
        Box::new(pkc::ParallelPkc::default()),
    ];
    let mut headers = vec!["Dataset".to_string(), "Ours".to_string()];
    headers.extend(algs.iter().map(|a| a.name().to_string()));

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for e in &envs {
        eprintln!("[table4] {}", e.dataset.name);
        let mut cells = Vec::new();
        cells.push(Cell::from_result(
            kcore_gpu::decompose(&e.graph, &e.peel_cfg, &e.sim)
                .map(|r| (r.core, r.report.total_ms)),
            &e.truth,
        ));
        for a in &algs {
            cells.push(measure(a.as_ref(), &e.graph, &e.truth));
        }
        let times: Vec<Option<f64>> = cells.iter().map(Cell::avg_ms).collect();
        let mut txt = vec![e.dataset.name.to_string()];
        txt.extend(cells.iter().map(|c| c.render(false)));
        mark_best(&mut txt[1..], &times);
        rows.push(txt);
        let mut names = vec!["Ours".to_string()];
        names.extend(algs.iter().map(|a| a.name().to_string()));
        json.push(Row {
            dataset: e.dataset.name.to_string(),
            cells: names.into_iter().zip(cells).collect(),
        });
    }
    println!("\nTABLE IV — COMPUTATION TIME OF CPU PROGRAMS (ms; Ours = simulated GPU, others = host wall-clock)\n");
    print_table(&headers, &rows);
    save_json("table4", &json);
}
