//! Full-scale P100 capacity report: runs every GPU implementation at the
//! harness's dataset scale, snapshots the allocation ledger via
//! [`GpuContext::memstats`], and extrapolates each footprint to the paper's
//! full dataset dimensions against a 16 GB Tesla P100.
//!
//! The printed verdict per cell is:
//!
//! * `OOM` — the scaled run itself exceeded its (scaled) device capacity, so
//!   the full-scale run certainly does too (the ledger stops at the failed
//!   allocation, making any forecast a lower bound);
//! * `P.P fits` / `P.P OOM!` — the predicted full-scale peak in GB and
//!   whether it fits in 16 GB.
//!
//! Predicted-OOM cells must agree with the `N/A` cells of Tables III/V by
//! construction: a run that OOMs at scale `s` against `16 GB / s` is exactly
//! a run whose full-scale footprint exceeds 16 GB under linear scaling.
//!
//! With `--check` (used by `scripts/ci.sh`), the binary additionally asserts
//! that "Ours" (the paper's peeling kernel) is predicted to fit on every
//! dataset, and that a schema-v3 trace round-trips through
//! `Trace::to_json` → `kcore_bench::regress::parse_json` with its `memstats`
//! block intact.

use kcore_bench::{prepare_all, print_table, regress, save_json};
use kcore_gpusim::{CapacityForecast, GpuContext, SimError, P100_DEVICE_BYTES};
use kcore_systems::{gswitch, gunrock, medusa, vetga, FrameworkCosts};
use serde::Serialize;

#[derive(Serialize)]
struct CellReport {
    system: String,
    /// The scaled run itself hit OOM (forecast is then a lower bound).
    run_oom: bool,
    /// Peak bytes observed in the scaled run's ledger.
    sim_peak_bytes: u64,
    /// Full-scale prediction (present even for OOM runs, as a lower bound).
    predicted_peak_bytes: u64,
    headroom_bytes: i64,
    /// Final verdict: does the full-scale run fit in 16 GB?
    fits: bool,
}

#[derive(Serialize)]
struct Row {
    dataset: String,
    full_vertices: u64,
    full_arcs: u64,
    device_capacity_bytes: u64,
    cells: Vec<CellReport>,
}

/// Runs one implementation, snapshots its memstats, and extrapolates.
fn report(
    ctx: &mut GpuContext,
    res: Result<(), SimError>,
    system: &str,
    full_vertices: u64,
    full_arcs: u64,
) -> CellReport {
    let run_oom = match res {
        Ok(()) | Err(SimError::TimeLimit { .. }) => false,
        Err(SimError::Oom(_)) => true,
        Err(e) => panic!("unexpected failure: {e}"),
    };
    let stats = ctx.memstats();
    let f: CapacityForecast = stats.extrapolate(full_vertices, full_arcs);
    CellReport {
        system: system.to_string(),
        run_oom,
        sim_peak_bytes: stats.peak_bytes,
        predicted_peak_bytes: f.predicted_peak_bytes,
        headroom_bytes: f.headroom_bytes,
        // A run that OOMed at 16GB/scale capacity exceeds 16 GB at full
        // scale under the same linear scaling; otherwise trust the replayed
        // forecast.
        fits: !run_oom && f.fits,
    }
}

fn render(c: &CellReport) -> String {
    if c.run_oom {
        return "OOM".into();
    }
    let gb = c.predicted_peak_bytes as f64 / (1024.0 * 1024.0 * 1024.0);
    format!("{:.1} {}", gb, if c.fits { "fits" } else { "OOM!" })
}

/// `--check`: a v3 trace must survive `to_json` → `regress::parse_json`
/// with schema_version 3 and a memstats block.
fn check_v3_round_trip() {
    let mut ctx = kcore_gpusim::SimOptions::default().context();
    ctx.htod("probe", &[1u32, 2, 3]).unwrap();
    let json = ctx.trace("memreport v3 round-trip probe").to_json();
    let v = regress::parse_json(&json).expect("v3 trace must parse");
    let schema = regress::get(&v, "schema_version").and_then(regress::as_u64);
    assert_eq!(schema, Some(3), "trace schema_version must be 3");
    let mem = regress::get(&v, "memstats").expect("trace must embed memstats");
    let peak = regress::get(mem, "peak_bytes").and_then(regress::as_u64);
    assert_eq!(
        peak,
        Some(12),
        "memstats peak must round-trip (3 u32 words)"
    );
    eprintln!("[memreport] schema-v3 round-trip OK");
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let envs = prepare_all();
    let columns = [
        "Ours",
        "VETGA",
        "Medusa-MPM",
        "Medusa-Peel",
        "Gunrock",
        "GSwitch",
    ];
    let mut headers = vec!["Dataset".to_string()];
    headers.extend(columns.iter().map(|s| s.to_string()));

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for e in &envs {
        eprintln!("[memreport] {}", e.dataset.name);
        // Footprints are fixed at allocation time (cudaMalloc up front), so
        // cap the simulated run right after setup, like table5.
        let mut sim = e.sim;
        let cap = sim.time_limit_ms.unwrap_or(f64::MAX);
        sim.time_limit_ms = Some(cap.min(60.0));
        let costs = FrameworkCosts::default().scaled(e.scale);
        let full_v = e.dataset.paper.num_vertices;
        // paper rows count undirected edges; the CSR stores both arcs
        let full_a = 2 * e.dataset.paper.num_edges;

        let mut cells = Vec::new();
        {
            let mut ctx = sim.context();
            let res = kcore_gpu::decompose_in(&mut ctx, &e.graph, &e.peel_cfg).map(|_| ());
            cells.push(report(&mut ctx, res, "Ours", full_v, full_a));
        }
        {
            let mut ctx = sim.context();
            let res = vetga::peel_in(&mut ctx, &e.graph, &costs).map(|_| ());
            cells.push(report(&mut ctx, res, "VETGA", full_v, full_a));
        }
        {
            let mut ctx = sim.context();
            let res = medusa::mpm_in(&mut ctx, &e.graph, &costs).map(|_| ());
            cells.push(report(&mut ctx, res, "Medusa-MPM", full_v, full_a));
        }
        {
            let mut ctx = sim.context();
            let res = medusa::peel_in(&mut ctx, &e.graph, &costs).map(|_| ());
            cells.push(report(&mut ctx, res, "Medusa-Peel", full_v, full_a));
        }
        {
            let mut ctx = sim.context();
            let res = gunrock::peel_in(&mut ctx, &e.graph, &costs).map(|_| ());
            cells.push(report(&mut ctx, res, "Gunrock", full_v, full_a));
        }
        {
            let mut ctx = sim.context();
            let res = gswitch::peel_in(&mut ctx, &e.graph, e.k_max, &costs).map(|_| ());
            cells.push(report(&mut ctx, res, "GSwitch", full_v, full_a));
        }

        if check {
            let ours = &cells[0];
            assert!(
                ours.fits,
                "[memreport] peel predicted OOM on {} (predicted {} B > {} B)",
                e.dataset.name, ours.predicted_peak_bytes, P100_DEVICE_BYTES
            );
        }

        let mut row = vec![e.dataset.name.to_string()];
        row.extend(cells.iter().map(render));
        rows.push(row);
        json.push(Row {
            dataset: e.dataset.name.to_string(),
            full_vertices: full_v,
            full_arcs: full_a,
            device_capacity_bytes: P100_DEVICE_BYTES,
            cells,
        });
    }
    println!("\nPREDICTED FULL-SCALE PEAK DEVICE MEMORY (GB vs 16 GB P100; OOM = scaled run exceeded capacity)\n");
    print_table(&headers, &rows);
    save_json("table_mem", &json);
    if check {
        check_v3_round_trip();
        eprintln!("[memreport] check OK: peel predicted to fit on every dataset");
    }
}
