//! Shared harness for the table/figure regeneration binaries.
//!
//! Every experiment runs on the Table I dataset stand-ins at reduced scale
//! (DESIGN.md). To keep the *relative* quantities faithful, the harness
//! derives a per-dataset **scale factor** `paper |E| / stand-in |E|` at
//! runtime and scales the environment by it:
//!
//! * simulated device capacity = 16 GiB / scale (so the paper's OOM points
//!   reappear at the same datasets);
//! * simulated time budget = 1 hour / scale (so "> 1hr" cells reappear);
//! * per-block buffer capacity = 1 M IDs / scale (the paper's buffer
//!   budget, same fraction of the graph).
//!
//! Environment knobs:
//!
//! * `KCORE_RUNS` — repetitions for the ablation's avg ± std (default 3;
//!   the paper uses 100);
//! * `KCORE_DATASETS` — comma-separated dataset-name filter;
//! * `KCORE_SMOKE` — set to use the miniature smoke-test registry subset
//!   (fast CI runs);
//! * `KCORE_EXEC_PATH` — host execution strategy: `fused` (default),
//!   `fast`, or `reference`. Cost-model-neutral (every table cell is
//!   bit-identical across values); changes host wall-clock only, so the
//!   oracle paths can be timed on the full sweep without a rebuild.

pub mod regress;

use kcore_cpu::CoreAlgorithm;
use kcore_gpu::{ExecPath, PeelConfig};
use kcore_gpusim::{SimError, SimOptions};
use kcore_graph::datasets::{self, Dataset};
use kcore_graph::{Csr, GraphStats};
use serde::Serialize;
use std::io::Write as _;
use std::path::PathBuf;

/// Everything a table binary needs for one dataset.
pub struct Env {
    /// The registry entry (paper stats + generator).
    pub dataset: Dataset,
    /// The generated stand-in graph.
    pub graph: Csr,
    /// Stand-in statistics.
    pub stats: GraphStats,
    /// `paper |E| / stand-in |E|`.
    pub scale: f64,
    /// Scaled simulation options (capacity + time budget).
    pub sim: SimOptions,
    /// Scaled peel configuration ("Ours" baseline; derive variants from it).
    pub peel_cfg: PeelConfig,
    /// Ground-truth core numbers (BZ).
    pub truth: Vec<u32>,
    /// `k_max` of the stand-in.
    pub k_max: u32,
}

/// The paper's 1-hour budget, ms.
pub const PAPER_HOUR_MS: f64 = 3_600_000.0;
/// The paper's device memory (P100), bytes.
pub const PAPER_DEVICE_BYTES: u64 = 16 * (1 << 30);

/// Prepares one dataset environment. The stand-in graph comes from the
/// `KCORE_CACHE_DIR` binary cache when enabled (identical bytes either
/// way), so a suite of table binaries generates each dataset only once.
pub fn prepare(dataset: Dataset) -> Env {
    let graph = dataset.generate_cached();
    let stats = GraphStats::compute(&graph);
    let scale = (dataset.paper.num_edges as f64 / stats.num_edges.max(1) as f64).max(1.0);
    let mut sim = SimOptions {
        device_capacity_bytes: (PAPER_DEVICE_BYTES as f64 / scale) as u64,
        time_limit_ms: Some(PAPER_HOUR_MS / scale),
        ..SimOptions::default()
    };
    // Scale the *fixed* per-event costs (kernel launch, host round trips)
    // with the graph, so the fixed-to-variable cost ratio stays
    // paper-comparable: a 1/100-scale graph with full-size launch overhead
    // would be entirely launch-bound and hide every variant difference.
    sim.cost.kernel_launch_s /= scale;
    sim.cost.pcie_latency_s /= scale;
    // Scale the grid geometry so each block covers the same number of
    // grid-stride stripes as at paper scale (Algorithm 2 assigns blocks
    // contiguous BLK_DIM-sized stripes every NUM_THREADS vertices; with the
    // paper's 110 592 threads against a down-scaled |V|, blocks would each
    // own a single contiguous stripe and per-block load balance would be
    // destroyed). BLK_NUM stays 108 (it matches the SM count); BLK_DIM
    // shrinks by the vertex scale. Barrier cost shrinks with the block
    // width (fewer warps to converge).
    let vertex_scale =
        (dataset.paper.num_vertices as f64 / stats.num_vertices.max(1) as f64).max(1.0);
    let dim = (((1024.0 / vertex_scale) as u32) / 32 * 32).clamp(32, 1024);
    sim.cost.barrier_cycles = (dim / 32) as f64;
    let peel_cfg = PeelConfig {
        launch: kcore_gpusim::LaunchConfig {
            blocks: 108,
            threads_per_block: dim,
        },
        buf_capacity: ((1_000_000.0 / scale) as usize).max(4_096),
        shared_buf_capacity: ((10_000.0 / scale) as usize).max(64),
        exec_path: exec_path_from_env(),
        ..PeelConfig::default()
    };
    let truth = kcore_cpu::bz::Bz.run(&graph);
    let k_max = kcore_cpu::k_max(&truth);
    Env {
        dataset,
        graph,
        stats,
        scale,
        sim,
        peel_cfg,
        truth,
        k_max,
    }
}

/// Prepares all selected datasets (honoring `KCORE_SMOKE` / `KCORE_DATASETS`).
pub fn prepare_all() -> Vec<Env> {
    let base = if std::env::var_os("KCORE_SMOKE").is_some() {
        datasets::smoke_subset()
    } else {
        datasets::registry()
    };
    let filter: Option<Vec<String>> = std::env::var("KCORE_DATASETS").ok().map(|s| {
        s.split(',')
            .map(|x| x.trim().to_ascii_lowercase())
            .collect()
    });
    base.into_iter()
        .filter(|d| {
            filter
                .as_ref()
                .is_none_or(|f| f.iter().any(|x| x == &d.name.to_ascii_lowercase()))
        })
        .map(prepare)
        .collect()
}

/// Parses `KCORE_EXEC_PATH`: `fused` (default) | `fast` | `reference`.
/// All three paths produce bit-identical cells (DESIGN.md "Fused execution
/// & the single-plan contract"), so the knob only moves host wall time.
fn exec_path_from_env() -> ExecPath {
    let v = std::env::var("KCORE_EXEC_PATH").unwrap_or_default();
    match v.to_ascii_lowercase().as_str() {
        "" | "fused" => ExecPath::Fused,
        "fast" => ExecPath::Fast,
        "reference" => ExecPath::Reference,
        other => panic!("KCORE_EXEC_PATH must be fused, fast or reference (got {other:?})"),
    }
}

/// Repetition count for avg ± std experiments.
pub fn runs() -> usize {
    std::env::var("KCORE_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1)
}

/// One table cell: a time, or one of the paper's special outcomes.
#[derive(Debug, Clone, Serialize)]
pub enum Cell {
    /// Simulated or measured milliseconds (avg, std).
    Time {
        /// Mean over repetitions.
        avg_ms: f64,
        /// Standard deviation over repetitions (0 for single runs).
        std_ms: f64,
    },
    /// Exceeded the (scaled) 1-hour budget.
    OverHour,
    /// Graph loading alone exceeded the budget (VETGA's "LD > 1hr").
    LoadOverHour,
    /// Device out of memory.
    Oom,
    /// Implementation produced wrong core numbers (should never appear; kept
    /// so the harness surfaces rather than hides a correctness regression).
    Wrong,
}

impl Cell {
    /// Builds a cell from repetition times in ms.
    pub fn from_times(times: &[f64]) -> Cell {
        let n = times.len() as f64;
        let avg = times.iter().sum::<f64>() / n;
        let var = times.iter().map(|t| (t - avg) * (t - avg)).sum::<f64>() / n;
        Cell::Time {
            avg_ms: avg,
            std_ms: var.sqrt(),
        }
    }

    /// Builds a cell from one run outcome, checking correctness.
    pub fn from_result(res: Result<(Vec<u32>, f64), SimError>, truth: &[u32]) -> Cell {
        match res {
            Ok((core, ms)) => {
                if core == truth {
                    Cell::Time {
                        avg_ms: ms,
                        std_ms: 0.0,
                    }
                } else {
                    Cell::Wrong
                }
            }
            Err(SimError::TimeLimit { .. }) => Cell::OverHour,
            Err(SimError::Oom(_)) => Cell::Oom,
            Err(e) => panic!("unexpected simulation failure: {e}"),
        }
    }

    /// Mean time, if this is a time cell.
    pub fn avg_ms(&self) -> Option<f64> {
        match self {
            Cell::Time { avg_ms, .. } => Some(*avg_ms),
            _ => None,
        }
    }

    /// Renders like the paper's cells: `"12.3"`, `"> 1hr"`, `"LD > 1hr"`,
    /// `"OOM"`. Scaled-time cells are in *scaled* ms (multiply by the
    /// dataset scale for a paper-equivalent figure).
    pub fn render(&self, with_std: bool) -> String {
        match self {
            Cell::Time { avg_ms, std_ms } => {
                if with_std {
                    format!("{:.2}±{:.2}", avg_ms, std_ms)
                } else if *avg_ms >= 100.0 {
                    format!("{avg_ms:.0}")
                } else {
                    format!("{avg_ms:.2}")
                }
            }
            Cell::OverHour => "> 1hr".into(),
            Cell::LoadOverHour => "LD > 1hr".into(),
            Cell::Oom => "OOM".into(),
            Cell::Wrong => "WRONG!".into(),
        }
    }
}

/// Prints an aligned text table.
pub fn print_table(headers: &[String], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, &w) in widths.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            if i == 0 {
                s.push_str(&format!("{cell:<w$}"));
            } else {
                s.push_str(&format!("{cell:>w$}"));
            }
        }
        s
    };
    println!("{}", line(headers));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// Marks the minimum time cell of a row with the paper's asterisk.
pub fn mark_best(cells: &mut [String], times: &[Option<f64>]) {
    if let Some((best, _)) = times
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.map(|t| (i, t)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    {
        cells[best] = format!("{}*", cells[best]);
    }
}

/// Where result JSON files go (`results/` at the workspace root).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("KCORE_RESULTS_DIR")
        .unwrap_or_else(|_| format!("{}/../../results", env!("CARGO_MANIFEST_DIR")));
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Writes a captured kernel [`Trace`](kcore_gpusim::Trace) as pretty-printed
/// JSON into `results/traces/<name>.json`.
///
/// Overwriting a previous dump is announced rather than silent, and a
/// previous dump written under a *different* trace schema is preserved as
/// `<name>.schema<v>.json` instead of being mixed over — tooling scanning
/// the directory never sees two schemas under one name.
pub fn save_trace(name: &str, trace: &kcore_gpusim::Trace) {
    let dir = results_dir().join("traces");
    std::fs::create_dir_all(&dir).expect("create traces dir");
    let path = dir.join(format!("{name}.json"));
    if let Ok(old) = std::fs::read_to_string(&path) {
        let old_schema = regress::parse_json(&old)
            .ok()
            .and_then(|v| regress::get(&v, "schema_version").and_then(regress::as_u64))
            // PR 1 traces predate the schema_version field
            .unwrap_or(1);
        if old_schema != kcore_gpusim::TRACE_SCHEMA_VERSION as u64 {
            let aside = dir.join(format!("{name}.schema{old_schema}.json"));
            std::fs::rename(&path, &aside).expect("preserve old-schema trace");
            eprintln!(
                "[trace {name}: previous dump used schema {old_schema} (current {}); kept as {}]",
                kcore_gpusim::TRACE_SCHEMA_VERSION,
                aside.display()
            );
        } else {
            eprintln!("[trace {name}: overwriting previous dump]");
        }
    }
    std::fs::write(&path, trace.to_json()).expect("write trace");
    eprintln!("[saved {}]", path.display());
}

/// Writes a [`Timeline`](kcore_gpusim::Timeline) as Chrome trace-event JSON
/// into `results/traces/<name>.perfetto.json` (open in <https://ui.perfetto.dev>).
pub fn save_timeline(name: &str, timeline: &kcore_gpusim::Timeline) {
    let dir = results_dir().join("traces");
    std::fs::create_dir_all(&dir).expect("create traces dir");
    let path = dir.join(format!("{name}.perfetto.json"));
    std::fs::write(&path, timeline.to_chrome_json()).expect("write timeline");
    eprintln!("[saved {}]", path.display());
}

/// Writes a [`HostProfile`](kcore_gpusim::HostProfile) as pretty-printed
/// JSON into `results/traces/<name>.hostprof.json`. Host profiles live in
/// their own schema-versioned files beside the trace — they are wall-clock
/// observations, never part of a golden trace or fingerprint.
pub fn save_hostprof(name: &str, profile: &kcore_gpusim::HostProfile) {
    let dir = results_dir().join("traces");
    std::fs::create_dir_all(&dir).expect("create traces dir");
    let path = dir.join(format!("{name}.hostprof.json"));
    std::fs::write(&path, profile.to_json()).expect("write host profile");
    eprintln!("[saved {}]", path.display());
}

/// Env knob: set `KCORE_FLEET_TIMELINE=1` to make `inspect` and
/// `table_scale` export fleet observability artifacts (the fleet trace plus
/// the merged multi-device Perfetto document) beside their normal output.
pub const FLEET_TIMELINE_ENV: &str = "KCORE_FLEET_TIMELINE";

/// Whether [`FLEET_TIMELINE_ENV`] is set.
pub fn fleet_timeline_enabled() -> bool {
    std::env::var_os(FLEET_TIMELINE_ENV).is_some()
}

/// Writes a [`FleetRun`](kcore_gpu::FleetRun)'s observability artifacts:
/// the fleet trace as `results/traces/<name>.fleet.json` and the merged
/// multi-device Perfetto document as
/// `results/traces/<name>.fleet.perfetto.json` (open in
/// <https://ui.perfetto.dev> — one process per device plus the link
/// process with worker→master→owner flow events).
pub fn save_fleet(name: &str, fr: &kcore_gpu::FleetRun) {
    let dir = results_dir().join("traces");
    std::fs::create_dir_all(&dir).expect("create traces dir");
    let path = dir.join(format!("{name}.fleet.json"));
    std::fs::write(&path, fr.fleet.to_json()).expect("write fleet trace");
    eprintln!("[saved {}]", path.display());
    let path = dir.join(format!("{name}.fleet.perfetto.json"));
    std::fs::write(&path, fr.fleet.merged_chrome_json(&fr.timelines))
        .expect("write fleet timeline");
    eprintln!("[saved {}]", path.display());
}

/// Serializes rows as JSON into `results/<name>.json`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path).expect("create results file");
    let s = serde_json::to_string_pretty(value).expect("serialize results");
    f.write_all(s.as_bytes()).expect("write results");
    eprintln!("[saved {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_stats() {
        let c = Cell::from_times(&[10.0, 14.0]);
        match c {
            Cell::Time { avg_ms, std_ms } => {
                assert!((avg_ms - 12.0).abs() < 1e-9);
                assert!((std_ms - 2.0).abs() < 1e-9);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn cell_render() {
        assert_eq!(Cell::OverHour.render(false), "> 1hr");
        assert_eq!(Cell::Oom.render(false), "OOM");
        assert_eq!(Cell::LoadOverHour.render(false), "LD > 1hr");
        assert_eq!(
            Cell::Time {
                avg_ms: 123.4,
                std_ms: 0.0
            }
            .render(false),
            "123"
        );
        assert_eq!(
            Cell::Time {
                avg_ms: 1.25,
                std_ms: 0.5
            }
            .render(true),
            "1.25±0.50"
        );
    }

    #[test]
    fn cell_from_result_checks_correctness() {
        let truth = vec![1, 2];
        let ok = Cell::from_result(Ok((vec![1, 2], 5.0)), &truth);
        assert!(matches!(ok, Cell::Time { .. }));
        let wrong = Cell::from_result(Ok((vec![1, 1], 5.0)), &truth);
        assert!(matches!(wrong, Cell::Wrong));
    }

    #[test]
    fn mark_best_appends_asterisk() {
        let mut cells = vec!["5.0".to_string(), "3.0".to_string()];
        mark_best(&mut cells, &[Some(5.0), Some(3.0)]);
        assert_eq!(cells[1], "3.0*");
        assert_eq!(cells[0], "5.0");
    }

    #[test]
    fn exec_path_env_parses() {
        // only valid values are set here: other tests in this binary may
        // call prepare() concurrently and would panic on an invalid one
        std::env::remove_var("KCORE_EXEC_PATH");
        assert_eq!(exec_path_from_env(), ExecPath::Fused);
        for (v, want) in [
            ("fused", ExecPath::Fused),
            ("Fast", ExecPath::Fast),
            ("REFERENCE", ExecPath::Reference),
        ] {
            std::env::set_var("KCORE_EXEC_PATH", v);
            assert_eq!(exec_path_from_env(), want);
        }
        std::env::remove_var("KCORE_EXEC_PATH");
    }

    #[test]
    fn smoke_env_prepares() {
        std::env::set_var("KCORE_SMOKE", "1");
        std::env::set_var("KCORE_DATASETS", "amazon0601");
        let envs = prepare_all();
        std::env::remove_var("KCORE_SMOKE");
        std::env::remove_var("KCORE_DATASETS");
        assert_eq!(envs.len(), 1);
        let e = &envs[0];
        assert!(e.scale > 1.0);
        assert!(e.sim.time_limit_ms.unwrap() < PAPER_HOUR_MS);
        assert_eq!(e.truth.len() as u32, e.graph.num_vertices());
    }
}
